"""The topology × routing × load sweep, recorded into the perf database.

Runs the synthetic-traffic network sweep (:mod:`repro.eval.netsweep`)
and appends one record per run to ``results/perfdb``: every grid cell's
throughput and latency land under distinct metric names
(``mesh64_escape-vc_inj0.2_throughput`` …) so
``python -m repro.obs.report`` can trend each saturation curve point
across commits, while the one ``sweep_seconds`` wall-clock metric is
what the CI regression gate judges (only ``*_seconds`` metrics face the
gate).

Run standalone::

    python benchmarks/bench_netsweep.py [--smoke] [--paper-scale]
        [--routing POLICY ...] [--seed N] [--rates R ...]
        [--pattern P] [--perfdb DIR]

``--smoke`` is CI's quick pass — the 8×8-mesh three-rate grid under a
separate ``netsweep-smoke`` bench name so its timings never pollute the
full-run trend history.
"""

import argparse
import time
from pathlib import Path

from repro.eval.netsweep import (
    compute_netsweep,
    netsweep_params,
    render_netsweep,
    sweep_metrics,
)
from repro.exp.spec import EvalOptions
from repro.network.routing import POLICY_NAMES
from repro.network.traffic import PATTERNS
from repro.obs import perfdb

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "netsweep"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI quick pass: the default 8x8-mesh grid, recorded under a "
            "separate '-smoke' bench name"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="the full grid: {mesh, torus} x all policies at 64 and 256 nodes",
    )
    parser.add_argument(
        "--routing",
        nargs="*",
        choices=POLICY_NAMES,
        default=None,
        help="restrict the sweep to these routing policies",
    )
    parser.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=None,
        help="override the injection-rate ladder (messages/node/cycle)",
    )
    parser.add_argument(
        "--pattern",
        choices=PATTERNS,
        default=None,
        help="override the traffic pattern (default: uniform)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the RNG seed shared by injection and adaptive routing",
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)

    params = netsweep_params(EvalOptions(paper_scale=args.paper_scale))
    if args.routing:
        params["policies"] = list(args.routing)
    if args.rates:
        params["rates"] = list(args.rates)
    if args.pattern:
        params["pattern"] = args.pattern
    if args.seed is not None:
        params["seed"] = args.seed

    start = time.perf_counter()
    payload = compute_netsweep(params)
    elapsed = time.perf_counter() - start
    print(render_netsweep(params, payload))
    print()

    metrics = sweep_metrics(payload)
    metrics["sweep_seconds"] = round(elapsed, 4)
    record = perfdb.make_record(
        bench=f"{BENCH_NAME}-smoke" if args.smoke else BENCH_NAME,
        metrics=metrics,
        meta={
            "pattern": params["pattern"],
            "seed": params["seed"],
            "configs": [list(c) for c in params["configs"]],
            "policies": list(params["policies"]),
            "rates": list(params["rates"]),
        },
    )
    path = perfdb.append_record(args.perfdb, record)
    print(f"swept {len(payload['curves'])} curves in {elapsed:.2f}s")
    print(f"appended perfdb record to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
