"""The multi-tenant serving study, recorded into the perf database.

Runs the three-policy tenancy comparison (:mod:`repro.eval.multitenant`)
and appends one record to ``results/perfdb``: per-policy victim/normal
latency percentiles and completion land under distinct metric names
(``gang_victim_p99`` …) so ``python -m repro.obs.report`` can trend the
QoS numbers across commits, while the ``*_seconds`` wall-clock metrics
(one per policy plus the ``multitenant_seconds`` total) are what the CI
regression gate judges.  One extra run of the first policy repeats with
the lineage tracker attached, so ``multitenant_lineage_seconds`` vs
``multitenant_nolineage_seconds`` trends the observability overhead on
the tenancy path too.

Run standalone::

    python benchmarks/bench_multitenant.py [--smoke] [--paper-scale]
        [--schedulers NAME ...] [--tenants N] [--seed N] [--perfdb DIR]

``--smoke`` is CI's quick pass — 128 tenants over a shortened horizon
under a separate ``multitenant-smoke`` bench name so its timings never
pollute the full-run trend history.
"""

import argparse
import time
from pathlib import Path

from repro.eval.multitenant import (
    multitenant_metrics,
    multitenant_params,
    render_multitenant,
    run_policy,
)
from repro.exp.spec import EvalOptions
from repro.obs import perfdb
from repro.obs.lineage import LineageTracker
from repro.tenancy import SCHEDULER_NAMES, MultiTenantRun, make_tenants

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "multitenant"


def _timed_run(name, tenants, params, lineage=None) -> float:
    """Wall-clock one policy run, optionally with lineage attached."""
    run = MultiTenantRun(
        name,
        tenants,
        seed=params["seed"],
        width=params["width"],
        height=params["height"],
        gen_window=params["gen_window"],
        horizon=params["horizon"],
        service_interval=params["service_interval"],
        quantum=params["quantum"],
        slice_cycles=params["slice_cycles"],
        switch_cycles=params["switch_cycles"],
        tenant_cap=params["tenant_cap"],
    )
    if lineage is not None:
        run.fabric.attach_lineage(lineage)
    start = time.perf_counter()
    run.run()
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI quick pass: 128 tenants over a shortened horizon, "
            "recorded under a separate '-smoke' bench name"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="double the tenant population (1024 tenants)",
    )
    parser.add_argument(
        "--schedulers",
        nargs="*",
        choices=SCHEDULER_NAMES,
        default=None,
        help="restrict the comparison to these policies",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="override the tenant population size",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the seed shared by the population and schedule",
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)

    params = multitenant_params(EvalOptions(paper_scale=args.paper_scale))
    if args.smoke:
        params.update(n_tenants=128, gen_window=4000, horizon=6000)
    if args.schedulers:
        params["schedulers"] = list(args.schedulers)
    if args.tenants is not None:
        params["n_tenants"] = args.tenants
    if args.seed is not None:
        params["seed"] = args.seed

    n_nodes = params["width"] * params["height"]
    tenants = make_tenants(params["n_tenants"], n_nodes, params["seed"])
    runs = {}
    timings = {}
    total = 0.0
    for name in params["schedulers"]:
        start = time.perf_counter()
        runs[name] = run_policy(name, tenants, params)
        elapsed = time.perf_counter() - start
        timings[f"{name}_seconds"] = round(elapsed, 4)
        total += elapsed
    payload = {
        "runs": runs,
        "victim_p99": {
            name: runs[name]["roles"]["victim"]["p99"] for name in runs
        },
    }
    print(render_multitenant(params, payload))
    print()

    # Lineage overhead probe: the first policy re-run back-to-back with
    # and without the lineage tracker, so the pair shares cache state.
    probe = params["schedulers"][0]
    nolineage_elapsed = _timed_run(probe, tenants, params)
    lineage_elapsed = _timed_run(
        probe, tenants, params, lineage=LineageTracker(origin="bench-multitenant")
    )

    metrics = multitenant_metrics(payload)
    metrics.update(timings)
    metrics["multitenant_seconds"] = round(total, 4)
    metrics["multitenant_nolineage_seconds"] = round(nolineage_elapsed, 4)
    metrics["multitenant_lineage_seconds"] = round(lineage_elapsed, 4)
    record = perfdb.make_record(
        bench=f"{BENCH_NAME}-smoke" if args.smoke else BENCH_NAME,
        metrics=metrics,
        meta={
            "tenants": params["n_tenants"],
            "nodes": n_nodes,
            "seed": params["seed"],
            "horizon": params["horizon"],
            "schedulers": list(params["schedulers"]),
            "lineage_policy": probe,
        },
    )
    path = perfdb.append_record(args.perfdb, record)
    print(
        f"served {params['n_tenants']} tenants under "
        f"{len(params['schedulers'])} policies in {total:.2f}s"
    )
    print(
        f"lineage probe ({probe}): off {nolineage_elapsed:.3f}s  "
        f"on {lineage_elapsed:.3f}s  "
        f"overhead {(lineage_elapsed / nolineage_elapsed - 1.0) * 100:+.1f}%"
    )
    print(f"appended perfdb record to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
