"""NIC-offloaded vs processor-driven collectives, recorded into the perfdb.

Runs the collectives grid (:mod:`repro.eval.collectives`) — each cell a
barrier/broadcast/reduce/allreduce executed once as NIC handler programs
and once processor-driven — and appends one record per run to
``results/perfdb``: per-cell processor-cycle counts and overlap land
under distinct metric names (``coll_allreduce64_a2_overlap`` …) so
``python -m repro.obs.report`` can trend them across commits, while the
``nic_collectives_seconds`` / ``proc_collectives_seconds`` wall-clock
metrics are what the CI regression gate judges (only ``*_seconds``
metrics face the gate).

Run standalone::

    python benchmarks/bench_collectives.py [--smoke] [--paper-scale]
        [--kinds K ...] [--op OP] [--perfdb DIR]

``--smoke`` is CI's quick pass — the 16-node binary-tree grid under a
separate ``collectives-smoke`` bench name so its timings never pollute
the full-run trend history.
"""

import argparse
import time
from pathlib import Path

from repro.collectives import COLLECTIVES, OPS
from repro.eval.collectives import (
    collectives_metrics,
    collectives_params,
    compute_collectives,
    render_collectives,
)
from repro.exp.spec import EvalOptions
from repro.obs import perfdb

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "collectives"


def _timed_grid(params):
    """Run the grid, splitting wall-clock between the two variants.

    The eval runs both variants inside each cell, so the split is taken
    from the cells' makespans: the variant timings the gate trends are
    the whole grid's wall-clock apportioned by simulated effort, which
    keeps one gated number per variant without running the grid twice.
    """
    start = time.perf_counter()
    payload = compute_collectives(params)
    elapsed = time.perf_counter() - start
    nic_span = sum(cell["nic_makespan"] for cell in payload["cells"])
    proc_span = sum(cell["proc_makespan"] for cell in payload["cells"])
    total_span = nic_span + proc_span or 1
    return payload, elapsed, (
        elapsed * nic_span / total_span,
        elapsed * proc_span / total_span,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI quick pass: the 16-node binary-tree grid, recorded under "
            "a separate '-smoke' bench name"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="the full grid: 16/64/256 nodes, binary and flat trees",
    )
    parser.add_argument(
        "--kinds",
        nargs="*",
        choices=COLLECTIVES,
        default=None,
        help="restrict the grid to these collectives",
    )
    parser.add_argument(
        "--op",
        choices=sorted(OPS),
        default=None,
        help="override the combine operation (default: sum)",
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)

    params = collectives_params(EvalOptions(paper_scale=args.paper_scale))
    if args.kinds:
        params["kinds"] = list(args.kinds)
    if args.op:
        params["op"] = args.op

    payload, elapsed, (nic_seconds, proc_seconds) = _timed_grid(params)
    print(render_collectives(params, payload))
    print()

    metrics = collectives_metrics(payload)
    metrics["nic_collectives_seconds"] = round(nic_seconds, 4)
    metrics["proc_collectives_seconds"] = round(proc_seconds, 4)
    record = perfdb.make_record(
        bench=f"{BENCH_NAME}-smoke" if args.smoke else BENCH_NAME,
        metrics=metrics,
        meta={
            "op": params["op"],
            "kinds": list(params["kinds"]),
            "node_counts": list(params["node_counts"]),
            "arities": [str(a) for a in params["arities"]],
        },
    )
    path = perfdb.append_record(args.perfdb, record)
    print(f"ran {len(payload['cells'])} cells in {elapsed:.2f}s")
    print(f"appended perfdb record to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
