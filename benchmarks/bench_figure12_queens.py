"""Figure 12 bars for the Send-dominated N-Queens workload (extension).

The paper reports two programs and says the rest "give similar results";
Queens probes the opposite corner of the mix space — pure procedure-call
traffic, no presence-bit operations — and shows which Figure 12 claims
are mix-dependent (see EXPERIMENTS.md).
"""

from repro.eval import headline_metrics, render_figure, run_program
from repro.tam.costmap import breakdown_all_models


def test_queens_execution(benchmark):
    stats = benchmark(run_program, "queens", 6, 16)
    assert stats.messages.sends > 0
    assert stats.messages.preads == 0


def test_queens_figure12(benchmark):
    stats = run_program("queens", 6, 16)
    breakdowns = benchmark(breakdown_all_models, stats)
    print()
    print(render_figure("queens 6", stats))
    metrics = headline_metrics(breakdowns)
    # The optimization savings on the Send path itself stay large even
    # when their share of total execution is small.
    assert metrics.overhead_reduction >= 2.5
    by_key = {b.model_key: b for b in breakdowns}
    for placement in ("register", "onchip", "offchip"):
        assert (
            by_key[f"optimized-{placement}"].overhead
            < by_key[f"basic-{placement}"].overhead
        )
