"""Per-optimization ablation (extension study; see DESIGN.md)."""

from repro.eval import render_ablation, run_ablation


def test_ablation(benchmark, matmul_stats):
    rows = benchmark(run_ablation, matmul_stats)
    print()
    print(render_ablation("matmul", rows))
    by = {(r.placement, r.variant): r.result for r in rows}
    for placement in ("register", "onchip", "offchip"):
        basic = by[(placement, "basic")].overhead
        optimized = by[(placement, "optimized")].overhead
        dispatch_gain = basic - by[(placement, "+dispatch")].overhead
        assert optimized < basic
        # Hardware dispatch is the largest single contributor.
        for feature in ("+types", "+reply/forward"):
            assert dispatch_gain >= basic - by[(placement, feature)].overhead
