"""Regenerate Table 1 (paper Section 4.1).

``pytest benchmarks/bench_table1.py --benchmark-only -s`` measures the
cost of running all 100+ handler kernels across the six models and prints
the measured-versus-paper table.
"""

from repro.eval import collect_rows, render_report
from repro.kernels import expected as X


def test_table1_regeneration(benchmark):
    rows = benchmark(collect_rows)
    print()
    print(render_report(rows))
    # The bench must never silently regress below the paper's fidelity.
    for row in rows:
        if row.exact_expected:
            assert row.matches(), (row.section, row.case)


def test_table1_exact_row_count(benchmark):
    def exact_count():
        return sum(1 for row in collect_rows() if row.matches())

    count = benchmark(exact_count)
    print(f"\nrows matching the paper cycle-for-cycle: {count}/18")
    assert count >= len(X.EXACT_ROWS)


def test_roundtrip_costs(benchmark):
    """End-to-end operation costs derived from Table 1 (see EXPERIMENTS.md)."""
    from repro.eval import collect_roundtrips as collect, render_roundtrips

    rows = benchmark(collect)
    print()
    print(render_roundtrips(rows))
    read = next(r for r in rows if r.operation == "read")
    # The paper's 'five fold' claim lands on the remote-read round trip.
    assert 4.5 <= read.reduction <= 5.5


def test_service_loop_throughput(benchmark):
    """Steady-state throughput from the composed loop (see EXPERIMENTS.md)."""
    from repro.eval import collect_throughput as collect, render_throughput

    rows = benchmark(collect)
    print()
    print(render_throughput(rows))
    by = {r.model_key: r.cycles_per_message for r in rows}
    assert by["optimized-register"] < by["basic-offchip"]
