"""The hot-spot backpressure demo plus the observability overhead check.

Two questions, one harness:

* **Does the flow-control chain behave?**  Runs the Section 2.1.1
  hot-spot workload (:mod:`repro.eval.flowcontrol`) traced and prints
  the first-occurrence timeline — input queue almost-full, refused
  deliveries, sender output queues filling, SEND stalls — straight from
  the trace the run produced.

* **What does tracing cost?**  Times the same workload with the
  observability layer detached, attached (tracer + metrics), with the
  lineage tracker attached, and the TAM matmul program with and without
  a tracer.  The untraced numbers are the ones that must not regress:
  tracing and lineage are opt-in and the hot paths pay only ``is None``
  checks (fabric) or nothing at all (TAM, whose handlers are swapped
  per-instance only when an observer is given).  The lineage run also
  feeds its per-phase latency shares into the perfdb as trend context
  (``lineage_share_<phase>``).

Every run appends one record to the perf database
(``results/perfdb/``, :mod:`repro.obs.perfdb`) so
``python -m repro.obs.report`` can trend the numbers across commits and
gate regressions; ``BENCH_flowcontrol.json`` remains as the
latest-run-only legacy view (it is overwritten by design — history lives
in the perfdb now).

Run standalone::

    python benchmarks/bench_flowcontrol.py [--smoke] [--perfdb DIR]

or through pytest-benchmark::

    pytest benchmarks/bench_flowcontrol.py --benchmark-only
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.eval.flowcontrol import hotspot_params, render_flowcontrol, run_hotspot
from repro.exp.spec import EvalOptions
from repro.obs import perfdb
from repro.obs.breakdown import phase_breakdown
from repro.obs.lineage import LineageTracker
from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler, render_profile
from repro.obs.tracer import Tracer
from repro.programs.matmul import run_matmul

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_flowcontrol.json"
BENCH_NAME = "flowcontrol"

MATMUL_N = 24
NODES = 16

PRE_KERNEL_HOTSPOT_SECONDS = 0.2928
"""Untraced hot-spot time (best of 3) measured on the legacy hand-rolled
drive loop, immediately before the workload moved onto the shared
``repro.sim`` kernel.  Kept as the fixed "before" side of the kernel
entry in ``BENCH_flowcontrol.json``: the kernel's timed-wake idle-skip
(senders sleep between offer slots instead of being polled every cycle)
must hold the current run at or below this number."""


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(repeats: int = 3) -> dict:
    """Time the hot-spot fabric and the TAM matmul, traced and not."""
    params = hotspot_params(EvalOptions())
    plain = _best_of(lambda: run_hotspot(params), repeats)
    traced = _best_of(
        lambda: run_hotspot(params, tracer=Tracer(), metrics=MetricsRecorder()),
        repeats,
    )
    profiler = SimProfiler()
    profiled = _best_of(lambda: run_hotspot(params, profiler=profiler), 1)
    lineage = LineageTracker(origin="bench-flowcontrol")

    def run_lineage():
        lineage.clear()
        return run_hotspot(params, lineage=lineage)

    lineaged = _best_of(run_lineage, repeats)
    shares = {
        phase: round(entry["share"], 4)
        for phase, entry in phase_breakdown(lineage)["phases"].items()
    }
    tam_plain = _best_of(
        lambda: run_matmul(n=MATMUL_N, nodes=NODES, verify=False), repeats
    )
    tam_traced = _best_of(
        lambda: run_matmul(n=MATMUL_N, nodes=NODES, verify=False, tracer=Tracer()),
        repeats,
    )
    return {
        "schema_version": perfdb.SCHEMA_VERSION,
        "repeats": repeats,
        "hotspot": {
            "untraced_seconds": round(plain, 4),
            "traced_seconds": round(traced, 4),
            "profiled_seconds": round(profiled, 4),
            "lineage_seconds": round(lineaged, 4),
            "overhead": round(traced / plain - 1.0, 4),
            "lineage_overhead": round(lineaged / plain - 1.0, 4),
            "lineage_phase_shares": shares,
        },
        "kernel": {
            "pre_kernel_seconds": PRE_KERNEL_HOTSPOT_SECONDS,
            "post_kernel_seconds": round(plain, 4),
            "speedup": round(PRE_KERNEL_HOTSPOT_SECONDS / plain, 4),
        },
        "matmul": {
            "n": MATMUL_N,
            "nodes": NODES,
            "untraced_seconds": round(tam_plain, 4),
            "traced_seconds": round(tam_traced, 4),
            "overhead": round(tam_traced / tam_plain - 1.0, 4),
        },
        "profile": profiler.to_dict(),
    }


def perf_record(report: dict, smoke: bool) -> dict:
    """Flatten one ``measure()`` report into a perfdb record.

    Smoke runs (CI's quick pass) get their own bench name so their
    single-repeat timings never pollute the full-run trend history.
    Only the ``*_seconds`` metrics face the regression gate; the profile
    rides along as meta so the report can print cycle attribution.
    """
    metrics = {
        "hotspot_untraced_seconds": report["hotspot"]["untraced_seconds"],
        "hotspot_traced_seconds": report["hotspot"]["traced_seconds"],
        "hotspot_profiled_seconds": report["hotspot"]["profiled_seconds"],
        "hotspot_lineage_seconds": report["hotspot"]["lineage_seconds"],
        "matmul_untraced_seconds": report["matmul"]["untraced_seconds"],
        "matmul_traced_seconds": report["matmul"]["traced_seconds"],
        "trace_overhead": report["hotspot"]["overhead"],
        "lineage_overhead": report["hotspot"]["lineage_overhead"],
    }
    for phase, share in report["hotspot"]["lineage_phase_shares"].items():
        metrics[f"lineage_share_{phase}"] = share
    return perfdb.make_record(
        bench=f"{BENCH_NAME}-smoke" if smoke else BENCH_NAME,
        metrics=metrics,
        meta={
            "repeats": report["repeats"],
            "matmul_n": MATMUL_N,
            "nodes": NODES,
            "profile": report["profile"],
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single repeat, recorded under a separate '-smoke' bench name",
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else 3

    params = hotspot_params(EvalOptions())
    tracer = Tracer()
    metrics = MetricsRecorder()
    payload = run_hotspot(params, tracer=tracer, metrics=metrics)
    print(render_flowcontrol(params, payload))
    print()
    report = measure(repeats)
    print(render_profile(report["profile"]))
    print()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {RESULT_PATH} (latest run only)")
    db_path = perfdb.append_record(args.perfdb, perf_record(report, args.smoke))
    print(f"appended perfdb record to {db_path}")
    for name, row in (("hotspot", report["hotspot"]), ("matmul", report["matmul"])):
        print(
            f"{name:<8} untraced {row['untraced_seconds']:.3f}s  "
            f"traced {row['traced_seconds']:.3f}s  "
            f"overhead {row['overhead'] * 100:+.1f}%"
        )
    hotspot = report["hotspot"]
    print(
        f"lineage  untraced {hotspot['untraced_seconds']:.3f}s  "
        f"lineage {hotspot['lineage_seconds']:.3f}s  "
        f"overhead {hotspot['lineage_overhead'] * 100:+.1f}%"
    )
    kernel = report["kernel"]
    print(
        f"kernel   pre {kernel['pre_kernel_seconds']:.3f}s  "
        f"post {kernel['post_kernel_seconds']:.3f}s  "
        f"speedup {kernel['speedup']:.2f}x"
    )
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points.
# ---------------------------------------------------------------------------


def test_hotspot_untraced(benchmark):
    params = hotspot_params(EvalOptions())
    payload = benchmark(run_hotspot, params)
    assert payload["serviced"] == payload["offered"]


def test_hotspot_traced(benchmark):
    params = hotspot_params(EvalOptions())

    def run():
        return run_hotspot(params, tracer=Tracer(), metrics=MetricsRecorder())

    payload = benchmark(run)
    assert payload["trace"]["emitted"] > 0


if __name__ == "__main__":
    sys.exit(main())
