"""The hot-spot backpressure demo plus the observability overhead check.

Two questions, one harness:

* **Does the flow-control chain behave?**  Runs the Section 2.1.1
  hot-spot workload (:mod:`repro.eval.flowcontrol`) traced and prints
  the first-occurrence timeline — input queue almost-full, refused
  deliveries, sender output queues filling, SEND stalls — straight from
  the trace the run produced.

* **What does tracing cost?**  Times the same workload with the
  observability layer detached, attached (tracer + metrics), and the TAM
  matmul program with and without a tracer.  The untraced numbers are
  the ones that must not regress: tracing is opt-in and the hot paths
  pay only ``is None`` checks (fabric) or nothing at all (TAM, whose
  handlers are swapped per-instance only when a tracer is given).

Run standalone::

    python benchmarks/bench_flowcontrol.py

or through pytest-benchmark::

    pytest benchmarks/bench_flowcontrol.py --benchmark-only
"""

import json
import sys
import time
from pathlib import Path

from repro.eval.flowcontrol import hotspot_params, render_flowcontrol, run_hotspot
from repro.exp.spec import EvalOptions
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import Tracer
from repro.programs.matmul import run_matmul

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_flowcontrol.json"

MATMUL_N = 24
NODES = 16

PRE_KERNEL_HOTSPOT_SECONDS = 0.2928
"""Untraced hot-spot time (best of 3) measured on the legacy hand-rolled
drive loop, immediately before the workload moved onto the shared
``repro.sim`` kernel.  Kept as the fixed "before" side of the kernel
entry in ``BENCH_flowcontrol.json``: the kernel's timed-wake idle-skip
(senders sleep between offer slots instead of being polled every cycle)
must hold the current run at or below this number."""


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(repeats: int = 3) -> dict:
    """Time the hot-spot fabric and the TAM matmul, traced and not."""
    params = hotspot_params(EvalOptions())
    plain = _best_of(lambda: run_hotspot(params), repeats)
    traced = _best_of(
        lambda: run_hotspot(params, tracer=Tracer(), metrics=MetricsRecorder()),
        repeats,
    )
    tam_plain = _best_of(
        lambda: run_matmul(n=MATMUL_N, nodes=NODES, verify=False), repeats
    )
    tam_traced = _best_of(
        lambda: run_matmul(n=MATMUL_N, nodes=NODES, verify=False, tracer=Tracer()),
        repeats,
    )
    return {
        "repeats": repeats,
        "hotspot": {
            "untraced_seconds": round(plain, 4),
            "traced_seconds": round(traced, 4),
            "overhead": round(traced / plain - 1.0, 4),
        },
        "kernel": {
            "pre_kernel_seconds": PRE_KERNEL_HOTSPOT_SECONDS,
            "post_kernel_seconds": round(plain, 4),
            "speedup": round(PRE_KERNEL_HOTSPOT_SECONDS / plain, 4),
        },
        "matmul": {
            "n": MATMUL_N,
            "nodes": NODES,
            "untraced_seconds": round(tam_plain, 4),
            "traced_seconds": round(tam_traced, 4),
            "overhead": round(tam_traced / tam_plain - 1.0, 4),
        },
    }


def main() -> int:
    params = hotspot_params(EvalOptions())
    tracer = Tracer()
    metrics = MetricsRecorder()
    payload = run_hotspot(params, tracer=tracer, metrics=metrics)
    print(render_flowcontrol(params, payload))
    print()
    report = measure()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    for name, row in (("hotspot", report["hotspot"]), ("matmul", report["matmul"])):
        print(
            f"{name:<8} untraced {row['untraced_seconds']:.3f}s  "
            f"traced {row['traced_seconds']:.3f}s  "
            f"overhead {row['overhead'] * 100:+.1f}%"
        )
    kernel = report["kernel"]
    print(
        f"kernel   pre {kernel['pre_kernel_seconds']:.3f}s  "
        f"post {kernel['post_kernel_seconds']:.3f}s  "
        f"speedup {kernel['speedup']:.2f}x"
    )
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points.
# ---------------------------------------------------------------------------


def test_hotspot_untraced(benchmark):
    params = hotspot_params(EvalOptions())
    payload = benchmark(run_hotspot, params)
    assert payload["serviced"] == payload["offered"]


def test_hotspot_traced(benchmark):
    params = hotspot_params(EvalOptions())

    def run():
        return run_hotspot(params, tracer=Tracer(), metrics=MetricsRecorder())

    payload = benchmark(run)
    assert payload["trace"]["emitted"] > 0


if __name__ == "__main__":
    sys.exit(main())
