"""Regenerate Figure 12, Gamteb bars (paper Section 4.2.3)."""

from repro.eval import headline_metrics, render_figure, run_program
from repro.tam.costmap import breakdown_all_models

from conftest import GAMTEB_PHOTONS, NODES


def test_gamteb_execution(benchmark):
    stats = benchmark(run_program, "gamteb", GAMTEB_PHOTONS, NODES)
    assert stats.messages.preads > 0


def test_gamteb_figure12(benchmark, gamteb_stats):
    breakdowns = benchmark(breakdown_all_models, gamteb_stats)
    print()
    print(render_figure(f"gamteb {GAMTEB_PHOTONS}", gamteb_stats))
    metrics = headline_metrics(breakdowns)
    assert metrics.overhead_reduction >= 2.5
    assert 25.0 <= metrics.total_reduction_percent <= 65.0


def test_gamteb_paper_scale(benchmark):
    """The paper's exact configuration: 16 source photons."""
    stats = benchmark(run_program, "gamteb", 16, NODES)
    print()
    print(render_figure("gamteb 16 (paper scale)", stats))
