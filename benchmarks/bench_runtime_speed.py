"""Interpreter throughput: the fast path against the reference path.

The other benchmarks time what the paper measures (pricing, figures);
this one times the measurement *instrument* itself — the TAM interpreter
that executes every evaluation program.  It runs the three programs on
both interpreter paths, reports wall-clock and turns/sec (a turn is one
thread run or one message processed), and writes ``BENCH_runtime.json``
at the repository root so regressions are visible in review diffs.

Every run appends one record to the perf database
(``results/perfdb/``, :mod:`repro.obs.perfdb`) so
``python -m repro.obs.report`` can trend interpreter throughput across
commits and gate regressions; ``BENCH_runtime.json`` remains as the
latest-run-only legacy view (overwritten by design — history lives in
the perfdb now).

Run standalone::

    python benchmarks/bench_runtime_speed.py [--smoke] [--perfdb DIR]

or through pytest-benchmark (fast path only, statistical timing)::

    pytest benchmarks/bench_runtime_speed.py --benchmark-only
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.obs import perfdb
from repro.obs.profiler import SimProfiler, render_profile
from repro.programs.gamteb import run_gamteb
from repro.programs.matmul import run_matmul
from repro.programs.queens import run_queens

from conftest import GAMTEB_PHOTONS, MATMUL_N, NODES

QUEENS_N = 6

#: Reduced sizes for the CI smoke pass (seconds, not minutes).
SMOKE_MATMUL_N = 16
SMOKE_GAMTEB_PHOTONS = 16
SMOKE_QUEENS_N = 5


def workloads(smoke: bool) -> dict:
    matmul_n = SMOKE_MATMUL_N if smoke else MATMUL_N
    photons = SMOKE_GAMTEB_PHOTONS if smoke else GAMTEB_PHOTONS
    queens_n = SMOKE_QUEENS_N if smoke else QUEENS_N
    return {
        "matmul": lambda fast: run_matmul(n=matmul_n, nodes=NODES, fast=fast),
        "gamteb": lambda fast: run_gamteb(
            n_photons=photons, nodes=NODES, fast=fast
        ),
        "queens": lambda fast: run_queens(n=queens_n, nodes=NODES, fast=fast),
    }


WORKLOADS = workloads(smoke=False)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_runtime.json"
BENCH_NAME = "runtime"


def _time_run(runner, fast: bool, repeats: int):
    """Best-of-``repeats`` wall clock plus the turn count of one run."""
    best = float("inf")
    turns = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner(fast)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        turns = result.machine.turns_executed
    return best, turns


def measure(repeats: int = 3, smoke: bool = False) -> dict:
    """Measure every workload on both paths; returns the report dict."""
    report = {
        "schema_version": perfdb.SCHEMA_VERSION,
        "nodes": NODES,
        "repeats": repeats,
        "smoke": smoke,
        "workloads": {},
    }
    for name, runner in workloads(smoke).items():
        fast_s, fast_turns = _time_run(runner, True, repeats)
        ref_s, ref_turns = _time_run(runner, False, max(1, repeats - 2))
        assert fast_turns == ref_turns, (
            f"{name}: fast path ran {fast_turns} turns, reference "
            f"{ref_turns} — the paths diverged"
        )
        report["workloads"][name] = {
            "turns": fast_turns,
            "fast_seconds": round(fast_s, 4),
            "reference_seconds": round(ref_s, 4),
            "fast_turns_per_sec": round(fast_turns / fast_s),
            "reference_turns_per_sec": round(ref_turns / ref_s),
            "speedup": round(ref_s / fast_s, 2),
        }
    # One profiled matmul run: per-node turn attribution plus the
    # instruction/message mix, carried into the perfdb record's meta so
    # the report prints where the interpreter's cycles went.
    profiler = SimProfiler()
    run_matmul(
        n=SMOKE_MATMUL_N if smoke else MATMUL_N,
        nodes=NODES,
        verify=False,
        profiler=profiler,
    )
    report["profile"] = profiler.to_dict()
    return report


def perf_record(report: dict, smoke: bool) -> dict:
    """Flatten one ``measure()`` report into a perfdb record.

    Smoke runs get a separate bench name so single-repeat reduced-size
    timings never pollute the full-run trend history.
    """
    metrics = {}
    for name, row in report["workloads"].items():
        metrics[f"{name}_fast_seconds"] = row["fast_seconds"]
        metrics[f"{name}_reference_seconds"] = row["reference_seconds"]
        metrics[f"{name}_turns"] = row["turns"]
    sections = report.get("sections_wall_clock")
    if sections:
        metrics["sections_serial_seconds"] = sections["serial_seconds"]
        metrics["sections_jobs_seconds"] = sections["jobs_seconds"]
    return perfdb.make_record(
        bench=f"{BENCH_NAME}-smoke" if smoke else BENCH_NAME,
        metrics=metrics,
        meta={
            "nodes": report["nodes"],
            "repeats": report["repeats"],
            "smoke": smoke,
            "profile": report["profile"],
        },
    )


SECTIONS_JOBS = 4


def _time_sections(*extra_args: str) -> float:
    """One cold ``python -m repro`` run; returns wall-clock seconds.

    Each run gets its own scratch artifact directory so the serial and
    parallel runs are comparable (both start with an empty run cache).
    """
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_RUNCACHE_DIR", None)
    with tempfile.TemporaryDirectory(prefix="bench-sections-") as scratch:
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "--json-dir", scratch, *extra_args],
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=root,
        )
        return time.perf_counter() - start


def measure_sections() -> dict:
    """Serial versus ``--jobs`` wall clock for the full section grid.

    On a single-core box (CI containers included) the parallel fan-out
    cannot win — the record carries ``cpu_count`` so the ratio is
    interpretable wherever it was produced.
    """
    serial = _time_sections()
    parallel = _time_sections("--jobs", str(SECTIONS_JOBS))
    return {
        "jobs": SECTIONS_JOBS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial, 4),
        "jobs_seconds": round(parallel, 4),
        "speedup": round(serial / parallel, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "single repeat at reduced sizes, skip the sections wall-clock "
            "comparison, record under a separate '-smoke' bench name"
        ),
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)

    report = measure(repeats=1 if args.smoke else 3, smoke=args.smoke)
    if not args.smoke:
        report["sections_wall_clock"] = measure_sections()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {RESULT_PATH} (latest run only)")
    db_path = perfdb.append_record(args.perfdb, perf_record(report, args.smoke))
    print(f"appended perfdb record to {db_path}")
    header = f"{'program':<10} {'turns':>8} {'fast':>9} {'reference':>10} {'speedup':>8} {'turns/s':>10}"
    print(header)
    for name, row in report["workloads"].items():
        print(
            f"{name:<10} {row['turns']:>8,} {row['fast_seconds']:>8.3f}s "
            f"{row['reference_seconds']:>9.3f}s {row['speedup']:>7.2f}x "
            f"{row['fast_turns_per_sec']:>10,}"
        )
    sections = report.get("sections_wall_clock")
    if sections:
        print(
            f"sections   serial {sections['serial_seconds']:.3f}s  "
            f"--jobs {sections['jobs']} {sections['jobs_seconds']:.3f}s  "
            f"{sections['speedup']:.2f}x  ({sections['cpu_count']} cpus)"
        )
    print()
    print(render_profile(report["profile"]))
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (fast path only; the reference path is
# covered by the standalone runner above).
# ---------------------------------------------------------------------------


def test_matmul_fast_path(benchmark):
    result = benchmark(run_matmul, MATMUL_N, NODES)
    assert result.machine.turns_executed > 0


def test_gamteb_fast_path(benchmark):
    result = benchmark(run_gamteb, GAMTEB_PHOTONS, NODES)
    assert result.machine.turns_executed > 0


def test_queens_fast_path(benchmark):
    result = benchmark(run_queens, QUEENS_N, NODES)
    assert result.machine.turns_executed > 0


if __name__ == "__main__":
    sys.exit(main())
