"""Interpreter throughput: all three TAM backends against each other.

The other benchmarks time what the paper measures (pricing, figures);
this one times the measurement *instrument* itself — the TAM interpreter
that executes every evaluation program.  It runs the three programs on
the reference, fastpath, and codegen backends, reports wall-clock and
turns/sec (a turn is one thread run or one message processed), and
writes ``BENCH_runtime.json`` at the repository root so regressions are
visible in review diffs.

Every run appends one record to the perf database
(``results/perfdb/``, :mod:`repro.obs.perfdb`) so
``python -m repro.obs.report`` can trend interpreter throughput across
commits and gate regressions; ``BENCH_runtime.json`` remains as the
latest-run-only legacy view (overwritten by design — history lives in
the perfdb now).

Run standalone::

    python benchmarks/bench_runtime_speed.py [--smoke | --paper] [--perfdb DIR]

``--smoke`` is the CI pass (reduced sizes, one repeat); ``--paper``
times the paper's program scales (matmul 100x100, Gamteb 16 photons)
under a separate bench name so neither pollutes the default trend.

or through pytest-benchmark (statistical timing)::

    pytest benchmarks/bench_runtime_speed.py --benchmark-only
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.exp.runner import effective_jobs
from repro.obs import perfdb
from repro.obs.profiler import SimProfiler, render_profile
from repro.programs.gamteb import run_gamteb
from repro.programs.matmul import run_matmul
from repro.programs.queens import run_queens

from conftest import GAMTEB_PHOTONS, MATMUL_N, NODES

QUEENS_N = 6

#: Reduced sizes for the CI smoke pass (seconds, not minutes).
SMOKE_MATMUL_N = 16
SMOKE_GAMTEB_PHOTONS = 16
SMOKE_QUEENS_N = 5

#: The paper's program scales (Section 4.2): 100x100 matmul, 16-photon
#: Gamteb.  Queens is the repo's contrast workload and keeps its size.
PAPER_MATMUL_N = 100
PAPER_GAMTEB_PHOTONS = 16
PAPER_QUEENS_N = 6

#: The backends measured, slowest first.
BACKENDS = ("reference", "fastpath", "codegen")


def workloads(smoke: bool = False, paper: bool = False) -> dict:
    if paper:
        matmul_n, photons, queens_n = (
            PAPER_MATMUL_N,
            PAPER_GAMTEB_PHOTONS,
            PAPER_QUEENS_N,
        )
    elif smoke:
        matmul_n, photons, queens_n = (
            SMOKE_MATMUL_N,
            SMOKE_GAMTEB_PHOTONS,
            SMOKE_QUEENS_N,
        )
    else:
        matmul_n, photons, queens_n = MATMUL_N, GAMTEB_PHOTONS, QUEENS_N
    return {
        "matmul": lambda backend: run_matmul(
            n=matmul_n, nodes=NODES, backend=backend
        ),
        "gamteb": lambda backend: run_gamteb(
            n_photons=photons, nodes=NODES, backend=backend
        ),
        "queens": lambda backend: run_queens(
            n=queens_n, nodes=NODES, backend=backend
        ),
    }


WORKLOADS = workloads()

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_runtime.json"
BENCH_NAME = "runtime"


def _time_run(runner, backend: str, repeats: int):
    """Best-of-``repeats`` wall clock plus the turn count of one run."""
    best = float("inf")
    turns = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner(backend)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        turns = result.machine.turns_executed
    return best, turns


def measure(repeats: int = 3, smoke: bool = False, paper: bool = False) -> dict:
    """Measure every workload on all three backends; returns the report."""
    report = {
        "schema_version": perfdb.SCHEMA_VERSION,
        "nodes": NODES,
        "repeats": repeats,
        "smoke": smoke,
        "paper": paper,
        "workloads": {},
    }
    for name, runner in workloads(smoke=smoke, paper=paper).items():
        codegen_s, codegen_turns = _time_run(runner, "codegen", repeats)
        fast_s, fast_turns = _time_run(runner, "fastpath", repeats)
        # The reference path dominates wall clock; one repeat suffices
        # for the denominator once the numerators are best-of.
        ref_s, ref_turns = _time_run(runner, "reference", max(1, repeats - 2))
        assert fast_turns == ref_turns == codegen_turns, (
            f"{name}: backends diverged — reference {ref_turns} turns, "
            f"fastpath {fast_turns}, codegen {codegen_turns}"
        )
        report["workloads"][name] = {
            "turns": fast_turns,
            "codegen_seconds": round(codegen_s, 4),
            "fast_seconds": round(fast_s, 4),
            "reference_seconds": round(ref_s, 4),
            "codegen_turns_per_sec": round(codegen_turns / codegen_s),
            "fast_turns_per_sec": round(fast_turns / fast_s),
            "reference_turns_per_sec": round(ref_turns / ref_s),
            "speedup": round(ref_s / fast_s, 2),
            "codegen_speedup": round(ref_s / codegen_s, 2),
        }
    # One profiled matmul run on the codegen backend: per-node turn
    # attribution plus the instruction/message mix, carried into the
    # perfdb record's meta so the report prints where the interpreter's
    # cycles went.  Profiling the *fastest* backend doubles as the check
    # that observation still attributes on the generated path.
    profiler = SimProfiler()
    sizes = {"paper": PAPER_MATMUL_N, "smoke": SMOKE_MATMUL_N}
    run_matmul(
        n=sizes["paper"] if paper else (sizes["smoke"] if smoke else MATMUL_N),
        nodes=NODES,
        verify=False,
        profiler=profiler,
        backend="codegen",
    )
    report["profile"] = profiler.to_dict()
    return report


def perf_record(report: dict, bench: str) -> dict:
    """Flatten one ``measure()`` report into a perfdb record.

    Smoke and paper runs get separate bench names so reduced-size or
    paper-scale timings never pollute the default trend history.  The
    ``*_codegen_seconds`` metrics arm the CI regression gate on the
    generated-code backend the moment the first record lands.
    """
    metrics = {}
    for name, row in report["workloads"].items():
        metrics[f"{name}_codegen_seconds"] = row["codegen_seconds"]
        metrics[f"{name}_fast_seconds"] = row["fast_seconds"]
        metrics[f"{name}_reference_seconds"] = row["reference_seconds"]
        metrics[f"{name}_turns"] = row["turns"]
    sections = report.get("sections_wall_clock")
    if sections:
        metrics["sections_serial_seconds"] = sections["serial_seconds"]
        metrics["sections_jobs_seconds"] = sections["jobs_seconds"]
    return perfdb.make_record(
        bench=bench,
        metrics=metrics,
        meta={
            "nodes": report["nodes"],
            "repeats": report["repeats"],
            "smoke": report["smoke"],
            "paper": report["paper"],
            "profile": report["profile"],
        },
    )


SECTIONS_JOBS = 4


def _time_sections(*extra_args: str) -> float:
    """One cold ``python -m repro`` run; returns wall-clock seconds.

    Each run gets its own scratch artifact directory so the serial and
    parallel runs are comparable (both start with an empty run cache).
    """
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_RUNCACHE_DIR", None)
    with tempfile.TemporaryDirectory(prefix="bench-sections-") as scratch:
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "--json-dir", scratch, *extra_args],
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=root,
        )
        return time.perf_counter() - start


def measure_sections() -> dict:
    """Serial versus ``--jobs`` wall clock for the full section grid.

    The runner caps workers at ``os.cpu_count()``, so the comparison
    times the fan-out actually run, not the one requested — on a
    single-core box (CI containers included) both columns are serial
    and the ratio reads 1.0 instead of reporting pool overhead as a
    parallel "result".
    """
    jobs = effective_jobs(SECTIONS_JOBS)
    serial = _time_sections()
    parallel = _time_sections("--jobs", str(jobs))
    return {
        "jobs_requested": SECTIONS_JOBS,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial, 4),
        "jobs_seconds": round(parallel, 4),
        "speedup": round(serial / parallel, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "single repeat at reduced sizes, skip the sections wall-clock "
            "comparison, record under a separate '-smoke' bench name"
        ),
    )
    scale.add_argument(
        "--paper",
        action="store_true",
        help=(
            "the paper's program scales (matmul 100x100, Gamteb 16 "
            "photons), skip the sections wall-clock comparison, record "
            "under a separate '-paper' bench name"
        ),
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        default=REPO_ROOT / perfdb.DEFAULT_DB_DIR,
        help="perf database directory (default: results/perfdb)",
    )
    args = parser.parse_args(argv)

    report = measure(
        repeats=1 if args.smoke else 3, smoke=args.smoke, paper=args.paper
    )
    if not (args.smoke or args.paper):
        report["sections_wall_clock"] = measure_sections()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {RESULT_PATH} (latest run only)")
    if args.smoke:
        bench = f"{BENCH_NAME}-smoke"
    elif args.paper:
        bench = f"{BENCH_NAME}-paper"
    else:
        bench = BENCH_NAME
    db_path = perfdb.append_record(args.perfdb, perf_record(report, bench))
    print(f"appended perfdb record to {db_path}")
    header = (
        f"{'program':<10} {'turns':>8} {'codegen':>9} {'fast':>9} "
        f"{'reference':>10} {'cg-speedup':>10} {'cg turns/s':>11}"
    )
    print(header)
    for name, row in report["workloads"].items():
        print(
            f"{name:<10} {row['turns']:>8,} {row['codegen_seconds']:>8.3f}s "
            f"{row['fast_seconds']:>8.3f}s {row['reference_seconds']:>9.3f}s "
            f"{row['codegen_speedup']:>9.2f}x "
            f"{row['codegen_turns_per_sec']:>11,}"
        )
    sections = report.get("sections_wall_clock")
    if sections:
        print(
            f"sections   serial {sections['serial_seconds']:.3f}s  "
            f"--jobs {sections['jobs']} (of {sections['jobs_requested']} "
            f"requested) {sections['jobs_seconds']:.3f}s  "
            f"{sections['speedup']:.2f}x  ({sections['cpu_count']} cpus)"
        )
    print()
    print(render_profile(report["profile"]))
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (fastpath and codegen; the reference
# path is covered by the standalone runner above).
# ---------------------------------------------------------------------------


def test_matmul_fast_path(benchmark):
    result = benchmark(run_matmul, MATMUL_N, NODES)
    assert result.machine.turns_executed > 0


def test_gamteb_fast_path(benchmark):
    result = benchmark(run_gamteb, GAMTEB_PHOTONS, NODES)
    assert result.machine.turns_executed > 0


def test_queens_fast_path(benchmark):
    result = benchmark(run_queens, QUEENS_N, NODES)
    assert result.machine.turns_executed > 0


def test_matmul_codegen(benchmark):
    result = benchmark(lambda: run_matmul(MATMUL_N, NODES, backend="codegen"))
    assert result.machine.turns_executed > 0


def test_queens_codegen(benchmark):
    result = benchmark(lambda: run_queens(QUEENS_N, NODES, backend="codegen"))
    assert result.machine.turns_executed > 0


if __name__ == "__main__":
    sys.exit(main())
