"""The Section 1 survey comparison (extension study)."""

from repro.eval import render_survey
from repro.survey.models import SURVEY


def test_survey(benchmark):
    text = benchmark(render_survey)
    print()
    print(text)
    assert "iPSC/2" in text and "this work" in text
    assert len(SURVEY) >= 7
