"""Regenerate the off-chip latency sensitivity study (Section 4.2.3 text)."""

from repro.eval import latency_sweep as sweep, relative_overheads, render_sweep


def test_latency_sweep(benchmark, matmul_stats):
    points = benchmark(sweep, matmul_stats, (2, 4, 6, 8, 12, 16))
    print()
    print(render_sweep("matmul", points))
    ratios = relative_overheads(points)
    # "the communication costs of the off-chip optimized model will double"
    assert 1.7 <= ratios[8] <= 2.3
    overheads = [p.overhead for p in points]
    assert overheads == sorted(overheads)
