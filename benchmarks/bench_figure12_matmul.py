"""Regenerate Figure 12, matrix-multiply bars (paper Section 4.2.3).

The benchmark times the TAM execution (the expensive part) and the
pricing; it prints the stacked bars and headline metrics.
"""

from repro.eval import headline_metrics, render_figure, run_program
from repro.tam.costmap import breakdown_all_models

from conftest import MATMUL_N, NODES


def test_matmul_execution(benchmark):
    stats = benchmark(run_program, "matmul", MATMUL_N, NODES)
    assert stats.messages.total_messages > 0


def test_matmul_figure12(benchmark, matmul_stats):
    breakdowns = benchmark(breakdown_all_models, matmul_stats)
    print()
    print(render_figure(f"matmul {MATMUL_N}x{MATMUL_N}", matmul_stats))
    metrics = headline_metrics(breakdowns)
    assert metrics.overhead_reduction >= 2.5
    assert metrics.optimized_always_beats_basic
    assert 25.0 <= metrics.total_reduction_percent <= 65.0


def test_matmul_figure12_paper_prices(benchmark, matmul_stats):
    breakdowns = benchmark(breakdown_all_models, matmul_stats, "paper")
    print()
    print(render_figure(f"matmul {MATMUL_N}x{MATMUL_N}", matmul_stats, source="paper"))
    metrics = headline_metrics(breakdowns)
    assert metrics.overhead_reduction >= 2.0


def test_matmul_paper_scale(benchmark):
    """The paper's exact configuration: 100x100, NumPy-verified.

    Opt in with PAPER_SCALE=1 (about 13 s per round otherwise skipped).
    """
    import os

    import pytest

    if not os.environ.get("PAPER_SCALE"):
        pytest.skip("set PAPER_SCALE=1 to run the 100x100 configuration")
    from repro.programs.matmul import run_matmul

    result = benchmark.pedantic(
        run_matmul, args=(100, NODES), kwargs={"verify": True}, rounds=1, iterations=1
    )
    print()
    print(render_figure("matmul 100x100 (paper scale)", result.stats))
