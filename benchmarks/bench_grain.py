"""Grain-size sensitivity study (extension; paper Section 4.2.2 scoping)."""

from repro.eval import crossover_grain, grain_sweep as sweep, render_grain


def test_grain_sweep(benchmark):
    results = benchmark(sweep, (1, 3, 10, 30, 100))
    print()
    print(render_grain(results))
    # Overhead share decreases monotonically with grain, for both models.
    basic = [r.overhead_fraction_basic_offchip for r in results]
    optimized = [r.overhead_fraction_optimized_register for r in results]
    assert basic == sorted(basic, reverse=True)
    assert optimized == sorted(optimized, reverse=True)
    # The optimized interface always keeps a smaller overhead share.
    assert all(o < b for o, b in zip(optimized, basic))
    # The speedup narrows toward 1 as messages amortise.
    speedups = [r.speedup_basic_to_optimized for r in results]
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[-1] < speedups[0]
    crossings = crossover_grain(results)
    assert crossings["optimized-register"] <= crossings["basic-offchip"]
