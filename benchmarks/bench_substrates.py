"""Simulator-throughput benchmarks for the substrates themselves.

Not a paper artifact — these track the reproduction's own performance so
that regressions in the interface model, the fabric, or the TAM
interpreter are visible.
"""

from repro.api.cluster import Cluster
from repro.network.topology import Mesh2D
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message, pack_destination
from repro.nic.rtl import ClockedNIC


def test_interface_send_next_throughput(benchmark):
    ni = NetworkInterface()

    def send_receive_block():
        for _ in range(100):
            ni.send(2)
            ni.deliver(ni.transmit())
            ni.next()

    benchmark(send_receive_block)


def test_rtl_clock_rate(benchmark):
    nic = ClockedNIC()
    nic.interface.deliver(Message(2, (pack_destination(0), 0, 0, 0, 0)))

    def clock_1000():
        nic.run_idle(1000)

    benchmark(clock_1000)


def test_fabric_delivery_rate(benchmark):
    cluster = Cluster(Mesh2D(4, 4))

    def cross_mesh_writes():
        for source in range(8):
            cluster.remote_write(source, 15 - source, 0x100, source)

    benchmark(cross_mesh_writes)


def test_tam_interpreter_rate(benchmark):
    from repro.programs.matmul import run_matmul

    result = benchmark(run_matmul, 8, 4, False)
    assert result.stats.total_instructions > 0
