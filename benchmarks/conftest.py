"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts
(Table 1, the two Figure 12 bars, the latency sweep) and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation
section in one run.

Program executions go through the shared run cache
(:mod:`repro.exp.runcache`): the session-scoped fixtures below and any
benchmark calling :func:`repro.eval.run_program` with the same
``(program, size, nodes)`` share one TAM execution per process.
"""

import pytest

from repro.eval import run_program

MATMUL_N = 40
GAMTEB_PHOTONS = 64
NODES = 16


@pytest.fixture(scope="session")
def matmul_stats():
    """One matmul execution shared by the pricing benchmarks."""
    return run_program("matmul", size=MATMUL_N, nodes=NODES)


@pytest.fixture(scope="session")
def gamteb_stats():
    """One gamteb execution shared by the pricing benchmarks."""
    return run_program("gamteb", size=GAMTEB_PHOTONS, nodes=NODES)
