#!/usr/bin/env python3
"""The paper's Section 4.2 study, end to end, at example scale.

Runs both evaluation programs (blocked matrix multiply and the Gamteb
photon transport) on the TAM substrate, verifies their results, and prints
the Figure 12 breakdown for the six interface models plus the headline
metrics.

Run:  python examples/fine_grain_programs.py
"""

from repro.eval import render_figure
from repro.programs.gamteb import run_gamteb
from repro.programs.matmul import run_matmul


def main() -> None:
    # --- matrix multiply ------------------------------------------------
    mm = run_matmul(n=24, nodes=16)  # verified against NumPy internally
    print(
        f"matmul 24x24 on 16 nodes: checksum {mm.total:,.1f} (verified), "
        f"{mm.stats.messages.total_messages:,} messages, "
        f"{mm.stats.flops_per_message():.1f} flops/message "
        "(paper: ~3)"
    )
    print(f"message mix: {mm.stats.messages.as_dict()}\n")
    print(render_figure("matmul 24x24", mm.stats))

    # --- Gamteb ----------------------------------------------------------
    gt = run_gamteb(n_photons=16, nodes=16)  # the paper's 16 particles
    print(
        f"\n\ngamteb 16 photons on 16 nodes: {gt.photons_traced} photons "
        f"traced ({gt.photons_traced - 16} from pair production), "
        f"{gt.absorbed} absorbed, {gt.escaped} escaped (conserved)"
    )
    print(f"message mix: {gt.stats.messages.as_dict()}\n")
    print(render_figure("gamteb 16", gt.stats))


if __name__ == "__main__":
    main()
