#!/usr/bin/env python3
"""The message service loop, composed and measured.

Table 1 prices dispatch and processing separately; a running node
executes them fused — each handler's tail inlines the dispatch stub, the
Section 2.2.3 overlap.  This example prints the composed loop for the
optimized register model (the whole message engine is a handful of
instructions), streams messages through it, and shows that the measured
cycles equal the Table 1 phases summed — then compares the steady-state
rates of all six models.

Run:  python examples/service_loop.py
"""

from repro.eval import render_throughput
from repro.impls.base import OPTIMIZED_REGISTER
from repro.kernels.harness import measure_dispatch, measure_processing
from repro.kernels.loop import build_service_loop, measure_stream


def main() -> None:
    loop = build_service_loop(OPTIMIZED_REGISTER)
    print("The complete message engine, optimized register model:\n")
    print(loop.sequence.listing())

    stream = ["read", "write", "send1", "read", "read", "write"]
    measurement = measure_stream(OPTIMIZED_REGISTER, stream)
    idle = measure_stream(OPTIMIZED_REGISTER, []).cycles
    expected = (
        sum(
            measure_dispatch(OPTIMIZED_REGISTER).cycles
            + measure_processing(name, OPTIMIZED_REGISTER).cycles
            for name in stream
        )
        + idle
    )
    print(
        f"\nstream of {len(stream)} messages: {measurement.cycles} cycles "
        f"measured, {expected} predicted from Table 1 "
        f"({'exact match' if measurement.cycles == expected else 'MISMATCH'})"
    )
    assert measurement.cycles == expected

    reads = ["read"] * 10
    read_run = measure_stream(OPTIMIZED_REGISTER, reads)
    print(
        f"homogeneous remote reads: "
        f"{(read_run.cycles - idle) / len(reads):.1f} cycles each "
        "(the paper's two-instruction remote read, at steady state)"
    )

    print()
    print(render_throughput())


if __name__ == "__main__":
    main()
