#!/usr/bin/env python3
"""Why the interface moved on-chip: the latency scaling study.

Reproduces the paper's closing argument (Section 4.2.3): the off-chip
placement looks competitive at 1992's 2-cycle access latency, but as
processor clocks outpace off-chip access, its communication costs grow
until "relegating the network interface off-chip will not remain a viable
alternative".  This example sweeps the latency and finds the crossover
against the basic *on-chip* model.

Run:  python examples/future_processors.py
"""

from repro.eval import run_program
from repro.eval import cost_table_at_latency, latency_sweep as sweep, render_sweep
from repro.impls.base import BASIC_ON_CHIP, OPTIMIZED_ON_CHIP
from repro.tam.costmap import breakdown


def main() -> None:
    stats = run_program("matmul", size=16)
    latencies = [2, 4, 6, 8, 12, 16, 24, 32]
    print(render_sweep("matmul 16x16", sweep(stats, latencies)))

    # Crossover: at what latency does an OPTIMIZED off-chip interface lose
    # to a BASIC on-chip one?  (The paper's point, inverted: placement
    # eventually trumps even the best off-chip design.)
    basic_onchip = breakdown(stats, BASIC_ON_CHIP).overhead
    optimized_onchip = breakdown(stats, OPTIMIZED_ON_CHIP).overhead
    print(
        f"\nreference overheads: optimized on-chip {optimized_onchip:,}, "
        f"basic on-chip {basic_onchip:,}"
    )
    crossover = None
    for dead_cycles in range(2, 65):
        from repro.impls.base import OPTIMIZED_OFF_CHIP

        model = OPTIMIZED_OFF_CHIP.with_off_chip_latency(dead_cycles)
        overhead = breakdown(
            stats, model, table=cost_table_at_latency(dead_cycles)
        ).overhead
        if overhead > basic_onchip:
            crossover = dead_cycles
            break
    if crossover is None:
        print("no crossover up to 64 dead cycles")
    else:
        print(
            f"at {crossover} dead cycles per off-chip read, even the fully "
            "optimized off-chip interface falls behind a BASIC on-chip one -"
            " the paper's 'not ... a viable alternative for future "
            "generations of multiprocessors'."
        )


if __name__ == "__main__":
    main()
