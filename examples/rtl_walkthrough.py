#!/usr/bin/env python3
"""Cycle-by-cycle walkthrough of the NIC chip (RTL-style model).

The paper's authors built and simulated the off-chip NIC at RTL; this
example clocks the reproduction's equivalent through a complete remote
write: the sender's processor port composes the message, the transmit
port serialises it one flit per cycle, the wire carries it to the
receiver's receive port, and the dispatch logic's MsgIp output changes
the cycle the message lands.

Run:  python examples/rtl_walkthrough.py
"""

from repro.nic.dispatch import decode_table_address
from repro.nic.interface import NetworkInterface, SendMode
from repro.nic.messages import pack_destination
from repro.nic.rtl import ClockedNIC, ProcessorAccess

TYPE_WRITE = 3


def main() -> None:
    sender = ClockedNIC(NetworkInterface(node=0))
    receiver_ni = NetworkInterface(node=1)
    receiver_ni.ip_base = 0x0008_0000
    receiver = ClockedNIC(receiver_ni)

    # --- processor side: three bus cycles compose and send -------------
    # The transmit port can start serialising in the same cycle the SEND
    # lands, so every sender tick's output goes onto the wire.
    print("sender processor port:")
    wire = None

    def clock_pair(access=None):
        nonlocal wire
        out_flit, reply = sender.tick(access=access)
        receiver.tick(rx_flit=wire)
        wire = out_flit
        return out_flit, reply

    for access in [
        ProcessorAccess(register="o0", write_value=pack_destination(1, 0x40)),
        ProcessorAccess(register="o1", write_value=0xBEEF),
        ProcessorAccess(send_mode=SendMode.NORMAL, send_type=TYPE_WRITE),
    ]:
        out_flit, _ = clock_pair(access)
        print(f"  cycle {sender.cycle}: {access}")
        if out_flit is not None:
            print(
                f"  cycle {sender.cycle:2d}: tx {out_flit.kind.value:4s} "
                f"payload={out_flit.payload:#010x}"
            )

    # --- the wire: one flit per cycle -----------------------------------
    print("\nlink (HEAD + five DATA flits):")
    for _ in range(20):
        out_flit, _ = clock_pair()
        if out_flit is not None:
            print(
                f"  cycle {sender.cycle:2d}: {out_flit.kind.value:4s} "
                f"payload={out_flit.payload:#010x}"
            )
        if receiver.interface.msg_valid:
            break

    # --- dispatch logic: MsgIp now points at the Write handler ----------
    handler, iafull, oafull = decode_table_address(receiver.msg_ip_wire)
    print(
        f"\nreceiver MsgIp wire: handler id {handler} "
        f"(type {TYPE_WRITE} = Write), iafull={iafull}, oafull={oafull}"
    )
    assert handler == TYPE_WRITE

    # --- receiver processor port: read the message out ------------------
    _, reply = receiver.tick(access=ProcessorAccess(register="i0"))
    address = reply.read_value
    _, reply = receiver.tick(access=ProcessorAccess(register="i1", do_next=True))
    value = reply.read_value
    print(
        f"receiver read i0={address:#010x} (dest|address), i1={value:#06x}, "
        "and issued NEXT in the same bus cycle"
    )
    assert value == 0xBEEF
    assert not receiver.interface.msg_valid
    print(f"\ntotal: sender clocked {sender.cycle} cycles, "
          f"receiver {receiver.cycle} cycles")


if __name__ == "__main__":
    main()
