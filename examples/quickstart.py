#!/usr/bin/env python3
"""Quickstart: a remote read in two RISC instructions.

Builds the smallest interesting machine — two nodes wired through the
architectural network interface — walks a remote-read request through the
optimized interface exactly as the paper's Section 2.1.4 example does, and
then shows the headline measurement: under the optimized register-mapped
model, the destination processor receives, processes, and replies to the
request in a **total of two RISC instructions**.

Run:  python examples/quickstart.py
"""

from repro.api.cluster import Cluster
from repro.impls.base import OPTIMIZED_REGISTER
from repro.kernels.harness import measure_dispatch, measure_processing
from repro.kernels.sequences import dispatch_kernel, processing_kernel
from repro.network.topology import Mesh2D


def main() -> None:
    # --- 1. A tiny machine: 2x1 mesh, one interface per node. ----------
    cluster = Cluster(Mesh2D(2, 1))
    cluster.node(1).memory.store(0x100, 31337)

    value = cluster.remote_read(source=0, target=1, address=0x100)
    print(f"remote read of node 1's word 0x100 from node 0 -> {value}")
    assert value == 31337

    # The reply was composed with the hardware REPLY mode: words 1 and 2
    # of the request (the reply FP and IP) were substituted by the
    # interface, with no copying instructions.
    replies = cluster.node(1).interface.stats.sends_by_mode
    print(f"node 1 send modes used: { {m.value: c for m, c in replies.items()} }")

    # --- 2. The paper's headline number, measured. ----------------------
    dispatch = measure_dispatch(OPTIMIZED_REGISTER)
    processing = measure_processing("read", OPTIMIZED_REGISTER)
    total = dispatch.instructions + processing.instructions
    print(
        f"\noptimized register model: dispatch={dispatch.instructions} instr, "
        f"processing={processing.instructions} instr, total={total}"
    )
    assert total == 2, "the paper's two-instruction remote read"

    # --- 3. And this is the actual handler code. ------------------------
    print("\ndispatch stub:")
    print(dispatch_kernel(OPTIMIZED_REGISTER).sequence.listing())
    print("\nremote-read handler:")
    print(processing_kernel("read", OPTIMIZED_REGISTER).sequence.listing())


if __name__ == "__main__":
    main()
