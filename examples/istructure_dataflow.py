#!/usr/bin/env python3
"""Producer/consumer dataflow over I-structures on a 4x4 mesh.

Demonstrates the presence-bit protocol the paper prices in its PRead /
PWrite rows: consumers issue reads *before* producers write, the reads
defer on the empty elements, and each later PWrite satisfies its queue of
deferred readers through the hardware FORWARD mode — one outgoing reply
per reader, value carried from the input registers for free.

The scenario is a 16-stage pipeline: node k computes stage k's value from
stage k-1's (fetched through an I-structure), with every element read by
two downstream consumers.

Run:  python examples/istructure_dataflow.py
"""

from repro.api.cluster import Cluster
from repro.network.topology import Mesh2D

STAGES = 16


def main() -> None:
    cluster = Cluster(Mesh2D(4, 4))
    chain = cluster.istructure_alloc(0, length=STAGES)

    # Consumers first: every stage's value is awaited by two readers
    # (the next stage's node and a "monitor" on the opposite corner)
    # before anything is written.
    next_stage = [
        cluster.istructure_read(source=(k + 1) % STAGES, target=0, descriptor=chain, index=k)
        for k in range(STAGES)
    ]
    monitors = [
        cluster.istructure_read(source=15 - (k % 16), target=0, descriptor=chain, index=k)
        for k in range(STAGES)
    ]
    deferred = cluster.istructure_stats()
    print(
        f"before any write: {deferred.reads_empty} reads hit empty elements, "
        f"{deferred.reads_deferred} queued behind them"
    )
    assert not any(p.ready for p in next_stage)

    # Producers: stage 0 seeds the chain; each write releases two readers.
    value = 1
    for k in range(STAGES):
        cluster.istructure_write(source=k, target=0, descriptor=chain, index=k, value=value)
        value = (value * 3 + 1) % 1000

    results = [p.get() for p in next_stage]
    monitor_results = [p.get() for p in monitors]
    assert results == monitor_results
    print(f"pipeline values: {results}")

    stats = cluster.istructure_stats()
    print(
        f"\nI-structure outcomes: {stats.reads_full} full / "
        f"{stats.reads_empty} empty / {stats.reads_deferred} deferred reads; "
        f"{stats.writes_deferred} writes satisfied "
        f"{stats.deferred_readers_satisfied} deferred readers"
    )
    forwards = sum(
        node.interface.stats.sends_by_mode[mode]
        for node in cluster.nodes
        for mode in node.interface.stats.sends_by_mode
        if mode.value == "forward"
    )
    print(f"hardware FORWARD sends used: {forwards}")
    assert stats.deferred_readers_satisfied == 2 * STAGES
    assert forwards == 2 * STAGES

    fabric = cluster.fabric.stats
    print(
        f"\nfabric: {fabric.delivered} messages delivered, "
        f"mean {fabric.mean_hops:.1f} hops, mean latency "
        f"{fabric.mean_latency:.1f} cycles"
    )


if __name__ == "__main__":
    main()
