"""Tests for the N-Queens search program."""

import pytest

from repro.errors import TamError
from repro.programs.queens import MAX_N, reference_count, run_queens

KNOWN_COUNTS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40}


class TestReferenceCount:
    @pytest.mark.parametrize("n,expected", sorted(KNOWN_COUNTS.items()))
    def test_known_values(self, n, expected):
        assert reference_count(n) == expected


class TestQueensOnTam:
    @pytest.mark.parametrize("n", [1, 2, 4, 5, 6])
    def test_solution_counts(self, n):
        result = run_queens(n=n, nodes=8)
        assert result.solutions == KNOWN_COUNTS[n]

    def test_seven_queens(self):
        result = run_queens(n=7, nodes=16)
        assert result.solutions == 40

    def test_board_size_bounds(self):
        with pytest.raises(TamError):
            run_queens(n=0)
        with pytest.raises(TamError):
            run_queens(n=MAX_N + 1)

    def test_node_count_invariant(self):
        a = run_queens(n=5, nodes=1)
        b = run_queens(n=5, nodes=16)
        assert a.solutions == b.solutions
        assert (
            a.stats.messages.total_messages == b.stats.messages.total_messages
        )

    def test_pure_send_mix(self):
        """Queens is procedure-call traffic only: no memory messages."""
        mix = run_queens(n=5, nodes=8).stats.messages
        assert mix.preads == 0
        assert mix.pwrites == 0
        assert mix.reads == 0 and mix.writes == 0
        assert mix.sends > 0

    def test_activation_tree_size(self):
        """One activation per explored search node (plus the driver)."""
        result = run_queens(n=4, nodes=8)
        # 4-queens: root + safe placements explored.
        assert result.stats.frames_allocated >= 1 + 1
        # Every spawned worker reports exactly once (send1 tallies).
        workers = result.stats.frames_allocated - 1
        assert result.stats.messages.sends_by_words[1] >= workers
