"""Tests for the TAM matrix-multiply program."""

import numpy as np
import pytest

from repro.errors import TamError
from repro.programs.matmul import (
    BLOCK,
    reference_matrices,
    run_matmul,
)


class TestCorrectness:
    def test_8x8_matches_numpy(self):
        result = run_matmul(n=8, nodes=4)
        a, b = reference_matrices(8)
        expected = a @ b
        actual = result.reassemble_c()
        assert np.allclose(actual, expected)

    def test_16x16_matches_numpy(self):
        result = run_matmul(n=16, nodes=16)
        a, b = reference_matrices(16)
        assert np.allclose(result.reassemble_c(), a @ b)

    def test_total_is_sum_of_c(self):
        result = run_matmul(n=8, nodes=4)
        a, b = reference_matrices(8)
        assert result.total == pytest.approx(float((a @ b).sum()))

    def test_single_node(self):
        # All frames on one node: still every interaction is a message.
        result = run_matmul(n=8, nodes=1)
        result.verify()
        assert result.stats.messages.total_messages > 0

    def test_single_block(self):
        result = run_matmul(n=4, nodes=2)
        result.verify()

    def test_non_multiple_of_block_rejected(self):
        with pytest.raises(TamError):
            run_matmul(n=10)

    def test_deterministic(self):
        r1 = run_matmul(n=8, nodes=4)
        r2 = run_matmul(n=8, nodes=4)
        assert r1.stats.messages.as_dict() == r2.stats.messages.as_dict()
        assert r1.stats.total_instructions == r2.stats.total_instructions


class TestMessageMix:
    def test_grain_near_paper(self):
        """Paper: ~3 floating point operations per message."""
        result = run_matmul(n=16, nodes=16)
        assert 2.0 <= result.stats.flops_per_message() <= 5.0

    def test_message_instruction_frequency_moderate(self):
        # Paper: "the dynamic frequency of executing a message sending
        # instruction ... is under 10%" — ours is a leaner compilation, so
        # allow a wider band but demand the same order of magnitude.
        result = run_matmul(n=16, nodes=16)
        assert result.stats.message_instruction_fraction < 0.30

    def test_preads_dominate(self):
        # Element fetches are the bulk of matmul's traffic.
        mix = run_matmul(n=16, nodes=16).stats.messages
        assert mix.preads > mix.sends
        assert mix.preads > mix.pwrites

    def test_presence_outcomes_mixed(self):
        # Fill and spawn overlap, so fetches should see non-full elements.
        mix = run_matmul(n=16, nodes=16).stats.messages
        assert mix.preads_full > 0
        assert mix.preads_empty + mix.preads_deferred > 0
        assert mix.deferred_readers_satisfied > 0

    def test_expected_pread_count(self):
        # nb^2 activations x nb k-steps x 32 element fetches, plus 2 nb^3
        # directory fetches.
        n = 16
        nb = n // BLOCK
        mix = run_matmul(n=n, nodes=16).stats.messages
        assert mix.preads == nb * nb * nb * 32 + 2 * nb**3

    def test_pwrite_count(self):
        # Every element of A, B, C written exactly once, plus directory
        # registrations (A, B, C blocks).
        n = 16
        nb = n // BLOCK
        mix = run_matmul(n=n, nodes=16).stats.messages
        elements = 3 * n * n
        registrations = 3 * nb * nb
        assert mix.pwrites == elements + registrations

    def test_scaling_messages_with_n(self):
        small = run_matmul(n=8, nodes=4).stats.messages.total_messages
        large = run_matmul(n=16, nodes=4).stats.messages.total_messages
        # Message volume grows ~n^3 for fetches.
        assert large > 4 * small
