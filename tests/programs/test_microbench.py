"""Tests for the synthetic microbenchmark workloads."""

import pytest

from repro.errors import TamError
from repro.programs.microbench import (
    run_fan_out,
    run_grain_sweep_point,
    run_ping_pong,
)


class TestGrainPoint:
    def test_flop_count_scales(self):
        small = run_grain_sweep_point(1, workers=4, rounds=4)
        large = run_grain_sweep_point(10, workers=4, rounds=4)
        assert large.stats.flops() == small.stats.flops() + 9 * 4 * 4

    def test_message_count_independent_of_grain(self):
        a = run_grain_sweep_point(1, workers=4, rounds=4)
        b = run_grain_sweep_point(50, workers=4, rounds=4)
        assert a.stats.messages.total_messages == b.stats.messages.total_messages

    def test_total_is_product_of_growth(self):
        point = run_grain_sweep_point(5, workers=2, rounds=3)
        # Each worker's accumulator is 1.0 * 1.0000001^(5*round); the sum of
        # the reported values must exceed the worker count.
        assert point.total > 2.0

    def test_zero_flops_allowed(self):
        point = run_grain_sweep_point(0, workers=2, rounds=2)
        # Only the driver's accumulation FADDs remain (one per report).
        assert point.stats.flops() == 2 * 2
        assert point.total == pytest.approx(4.0)

    def test_negative_rejected(self):
        with pytest.raises(TamError):
            run_grain_sweep_point(-1)

    def test_deterministic(self):
        a = run_grain_sweep_point(3, workers=4, rounds=4)
        b = run_grain_sweep_point(3, workers=4, rounds=4)
        assert a.stats.messages.as_dict() == b.stats.messages.as_dict()
        assert a.total == b.total


class TestPingPong:
    def test_ball_crosses_rounds_times(self):
        stats = run_ping_pong(rounds=20)
        assert stats.messages.sends_by_words[1] >= 20

    def test_two_frames_plus_driver(self):
        stats = run_ping_pong(rounds=4)
        assert stats.frames_allocated == 3

    def test_single_node_ok(self):
        stats = run_ping_pong(rounds=8, nodes=1)
        assert stats.messages.sends >= 8


class TestFanOut:
    def test_sum_of_squares_verified_internally(self):
        stats = run_fan_out(width=16)
        assert stats.frames_allocated == 17

    def test_report_counts(self):
        stats = run_fan_out(width=10)
        # Each worker: one send2 report; plus arg sends and falloc traffic.
        assert stats.messages.sends_by_words[2] >= 10

    @pytest.mark.parametrize("nodes", [1, 3, 8])
    def test_node_count_invariant(self, nodes):
        stats = run_fan_out(width=12, nodes=nodes)
        assert stats.messages.total_messages == run_fan_out(width=12, nodes=8).messages.total_messages
