"""Tests for the Gamteb photon-transport program."""

from repro.programs.gamteb import GROUPS, run_gamteb


class TestConservation:
    def test_photons_conserved_16(self):
        result = run_gamteb(n_photons=16, nodes=16)
        assert result.absorbed + result.escaped == result.photons_traced

    def test_photons_conserved_various(self):
        for n in (1, 4, 32):
            result = run_gamteb(n_photons=n, nodes=8)
            assert result.absorbed + result.escaped == result.photons_traced
            assert result.photons_traced >= n

    def test_splits_create_photons(self):
        result = run_gamteb(n_photons=64, nodes=16)
        # With 10% split probability above group 4, some pair production
        # must occur in 64 source photons.
        assert result.photons_traced > 64


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a = run_gamteb(n_photons=16, nodes=16, seed=7)
        b = run_gamteb(n_photons=16, nodes=16, seed=7)
        assert (a.absorbed, a.escaped, a.photons_traced) == (
            b.absorbed,
            b.escaped,
            b.photons_traced,
        )
        assert a.stats.messages.as_dict() == b.stats.messages.as_dict()

    def test_different_seeds_differ(self):
        a = run_gamteb(n_photons=32, nodes=16, seed=1)
        b = run_gamteb(n_photons=32, nodes=16, seed=2)
        # Trajectories must actually depend on the seed.
        assert (
            a.stats.messages.total_messages != b.stats.messages.total_messages
            or (a.absorbed, a.escaped) != (b.absorbed, b.escaped)
        )

    def test_node_count_does_not_change_physics(self):
        # Placement affects only message routing, never outcomes.
        a = run_gamteb(n_photons=16, nodes=4, seed=7)
        b = run_gamteb(n_photons=16, nodes=16, seed=7)
        assert (a.absorbed, a.escaped, a.photons_traced) == (
            b.absorbed,
            b.escaped,
            b.photons_traced,
        )


class TestMessageMix:
    def test_collisions_fetch_cross_sections(self):
        result = run_gamteb(n_photons=16, nodes=16)
        mix = result.stats.messages
        # Two table fetches per collision; at least one collision/photon.
        assert mix.preads >= 2 * result.photons_traced
        assert mix.preads % 2 == 0

    def test_table_written_once(self):
        mix = run_gamteb(n_photons=16, nodes=16).stats.messages
        assert mix.pwrites == 2 * GROUPS

    def test_deferred_fetches_exist(self):
        # Photons are sourced before the table fill, so the first wave of
        # cross-section fetches must defer.
        mix = run_gamteb(n_photons=16, nodes=16).stats.messages
        assert mix.preads_empty + mix.preads_deferred > 0
        assert mix.deferred_readers_satisfied > 0

    def test_tally_sends(self):
        result = run_gamteb(n_photons=16, nodes=16)
        mix = result.stats.messages
        # Each photon reports once (send2) plus arg/al­loc traffic.
        assert mix.sends_by_words[2] >= result.photons_traced
