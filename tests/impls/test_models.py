"""Tests for the six interface models and placement traits."""

import pytest

from repro.errors import EvaluationError
from repro.impls import offchip, onchip, register_file
from repro.impls.base import (
    ALL_MODELS,
    OPTIMIZED_OFF_CHIP,
    OPTIMIZED_ON_CHIP,
    OPTIMIZED_REGISTER,
    Architecture,
    model_by_key,
)


class TestModelGrid:
    def test_six_models(self):
        assert len(ALL_MODELS) == 6

    def test_keys_unique(self):
        keys = [m.key for m in ALL_MODELS]
        assert len(set(keys)) == 6

    def test_lookup_by_key(self):
        for model in ALL_MODELS:
            assert model_by_key(model.key) == model

    def test_unknown_key(self):
        with pytest.raises(EvaluationError):
            model_by_key("quantum-interface")

    def test_titles_match_paper_columns(self):
        assert OPTIMIZED_REGISTER.title == "Optimized Register Mapped"
        assert OPTIMIZED_ON_CHIP.title == "Optimized On-chip Cache"

    def test_make_machine_placement(self):
        for model in ALL_MODELS:
            machine = model.make_machine()
            assert machine.placement is model.placement

    def test_cost_models(self):
        assert OPTIMIZED_OFF_CHIP.costs().ni_load_dead_cycles == 2
        assert OPTIMIZED_ON_CHIP.costs().ni_load_dead_cycles == 0
        assert OPTIMIZED_REGISTER.costs().ni_load_dead_cycles == 0


class TestLatencyOverride:
    def test_off_chip_latency_sweep(self):
        swept = OPTIMIZED_OFF_CHIP.with_off_chip_latency(8)
        assert swept.costs().ni_load_dead_cycles == 8
        assert swept.architecture is Architecture.OPTIMIZED

    def test_other_placements_reject_latency(self):
        with pytest.raises(EvaluationError):
            OPTIMIZED_ON_CHIP.with_off_chip_latency(8)


class TestTraits:
    def test_off_chip_needs_no_processor_change(self):
        # Section 3.1: "this is the only implementation which requires no
        # modifications of the processor chip."
        assert not offchip.TRAITS.requires_processor_change
        assert onchip.TRAITS.requires_processor_change
        assert register_file.TRAITS.requires_processor_change

    def test_on_chip_leaves_core_untouched(self):
        assert not onchip.TRAITS.modifies_processor_core
        assert register_file.TRAITS.modifies_processor_core

    def test_queue_memory_about_three_quarters_kilobyte(self):
        # Section 3.2's area estimate for two 16-message queues.
        total = onchip.queue_memory_bytes()
        assert 600 <= total <= 800

    def test_rider_bits_are_seven(self):
        # Section 3: SEND's mode+type plus NEXT "take up only seven bits".
        assert register_file.RIDER_BITS == 7

    def test_register_file_maps_fifteen_registers(self):
        assert len(register_file.MAPPED_REGISTERS) == 15

    def test_latency_helpers(self):
        assert offchip.optimized_model(8).costs().ni_load_dead_cycles == 8
        assert offchip.basic_model().key == "basic-offchip"
        assert onchip.optimized_model().key == "optimized-onchip"
        assert register_file.basic_model().key == "basic-register"
