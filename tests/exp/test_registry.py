"""Registry round-trip: specs in, ordered specs out."""

import pytest

from repro.exp import registry
from repro.exp.registry import EVAL_MODULES
from repro.exp.runcache import DEFAULT_SIZES, PAPER_SIZES
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.errors import EvaluationError


@pytest.fixture(autouse=True)
def _loaded():
    registry.load_all()


class TestRegistryRoundTrip:
    def test_all_sections_registered_in_report_order(self):
        assert registry.names() == list(EVAL_MODULES)

    def test_get_returns_the_registered_spec(self):
        for name in registry.names():
            spec = registry.get(name)
            assert spec.name == name
            assert spec.title
            assert spec.produces

    def test_all_specs_matches_names(self):
        assert [spec.name for spec in registry.all_specs()] == registry.names()

    def test_unknown_name_raises(self):
        with pytest.raises(EvaluationError, match="unknown experiment"):
            registry.get("nonesuch")

    def test_custom_spec_round_trips_and_orders_after_builtins(self):
        spec = ExperimentSpec(
            name="custom-study",
            title="A custom study",
            produces=("data",),
            params=lambda options: {},
            compute=lambda params: {"data": 1},
            render=lambda params, payload: "custom",
        )
        registry.register(spec)
        try:
            assert registry.get("custom-study") is spec
            assert registry.names()[-1] == "custom-study"
            assert registry.names()[:-1] == list(EVAL_MODULES)
        finally:
            del registry._REGISTRY["custom-study"]

    def test_reregistration_replaces(self):
        original = registry.get("survey")
        try:
            replacement = ExperimentSpec(
                name="survey",
                title=original.title,
                produces=original.produces,
                params=original.params,
                compute=original.compute,
                render=original.render,
            )
            registry.register(replacement)
            assert registry.get("survey") is replacement
        finally:
            registry.register(original)


class TestSpecParams:
    def test_params_resolve_for_both_scales(self):
        for options in (EvalOptions(), EvalOptions(paper_scale=True)):
            for spec in registry.all_specs():
                params = spec.params(options)
                assert isinstance(params, dict)
                # Required program runs must be resolvable from params.
                for key in spec.required_programs(params):
                    assert key.program in DEFAULT_SIZES
                    assert key.size > 0
                    assert key.nodes > 0

    def test_paper_scale_changes_figure12_and_latency_keys(self):
        fig = registry.get("figure12")
        default_keys = fig.required_programs(fig.params(EvalOptions()))
        paper_keys = fig.required_programs(fig.params(EvalOptions(paper_scale=True)))
        assert {k.program for k in default_keys} == {"matmul", "gamteb"}
        by_program = {k.program: k for k in paper_keys}
        assert by_program["matmul"].size == PAPER_SIZES["matmul"]
        assert by_program["gamteb"].size == PAPER_SIZES["gamteb"]

        lat = registry.get("latency")
        assert lat.required_programs(lat.params(EvalOptions()))[0].size == 24
        assert (
            lat.required_programs(lat.params(EvalOptions(paper_scale=True)))[0].size
            == 100
        )

    def test_shared_keys_between_latency_and_ablation(self):
        """Both price matmul at the same default scale: one cached run."""
        lat = registry.get("latency")
        abl = registry.get("ablation")
        lat_key = lat.required_programs(lat.params(EvalOptions()))[0]
        abl_key = abl.required_programs(abl.params(EvalOptions()))[0]
        assert lat_key == abl_key
