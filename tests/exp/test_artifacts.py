"""Artifact schema: conversion, validation, and disk round-trip."""

import enum
import json
from dataclasses import dataclass

import pytest

from repro.exp.artifacts import (
    SCHEMA_TAG,
    ArtifactError,
    build_artifact,
    to_jsonable,
    validate_artifact,
    write_artifact,
)


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass
class Point:
    x: int
    label: str


class TestToJsonable:
    def test_primitives_pass_through(self):
        for value in (1, 1.5, "s", True, None):
            assert to_jsonable(value) == value

    def test_dataclass_becomes_dict(self):
        assert to_jsonable(Point(3, "a")) == {"x": 3, "label": "a"}

    def test_enum_becomes_lowercase_name(self):
        assert to_jsonable(Colour.RED) == "red"

    def test_non_string_keys_stringified(self):
        assert to_jsonable({2: 1.0, 8: 2.1}) == {"2": 1.0, "8": 2.1}

    def test_nested_structures(self):
        nested = {"points": (Point(1, "a"), Point(2, "b")), "kind": Colour.BLUE}
        assert to_jsonable(nested) == {
            "points": [{"x": 1, "label": "a"}, {"x": 2, "label": "b"}],
            "kind": "blue",
        }

    def test_numpy_scalars(self):
        numpy = pytest.importorskip("numpy")
        assert to_jsonable(numpy.int64(7)) == 7
        assert to_jsonable(numpy.float64(0.5)) == 0.5

    def test_unserialisable_rejected(self):
        with pytest.raises(ArtifactError, match="cannot serialise"):
            to_jsonable(object())


def _artifact():
    return build_artifact(
        "demo",
        {"size": 24},
        ("rows",),
        {"rows": [{"a": 1}]},
        0.25,
    )


class TestSchema:
    def test_build_produces_a_valid_artifact(self):
        artifact = _artifact()
        validate_artifact(artifact)  # must not raise
        assert artifact["schema"] == SCHEMA_TAG
        assert artifact["experiment"] == "demo"
        assert artifact["params"] == {"size": 24}
        assert artifact["wall_clock_seconds"] == 0.25

    @pytest.mark.parametrize(
        "key", ["schema", "experiment", "params", "produces", "data"]
    )
    def test_missing_key_rejected(self, key):
        artifact = _artifact()
        del artifact[key]
        with pytest.raises(ArtifactError, match="missing required key"):
            validate_artifact(artifact)

    def test_unknown_schema_tag_rejected(self):
        artifact = _artifact()
        artifact["schema"] = "repro-experiment/v999"
        with pytest.raises(ArtifactError, match="unknown artifact schema"):
            validate_artifact(artifact)

    def test_promised_keys_must_exist_in_data(self):
        with pytest.raises(ArtifactError, match="promises"):
            build_artifact("demo", {}, ("missing",), {"rows": []}, 0.0)

    def test_unjsonable_data_rejected_at_build(self):
        with pytest.raises(ArtifactError, match="cannot serialise"):
            build_artifact("demo", {}, ("rows",), {"rows": object()}, 0.0)

    def test_wrong_type_rejected(self):
        artifact = _artifact()
        artifact["params"] = "not a dict"
        with pytest.raises(ArtifactError, match="must be dict"):
            validate_artifact(artifact)


class TestWrite:
    def test_write_round_trips_as_json(self, tmp_path):
        artifact = _artifact()
        path = write_artifact(tmp_path, artifact)
        assert path == tmp_path / "demo.json"
        assert json.loads(path.read_text()) == artifact

    def test_write_creates_directory(self, tmp_path):
        target = tmp_path / "deeper" / "still"
        path = write_artifact(target, _artifact())
        assert path.exists()
