"""Run-cache behaviour: hit/miss layers, digest invalidation, at-most-once."""

import pickle

import pytest

from repro.errors import EvaluationError
from repro.exp import runcache
from repro.exp.runcache import DEFAULT_SIZES, ProgramKey, RunCache, resolve_key

FAST_KEY = ProgramKey("queens", 4, 4)


class TestResolveKey:
    def test_none_size_uses_default_scale(self):
        assert resolve_key("matmul") == ProgramKey(
            "matmul", DEFAULT_SIZES["matmul"], 16
        )
        assert resolve_key("gamteb", None, 8) == ProgramKey(
            "gamteb", DEFAULT_SIZES["gamteb"], 8
        )

    def test_explicit_size_survives(self):
        assert resolve_key("matmul", 24) == ProgramKey("matmul", 24, 16)

    def test_explicit_default_size_aliases_none(self):
        """figure12's implicit default and an explicit 40 share one run."""
        assert resolve_key("matmul", DEFAULT_SIZES["matmul"]) == resolve_key("matmul")

    def test_unknown_program_rejected(self):
        with pytest.raises(EvaluationError, match="unknown program"):
            resolve_key("sorting")


class TestMemoryLayer:
    def test_miss_executes_then_hits(self):
        cache = RunCache()
        stats = cache.ensure(FAST_KEY)
        assert cache.execution_log == [FAST_KEY]
        assert cache.ensure(FAST_KEY) is stats
        assert cache.execution_log == [FAST_KEY]  # second call was a hit

    def test_distinct_keys_execute_separately(self):
        cache = RunCache()
        cache.ensure(FAST_KEY)
        other = ProgramKey("queens", 4, 2)
        cache.ensure(other)
        assert cache.execution_log == [FAST_KEY, other]


class TestDiskLayer:
    def test_second_cache_reads_the_first_ones_run(self, tmp_path):
        first = RunCache(disk_dir=tmp_path)
        stats = first.ensure(FAST_KEY)
        assert first.execution_log == [FAST_KEY]

        second = RunCache(disk_dir=tmp_path)
        loaded = second.ensure(FAST_KEY)
        assert second.execution_log == []  # served from disk, not executed
        assert loaded.total_instructions == stats.total_instructions
        assert loaded.messages.as_dict() == stats.messages.as_dict()

    def test_digest_in_filename(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        cache.ensure(FAST_KEY)
        (entry,) = tmp_path.glob("*.pkl")
        assert runcache.code_digest()[:16] in entry.name
        assert "queens-n4-p4" in entry.name

    def test_code_digest_change_invalidates(self, tmp_path, monkeypatch):
        cache = RunCache(disk_dir=tmp_path)
        cache.ensure(FAST_KEY)

        monkeypatch.setattr(runcache, "_CODE_DIGEST", "0" * 64)
        stale = RunCache(disk_dir=tmp_path)
        stale.ensure(FAST_KEY)
        assert stale.execution_log == [FAST_KEY]  # old entry not trusted

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        cache.ensure(FAST_KEY)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle")

        recovered = RunCache(disk_dir=tmp_path)
        recovered.ensure(FAST_KEY)
        assert recovered.execution_log == [FAST_KEY]

    def test_stats_round_trip_pickle(self):
        """TamStats must cross process boundaries whole."""
        cache = RunCache()
        stats = cache.ensure(FAST_KEY)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()


class TestCodeDigest:
    def test_stable_within_process(self):
        assert runcache.code_digest() == runcache.code_digest()
        assert len(runcache.code_digest()) == 64


class TestGlobalCache:
    def test_run_program_uses_the_process_cache(self, monkeypatch):
        fresh = RunCache()
        monkeypatch.setattr(runcache, "_CACHE", fresh)
        runcache.run_program("queens", 4, 4)
        runcache.run_program("queens", 4, 4)
        assert fresh.execution_log == [FAST_KEY]

    def test_set_cache_swaps(self):
        before = runcache.get_cache()
        fresh = RunCache()
        try:
            assert runcache.set_cache(fresh) is fresh
            assert runcache.get_cache() is fresh
        finally:
            runcache.set_cache(before)
