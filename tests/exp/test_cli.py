"""End-to-end driver tests: at-most-once execution, artifacts, fan-out."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.exp import registry, runcache
from repro.exp.artifacts import VOLATILE_KEYS, validate_artifact
from repro.exp.runcache import ProgramKey, RunCache
from repro.exp.runner import run_experiments
from repro.exp.spec import EvalOptions

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


class TestProgramsExecuteAtMostOnce:
    def test_figure12_latency_ablation_share_runs(self, monkeypatch):
        """The pre-framework driver executed matmul three times across the
        figure12/latency/ablation sections; the run cache collapses that
        to one execution per (program, size, nodes)."""
        registry.load_all()
        fresh = RunCache()
        monkeypatch.setattr(runcache, "_CACHE", fresh)
        specs = [registry.get(name) for name in ("figure12", "latency", "ablation")]
        run_experiments(specs, EvalOptions())
        log = fresh.execution_log
        assert len(log) == len(set(log)), f"a program ran twice: {log}"
        # figure12 runs matmul@default + gamteb@default; latency and
        # ablation share one matmul@24.
        assert sorted(set(log), key=str) == sorted(
            {
                ProgramKey("matmul", 40, 16),
                ProgramKey("gamteb", 64, 16),
                ProgramKey("matmul", 24, 16),
            },
            key=str,
        )


class TestCliSmoke:
    def test_only_survey_with_json_dir(self, tmp_path):
        json_dir = tmp_path / "artifacts"
        result = _run_cli("--only", "survey", "--json-dir", str(json_dir), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "# Section 1 survey (extension)" in result.stdout
        assert "[artifact]" in result.stdout
        # Only the selected section ran.
        assert "# Table 1" not in result.stdout

        artifact = json.loads((json_dir / "survey.json").read_text())
        validate_artifact(artifact)
        assert artifact["experiment"] == "survey"
        assert artifact["data"]["rows"], "survey artifact carries no rows"

    def test_no_json_writes_nothing(self, tmp_path):
        result = _run_cli("--only", "survey", "--no-json", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "[artifact]" not in result.stdout
        assert not (tmp_path / "results").exists()

    def test_skip_excludes_a_section(self, tmp_path):
        result = _run_cli(
            "--only", "survey", "throughput",
            "--skip", "survey",
            "--no-json",
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr
        assert "survey" not in result.stdout
        assert "# Steady-state service-loop throughput" in result.stdout

    def test_bad_jobs_rejected(self, tmp_path):
        result = _run_cli("--jobs", "0", cwd=tmp_path)
        assert result.returncode != 0

    def test_trace_writes_chrome_trace_and_metrics(self, tmp_path):
        json_dir = tmp_path / "artifacts"
        result = _run_cli(
            "--only", "flowcontrol", "--trace", "--json-dir", str(json_dir),
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr
        artifact = json.loads((json_dir / "flowcontrol.json").read_text())
        validate_artifact(artifact)
        assert artifact["data"]["serviced"] == artifact["data"]["offered"]

        trace = json.loads(
            (json_dir / "traces" / "flowcontrol_trace.json").read_text()
        )
        assert trace["traceEvents"], "chrome trace holds no events"
        metrics = json.loads(
            (json_dir / "traces" / "flowcontrol_metrics.json").read_text()
        )
        assert metrics["series"]["in_flight"]["values"]
        assert metrics["crossings"], "no threshold crossings recorded"

    def test_untraced_flowcontrol_writes_no_trace_files(self, tmp_path):
        json_dir = tmp_path / "artifacts"
        result = _run_cli(
            "--only", "flowcontrol", "--json-dir", str(json_dir), cwd=tmp_path
        )
        assert result.returncode == 0, result.stderr
        assert (json_dir / "flowcontrol.json").exists()
        assert not (json_dir / "traces").exists()


class TestParallelEquivalence:
    def test_jobs_output_matches_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        sections = ("--only", "table1", "throughput", "survey")

        serial = _run_cli(*sections, "--json-dir", str(serial_dir), cwd=tmp_path)
        parallel = _run_cli(
            *sections, "--jobs", "2", "--json-dir", str(parallel_dir), cwd=tmp_path
        )
        assert serial.returncode == 0, serial.stderr
        assert parallel.returncode == 0, parallel.stderr

        def strip_artifact_lines(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("[artifact]")
            ]

        assert strip_artifact_lines(serial.stdout) == strip_artifact_lines(
            parallel.stdout
        )

        for path in sorted(serial_dir.glob("*.json")):
            a = json.loads(path.read_text())
            b = json.loads((parallel_dir / path.name).read_text())
            for key in VOLATILE_KEYS:
                a.pop(key), b.pop(key)
            assert a == b, f"{path.name} differs between serial and --jobs"
