"""Deadlock detection: the wait-for cycle, named — and escaped.

An adaptive policy with no escape path can close a cycle of full link
buffers whose heads all wait on each other; these tests construct the
canonical 4-buffer ring on a 2x2 mesh, check the detector names it, and
check the escape-channel policy dissolves the identical placement.
"""

import pytest

from repro.errors import NetworkError
from repro.network.fabric import Fabric
from repro.network.router import InTransit
from repro.network.routing import AdaptiveRandom, EscapeVC
from repro.network.topology import Mesh2D, Torus2D
from repro.nic.messages import Message, pack_destination


def msg(dest: int, tag: int = 0) -> Message:
    return Message(2, (pack_destination(dest), tag, 0, 0, 0))


#: The 2x2-mesh buffer ring: each entry fills ``(router, from, head dest)``
#: so every head's single productive hop is the next entry's full buffer.
RING = (
    (1, 0, 3),
    (3, 1, 2),
    (2, 3, 0),
    (0, 2, 1),
)


def make_fabric(routing, **kwargs) -> Fabric:
    return Fabric(
        Mesh2D(2, 2),
        link_buffer_depth=1,
        serialization_cycles=1,
        routing=routing,
        **kwargs,
    )


def place_ring(fabric: Fabric, vc: int = 0) -> None:
    for router_node, from_node, dest in RING:
        fabric.routers[router_node].accept_from(
            from_node, InTransit(msg(dest), injected_at=0), vc
        )


class TestFindDeadlock:
    def test_names_the_buffer_cycle(self):
        fabric = make_fabric(AdaptiveRandom(seed=0))
        place_ring(fabric)
        cycle = fabric.find_deadlock()
        assert cycle is not None
        # All four ring buffers appear, and the cycle closes on itself.
        assert len(cycle) == 5
        assert cycle[0] == cycle[-1]
        for router_node, from_node, dest in RING:
            assert (
                f"router {router_node} buffer from {from_node} vc0 "
                f"(head -> {dest})"
            ) in cycle

    def test_deadlock_never_moves(self):
        fabric = make_fabric(AdaptiveRandom(seed=0))
        place_ring(fabric)
        for _ in range(50):
            fabric.step()
        assert fabric.stats.delivered == 0
        assert all(r.stats.forwarded == 0 for r in fabric.routers)
        assert fabric.in_flight() == len(RING)

    def test_stall_report_names_the_cycle(self):
        fabric = make_fabric(AdaptiveRandom(seed=0))
        place_ring(fabric)
        with pytest.raises(NetworkError, match="deadlock"):
            fabric.run_until_quiescent(max_cycles=200)
        assert "deadlock" in fabric.snapshot()

    def test_congestion_without_cycle_is_not_deadlock(self):
        # A full chain behind an open downstream buffer: the heads can
        # still move, so there is no wait-for cycle to report.
        fabric = Fabric(
            Mesh2D(4, 1),
            link_buffer_depth=1,
            serialization_cycles=1,
            routing=AdaptiveRandom(seed=0),
        )
        fabric.routers[1].accept_from(0, InTransit(msg(3), injected_at=0))
        fabric.routers[2].accept_from(1, InTransit(msg(3), injected_at=0))
        assert fabric.find_deadlock() is None
        assert "deadlock" not in fabric.snapshot()

    def test_endpoint_wait_is_not_deadlock(self):
        # A full buffer whose head is at its destination waits on the
        # endpoint, which backpressure resolves — never a routing deadlock.
        fabric = make_fabric(AdaptiveRandom(seed=0))
        fabric.routers[1].accept_from(0, InTransit(msg(1), injected_at=0))
        assert fabric.find_deadlock() is None

    def test_empty_fabric_has_no_deadlock(self):
        assert make_fabric(AdaptiveRandom(seed=0)).find_deadlock() is None


class TestEscapeChannel:
    def test_escape_vc_dissolves_the_same_ring(self):
        fabric = make_fabric(EscapeVC(seed=0))
        # The identical placement, on the adaptive channel (vc 1): every
        # adaptive candidate is blocked, but the dimension-order escape
        # channel (vc 0) is empty, so the ring drains instead of waiting.
        place_ring(fabric, vc=1)
        assert fabric.find_deadlock() is None
        fabric.run_until_quiescent(max_cycles=200)
        assert fabric.stats.delivered == len(RING)


class TestTorusDateline:
    """The PR-7 soundness hole, closed: EscapeVC on a torus wrap ring.

    On an 8-node torus ring every router holds a message for the node 3
    hops forward, with both the adaptive channel *and* the escape channel
    full.  A single dimension-order escape channel is itself a cycle
    around the ring — the legacy policy (``dateline=False``) deadlocks —
    while the dateline discipline leaves channel 2 open for every leg
    that no longer has the wrap link ahead, so the identical placement
    drains.
    """

    def make_ring_fabric(self, policy) -> Fabric:
        fabric = Fabric(
            Torus2D(8, 1),
            link_buffer_depth=1,
            serialization_cycles=1,
            routing=policy,
        )
        # Fill the escape channel (vc 0) and the adaptive channel (vc 1)
        # of every forward link buffer; each head wants 3 more forward
        # hops, so its only productive neighbor is the next full router.
        for node in range(8):
            for vc in (0, 1):
                fabric.routers[node].accept_from(
                    (node - 1) % 8,
                    InTransit(msg((node + 3) % 8, tag=vc), injected_at=0),
                    vc,
                )
        return fabric

    def test_legacy_escape_channel_deadlocks_on_the_torus(self):
        fabric = self.make_ring_fabric(EscapeVC(seed=0, dateline=False))
        cycle = fabric.find_deadlock()
        assert cycle is not None and "router" in cycle[0]
        for _ in range(100):
            fabric.step()
        assert fabric.stats.delivered == 0
        assert fabric.in_flight() == 16

    def test_datelines_drain_the_identical_placement(self):
        fabric = self.make_ring_fabric(EscapeVC(seed=0))
        assert fabric.find_deadlock() is None
        fabric.run_until_quiescent(max_cycles=500)
        assert fabric.stats.delivered == 16

    def test_saturated_torus_traffic_drains(self):
        # End to end: uniform traffic past saturation on a 4x4 torus —
        # exactly the load shape that could wedge the legacy policy —
        # must always drain under datelines.
        from repro.network.traffic import run_traffic_named

        payload = run_traffic_named(
            "torus", 16, EscapeVC(seed=9), "uniform", 0.6,
            seed=9, warmup_cycles=50, measure_cycles=200, drain_cycles=4000,
        )
        assert payload["drained"] and payload["deadlock"] is None
