"""Tests for topologies and deterministic routing."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.network.topology import Hypercube, Mesh2D, Torus2D, build_topology


def to_networkx(topology):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(topology.n_nodes))
    graph.add_edges_from(topology.links())
    return graph


class TestMesh2D:
    def test_node_count(self):
        assert Mesh2D(4, 3).n_nodes == 12

    def test_coordinates_roundtrip(self):
        mesh = Mesh2D(5, 4)
        for node in range(mesh.n_nodes):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node

    def test_corner_has_two_neighbors(self):
        assert len(Mesh2D(3, 3).neighbors(0)) == 2

    def test_center_has_four_neighbors(self):
        assert len(Mesh2D(3, 3).neighbors(4)) == 4

    def test_dimension_order_route(self):
        mesh = Mesh2D(4, 4)
        # X first, then Y.
        assert mesh.route(0, 10) == [0, 1, 2, 6, 10]

    def test_distance_is_manhattan(self):
        mesh = Mesh2D(5, 5)
        assert mesh.distance(0, 24) == 8

    def test_route_to_self(self):
        assert Mesh2D(2, 2).route(3, 3) == [3]

    def test_invalid_dimensions(self):
        with pytest.raises(RoutingError):
            Mesh2D(0, 3)

    def test_out_of_range_node(self):
        with pytest.raises(RoutingError):
            Mesh2D(2, 2).route(0, 9)

    def test_next_hop_at_destination_rejected(self):
        with pytest.raises(RoutingError):
            Mesh2D(2, 2).next_hop(1, 1)

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_route_matches_shortest_path_length(self, src, dst):
        mesh = Mesh2D(4, 4)
        graph = to_networkx(mesh)
        expected = nx.shortest_path_length(graph, src, dst)
        assert mesh.distance(src, dst) == expected

    def test_links_are_bidirectional(self):
        mesh = Mesh2D(3, 3)
        links = set(mesh.links())
        assert all((b, a) in links for a, b in links)


class TestTorus2D:
    def test_all_nodes_have_degree_four(self):
        torus = Torus2D(4, 4)
        for node in range(torus.n_nodes):
            assert len(torus.neighbors(node)) == 4

    def test_wraparound_shortens_route(self):
        torus = Torus2D(8, 1)
        # 0 -> 7 is one wraparound hop, not seven mesh hops.
        assert torus.distance(0, 7) == 1

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_route_minimal(self, src, dst):
        torus = Torus2D(4, 4)
        graph = to_networkx(torus)
        assert torus.distance(src, dst) == nx.shortest_path_length(graph, src, dst)

    def test_small_torus_degenerate(self):
        torus = Torus2D(2, 2)
        assert torus.distance(0, 3) == 2

    def test_degenerate_torus_deduplicates_links(self):
        # On a 2-wide axis both wrap directions reach the same neighbor;
        # the link set must not list it twice (or the node itself).
        torus = Torus2D(2, 2)
        assert set(torus.neighbors(0)) == {1, 2}

    def test_equidistant_tie_steps_forward(self):
        # Width 4, 0 -> 2: both directions are two hops; the legacy
        # tie-break goes +1, never the wraparound.
        torus = Torus2D(4, 1)
        assert torus.next_hop(0, 2) == 1
        assert torus.route(0, 2) == [0, 1, 2]

    def test_just_past_halfway_wraps(self):
        torus = Torus2D(5, 1)
        # 0 -> 3 is two hops backward through the wraparound, three forward.
        assert torus.distance(0, 3) == 2
        assert torus.route(0, 3) == [0, 4, 3]

    def test_single_row_torus_is_a_ring(self):
        torus = Torus2D(8, 1)
        assert set(torus.neighbors(0)) == {1, 7}
        assert torus.route(0, 7) == [0, 7]
        assert torus.diameter() == 4

    def test_single_column_torus_is_a_ring(self):
        torus = Torus2D(1, 8)
        assert set(torus.neighbors(0)) == {1, 7}
        assert torus.route(0, 5) == [0, 7, 6, 5]

    def test_diameter_is_half_each_axis(self):
        assert Torus2D(4, 4).diameter() == 4
        assert Torus2D(5, 3).diameter() == 3


class TestHypercube:
    def test_node_count(self):
        assert Hypercube(4).n_nodes == 16

    def test_neighbors_are_bit_flips(self):
        cube = Hypercube(3)
        assert set(cube.neighbors(0b101)) == {0b100, 0b111, 0b001}

    def test_distance_is_hamming(self):
        cube = Hypercube(4)
        assert cube.distance(0b0000, 0b1111) == 4
        assert cube.distance(0b1010, 0b1010) == 0

    def test_route_flips_lowest_bit_first(self):
        cube = Hypercube(3)
        assert cube.route(0b000, 0b101) == [0b000, 0b001, 0b101]

    @given(
        src=st.integers(min_value=0, max_value=31),
        dst=st.integers(min_value=0, max_value=31),
    )
    def test_route_minimal(self, src, dst):
        cube = Hypercube(5)
        assert cube.distance(src, dst) == bin(src ^ dst).count("1")

    def test_dimension_bounds(self):
        with pytest.raises(RoutingError):
            Hypercube(17)

    def test_from_nodes_builds_matching_cube(self):
        assert Hypercube.from_nodes(64).dimensions == 6
        assert Hypercube.from_nodes(1).dimensions == 0

    @pytest.mark.parametrize("n_nodes", [0, 3, 65, 100])
    def test_from_nodes_rejects_non_powers_of_two(self, n_nodes):
        with pytest.raises(RoutingError, match="power-of-two"):
            Hypercube.from_nodes(n_nodes)


class TestDiagnostics:
    """Errors and diagnostics name the topology class and shape."""

    def test_describe_names_class_and_shape(self):
        assert Mesh2D(8, 8).describe() == "Mesh2D 8x8"
        assert Torus2D(4, 2).describe() == "Torus2D 4x2"
        assert Hypercube(6).describe() == "Hypercube d=6"

    def test_check_node_names_the_topology(self):
        with pytest.raises(
            RoutingError, match=r"node 64 outside Mesh2D 8x8 of 64 nodes"
        ):
            Mesh2D(8, 8).check_node(64)
        with pytest.raises(
            RoutingError, match=r"node -1 outside Hypercube d=3 of 8 nodes"
        ):
            Hypercube(3).check_node(-1)

    def test_route_bounded_by_diameter_by_default(self):
        # Dimension-order routes are minimal, so the diameter bound is
        # never hit on a healthy topology — even corner to corner.
        mesh = Mesh2D(8, 8)
        assert len(mesh.route(0, 63)) - 1 == mesh.diameter()

    def test_route_reports_exceeded_hop_budget(self):
        with pytest.raises(RoutingError, match=r"exceeded 2 hops in Mesh2D 4x4"):
            Mesh2D(4, 4).route(0, 15, max_hops=2)

    def test_diameters(self):
        assert Mesh2D(8, 8).diameter() == 14
        assert Hypercube(6).diameter() == 6


class TestBuildTopology:
    def test_square_counts_build(self):
        assert build_topology("mesh", 64).describe() == "Mesh2D 8x8"
        assert build_topology("torus", 256).describe() == "Torus2D 16x16"
        assert build_topology("hypercube", 64).describe() == "Hypercube d=6"

    def test_non_square_count_rejected(self):
        with pytest.raises(RoutingError, match="square node count, got 60"):
            build_topology("mesh", 60)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RoutingError, match="unknown topology kind"):
            build_topology("dragonfly", 64)
