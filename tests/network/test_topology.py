"""Tests for topologies and deterministic routing."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.network.topology import Hypercube, Mesh2D, Torus2D


def to_networkx(topology):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(topology.n_nodes))
    graph.add_edges_from(topology.links())
    return graph


class TestMesh2D:
    def test_node_count(self):
        assert Mesh2D(4, 3).n_nodes == 12

    def test_coordinates_roundtrip(self):
        mesh = Mesh2D(5, 4)
        for node in range(mesh.n_nodes):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node

    def test_corner_has_two_neighbors(self):
        assert len(Mesh2D(3, 3).neighbors(0)) == 2

    def test_center_has_four_neighbors(self):
        assert len(Mesh2D(3, 3).neighbors(4)) == 4

    def test_dimension_order_route(self):
        mesh = Mesh2D(4, 4)
        # X first, then Y.
        assert mesh.route(0, 10) == [0, 1, 2, 6, 10]

    def test_distance_is_manhattan(self):
        mesh = Mesh2D(5, 5)
        assert mesh.distance(0, 24) == 8

    def test_route_to_self(self):
        assert Mesh2D(2, 2).route(3, 3) == [3]

    def test_invalid_dimensions(self):
        with pytest.raises(RoutingError):
            Mesh2D(0, 3)

    def test_out_of_range_node(self):
        with pytest.raises(RoutingError):
            Mesh2D(2, 2).route(0, 9)

    def test_next_hop_at_destination_rejected(self):
        with pytest.raises(RoutingError):
            Mesh2D(2, 2).next_hop(1, 1)

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_route_matches_shortest_path_length(self, src, dst):
        mesh = Mesh2D(4, 4)
        graph = to_networkx(mesh)
        expected = nx.shortest_path_length(graph, src, dst)
        assert mesh.distance(src, dst) == expected

    def test_links_are_bidirectional(self):
        mesh = Mesh2D(3, 3)
        links = set(mesh.links())
        assert all((b, a) in links for a, b in links)


class TestTorus2D:
    def test_all_nodes_have_degree_four(self):
        torus = Torus2D(4, 4)
        for node in range(torus.n_nodes):
            assert len(torus.neighbors(node)) == 4

    def test_wraparound_shortens_route(self):
        torus = Torus2D(8, 1)
        # 0 -> 7 is one wraparound hop, not seven mesh hops.
        assert torus.distance(0, 7) == 1

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_route_minimal(self, src, dst):
        torus = Torus2D(4, 4)
        graph = to_networkx(torus)
        assert torus.distance(src, dst) == nx.shortest_path_length(graph, src, dst)

    def test_small_torus_degenerate(self):
        torus = Torus2D(2, 2)
        assert torus.distance(0, 3) == 2


class TestHypercube:
    def test_node_count(self):
        assert Hypercube(4).n_nodes == 16

    def test_neighbors_are_bit_flips(self):
        cube = Hypercube(3)
        assert set(cube.neighbors(0b101)) == {0b100, 0b111, 0b001}

    def test_distance_is_hamming(self):
        cube = Hypercube(4)
        assert cube.distance(0b0000, 0b1111) == 4
        assert cube.distance(0b1010, 0b1010) == 0

    def test_route_flips_lowest_bit_first(self):
        cube = Hypercube(3)
        assert cube.route(0b000, 0b101) == [0b000, 0b001, 0b101]

    @given(
        src=st.integers(min_value=0, max_value=31),
        dst=st.integers(min_value=0, max_value=31),
    )
    def test_route_minimal(self, src, dst):
        cube = Hypercube(5)
        assert cube.distance(src, dst) == bin(src ^ dst).count("1")

    def test_dimension_bounds(self):
        with pytest.raises(RoutingError):
            Hypercube(17)
