"""Tests for synthetic traffic patterns and the measured runs."""

import random

import pytest

from repro.errors import NetworkError, RoutingError
from repro.network.routing import AdaptiveRandom, DimensionOrder, EscapeVC
from repro.network.topology import Mesh2D
from repro.network.traffic import (
    HOTSPOT_FRACTION,
    PATTERNS,
    TrafficSource,
    censored_ages,
    pattern_destination,
    run_traffic,
    run_traffic_named,
    saturation_throughput,
)


class FixedRng:
    """A stand-in RNG with scripted draws, for the stochastic patterns."""

    def __init__(self, uniform: float = 0.5, pick: int = 3):
        self.uniform = uniform
        self.pick = pick

    def random(self) -> float:
        return self.uniform

    def randrange(self, n: int) -> int:
        assert self.pick < n
        return self.pick


class TestPatternDestination:
    def test_uniform_draws_from_rng(self):
        assert pattern_destination("uniform", 0, 16, FixedRng(pick=11)) == 11

    def test_hotspot_targets_hot_node(self):
        hot = pattern_destination(
            "hotspot", 5, 16, FixedRng(uniform=HOTSPOT_FRACTION / 2), hot_node=9
        )
        assert hot == 9

    def test_hotspot_background_is_uniform(self):
        cold = pattern_destination(
            "hotspot", 5, 16, FixedRng(uniform=0.99, pick=4), hot_node=9
        )
        assert cold == 4

    def test_bit_rotation_rotates_right(self):
        # 8 nodes, 3 address bits: 0b011 -> 0b101.
        assert pattern_destination("bit-rotation", 0b011, 8, random.Random()) == 0b101

    def test_shuffle_rotates_left(self):
        # 0b011 -> 0b110 (the perfect shuffle).
        assert pattern_destination("shuffle", 0b011, 8, random.Random()) == 0b110

    def test_transpose_swaps_address_halves(self):
        # 16 nodes, 4 bits: 0b0110 -> 0b1001.
        assert pattern_destination("transpose", 0b0110, 16, random.Random()) == 0b1001

    def test_permutations_are_bijections(self):
        for pattern, n_nodes in (
            ("bit-rotation", 64),
            ("shuffle", 64),
            ("transpose", 64),
        ):
            rng = random.Random()
            images = {
                pattern_destination(pattern, node, n_nodes, rng)
                for node in range(n_nodes)
            }
            assert images == set(range(n_nodes))

    def test_permutations_need_power_of_two(self):
        with pytest.raises(RoutingError, match="power-of-two"):
            pattern_destination("bit-rotation", 0, 6, random.Random())

    def test_transpose_needs_even_address_width(self):
        with pytest.raises(RoutingError, match="even address width"):
            pattern_destination("transpose", 0, 8, random.Random())

    def test_unknown_pattern_rejected(self):
        with pytest.raises(RoutingError, match="unknown traffic pattern"):
            pattern_destination("tornado", 0, 16, random.Random())


class TestTrafficSource:
    def make_fabric(self):
        from repro.network.fabric import Fabric

        return Fabric(Mesh2D(2, 2), serialization_cycles=1)

    def test_rate_bounds_checked(self):
        fabric = self.make_fabric()
        with pytest.raises(NetworkError, match="injection rate"):
            TrafficSource(fabric, "uniform", 1.5, seed=0, duration=10)

    def test_unknown_pattern_checked(self):
        fabric = self.make_fabric()
        with pytest.raises(RoutingError, match="unknown traffic pattern"):
            TrafficSource(fabric, "tornado", 0.1, seed=0, duration=10)

    def test_rate_zero_offers_nothing(self):
        fabric = self.make_fabric()
        source = TrafficSource(fabric, "uniform", 0.0, seed=0, duration=10)
        for cycle in range(10):
            source.tick(cycle)
        assert source.offered == 0


class TestCensoredAges:
    def test_counts_router_buffers_and_output_queues(self):
        from repro.network.fabric import Fabric
        from repro.network.router import InTransit
        from repro.nic.messages import Message, pack_destination

        fabric = Fabric(Mesh2D(2, 2), serialization_cycles=1)
        # One message inside a router (stamped at injection)...
        fabric.routers[1].accept_from(
            0, InTransit(Message(3, (pack_destination(3), 0, 0, 0, 0)),
                         injected_at=5)
        )
        # ...and one still in an output queue (cycle stamp in word 1).
        ni = fabric.interfaces[2]
        ni.write_output(0, pack_destination(0))
        ni.write_output(1, 7)
        ni.send(3)
        assert sorted(censored_ages(fabric, now=20)) == [13, 15]

    def test_empty_fabric_has_no_censored_samples(self):
        from repro.network.fabric import Fabric

        assert censored_ages(Fabric(Mesh2D(2, 2)), now=10) == []


class TestRunTraffic:
    RUN = dict(warmup_cycles=20, measure_cycles=80, drain_cycles=500)

    def test_uniform_run_delivers_and_drains(self):
        payload = run_traffic(
            Mesh2D(4, 4), DimensionOrder(), "uniform", 0.1, seed=1, **self.RUN
        )
        assert payload["delivered"] > 0
        assert payload["total_retired"] == payload["total_delivered"]
        assert 0 < payload["throughput"] <= payload["offered_rate"] + 0.05
        assert payload["mean_latency"] > 0
        assert payload["topology"] == "Mesh2D 4x4"
        assert payload["drained"] and payload["deadlock"] is None

    def test_adaptive_past_saturation_records_deadlock(self):
        # Minimal-adaptive has no escape path: pushed past saturation it
        # closes a buffer-wait cycle.  The run is a measurement, not a
        # crash — the payload names the cycle; the identical load under
        # the escape-channel policy drains.
        load = dict(warmup_cycles=50, measure_cycles=150, seed=42)
        stuck = run_traffic_named(
            "mesh", 64, AdaptiveRandom(seed=42), "uniform", 0.5,
            drain_cycles=300, **load
        )
        assert not stuck["drained"]
        assert "router" in stuck["deadlock"]
        safe = run_traffic_named(
            "mesh", 64, EscapeVC(seed=42), "uniform", 0.5,
            drain_cycles=2000, **load
        )
        assert safe["drained"] and safe["deadlock"] is None

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_runs_on_a_square_mesh(self, pattern):
        payload = run_traffic(
            Mesh2D(4, 4), DimensionOrder(), pattern, 0.05, seed=2, **self.RUN
        )
        assert payload["total_retired"] == payload["total_delivered"]

    @pytest.mark.parametrize(
        "make_policy_fn",
        [
            lambda: DimensionOrder(),
            lambda: AdaptiveRandom(seed=3),
            lambda: EscapeVC(seed=3),
        ],
        ids=["dimension-order", "adaptive-random", "escape-vc"],
    )
    def test_same_seed_same_payload(self, make_policy_fn):
        runs = [
            run_traffic_named(
                "torus", 16, make_policy_fn(), "uniform", 0.15, seed=3, **self.RUN
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_zero_rate_run_has_no_censored_samples(self):
        payload = run_traffic(
            Mesh2D(2, 2), DimensionOrder(), "uniform", 0.0, seed=0, **self.RUN
        )
        assert payload["censored"] == 0
        assert payload["censored_mean_age"] == 0.0
        assert payload["mean_latency_lower_bound"] == 0.0

    def test_deadlocked_run_counts_stranded_messages_as_censored(self):
        # The same post-saturation adaptive-random wedge as above: the
        # messages stranded in the deadlocked buffers were previously
        # silently dropped from the latency accounting; they must now
        # appear as right-censored samples whose ages date back to the
        # measurement window.
        stuck = run_traffic_named(
            "mesh", 64, AdaptiveRandom(seed=42), "uniform", 0.5,
            warmup_cycles=50, measure_cycles=150, drain_cycles=300, seed=42,
        )
        assert not stuck["drained"]
        assert stuck["censored"] > 0
        assert stuck["censored_mean_age"] > 0
        assert stuck["mean_latency_lower_bound"] > 0

    def test_lower_bound_folds_censored_ages_into_the_mean(self):
        payload = run_traffic(
            Mesh2D(4, 4), DimensionOrder(), "uniform", 0.3, seed=7, **self.RUN
        )
        delivered = payload["delivered"]
        censored = payload["censored"]
        assert censored > 0  # 0.3 injection leaves traffic in flight
        expected = (
            delivered * payload["mean_latency"]
            + censored * payload["censored_mean_age"]
        ) / (delivered + censored)
        assert payload["mean_latency_lower_bound"] == pytest.approx(
            expected, abs=0.01
        )

    def test_saturation_is_the_largest_throughput(self):
        curve = [{"throughput": 0.1}, {"throughput": 0.3}, {"throughput": 0.25}]
        assert saturation_throughput(curve) == 0.3
        assert saturation_throughput([]) == 0.0
