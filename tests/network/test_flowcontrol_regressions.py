"""Regressions for the flow-control bugfix sweep.

Each test pins one of the fixed behaviours:

* link credits are snapshotted at cycle start, so a buffer slot freed by
  an earlier move in the same cycle cannot be consumed by a later one;
* the injection serialization timer belongs to the specific head-of-queue
  message it was started for;
* ``try_push`` counts refused attempts exactly as ``push`` does;
* ``forwarded`` counts link moves only (no double-count with ``ejected``);
* ``deliveries_refused`` equals the per-interface ``refused`` sum;
* a small-capacity queue's default threshold still asserts ``almost_full``
  strictly before ``is_full``.
"""

import pytest

from repro.errors import QueueOverflowError
from repro.network.fabric import Fabric
from repro.network.router import InTransit
from repro.network.topology import Mesh2D
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message, pack_destination
from repro.nic.queues import MessageQueue, default_threshold


def msg(dest: int, tag: int = 0) -> Message:
    return Message(2, (pack_destination(dest), tag, 0, 0, 0))


def send_from(fabric: Fabric, source: int, dest: int, tag: int = 7):
    ni = fabric.interface(source)
    ni.write_output(0, pack_destination(dest))
    ni.write_output(1, tag)
    return ni.send(2)


class TestCreditSnapshot:
    """A slot freed this cycle is not reusable until the next cycle."""

    def make(self) -> Fabric:
        # A 3x1 line with single-slot link buffers: 2 -> 1 -> 0.
        return Fabric(Mesh2D(3, 1), link_buffer_depth=1, serialization_cycles=1)

    def test_freed_slot_not_reused_same_cycle(self):
        fabric = self.make()
        # Router 1 already holds a message from node 2 (its from-2 buffer
        # is full); router 2 holds another, wanting that same buffer.
        fabric.routers[1].accept_from(2, InTransit(msg(0), 0))
        fabric.routers[2].inject(InTransit(msg(0), 0))
        fabric.step()
        # The first message moved 1 -> 0, freeing the from-2 buffer, but
        # the credit snapshot was taken before any move: the second
        # message must still be waiting in router 2.
        assert fabric.routers[0].occupancy == 1
        assert fabric.routers[1].occupancy == 0
        assert fabric.routers[2].occupancy == 1
        assert fabric.routers[2].stats.blocked_moves == 1
        # Next cycle the freed slot is visible and the move happens.
        fabric.step()
        assert fabric.routers[2].occupancy == 0
        assert fabric.routers[1].occupancy == 1

    def test_drain_order_independent_of_router_order(self):
        # Same scenario mirrored (0 -> 1 -> 2): here the downstream
        # router (1) is iterated *after* the upstream one... the upstream
        # message must be blocked identically in both orientations.
        fabric = self.make()
        fabric.routers[1].accept_from(0, InTransit(msg(2), 0))
        fabric.routers[0].inject(InTransit(msg(2), 0))
        fabric.step()
        assert fabric.routers[0].occupancy == 1
        assert fabric.routers[0].stats.blocked_moves == 1


class TestSerializationTimer:
    def make(self, cycles: int) -> Fabric:
        return Fabric(Mesh2D(2, 1), serialization_cycles=cycles)

    def test_full_serialization_delay(self):
        fabric = self.make(3)
        send_from(fabric, 0, 1)
        for _ in range(2):
            fabric.step()
            assert fabric.routers[0].stats.injected == 0
        fabric.step()
        assert fabric.routers[0].stats.injected == 1

    def test_new_head_does_not_inherit_timer(self):
        fabric = self.make(3)
        send_from(fabric, 0, 1, tag=1)
        fabric.step()  # serialization of the first head underway
        # The first head disappears (drained by software between cycles);
        # a different message becomes head-of-queue.
        fabric.interface(0).output_queue.clear()
        send_from(fabric, 0, 1, tag=2)
        # The new head must serialise from scratch: three full cycles,
        # not the one remaining from the vanished message's countdown.
        fabric.step()
        fabric.step()
        assert fabric.routers[0].stats.injected == 0
        fabric.step()
        assert fabric.routers[0].stats.injected == 1

    def test_timer_resets_after_idle(self):
        fabric = self.make(2)
        send_from(fabric, 0, 1, tag=1)
        fabric.step()
        fabric.step()
        assert fabric.routers[0].stats.injected == 1
        fabric.run_until_quiescent()
        # A later send starts its own countdown from the top.
        send_from(fabric, 0, 1, tag=2)
        fabric.step()
        assert fabric.routers[0].stats.injected == 1
        fabric.step()
        assert fabric.routers[0].stats.injected == 2


class TestCounterSemantics:
    def test_try_push_counts_rejections(self):
        queue = MessageQueue("t", capacity=1)
        assert queue.try_push(msg(0))
        assert not queue.try_push(msg(0))
        assert not queue.try_push(msg(0))
        assert queue.stats.rejected == 2
        with pytest.raises(QueueOverflowError):
            queue.push(msg(0))
        assert queue.stats.rejected == 3
        assert queue.stats.pushes == 1

    def test_forwarded_excludes_ejection_hop(self):
        # 0 -> 1 -> 2 on a line: two link moves, one ejection.
        fabric = Fabric(Mesh2D(3, 1), serialization_cycles=1)
        send_from(fabric, 0, 2)
        fabric.run_until_quiescent()
        assert sum(r.stats.forwarded for r in fabric.routers) == 2
        assert sum(r.stats.ejected for r in fabric.routers) == 1
        assert fabric.stats.delivered == 1
        assert fabric.stats.total_hops == 2

    def test_local_delivery_forwards_nothing(self):
        fabric = Fabric(Mesh2D(2, 1), serialization_cycles=1)
        send_from(fabric, 0, 0)
        fabric.run_until_quiescent()
        assert sum(r.stats.forwarded for r in fabric.routers) == 0
        assert fabric.routers[0].stats.ejected == 1

    def test_deliveries_refused_matches_interface_refusals(self):
        # A receiver that never services: its single-slot input queue
        # fills and every further ejection attempt is refused.
        interfaces = [
            NetworkInterface(node=0),
            NetworkInterface(node=1, input_capacity=1),
        ]
        fabric = Fabric(
            Mesh2D(2, 1), interfaces, serialization_cycles=1, link_buffer_depth=1
        )
        for _ in range(4):
            send_from(fabric, 0, 1)
        for _ in range(40):
            fabric.step()
        stats = fabric.stats
        assert stats.deliveries_refused > 0
        assert stats.deliveries_refused == interfaces[1].stats.refused
        # Refused attempts never touch the queue's own rejection counter
        # (the fabric refuses on credit, before the push is attempted).
        assert interfaces[1].input_queue.stats.rejected == 0


class TestSmallCapacityThreshold:
    def test_default_threshold_tracks_capacity(self):
        assert default_threshold(16) == 12
        assert default_threshold(4) == 0
        assert default_threshold(2) == 0

    def test_almost_full_asserts_before_full(self):
        for capacity in (2, 4, 6, 16):
            queue = MessageQueue("t", capacity=capacity)
            asserted_before_full = False
            for _ in range(capacity):
                if queue.almost_full:
                    asserted_before_full = True
                queue.push(msg(0))
            assert queue.is_full
            assert asserted_before_full or queue.almost_full
            # The condition must have asserted strictly before the queue
            # filled, at any capacity.
            assert asserted_before_full, f"capacity {capacity}"

    def test_explicit_threshold_still_clamped(self):
        queue = MessageQueue("t", capacity=4, threshold=12)
        assert queue.threshold == 4
