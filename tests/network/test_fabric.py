"""Tests for the router and fabric, including the flow-control story."""

import pytest

from repro.errors import NetworkError
from repro.network.fabric import Fabric
from repro.network.router import InTransit, Router
from repro.network.topology import Mesh2D
from repro.nic.messages import Message, pack_destination


def msg(dest: int, tag: int = 0) -> Message:
    return Message(2, (pack_destination(dest), tag, 0, 0, 0))


class TestRouter:
    def make(self) -> Router:
        return Router(0, neighbors=(1, 2), link_buffer_depth=2)

    def test_accept_and_take(self):
        router = self.make()
        router.accept_from(1, InTransit(msg(0), 0))
        assert router.occupancy == 1
        item = router.take(1)
        assert item.hops == 1

    def test_link_buffer_bounded(self):
        router = self.make()
        router.accept_from(1, InTransit(msg(0), 0))
        router.accept_from(1, InTransit(msg(0), 0))
        assert not router.can_accept_from(1)
        with pytest.raises(NetworkError):
            router.accept_from(1, InTransit(msg(0), 0))

    def test_unknown_link_rejected(self):
        with pytest.raises(NetworkError):
            self.make().can_accept_from(9)

    def test_injection_bounded(self):
        router = Router(0, neighbors=(), injection_depth=1)
        router.inject(InTransit(msg(0), 0))
        with pytest.raises(NetworkError):
            router.inject(InTransit(msg(0), 0))

    def test_links_served_before_injection(self):
        router = self.make()
        router.inject(InTransit(msg(0), 0))
        router.accept_from(2, InTransit(msg(0), 0))
        order = router.pending_sources()
        assert order[-1] is None
        assert (2, 0) in order

    def test_empty_take_rejected(self):
        with pytest.raises(NetworkError):
            self.make().take(1)


class TestFabricDelivery:
    def make(self, **kwargs) -> Fabric:
        return Fabric(Mesh2D(3, 3), serialization_cycles=1, **kwargs)

    def send_from(self, fabric: Fabric, source: int, dest: int, tag: int = 7):
        ni = fabric.interface(source)
        ni.write_output(0, pack_destination(dest))
        ni.write_output(1, tag)
        ni.send(2)

    def test_delivers_across_mesh(self):
        fabric = self.make()
        self.send_from(fabric, 0, 8, tag=42)
        fabric.run_until_quiescent()
        target = fabric.interface(8)
        assert target.msg_valid
        assert target.read_input(1) == 42

    def test_local_delivery(self):
        fabric = self.make()
        self.send_from(fabric, 4, 4, tag=9)
        fabric.run_until_quiescent()
        assert fabric.interface(4).read_input(1) == 9

    def test_hop_count_recorded(self):
        fabric = self.make()
        self.send_from(fabric, 0, 8)
        fabric.run_until_quiescent()
        # Route 0 -> 8 in a 3x3 mesh is 4 hops plus the ejection.
        assert fabric.stats.delivered == 1
        assert fabric.stats.mean_hops >= 4

    def test_many_to_one_all_arrive(self):
        fabric = self.make()
        senders = [n for n in range(9) if n != 4]
        for tag, source in enumerate(senders):
            self.send_from(fabric, source, 4, tag=tag)
        # Drain with the receiver consuming as messages arrive.
        received = []
        for _ in range(2000):
            fabric.step()
            ni = fabric.interface(4)
            while ni.msg_valid:
                received.append(ni.read_input(1))
                ni.next()
            if len(received) == len(senders):
                break
        assert sorted(received) == list(range(len(senders)))

    def test_serialization_delays_injection(self):
        slow = Fabric(Mesh2D(2, 1), serialization_cycles=6)
        self.send_from(slow, 0, 1)
        cycles = slow.run_until_quiescent()
        assert cycles >= 6

    def test_interface_count_checked(self):
        from repro.nic.interface import NetworkInterface

        with pytest.raises(NetworkError):
            Fabric(Mesh2D(2, 2), [NetworkInterface(node=0)])

    def test_quiescence_timeout(self):
        from repro.nic.interface import NetworkInterface

        # A receiver with almost no buffering that never services: traffic
        # jams in the network and the fabric can never drain.
        interfaces = [
            NetworkInterface(node=n, input_capacity=1) for n in range(2)
        ]
        fabric = Fabric(
            Mesh2D(2, 1),
            interfaces,
            link_buffer_depth=1,
            serialization_cycles=1,
        )
        for tag in range(8):
            self.send_from(fabric, 0, 1, tag=tag)
            fabric.step()
        with pytest.raises(NetworkError):
            fabric.run_until_quiescent(max_cycles=500)


class TestBackpressure:
    def test_slow_receiver_backs_up_into_sender(self):
        """Section 2.1.1's chain: full input queue -> network -> output queue."""
        fabric = Fabric(
            Mesh2D(2, 1),
            link_buffer_depth=1,
            serialization_cycles=1,
        )
        sender = fabric.interface(0)
        # Never service node 1; keep sending until the sender's own output
        # queue jams.
        stalled = False
        for tag in range(200):
            sender.write_output(0, pack_destination(1))
            sender.write_output(1, tag)
            from repro.nic.interface import SendResult

            if sender.send(2) is SendResult.STALLED:
                stalled = True
                break
            for _ in range(3):
                fabric.step()
        assert stalled
        # Nothing was lost: receiver-side queue + registers + routers +
        # sender-side output queue account for every sent message.
        receiver = fabric.interface(1)
        in_network = fabric.in_flight()
        buffered = (
            receiver.input_queue.depth
            + (1 if receiver.msg_valid else 0)
            + in_network
            + sender.output_queue.depth
        )
        assert buffered == sender.stats.sends

    def test_draining_receiver_releases_backpressure(self):
        fabric = Fabric(Mesh2D(2, 1), link_buffer_depth=1, serialization_cycles=1)
        sender = fabric.interface(0)
        receiver = fabric.interface(1)
        from repro.nic.interface import SendResult

        # Jam the path.
        sent = 0
        for tag in range(200):
            sender.write_output(0, pack_destination(1))
            if sender.send(2) is SendResult.STALLED:
                break
            sent += 1
            fabric.step()
        # Drain the receiver; the stalled send must now succeed.
        for _ in range(200):
            while receiver.msg_valid:
                receiver.next()
            fabric.step()
        assert sender.send(2) is SendResult.SENT
