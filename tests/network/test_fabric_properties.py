"""Property-based tests for the fabric: conservation and delivery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import Fabric
from repro.network.topology import Hypercube, Mesh2D, Torus2D
from repro.nic.messages import pack_destination

topologies = st.sampled_from(
    [Mesh2D(3, 3), Mesh2D(4, 2), Torus2D(3, 3), Hypercube(3)]
)


@st.composite
def traffic(draw):
    topology = draw(topologies)
    n = topology.n_nodes
    sends = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=1,
            max_size=20,
        )
    )
    return topology, sends


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(data=traffic())
    def test_every_message_delivered_exactly_once(self, data):
        topology, sends = data
        fabric = Fabric(topology, serialization_cycles=1)
        tagged = []
        for tag, (source, dest) in enumerate(sends):
            ni = fabric.interface(source)
            ni.write_output(0, pack_destination(dest))
            ni.write_output(1, tag)
            ni.send(2)
            tagged.append((tag, dest))
        # Drain, consuming at every endpoint so nothing backs up.
        received = []
        for _ in range(5000):
            fabric.step()
            for node in range(topology.n_nodes):
                ni = fabric.interface(node)
                while ni.msg_valid:
                    received.append((ni.read_input(1), node))
                    ni.next()
            if len(received) == len(tagged) and fabric.pending() == 0:
                break
        assert sorted(received) == sorted(tagged)

    @settings(max_examples=40, deadline=None)
    @given(data=traffic())
    def test_hop_counts_match_topology_routes(self, data):
        topology, sends = data
        fabric = Fabric(topology, serialization_cycles=1)
        expected_hops = 0
        for tag, (source, dest) in enumerate(sends):
            ni = fabric.interface(source)
            ni.write_output(0, pack_destination(dest))
            ni.send(2)
            # Deterministic routing: distance + 1 ejection hop... the
            # router counts each accept_from as a hop; ejection is not a
            # hop, injection is not a hop.
            expected_hops += topology.distance(source, dest)
        for _ in range(5000):
            fabric.step()
            for node in range(topology.n_nodes):
                ni = fabric.interface(node)
                while ni.msg_valid:
                    ni.next()
            if fabric.pending() == 0 and fabric.stats.delivered == len(sends):
                break
        assert fabric.stats.delivered == len(sends)
        assert fabric.stats.total_hops == expected_hops
