"""Tests for the pluggable routing policies."""

import pytest

from repro.errors import RoutingError
from repro.network.routing import (
    POLICY_NAMES,
    AdaptiveRandom,
    DimensionOrder,
    EscapeVC,
    make_policy,
    minimal_neighbors,
)
from repro.network.topology import Hypercube, Mesh2D, Topology, Torus2D


def plenty(neighbor: int, vc: int) -> int:
    """A congestion view with uniform free space everywhere."""
    return 4


def all_pairs(topology):
    for source in range(topology.n_nodes):
        for destination in range(topology.n_nodes):
            if source != destination:
                yield source, destination


class TestMakePolicy:
    def test_names_map_to_classes(self):
        assert isinstance(make_policy("dimension-order"), DimensionOrder)
        assert isinstance(make_policy("adaptive-random"), AdaptiveRandom)
        assert isinstance(make_policy("escape-vc"), EscapeVC)

    def test_names_registry_matches(self):
        assert tuple(make_policy(n).name for n in POLICY_NAMES) == POLICY_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(RoutingError, match="unknown routing policy"):
            make_policy("valiant")

    def test_seed_reaches_adaptive_policies(self):
        assert make_policy("adaptive-random", seed=9).seed == 9
        assert make_policy("escape-vc", seed=9).seed == 9


class TestMinimalNeighbors:
    def test_strictly_closer_and_sorted(self):
        mesh = Mesh2D(4, 4)
        for source, destination in all_pairs(mesh):
            minimal = minimal_neighbors(mesh, source, destination)
            assert minimal == tuple(sorted(minimal))
            here = mesh.distance(source, destination)
            for neighbor in minimal:
                assert mesh.distance(neighbor, destination) == here - 1

    def test_two_productive_directions_off_axis(self):
        mesh = Mesh2D(4, 4)
        # From the corner toward the opposite corner both axes help.
        assert minimal_neighbors(mesh, 0, 15) == (1, 4)

    def test_empty_at_destination(self):
        assert minimal_neighbors(Mesh2D(3, 3), 4, 4) == ()


class TestDimensionOrder:
    @pytest.mark.parametrize(
        "topology",
        [Mesh2D(4, 4), Torus2D(4, 4), Torus2D(5, 3), Hypercube(4)],
        ids=lambda t: t.describe(),
    )
    def test_single_candidate_matches_legacy_next_hop(self, topology):
        policy = DimensionOrder()
        for source, destination in all_pairs(topology):
            candidates = policy.candidates(topology, source, destination, plenty)
            assert candidates == ((topology.next_hop(source, destination), 0),)

    def test_mesh_routes_x_before_y(self):
        mesh = Mesh2D(4, 4)
        assert DimensionOrder().next_hop(mesh, 0, 10) == 1

    def test_torus_ties_break_forward(self):
        # Width 4: forward and backward are both 2 hops; legacy
        # _step_toward goes +1.
        torus = Torus2D(4, 1)
        assert DimensionOrder().next_hop(torus, 0, 2) == 1

    def test_hypercube_flips_lowest_bit(self):
        cube = Hypercube(4)
        assert DimensionOrder().next_hop(cube, 0b0000, 0b1010) == 0b0010

    def test_at_destination_rejected(self):
        with pytest.raises(RoutingError):
            DimensionOrder().next_hop(Mesh2D(2, 2), 1, 1)

    def test_unknown_topology_rejected(self):
        class Ring(Topology):
            n_nodes = 4

        with pytest.raises(RoutingError, match="Ring"):
            DimensionOrder().next_hop(Ring(), 0, 1)


class TestAdaptiveRandom:
    def test_candidates_are_all_minimal(self):
        mesh = Mesh2D(4, 4)
        policy = AdaptiveRandom(seed=1)
        for source, destination in all_pairs(mesh):
            candidates = policy.candidates(mesh, source, destination, plenty)
            minimal = minimal_neighbors(mesh, source, destination)
            assert sorted(n for n, _ in candidates) == sorted(minimal)
            assert all(vc == 0 for _, vc in candidates)

    def test_prefers_freer_downstream_buffer(self):
        mesh = Mesh2D(4, 4)
        policy = AdaptiveRandom(seed=1)
        # From 0 to 15 both 1 and 4 are minimal; make 4 clearly freer.
        free = {1: 0, 4: 3}
        candidates = policy.candidates(
            mesh, 0, 15, lambda n, vc: free.get(n, 4)
        )
        assert candidates == ((4, 0), (1, 0))

    def test_same_seed_same_choices(self):
        mesh = Mesh2D(4, 4)
        a, b = AdaptiveRandom(seed=7), AdaptiveRandom(seed=7)
        for source, destination in all_pairs(mesh):
            assert a.candidates(mesh, source, destination, plenty) == (
                b.candidates(mesh, source, destination, plenty)
            )

    def test_single_productive_neighbor_is_deterministic(self):
        mesh = Mesh2D(4, 1)
        policy = AdaptiveRandom(seed=3)
        # A 1-D mesh never has a routing choice, so the RNG is never
        # consulted and every query gives the one productive port.
        state = policy._rng.getstate()
        assert policy.candidates(mesh, 0, 3, plenty) == ((1, 0),)
        assert policy._rng.getstate() == state

    def test_no_productive_neighbor_rejected(self):
        with pytest.raises(RoutingError, match="no productive neighbor"):
            AdaptiveRandom().candidates(Mesh2D(2, 2), 1, 1, plenty)


class TestEscapeVC:
    def test_three_virtual_channels_with_datelines(self):
        # Adaptive (1), escape (0), and the torus dateline channel (2);
        # dateline=False reinstates the legacy two-channel policy.
        assert EscapeVC().num_vcs == 3
        assert EscapeVC(dateline=False).num_vcs == 2

    def test_escape_candidate_is_dimension_order_last(self):
        mesh = Mesh2D(4, 4)
        policy = EscapeVC(seed=5)
        dim = DimensionOrder()
        for source, destination in all_pairs(mesh):
            candidates = policy.candidates(mesh, source, destination, plenty)
            *adaptive, escape = candidates
            assert escape == (dim.next_hop(mesh, source, destination), 0)
            assert adaptive  # never only the escape path
            assert all(vc == 1 for _, vc in adaptive)

    def test_adaptive_candidates_match_adaptive_random(self):
        mesh = Mesh2D(4, 4)
        escape = EscapeVC(seed=11)
        plain = AdaptiveRandom(seed=11)
        for source, destination in all_pairs(mesh):
            got = escape.candidates(mesh, source, destination, plenty)[:-1]
            want = plain.candidates(mesh, source, destination, plenty)
            assert tuple((n, 1) for n, _ in want) == got


class TestDateline:
    """The escape channel's dateline discipline on torus wraparound rings."""

    def ring_escape(self, policy, ring, source, destination):
        *_, escape = policy.candidates(ring, source, destination, plenty)
        return escape

    def test_mesh_and_hypercube_never_use_the_dateline_channel(self):
        policy = EscapeVC(seed=0)
        for topology in (Mesh2D(4, 4), Hypercube(4)):
            for source, destination in all_pairs(topology):
                *_, escape = policy.candidates(
                    topology, source, destination, plenty
                )
                assert escape[1] == policy.escape_vc

    def test_pre_dateline_leg_rides_channel_zero(self):
        # 0 -> 6 on an 8-ring goes backward through the 0 -> 7 wrap link:
        # the dateline is still ahead, so the leg rides escape channel 0.
        ring = Torus2D(8, 1)
        policy = EscapeVC(seed=0)
        assert self.ring_escape(policy, ring, 0, 6) == (7, policy.escape_vc)

    def test_post_dateline_leg_rides_the_dateline_channel(self):
        # 7 -> 6 continues the same journey after the wrap: no dateline
        # remains ahead, so the leg switches to the dateline channel.
        ring = Torus2D(8, 1)
        policy = EscapeVC(seed=0)
        assert self.ring_escape(policy, ring, 7, 6) == (6, policy.dateline_vc)

    def test_non_crossing_leg_rides_the_dateline_channel(self):
        # 1 -> 4 never touches the wrap link in either direction.
        ring = Torus2D(8, 1)
        policy = EscapeVC(seed=0)
        assert self.ring_escape(policy, ring, 1, 4) == (2, policy.dateline_vc)

    def test_wrap_link_only_ever_requested_on_channel_zero(self):
        # The acyclicity argument: the dateline link itself must never be
        # requested on the dateline channel, in either ring direction.
        ring = Torus2D(8, 1)
        policy = EscapeVC(seed=0)
        for source, destination in all_pairs(ring):
            hop, vc = self.ring_escape(policy, ring, source, destination)
            if {source, hop} == {0, ring.width - 1}:
                assert vc == policy.escape_vc

    def test_dateline_false_matches_legacy_escape(self):
        ring = Torus2D(8, 1)
        legacy = EscapeVC(seed=0, dateline=False)
        for source, destination in all_pairs(ring):
            assert self.ring_escape(legacy, ring, source, destination)[1] == 0

    def test_y_axis_has_its_own_dateline(self):
        torus = Torus2D(4, 4)
        policy = EscapeVC(seed=0)
        # X resolved; 4 rows at x=0: (0,3) -> (0,2) continues past the
        # Y wrap, (0,1) -> (0,2) never crosses it.
        past = policy.candidates(
            torus, torus.node_at(0, 3), torus.node_at(0, 2), plenty
        )[-1]
        assert past == (torus.node_at(0, 2), policy.dateline_vc)
        before = policy.candidates(
            torus, torus.node_at(0, 1), torus.node_at(0, 2), plenty
        )[-1]
        assert before == (torus.node_at(0, 2), policy.dateline_vc)
        # (0,2) -> (0,1) backward is distance 1 with no wrap; but
        # (0,0) -> (0,2): forward distance 2 ties backward 2, ties go
        # forward, no wrap ahead -> dateline channel.
        tie = policy.candidates(
            torus, torus.node_at(0, 0), torus.node_at(0, 2), plenty
        )[-1]
        assert tie == (torus.node_at(0, 1), policy.dateline_vc)
        # Forward through the wrap: (0,2) -> (0,0) ties 2-vs-2, ties go
        # forward (2 -> 3 -> 0), so the 3 -> 0 dateline is ahead: channel 0.
        crossing = policy.candidates(
            torus, torus.node_at(0, 2), torus.node_at(0, 0), plenty
        )[-1]
        assert crossing == (torus.node_at(0, 3), policy.escape_vc)
