"""Tests for register naming and the general register file."""

import pytest

from repro.errors import MachineError
from repro.isa.registers import (
    GENERAL_REGISTERS,
    NI_REGISTERS,
    SYMBOLIC_ASSIGNMENT,
    RegisterFile,
    is_ni_register,
    resolve,
)


class TestNaming:
    def test_thirty_two_general_registers(self):
        assert len(GENERAL_REGISTERS) == 32

    def test_fifteen_ni_registers(self):
        assert len(NI_REGISTERS) == 15

    def test_is_ni_register(self):
        assert is_ni_register("i3")
        assert is_ni_register("MsgIp")
        assert not is_ni_register("r5")
        assert not is_ni_register("fp")

    def test_resolve_symbolic(self):
        assert resolve("fp") == SYMBOLIC_ASSIGNMENT["fp"]
        assert resolve("r7") == "r7"
        assert resolve("o2") == "o2"

    def test_resolve_unknown(self):
        with pytest.raises(MachineError):
            resolve("xyzzy")

    def test_symbolic_names_distinct(self):
        # Two symbols sharing a register would corrupt kernel state.
        values = list(SYMBOLIC_ASSIGNMENT.values())
        non_zero = [v for v in values if v != "r0"]
        assert len(set(non_zero)) == len(non_zero)

    def test_symbolic_targets_are_general(self):
        for target in SYMBOLIC_ASSIGNMENT.values():
            assert target in GENERAL_REGISTERS


class TestRegisterFile:
    def test_read_write(self):
        regs = RegisterFile()
        regs.write("fp", 0x1234)
        assert regs.read("fp") == 0x1234
        assert regs.read(SYMBOLIC_ASSIGNMENT["fp"]) == 0x1234

    def test_r0_is_zero(self):
        regs = RegisterFile()
        regs.write("r0", 999)
        assert regs.read("r0") == 0
        assert regs.read("zero") == 0

    def test_values_truncated(self):
        regs = RegisterFile()
        regs.write("a", 1 << 40)
        assert regs.read("a") == 0

    def test_ni_register_rejected(self):
        regs = RegisterFile()
        with pytest.raises(MachineError):
            regs.read("i0")
        with pytest.raises(MachineError):
            regs.write("o0", 1)

    def test_snapshot_only_nonzero(self):
        regs = RegisterFile()
        regs.write("v", 5)
        snap = regs.snapshot()
        assert snap == {SYMBOLIC_ASSIGNMENT["v"]: 5}
