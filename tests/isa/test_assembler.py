"""Tests for the placement-aware SequenceBuilder."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import SequenceBuilder
from repro.isa.instructions import Opcode
from repro.isa.machine import Placement
from repro.nic.interface import SendMode


class TestPlacementExpansion:
    def test_ni_read_expands_to_move_on_register(self):
        seq = (
            SequenceBuilder("t", Placement.REGISTER).ni_read("a", "i0").build()
        )
        assert seq.instructions[0].opcode is Opcode.ALU

    def test_ni_read_expands_to_load_on_mm(self):
        for placement in (Placement.ON_CHIP, Placement.OFF_CHIP):
            seq = SequenceBuilder("t", placement).ni_read("a", "i0").build()
            assert seq.instructions[0].opcode is Opcode.NILOAD

    def test_ni_write_expansion(self):
        reg = SequenceBuilder("t", Placement.REGISTER).ni_write("o1", "v").build()
        mm = SequenceBuilder("t", Placement.ON_CHIP).ni_write("o1", "v").build()
        assert reg.instructions[0].opcode is Opcode.ALU
        assert mm.instructions[0].opcode is Opcode.NISTORE

    def test_ni_command_expansion(self):
        reg = (
            SequenceBuilder("t", Placement.REGISTER)
            .ni_command(do_next=True)
            .build()
        )
        mm = (
            SequenceBuilder("t", Placement.ON_CHIP)
            .ni_command(do_next=True)
            .build()
        )
        assert reg.instructions[0].opcode is Opcode.ALU  # rider-carrying no-op
        assert mm.instructions[0].opcode is Opcode.NICMD

    def test_riders_preserved_through_expansion(self):
        seq = (
            SequenceBuilder("t", Placement.ON_CHIP)
            .ni_write("o2", "v", send_mode=SendMode.REPLY, send_type=0, do_next=True)
            .build()
        )
        riders = seq.instructions[0].riders
        assert riders.send_mode is SendMode.REPLY
        assert riders.do_next


class TestErrors:
    def test_ni_read_requires_ni_register(self):
        with pytest.raises(AssemblyError):
            SequenceBuilder("t", Placement.ON_CHIP).ni_read("a", "r5")

    def test_ni_write_requires_ni_register(self):
        with pytest.raises(AssemblyError):
            SequenceBuilder("t", Placement.ON_CHIP).ni_write("fp", "v")

    def test_ni_command_requires_a_command(self):
        with pytest.raises(AssemblyError):
            SequenceBuilder("t", Placement.ON_CHIP).ni_command()

    def test_double_label_rejected(self):
        builder = SequenceBuilder("t", Placement.ON_CHIP).label("a")
        with pytest.raises(AssemblyError):
            builder.label("b")

    def test_dangling_label_rejected(self):
        builder = SequenceBuilder("t", Placement.ON_CHIP).nop().label("end")
        with pytest.raises(AssemblyError):
            builder.build()

    def test_label_attaches_to_next_instruction(self):
        seq = (
            SequenceBuilder("t", Placement.ON_CHIP)
            .label("loop")
            .nop()
            .build()
        )
        assert seq.instructions[0].label == "loop"


class TestFluency:
    def test_chaining_returns_builder(self):
        builder = SequenceBuilder("t", Placement.REGISTER)
        assert builder.nop() is builder
        assert builder.mov("a", "v") is builder

    def test_build_snapshot_independent(self):
        builder = SequenceBuilder("t", Placement.REGISTER).nop()
        first = builder.build()
        builder.nop()
        second = builder.build()
        assert len(first) == 1
        assert len(second) == 2
