"""Tests for instruction construction, rendering, and metadata."""

import pytest

from repro.isa.instructions import (
    AluFn,
    Cond,
    Instruction,
    Opcode,
    Riders,
    Sequence,
)
from repro.nic.interface import SendMode


class TestRiders:
    def test_none(self):
        assert not Riders().any

    def test_send_only(self):
        riders = Riders(send_mode=SendMode.NORMAL, send_type=5)
        assert riders.any
        assert riders.describe() == "SEND type=5"

    def test_reply_mode_described(self):
        riders = Riders(send_mode=SendMode.REPLY, send_type=0)
        assert "SEND-reply" in riders.describe()

    def test_forward_mode_described(self):
        riders = Riders(send_mode=SendMode.FORWARD, send_type=0)
        assert "SEND-forward" in riders.describe()

    def test_next_only(self):
        assert Riders(do_next=True).describe() == "NEXT"

    def test_both(self):
        riders = Riders(send_mode=SendMode.NORMAL, send_type=2, do_next=True)
        assert "SEND" in riders.describe() and "NEXT" in riders.describe()


class TestSourceRegisters:
    def test_alu_sources(self):
        instr = Instruction(Opcode.ALU, rd="a", rs1="v", rs2="t", fn=AluFn.ADD)
        assert instr.source_registers() == ("v", "t")

    def test_load_source_is_base(self):
        instr = Instruction(Opcode.LOAD, rd="a", rs1="p", imm=4)
        assert instr.source_registers() == ("p",)

    def test_store_sources(self):
        instr = Instruction(Opcode.STORE, rs1="p", rs2="v")
        assert instr.source_registers() == ("p", "v")

    def test_niload_has_no_register_sources(self):
        instr = Instruction(Opcode.NILOAD, rd="a", ni_register="i0")
        assert instr.source_registers() == ()

    def test_nistore_source_is_value(self):
        instr = Instruction(Opcode.NISTORE, rs2="v", ni_register="o0")
        assert instr.source_registers() == ("v",)

    def test_jump_source(self):
        instr = Instruction(Opcode.JUMPREG, rs1="t")
        assert instr.source_registers() == ("t",)

    def test_branchcond_source(self):
        instr = Instruction(Opcode.BRANCHCOND, rs1="n", imm=5, cond=Cond.LT, target="x")
        assert instr.source_registers() == ("n",)


class TestControlClassification:
    @pytest.mark.parametrize(
        "opcode",
        [Opcode.JUMPREG, Opcode.BRANCH, Opcode.BRANCHBIT, Opcode.BRANCHCOND],
    )
    def test_control_opcodes(self, opcode):
        assert Instruction(opcode, rs1="t", target="x").is_control

    @pytest.mark.parametrize(
        "opcode", [Opcode.ALU, Opcode.LOAD, Opcode.NILOAD, Opcode.NOP]
    )
    def test_non_control_opcodes(self, opcode):
        assert not Instruction(opcode, rd="a", rs1="v", rs2="t", fn=AluFn.ADD).is_control


class TestRendering:
    def test_alu(self):
        text = Instruction(Opcode.ALU, rd="a", rs1="v", rs2="t", fn=AluFn.ADD).render()
        assert "add" in text and "a, v, t" in text

    def test_riders_shown(self):
        instr = Instruction(
            Opcode.ALU,
            rd="o1",
            rs1="i1",
            rs2="i2",
            fn=AluFn.ADD,
            riders=Riders(send_mode=SendMode.NORMAL, send_type=5, do_next=True),
        )
        text = instr.render()
        # The paper's flagship: add o1 i1 i2, SEND type=5, NEXT.
        assert "SEND type=5" in text and "NEXT" in text

    def test_label_rendered(self):
        instr = Instruction(Opcode.NOP, label="loop")
        assert instr.render().startswith("loop:")

    def test_masked_flag_rendered(self):
        instr = Instruction(Opcode.NILOAD, rd="t", ni_register="MsgIp", masked=True)
        assert "latency masked" in instr.render()

    def test_slot_filled_rendered(self):
        instr = Instruction(Opcode.JUMPREG, rs1="t", slot_filled=True)
        assert "slot filled" in instr.render()

    def test_note_rendered(self):
        instr = Instruction(Opcode.NOP, note="padding")
        assert "padding" in instr.render()

    def test_branch_bit_mnemonics(self):
        set_branch = Instruction(
            Opcode.BRANCHBIT, rs1="stat", bit=0, branch_on_set=True, target="x"
        )
        clear_branch = Instruction(
            Opcode.BRANCHBIT, rs1="stat", bit=0, branch_on_set=False, target="x"
        )
        assert "bb1" in set_branch.render()
        assert "bb0" in clear_branch.render()

    @pytest.mark.parametrize(
        "opcode,kwargs",
        [
            (Opcode.ALUI, dict(rd="a", rs1="v", imm=3, fn=AluFn.SHL)),
            (Opcode.LOADIMM, dict(rd="a", imm=1)),
            (Opcode.LOAD, dict(rd="a", rs1="p", imm=0)),
            (Opcode.STORE, dict(rs1="p", rs2="v", imm=4)),
            (Opcode.NILOAD, dict(rd="a", ni_register="i0")),
            (Opcode.NISTORE, dict(rs2="v", ni_register="o0")),
            (Opcode.NICMD, dict()),
            (Opcode.BRANCH, dict(target="x")),
            (Opcode.BRANCHCOND, dict(rs1="n", imm=1, cond=Cond.EQ, target="x")),
            (Opcode.NOP, dict()),
            (Opcode.HALT, dict()),
        ],
    )
    def test_every_opcode_renders(self, opcode, kwargs):
        assert Instruction(opcode, **kwargs).render()


class TestSequence:
    def test_listing_has_name_header(self):
        seq = Sequence("demo", [Instruction(Opcode.NOP)])
        assert seq.listing().startswith("; demo")

    def test_len_and_iter(self):
        seq = Sequence("demo", [Instruction(Opcode.NOP)] * 3)
        assert len(seq) == 3
        assert len(list(seq)) == 3
