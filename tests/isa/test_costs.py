"""Direct tests for the three cycle-cost rules (paper Section 4.1)."""

import pytest

from repro.isa.costs import (
    MASKABLE_DEAD_CYCLES,
    OFF_CHIP_COSTS,
    ON_CHIP_COSTS,
    REGISTER_COSTS,
    CostModel,
    off_chip_with_latency,
)
from repro.isa.instructions import AluFn, Instruction, Opcode


def niload(masked=False):
    return Instruction(Opcode.NILOAD, rd="a", ni_register="i0", masked=masked)


def memload(masked=False):
    return Instruction(Opcode.LOAD, rd="a", rs1="p", masked=masked)


class TestRuleTwoLoadLatency:
    def test_off_chip_two_dead_cycles(self):
        # "a loaded value cannot be used in the two cycles following".
        assert OFF_CHIP_COSTS.load_ready_delay(niload()) == 3

    def test_on_chip_single_cycle(self):
        assert ON_CHIP_COSTS.load_ready_delay(niload()) == 1

    def test_register_placement_single_cycle(self):
        assert REGISTER_COSTS.load_ready_delay(niload()) == 1

    def test_memory_loads_cached(self):
        for model in (OFF_CHIP_COSTS, ON_CHIP_COSTS, REGISTER_COSTS):
            assert model.load_ready_delay(memload()) == 1

    def test_alu_results_ready_next_cycle(self):
        alu = Instruction(Opcode.ALU, rd="a", rs1="v", rs2="t", fn=AluFn.ADD)
        assert OFF_CHIP_COSTS.load_ready_delay(alu) == 1


class TestMasking:
    def test_masked_covers_baseline(self):
        assert OFF_CHIP_COSTS.load_ready_delay(niload(masked=True)) == 1

    def test_masking_window_is_baseline_latency(self):
        assert MASKABLE_DEAD_CYCLES == 2

    def test_masked_exposes_excess_latency(self):
        # At 8 dead cycles, the NextMsgIp overlap hides only the first 2.
        swept = off_chip_with_latency(8)
        assert swept.load_ready_delay(niload(masked=True)) == 1 + (8 - 2)

    def test_masked_memory_load_fully_hidden(self):
        assert OFF_CHIP_COSTS.load_ready_delay(memload(masked=True)) == 1


class TestRuleThreeDelaySlots:
    def test_unfilled_slot_costs_one(self):
        jump = Instruction(Opcode.JUMPREG, rs1="t")
        assert OFF_CHIP_COSTS.control_penalty(jump) == 1

    def test_filled_slot_is_free(self):
        jump = Instruction(Opcode.JUMPREG, rs1="t", slot_filled=True)
        assert OFF_CHIP_COSTS.control_penalty(jump) == 0

    def test_non_control_has_no_penalty(self):
        assert OFF_CHIP_COSTS.control_penalty(niload()) == 0

    def test_all_transfer_kinds_penalised(self):
        for opcode in (Opcode.BRANCH, Opcode.BRANCHBIT, Opcode.BRANCHCOND):
            instr = Instruction(opcode, rs1="t", target="x")
            assert ON_CHIP_COSTS.control_penalty(instr) == 1


class TestLatencySweepFactory:
    def test_baseline(self):
        assert off_chip_with_latency(2).ni_load_dead_cycles == 2

    def test_zero_latency_allowed(self):
        assert off_chip_with_latency(0).load_ready_delay(niload()) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            off_chip_with_latency(-1)

    def test_name_carries_latency(self):
        assert "8" in off_chip_with_latency(8).name

    def test_cost_model_frozen(self):
        with pytest.raises(AttributeError):
            OFF_CHIP_COSTS.ni_load_dead_cycles = 5

    def test_custom_model(self):
        model = CostModel("x", ni_load_dead_cycles=4, delay_slot_cycles=2)
        assert model.load_ready_delay(niload()) == 5
        jump = Instruction(Opcode.JUMPREG, rs1="t")
        assert model.control_penalty(jump) == 2
