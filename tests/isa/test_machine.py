"""Tests for the behavioural executor and its cycle accounting."""

import pytest

from repro.errors import AssemblyError, MachineError
from repro.isa.assembler import SequenceBuilder
from repro.isa.costs import off_chip_with_latency
from repro.isa.instructions import AluFn, Cond
from repro.isa.machine import Machine, Placement
from repro.nic.interface import SendMode
from repro.nic.messages import Message, pack_destination


def machine(placement=Placement.ON_CHIP, **kwargs) -> Machine:
    return Machine(placement, **kwargs)


def deliver(m: Machine, mtype=2, words=(0x10, 0x20, 0x30, 0x40)):
    m.interface.deliver(Message(mtype, (pack_destination(0),) + tuple(words)))


class TestAluAndMoves:
    def test_add(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 5)
            .loadimm("v", 7)
            .alu(AluFn.ADD, "t", "a", "v")
            .build()
        )
        m.run(seq)
        assert m.read_reg("t") == 12

    def test_sub_and_logical(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0xF0)
            .loadimm("v", 0x0F)
            .alu(AluFn.SUB, "t", "a", "v")
            .alu(AluFn.OR, "p", "a", "v")
            .alu(AluFn.AND, "n", "a", "v")
            .alu(AluFn.XOR, "id", "a", "v")
            .build()
        )
        m.run(seq)
        assert m.read_reg("t") == 0xE1
        assert m.read_reg("p") == 0xFF
        assert m.read_reg("n") == 0
        assert m.read_reg("id") == 0xFF

    def test_shifts(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0x10)
            .alui(AluFn.SHL, "t", "a", 4)
            .alui(AluFn.SHR, "v", "a", 2)
            .build()
        )
        m.run(seq)
        assert m.read_reg("t") == 0x100
        assert m.read_reg("v") == 0x4

    def test_r0_reads_zero_and_ignores_writes(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("r0", 99)
            .mov("a", "r0")
            .build()
        )
        m.run(seq)
        assert m.read_reg("a") == 0

    def test_loadimm_rejects_wide_constant(self):
        with pytest.raises(AssemblyError):
            SequenceBuilder("t", Placement.ON_CHIP).loadimm("a", 0x1_0000)

    def test_wraparound_arithmetic(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0xFFFF)
            .alui(AluFn.SHL, "a", "a", 16)
            .alui(AluFn.ADD, "a", "a", 0xFFFF)
            .alui(AluFn.ADD, "a", "a", 1)
            .build()
        )
        m.run(seq)
        assert m.read_reg("a") == 0


class TestMemory:
    def test_store_load_roundtrip(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0x100)
            .loadimm("v", 42)
            .mem_store("v", "a")
            .mem_load("t", "a")
            .build()
        )
        m.run(seq)
        assert m.read_reg("t") == 42

    def test_offset_addressing(self):
        m = machine()
        m.memory.store(0x104, 7)
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0x100)
            .mem_load("t", "a", offset=4)
            .build()
        )
        m.run(seq)
        assert m.read_reg("t") == 7


class TestControlFlow:
    def test_branch_skips(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .branch("end")
            .loadimm("a", 1)
            .label("end")
            .loadimm("v", 2)
            .build()
        )
        m.run(seq)
        assert m.read_reg("a") == 0
        assert m.read_reg("v") == 2

    def test_branch_bit(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 0b100)
            .branch_bit(2, "a", "hit", on_set=True)
            .loadimm("v", 1)
            .label("hit")
            .nop()
            .build()
        )
        m.run(seq)
        assert m.read_reg("v") == 0

    def test_branch_cond_loop(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("n", 0)
            .label("loop")
            .alui(AluFn.ADD, "n", "n", 1)
            .branch_cond(Cond.LT, "n", 5, "loop")
            .build()
        )
        m.run(seq)
        assert m.read_reg("n") == 5

    def test_jump_reg_terminates_with_target(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("t", 0x4000)
            .jump_reg("t")
            .loadimm("a", 1)
            .build()
        )
        result = m.run(seq)
        assert result.jump_target == 0x4000
        assert m.read_reg("a") == 0

    def test_jump_reg_resolved_locally(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("t", 0x4000)
            .jump_reg("t")
            .loadimm("a", 1)
            .label("handler")
            .loadimm("v", 2)
            .build()
        )
        result = m.run(seq, resolve_jump=lambda addr: 3 if addr == 0x4000 else None)
        assert result.jump_target is None
        assert m.read_reg("a") == 0
        assert m.read_reg("v") == 2

    def test_undefined_label_raises(self):
        m = machine()
        seq = SequenceBuilder("t", m.placement).branch("nowhere").build()
        with pytest.raises(MachineError):
            m.run(seq)

    def test_runaway_guard(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .label("spin")
            .branch("spin")
            .build()
        )
        with pytest.raises(MachineError):
            m.run(seq, max_steps=100)

    def test_halt(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .halt()
            .loadimm("a", 1)
            .build()
        )
        result = m.run(seq)
        assert result.halted
        assert m.read_reg("a") == 0


class TestCycleAccounting:
    def test_one_cycle_per_instruction(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("a", 1)
            .loadimm("v", 2)
            .alu(AluFn.ADD, "t", "a", "v")
            .build()
        )
        assert m.run(seq).cycles == 3

    def test_unfilled_delay_slot_costs_one(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("t", 0x4000)
            .jump_reg("t")
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 3  # loadimm + jmp + delay slot
        assert result.delay_slot_cycles == 1

    def test_filled_delay_slot_is_free(self):
        m = machine()
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("t", 0x4000)
            .jump_reg("t", slot_filled=True)
            .build()
        )
        assert m.run(seq).cycles == 2

    def test_offchip_ni_load_stalls_immediate_use(self):
        m = machine(Placement.OFF_CHIP)
        deliver(m, words=(0x100, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0")
            .mem_load("v", "a")
            .build()
        )
        result = m.run(seq)
        # ld(1) + 2 dead cycles + use(1) = 4.
        assert result.cycles == 4
        assert result.stall_cycles == 2

    def test_offchip_stall_partially_coverable(self):
        m = machine(Placement.OFF_CHIP)
        deliver(m, words=(0x100, 0x200, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0")
            .ni_read("p", "i1")
            .mem_load("v", "a")  # a loaded 2 cycles earlier: 1 stall left
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 4
        assert result.stall_cycles == 1

    def test_offchip_fully_covered_no_stall(self):
        m = machine(Placement.OFF_CHIP)
        deliver(m, words=(0x100, 0x200, 0x300, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0")
            .ni_read("p", "i1")
            .ni_read("id", "i2")
            .mem_load("v", "a")
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 4
        assert result.stall_cycles == 0

    def test_onchip_ni_load_no_stall(self):
        m = machine(Placement.ON_CHIP)
        deliver(m, words=(0x100, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0")
            .mem_load("v", "a")
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 2
        assert result.stall_cycles == 0

    def test_masked_load_charges_no_stall(self):
        m = machine(Placement.OFF_CHIP)
        deliver(m, words=(0x100, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0", masked=True)
            .mem_load("v", "a")
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 2
        assert result.stall_cycles == 0

    def test_latency_sweep_model(self):
        m = machine(
            Placement.OFF_CHIP, cost_model=off_chip_with_latency(8)
        )
        deliver(m, words=(0x100, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i0")
            .mem_load("v", "a")
            .build()
        )
        assert m.run(seq).cycles == 10  # 1 + 8 dead + 1


class TestPlacementRules:
    def test_ni_operand_rejected_in_mm_placement(self):
        m = machine(Placement.ON_CHIP)
        seq = SequenceBuilder("t", Placement.REGISTER).mov("a", "i0").build()
        with pytest.raises(MachineError):
            m.run(seq)

    def test_niload_rejected_in_register_placement(self):
        m = machine(Placement.REGISTER)
        seq = SequenceBuilder("t", Placement.ON_CHIP).ni_read("a", "i0").build()
        with pytest.raises(MachineError):
            m.run(seq)

    def test_rider_on_alu_rejected_in_mm_placement(self):
        m = machine(Placement.ON_CHIP)
        seq = (
            SequenceBuilder("t", Placement.REGISTER)
            .alu(AluFn.ADD, "a", "r0", "r0", do_next=True)
            .build()
        )
        with pytest.raises(MachineError):
            m.run(seq)


class TestNiSemantics:
    def test_register_placement_direct_ni_operands(self):
        m = machine(Placement.REGISTER)
        deliver(m, words=(3, 4, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .alu(AluFn.ADD, "o1", "i1", "i2", send_mode=SendMode.NORMAL, send_type=5)
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 1
        sent = m.interface.transmit()
        assert sent.mtype == 5
        assert sent.words[1] == 7

    def test_mm_store_with_send_rider(self):
        m = machine(Placement.ON_CHIP)
        seq = (
            SequenceBuilder("t", m.placement)
            .loadimm("v", 9)
            .ni_write("o1", "v", send_mode=SendMode.NORMAL, send_type=4)
            .build()
        )
        result = m.run(seq)
        assert result.cycles == 2
        assert len(result.send_results) == 1
        assert m.interface.transmit().words[1] == 9

    def test_mm_load_with_next_rider(self):
        m = machine(Placement.ON_CHIP)
        deliver(m, words=(5, 0, 0, 0))
        deliver(m, words=(6, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .ni_read("a", "i1", do_next=True)
            .ni_read("v", "i1")
            .build()
        )
        m.run(seq)
        assert m.read_reg("a") == 5  # pre-command read
        assert m.read_reg("v") == 6  # after NEXT

    def test_register_placement_rider_next(self):
        m = machine(Placement.REGISTER)
        deliver(m, words=(5, 0, 0, 0))
        deliver(m, words=(6, 0, 0, 0))
        seq = (
            SequenceBuilder("t", m.placement)
            .mov("a", "i1", do_next=True)
            .mov("v", "i1")
            .build()
        )
        m.run(seq)
        assert m.read_reg("a") == 5
        assert m.read_reg("v") == 6

    def test_ni_command_costs_one_cycle_everywhere(self):
        for placement in Placement:
            m = machine(placement)
            seq = (
                SequenceBuilder("t", placement)
                .ni_command(send_mode=SendMode.NORMAL, send_type=2)
                .build()
            )
            assert m.run(seq).cycles == 1, placement
            assert m.interface.output_queue.depth == 1

    def test_jump_msgip_register_placement(self):
        m = machine(Placement.REGISTER)
        m.interface.ip_base = 0x8000
        deliver(m, mtype=5)
        seq = SequenceBuilder("t", m.placement).jump_reg("MsgIp", slot_filled=True).build()
        result = m.run(seq)
        assert result.cycles == 1
        assert (result.jump_target >> 6) & 0xF == 5

    def test_trace_records_lines(self):
        m = machine(trace=True)
        seq = SequenceBuilder("t", m.placement).loadimm("a", 1).build()
        result = m.run(seq)
        assert len(result.trace) == 1
