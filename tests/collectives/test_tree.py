"""Tests for the combining-tree structure."""

import pytest

from repro.collectives.tree import CombiningTree
from repro.errors import CollectiveError


class TestShape:
    def test_binary_tree_over_seven_ranks(self):
        tree = CombiningTree(7, arity=2)
        assert tree.parent(0) is None
        assert tree.children(0) == (1, 2)
        assert tree.children(1) == (3, 4)
        assert tree.children(2) == (5, 6)
        assert tree.children(3) == ()
        assert tree.fan_in(0) == 2
        assert tree.fan_in(3) == 0
        assert tree.depth() == 2

    def test_every_node_reaches_the_root(self):
        tree = CombiningTree(256, arity=4)
        for node in range(256):
            hops = 0
            position = node
            while tree.parent(position) is not None:
                position = tree.parent(position)
                hops += 1
                assert hops <= tree.depth()
            assert position == tree.root

    def test_children_and_parent_are_inverse(self):
        tree = CombiningTree(64, arity=3)
        for node in range(64):
            for child in tree.children(node):
                assert tree.parent(child) == node

    def test_flat_tree_is_a_star(self):
        tree = CombiningTree(16, arity=15)
        assert tree.children(0) == tuple(range(1, 16))
        assert all(tree.parent(n) == 0 for n in range(1, 16))
        assert tree.depth() == 1

    def test_single_node(self):
        tree = CombiningTree(1)
        assert tree.parent(0) is None
        assert tree.children(0) == ()
        assert tree.depth() == 0


class TestRotation:
    def test_rooting_rotates_ranks(self):
        tree = CombiningTree(8, root=5)
        assert tree.rank(5) == 0
        assert tree.node_of(0) == 5
        assert tree.parent(5) is None
        # Rank space is the same implicit heap; nodes are rotated.
        plain = CombiningTree(8)
        for rank in range(8):
            assert tree.node_of(rank) == (plain.node_of(rank) + 5) % 8

    def test_rank_node_roundtrip(self):
        tree = CombiningTree(13, root=7, arity=3)
        for node in range(13):
            assert tree.node_of(tree.rank(node)) == node


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(CollectiveError):
            CombiningTree(0)
        with pytest.raises(CollectiveError):
            CombiningTree(4, root=4)
        with pytest.raises(CollectiveError):
            CombiningTree(4, arity=0)

    def test_out_of_range_nodes_rejected(self):
        tree = CombiningTree(4)
        with pytest.raises(CollectiveError):
            tree.rank(4)
        with pytest.raises(CollectiveError):
            tree.node_of(-1)
