"""NIC-offloaded vs processor-driven collectives: identity and offload.

The acceptance bar of this extension: at 16, 64, and 256 nodes the
NIC-handler-driven barrier / broadcast / reduce / allreduce produce
results identical to the processor-driven baselines, and the
handler-driven variants charge the processor strictly fewer cycles.
"""

import pytest

from repro.collectives import (
    COLLECTIVES,
    CombiningTree,
    expected_result,
    run_nic_collective,
    run_proc_collective,
)
from repro.collectives.costs import price_run
from repro.collectives.programs import HandlerContext
from repro.errors import CollectiveError
from repro.impls.base import ALL_MODELS, OPTIMIZED_REGISTER
from repro.network.topology import Mesh2D, Torus2D

SIZES = {16: Mesh2D(4, 4), 64: Mesh2D(8, 8), 256: Mesh2D(16, 16)}


@pytest.mark.parametrize("n_nodes", sorted(SIZES))
@pytest.mark.parametrize("kind", COLLECTIVES)
class TestResultIdentity:
    def test_nic_matches_proc_and_closed_form(self, kind, n_nodes):
        topology = SIZES[n_nodes]
        values = list(range(n_nodes))
        nic = run_nic_collective(kind, topology, values=values)
        proc = run_proc_collective(kind, topology, values=values)
        expected = expected_result(kind, "sum", CombiningTree(n_nodes), values)
        assert nic.results == proc.results == expected
        assert nic.events == proc.events

    def test_nic_charges_the_processor_strictly_less(self, kind, n_nodes):
        topology = SIZES[n_nodes]
        nic = run_nic_collective(kind, topology)
        proc = run_proc_collective(kind, topology)
        for model in ALL_MODELS:
            nic_price = price_run(nic, model)
            proc_price = price_run(proc, model)
            assert nic_price.proc_cycles < proc_price.proc_cycles
            assert nic_price.overlap > 0
            assert proc_price.overlap == 0
            assert nic_price.total_cycles == proc_price.total_cycles


class TestOperationsAndShapes:
    @pytest.mark.parametrize("op", ["sum", "max", "min", "bor"])
    def test_all_ops_agree_across_variants(self, op):
        topology = Mesh2D(4, 4)
        values = [(v * 37) % 101 for v in range(16)]
        nic = run_nic_collective("allreduce", topology, op=op, values=values)
        proc = run_proc_collective("allreduce", topology, op=op, values=values)
        expected = expected_result(
            "allreduce", op, CombiningTree(16), values
        )
        assert nic.results == proc.results == expected

    def test_flat_star_tree(self):
        nic = run_nic_collective("reduce", Mesh2D(4, 4), arity=15)
        proc = run_proc_collective("reduce", Mesh2D(4, 4), arity=15)
        assert nic.results == proc.results
        assert nic.results[0] == sum(range(16))
        # Every combine happens at the root in the star.
        assert nic.events["combines"] == 15

    def test_rotated_root(self):
        nic = run_nic_collective("allreduce", Mesh2D(4, 4), root=9)
        proc = run_proc_collective("allreduce", Mesh2D(4, 4), root=9)
        expected = expected_result(
            "allreduce", "sum", CombiningTree(16, root=9), list(range(16))
        )
        assert nic.results == proc.results == expected

    def test_torus_topology(self):
        nic = run_nic_collective("barrier", Torus2D(4, 4))
        proc = run_proc_collective("barrier", Torus2D(4, 4))
        assert nic.results == proc.results
        assert set(nic.results.values()) == {16}

    def test_multiword_broadcast_uses_scatter_gather(self):
        payload = tuple(range(200, 211))
        values = [list(payload)] + [0] * 15
        nic = run_nic_collective("broadcast", Mesh2D(4, 4), values=values)
        proc = run_proc_collective("broadcast", Mesh2D(4, 4), values=values)
        assert nic.results == proc.results
        assert all(result == payload for result in nic.results.values())
        # Fragments (2 values each for type 0) outnumber tree edges.
        assert nic.fabric_delivered > 15


class TestDispatchFidelity:
    def test_uncongested_runs_ride_msg_ip_case_2(self):
        nic = run_nic_collective("allreduce", Mesh2D(4, 4))
        assert nic.dispatch.case2 == nic.events["handled"]
        assert nic.dispatch.boundary == 0

    def test_congestion_selects_boundary_table_slots(self):
        nic = run_nic_collective(
            "barrier",
            Mesh2D(4, 4),
            arity=15,
            iq_threshold=0,
            step_cycles=3,
        )
        assert nic.dispatch.boundary > 0
        assert all(iafull for iafull, _ in nic.dispatch.slots)
        # Boundary dispatch slows dispatch down but never changes results.
        assert nic.results == expected_result(
            "barrier", "sum", CombiningTree(16, arity=15), [0] * 16
        )

    def test_all_collective_traffic_is_type_0(self):
        from repro.collectives.engine import NicHandlerEngine, _FabricComponent
        from repro.network.fabric import Fabric
        from repro.sim import SimKernel

        fabric = Fabric(Mesh2D(4, 4))
        engine = NicHandlerEngine(fabric, CombiningTree(16), "allreduce")
        kernel = SimKernel()
        kernel.register(_FabricComponent(fabric))
        kernel.register(engine)
        for node in range(16):
            engine.enter(node, node)
        kernel.run(max_cycles=10_000)
        # Per-type fabric accounting: everything the collective moved was
        # a type-0 (MsgIp) message.
        assert engine.done
        assert fabric.stats.delivered_by_type == {0: fabric.stats.delivered}
        assert fabric.stats.hops_by_type == {0: fabric.stats.total_hops}


class TestProtocolErrors:
    def test_unknown_kind_and_op_rejected(self):
        with pytest.raises(CollectiveError):
            HandlerContext(0, CombiningTree(4), "gossip")
        with pytest.raises(CollectiveError):
            HandlerContext(0, CombiningTree(4), "reduce", op="xor2")

    def test_double_completion_rejected(self):
        ctx = HandlerContext(0, CombiningTree(1), "barrier")
        ctx.complete(1)
        with pytest.raises(CollectiveError):
            ctx.complete(2)

    def test_overparticipation_rejected(self):
        from repro.collectives.programs import enter

        ctx = HandlerContext(0, CombiningTree(1), "barrier")
        enter(ctx)
        with pytest.raises(CollectiveError):
            enter(ctx)


class TestPricing:
    def test_priced_costs_scale_with_events(self):
        small = run_nic_collective("barrier", Mesh2D(4, 4))
        large = run_nic_collective("barrier", Mesh2D(8, 8))
        p_small = price_run(small, OPTIMIZED_REGISTER)
        p_large = price_run(large, OPTIMIZED_REGISTER)
        assert p_large.nic_cycles > p_small.nic_cycles
        assert p_large.proc_cycles == 4 * p_small.proc_cycles  # n-proportional

    def test_basic_architecture_prices_higher(self):
        run = run_nic_collective("allreduce", Mesh2D(4, 4))
        by_key = {m.key: price_run(run, m) for m in ALL_MODELS}
        assert (
            by_key["basic-register"].nic_cycles
            > by_key["optimized-register"].nic_cycles
        )
