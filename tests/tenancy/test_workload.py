"""Tests for the heavy-tailed multi-tenant workload layer."""

import json

import pytest

from repro.errors import ProtectionError
from repro.tenancy.workload import (
    MAX_BURST,
    ROLE_FLOODER,
    ROLE_NORMAL,
    ROLE_VICTIM,
    MultiTenantRun,
    TenantSpec,
    build_schedule,
    make_tenants,
)


class TestMakeTenants:
    def test_roles_and_pins(self):
        tenants = make_tenants(64, 16, seed=7)
        assert len(tenants) == 64
        assert [spec.pin for spec in tenants] == list(range(1, 65))
        assert tenants[0].role == ROLE_FLOODER
        victims = [spec for spec in tenants if spec.role == ROLE_VICTIM]
        assert len(victims) == 64 // 8
        assert sum(spec.role == ROLE_NORMAL for spec in tenants) == 64 - 8 - 1

    def test_flooder_targets_hot_node(self):
        tenants = make_tenants(16, 8, seed=1, hot_node=3)
        flooder = tenants[0]
        assert flooder.distribution == "fixed"
        assert flooder.dest_weights[3] == 1.0
        assert sum(flooder.dest_weights) == 1.0
        assert all(source != 3 for source in flooder.sources)

    def test_victim_mix_concentrates_on_hot_node(self):
        tenants = make_tenants(32, 8, seed=2, victim_hot_weight=0.8)
        victim = next(s for s in tenants if s.role == ROLE_VICTIM)
        assert victim.dest_weights[0] == 0.8
        assert victim.dest_weights[victim.sources[0]] == 0.0

    def test_no_flooder_option(self):
        tenants = make_tenants(8, 4, seed=3, flooder=False)
        assert all(spec.role != ROLE_FLOODER for spec in tenants)

    def test_deterministic_per_seed(self):
        assert make_tenants(24, 8, seed=9) == make_tenants(24, 8, seed=9)
        assert make_tenants(24, 8, seed=9) != make_tenants(24, 8, seed=10)

    def test_rejects_degenerate_populations(self):
        with pytest.raises(ProtectionError):
            make_tenants(0, 4, seed=1)
        with pytest.raises(ProtectionError):
            make_tenants(4, 1, seed=1)


class TestBuildSchedule:
    def test_deterministic_and_order_independent(self):
        tenants = make_tenants(32, 8, seed=5)
        first = build_schedule(tenants, 2000, seed=5)
        again = build_schedule(tenants, 2000, seed=5)
        reordered = build_schedule(list(reversed(tenants)), 2000, seed=5)
        assert first == again == reordered
        assert first != build_schedule(tenants, 2000, seed=6)

    def test_arrivals_inside_window(self):
        tenants = make_tenants(16, 4, seed=4)
        schedule = build_schedule(tenants, 1000, seed=4)
        assert schedule
        assert all(1 <= a.cycle <= 1000 for a in schedule)
        assert schedule == sorted(schedule, key=lambda a: (a.cycle, a.pin))

    def test_sources_and_dests_drawn_from_spec(self):
        tenants = make_tenants(16, 4, seed=4)
        by_pin = {spec.pin: spec for spec in tenants}
        for arrival in build_schedule(tenants, 1000, seed=4):
            spec = by_pin[arrival.pin]
            assert arrival.source in spec.sources
            assert spec.dest_weights[arrival.dest] > 0

    def test_gap_distributions(self):
        for distribution in ("pareto", "lognormal", "fixed"):
            spec = TenantSpec(
                pin=1,
                role=ROLE_NORMAL,
                sources=(0,),
                dest_weights=(0.0, 1.0),
                distribution=distribution,
                gap_mean=50.0,
            )
            schedule = build_schedule([spec], 5000, seed=11)
            assert schedule, distribution
            assert all(a.dest == 1 for a in schedule)

    def test_unknown_distribution_rejected(self):
        spec = TenantSpec(
            pin=1,
            role=ROLE_NORMAL,
            sources=(0,),
            dest_weights=(0.0, 1.0),
            distribution="zipf",
            gap_mean=5.0,
        )
        with pytest.raises(ProtectionError):
            build_schedule([spec], 100, seed=1)

    def test_bursts_clamped(self):
        spec = TenantSpec(
            pin=1,
            role=ROLE_NORMAL,
            sources=(0,),
            dest_weights=(0.0, 1.0),
            gap_mean=200.0,
            burst_mean=16.0,
            burst_spacing=1,
        )
        schedule = build_schedule([spec], 20000, seed=2)
        # Count consecutive same-gap runs; no burst exceeds the clamp.
        longest = run = 1
        for prev, cur in zip(schedule, schedule[1:]):
            run = run + 1 if cur.cycle - prev.cycle == 1 else 1
            longest = max(longest, run)
        assert longest <= MAX_BURST


class TestMultiTenantRun:
    def make_run(self, scheduler="round-robin", **kwargs):
        kwargs.setdefault("width", 2)
        kwargs.setdefault("height", 2)
        kwargs.setdefault("gen_window", 600)
        kwargs.setdefault("horizon", 1200)
        n_nodes = kwargs["width"] * kwargs["height"]
        tenants = make_tenants(12, n_nodes, seed=3, gap_mean=400.0)
        return MultiTenantRun(scheduler, tenants, seed=3, **kwargs)

    def test_accounting_closes(self):
        run = self.make_run()
        run.run()
        payload = run.payload()
        table = payload["tenant_table"]
        assert payload["scheduled"] == sum(row["generated"] for row in table)
        assert payload["dispatched"] == sum(row["dispatched"] for row in table)
        for row in table:
            # Censoring closes the books: every generated message either
            # dispatched inside the horizon or aged out at it.
            assert row["generated"] == row["dispatched"] + row["censored"]
        assert 0.0 <= payload["completion"] <= 1.0

    def test_repeat_runs_byte_identical(self):
        first = self.make_run()
        first.run()
        second = self.make_run()
        second.run()
        assert json.dumps(first.tenant_table()) == json.dumps(
            second.tenant_table()
        )
        assert first.payload() == second.payload()

    def test_all_policies_run(self):
        for name in ("gang", "round-robin", "quantum"):
            run = self.make_run(scheduler=name)
            cycles = run.run()
            assert cycles >= 1
            assert run.payload()["scheduler"] == name

    def test_horizon_must_cover_window(self):
        with pytest.raises(ProtectionError):
            self.make_run(gen_window=600, horizon=500)

    def test_latencies_are_generation_to_dispatch(self):
        run = self.make_run(scheduler="gang")
        run.run()
        for row in run.tenant_table():
            if row["dispatched"] or row["censored"]:
                assert row["p99"] >= 0
                assert row["p99"] <= run.horizon
