"""Tests for the receive-side tenant scheduling policies."""

import pytest

from repro.errors import ProtectionError
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message
from repro.sim import SimKernel
from repro.tenancy.scheduler import (
    SCHEDULER_NAMES,
    GangTenantScheduler,
    QuantumScheduler,
    RoundRobinScheduler,
    SwitchCosts,
    make_scheduler,
)


def msg(pin=1, tag=0) -> Message:
    return Message(2, (0, tag, 0, 0, 0), pin=pin)


def make_ifaces(n=1, capacity=16):
    return [
        NetworkInterface(node=node, input_capacity=capacity)
        for node in range(n)
    ]


class TestConstruction:
    def test_pin_zero_rejected(self):
        with pytest.raises(ProtectionError):
            make_scheduler("round-robin", make_ifaces(), [0])

    def test_duplicate_pins_rejected(self):
        with pytest.raises(ProtectionError):
            make_scheduler("quantum", make_ifaces(), [1, 1])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ProtectionError):
            make_scheduler("bogus", make_ifaces(), [1])

    def test_needs_interfaces_and_tenants(self):
        with pytest.raises(ProtectionError):
            RoundRobinScheduler([], [1])
        with pytest.raises(ProtectionError):
            RoundRobinScheduler(make_ifaces(), [])

    def test_all_names_buildable(self):
        for name in SCHEDULER_NAMES:
            scheduler = make_scheduler(name, make_ifaces(2), [1, 2, 3])
            assert scheduler.name == name

    def test_attaches_to_every_interface(self):
        nis = make_ifaces(3)
        scheduler = make_scheduler("round-robin", nis, [1], tenant_cap=4)
        for ni in nis:
            assert ni.tenant_scheduler is scheduler
            assert ni.tenant_cap == 4


class TestDivertAccounting:
    def test_pin_divert_files_and_charges(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(
            nis, [1, 2], costs=SwitchCosts(switch_cycles=2, divert_cycles=4)
        )
        scheduler.bind(SimKernel())
        # Initial state diverts everything: no tenant resident, checking on.
        assert nis[0].deliver(msg(pin=2, tag=7))
        assert not nis[0].msg_valid
        assert scheduler.diverted_by_reason == {"pin": 1}
        assert scheduler.states[0].store.pending_count(2) == 1
        # The OS interrupt steals divert_cycles from the dispatch loop.
        assert scheduler.stalled(0, 0)
        assert scheduler.stalled(0, 3)
        assert not scheduler.stalled(0, 4)

    def test_charges_accumulate_per_divert(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(
            nis, [1], costs=SwitchCosts(switch_cycles=2, divert_cycles=4)
        )
        scheduler.bind(SimKernel())
        for tag in range(3):
            nis[0].deliver(msg(pin=1, tag=tag))
        assert scheduler.stalled(0, 11)
        assert not scheduler.stalled(0, 12)

    def test_cap_divert_not_charged(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(
            nis, [1], tenant_cap=1,
            costs=SwitchCosts(switch_cycles=2, divert_cycles=4),
        )
        scheduler.bind(SimKernel())
        ni = nis[0]
        ni.control["active_pin"] = 1  # pin 1 resident
        ni.deliver(msg(pin=1, tag=0))  # input registers
        ni.deliver(msg(pin=1, tag=1))  # queue: occupancy 1 == cap
        assert ni.deliver(msg(pin=1, tag=2))  # cap-diverted to the store
        assert scheduler.diverted_by_reason == {"cap": 1}
        # NIC-layer accounting interrupts nobody.
        assert not scheduler.stalled(0, 0)

    def test_unbound_scheduler_files_without_charging(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(nis, [1])
        nis[0].deliver(msg(pin=1))
        assert scheduler.states[0].store.pending_count(1) == 1
        assert not scheduler.stalled(0, 0)


class TestRoundRobin:
    def test_switch_charges_and_redelivers_in_order(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(
            nis, [1, 2], quantum=10,
            costs=SwitchCosts(switch_cycles=3, divert_cycles=0),
        )
        scheduler.bind(SimKernel())
        ni = nis[0]
        for tag in range(3):
            ni.deliver(msg(pin=2, tag=tag))
        scheduler.tick(1)
        assert ni.control["active_pin"] == 2
        assert scheduler.switches == 1
        assert scheduler.redelivered == 3
        # Switch window: charged from the rotation cycle.
        assert scheduler.stalled(0, 3)
        assert not scheduler.stalled(0, 4)
        # FIFO redelivery: oldest message reaches the input registers.
        assert ni.msg_valid
        assert ni.read_input(1) == 0
        ni.next()
        assert ni.read_input(1) == 1

    def test_rotation_is_work_conserving(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(nis, [1, 2, 3], quantum=10)
        scheduler.bind(SimKernel())
        scheduler.tick(1)
        # No stored work anywhere: no switch, no cost.
        assert scheduler.switches == 0
        assert not scheduler.stalled(0, 1)

    def test_rotation_skips_idle_tenants(self):
        nis = make_ifaces()
        scheduler = RoundRobinScheduler(
            nis, [1, 2, 3], quantum=10, costs=SwitchCosts(0, 0)
        )
        scheduler.bind(SimKernel())
        nis[0].deliver(msg(pin=3))
        scheduler.tick(1)
        assert nis[0].control["active_pin"] == 3

    def test_invalid_quantum(self):
        with pytest.raises(ProtectionError):
            RoundRobinScheduler(make_ifaces(), [1], quantum=0)


class TestQuantum:
    def test_picks_deepest_backlog(self):
        nis = make_ifaces()
        scheduler = QuantumScheduler(
            nis, [1, 2, 3], quantum=10, costs=SwitchCosts(0, 0)
        )
        scheduler.bind(SimKernel())
        ni = nis[0]
        ni.deliver(msg(pin=2, tag=0))
        for tag in range(2):
            ni.deliver(msg(pin=3, tag=tag))
        scheduler.tick(1)
        assert ni.control["active_pin"] == 3

    def test_preempts_idle_resident_before_quantum(self):
        nis = make_ifaces()
        scheduler = QuantumScheduler(
            nis, [1, 2, 3], quantum=1000, costs=SwitchCosts(0, 0)
        )
        scheduler.bind(SimKernel())
        ni = nis[0]
        for tag in range(2):
            ni.deliver(msg(pin=3, tag=tag))
        ni.deliver(msg(pin=2, tag=9))
        scheduler.tick(1)
        assert ni.control["active_pin"] == 3
        while ni.msg_valid:  # resident drains its redelivered work
            ni.next()
        scheduler.tick(2)  # quantum far from expired, but 3 went idle
        assert ni.control["active_pin"] == 2

    def test_busy_resident_keeps_slot_inside_quantum(self):
        nis = make_ifaces()
        scheduler = QuantumScheduler(
            nis, [1, 2], quantum=1000, costs=SwitchCosts(0, 0)
        )
        scheduler.bind(SimKernel())
        ni = nis[0]
        ni.deliver(msg(pin=1, tag=0))
        scheduler.tick(1)
        assert ni.control["active_pin"] == 1
        ni2_msg = msg(pin=2, tag=1)
        ni.deliver(ni2_msg)  # diverts: pin 2 now waits
        scheduler.tick(2)
        # Resident still holds its message and the quantum is open.
        assert ni.control["active_pin"] == 1


class TestGang:
    def make(self, n_nodes=2, **kwargs):
        nis = [NetworkInterface(node=n) for n in range(n_nodes)]
        kwargs.setdefault("costs", SwitchCosts(switch_cycles=2, divert_cycles=0))
        scheduler = GangTenantScheduler(nis, [1, 2], slice_cycles=20, **kwargs)
        scheduler.bind(SimKernel())
        return nis, scheduler

    def test_pin_checking_off(self):
        nis, _ = self.make()
        assert all(ni.control["pin_check"] == 0 for ni in nis)

    def test_idle_without_work(self):
        _, scheduler = self.make()
        scheduler.tick(0)
        assert scheduler.phase == scheduler.IDLE
        assert scheduler.injectable({1: 1, 2: 1}) == ()

    def test_slice_gates_injection_to_owner(self):
        nis, scheduler = self.make()
        backlog = {1: 5}
        scheduler.set_backlog_fn(lambda pin: backlog.get(pin, 0))
        scheduler.tick(0)
        assert scheduler.phase == scheduler.SWITCHING
        assert scheduler.stalled(0, 1)  # global switch window
        scheduler.tick(1)
        scheduler.tick(2)
        assert scheduler.phase == scheduler.ACTIVE
        assert scheduler.active_pin == 1
        assert scheduler.may_inject(1)
        assert not scheduler.may_inject(2)
        assert scheduler.injectable({1: 0, 2: 0}) == (1,)
        assert scheduler.injectable({2: 0}) == ()

    def test_slice_end_saves_undispatched_state(self):
        nis, scheduler = self.make()
        backlog = {1: 1}
        scheduler.set_backlog_fn(lambda pin: backlog.get(pin, 0))
        scheduler.tick(0)
        scheduler.tick(2)
        assert scheduler.phase == scheduler.ACTIVE
        backlog.clear()
        nis[0].deliver(msg(pin=1, tag=9))  # arrives, never dispatched
        scheduler.tick(22)  # slice_cycles elapsed
        assert scheduler.phase == scheduler.DRAINING
        scheduler.tick(23)  # fabric-less: network trivially quiet
        # end_slice saved the leftover message, and the work-conserving
        # rotation immediately grants pin 1 another slice.
        assert scheduler.gang.saved_message_count(1) == 1
        assert scheduler.phase == scheduler.SWITCHING

    def test_quiet_slice_ends_early(self):
        nis, scheduler = self.make()
        backlog = {1: 1}
        scheduler.set_backlog_fn(lambda pin: backlog.get(pin, 0))
        scheduler.tick(0)
        scheduler.tick(2)
        backlog.clear()  # nothing injected, interfaces and network quiet
        scheduler.tick(2 + scheduler.min_slice)
        assert scheduler.phase == scheduler.DRAINING

    def test_invalid_slice_length(self):
        with pytest.raises(ProtectionError):
            GangTenantScheduler(make_ifaces(), [1], slice_cycles=0)
