"""Tests for the multi-tenant serving QoS study."""

import json

import pytest

from repro.eval.multitenant import (
    compute_multitenant,
    multitenant_metrics,
    multitenant_params,
    render_multitenant,
)
from repro.exp.spec import EvalOptions

#: Reduced-scale overrides for the quick tests: same machine, same seed,
#: fewer tenants over a shorter horizon (~0.3s per policy).
QUICK = dict(n_tenants=96, gen_window=3000, horizon=4500, worst_rows=4)


def quick_params(**overrides):
    params = multitenant_params(EvalOptions())
    params.update(QUICK)
    params.update(overrides)
    return params


class TestParams:
    def test_default_scale_meets_study_floor(self):
        params = multitenant_params(EvalOptions())
        assert params["n_tenants"] >= 512
        assert params["width"] * params["height"] >= 16
        assert set(params["schedulers"]) == {"gang", "round-robin", "quantum"}

    def test_paper_scale_grows_population(self):
        default = multitenant_params(EvalOptions())
        paper = multitenant_params(EvalOptions(paper_scale=True))
        assert paper["n_tenants"] > default["n_tenants"]

    def test_registered(self):
        from repro.exp import registry

        registry.load_all()
        assert "multitenant" in registry.names()
        spec = registry.get("multitenant")
        assert spec.produces == ("runs", "victim_p99")


class TestQuickStudy:
    def test_repeat_tables_byte_identical(self):
        params = quick_params(schedulers=["round-robin"])
        first = compute_multitenant(params)
        second = compute_multitenant(params)
        table = first["runs"]["round-robin"]["tenant_table"]
        again = second["runs"]["round-robin"]["tenant_table"]
        assert json.dumps(table, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_victims_measurably_worse_under_round_robin(self):
        params = quick_params(schedulers=["gang", "round-robin"])
        payload = compute_multitenant(params)
        victim = payload["victim_p99"]
        assert victim["round-robin"] > victim["gang"]
        # The mechanism: only independent switching takes pin diverts.
        runs = payload["runs"]
        assert runs["round-robin"]["diverted"].get("pin", 0) > 0
        assert runs["gang"]["diverted"].get("pin", 0) == 0

    def test_render_and_metrics(self):
        params = quick_params(schedulers=["gang", "round-robin"])
        payload = compute_multitenant(params)
        report = render_multitenant(params, payload)
        assert "Victim analysis" in report
        assert "Worst victims" in report
        assert "gang" in report and "round-robin" in report
        metrics = multitenant_metrics(payload)
        for name in ("gang", "round-robin"):
            assert f"{name}_victim_p99" in metrics
            assert f"{name}_completion" in metrics


@pytest.mark.slow
class TestFullScaleStudy:
    def test_full_grid_victim_ordering(self):
        params = multitenant_params(EvalOptions())
        payload = compute_multitenant(params)
        victim = payload["victim_p99"]
        # The acceptance ordering: independent switching pays the
        # Section 2.1.3 interrupt per flood message, gang never does;
        # preemptive quantum switching lands in between.
        assert victim["round-robin"] > victim["quantum"] > victim["gang"]
        for run in payload["runs"].values():
            assert run["tenants"] == params["n_tenants"]
            assert run["nodes"] == params["width"] * params["height"]
