"""The hot-spot workload's stall diagnostics (ISSUE 4, satellite 2).

A run that exceeds its cycle bound must fail with the kernel's state
snapshot — per-sender remaining counts, queue occupancy, and in-flight
traffic — not a bare "exceeded MAX_CYCLES" string.
"""

import pytest

from repro.errors import NetworkError
from repro.eval import flowcontrol
from repro.exp.spec import EvalOptions


def test_stall_carries_component_snapshots(monkeypatch):
    # 50 cycles is far too few for any sender to finish: the run stalls
    # mid-flight with known-nonquiescent components to report on.
    monkeypatch.setattr(flowcontrol, "MAX_CYCLES", 50)
    params = flowcontrol.hotspot_params(EvalOptions())
    with pytest.raises(NetworkError) as err:
        flowcontrol.run_hotspot(params)
    message = str(err.value)
    assert "hot-spot workload" in message
    assert "within 50 cycles" in message
    assert "state at stall:" in message
    # Per-sender progress (satellite: per-sender remaining counts).
    assert "remaining=" in message
    # Fabric occupancy (in-flight count and queue depths).
    assert "fabric" in message
    assert "in_flight" in message


def test_successful_run_unaffected():
    params = flowcontrol.hotspot_params(EvalOptions())
    params["messages_per_sender"] = 4
    payload = flowcontrol.run_hotspot(params)
    assert payload["serviced"] == 4 * (params["width"] * params["height"] - 1)
