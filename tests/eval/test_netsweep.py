"""Tests for the topology x routing x load sweep."""

from repro.eval.netsweep import (
    FULL_CONFIGS,
    FULL_RATES,
    compute_netsweep,
    metric_name,
    netsweep_params,
    render_netsweep,
    sweep_metrics,
)
from repro.exp.spec import EvalOptions
from repro.network.routing import POLICY_NAMES

#: A tiny grid so the compute tests stay in tier-1 time.
TINY = {
    "configs": [("mesh", 16)],
    "policies": ["dimension-order", "escape-vc"],
    "rates": [0.05, 0.2],
    "pattern": "uniform",
    "seed": 7,
    "warmup_cycles": 20,
    "measure_cycles": 60,
}


def test_smoke_params_are_the_ci_grid():
    params = netsweep_params(EvalOptions())
    assert params["configs"] == [("mesh", 64)]
    assert params["policies"] == list(POLICY_NAMES)
    assert len(params["rates"]) == 3


def test_paper_scale_params_cover_64_and_256_nodes():
    params = netsweep_params(EvalOptions(paper_scale=True))
    assert params["configs"] == list(FULL_CONFIGS)
    assert {n for _, n in params["configs"]} == {64, 256}
    assert params["rates"] == list(FULL_RATES)
    assert len(params["rates"]) >= 4


def test_metric_names_are_distinct_per_cell():
    names = {
        metric_name(kind, n, policy, rate, "throughput")
        for kind, n in FULL_CONFIGS
        for policy in POLICY_NAMES
        for rate in FULL_RATES
    }
    assert len(names) == len(FULL_CONFIGS) * len(POLICY_NAMES) * len(FULL_RATES)
    assert metric_name("mesh", 64, "escape-vc", 0.2, "throughput") == (
        "mesh64_escape-vc_inj0.2_throughput"
    )


def test_compute_produces_one_curve_per_cell():
    payload = compute_netsweep(TINY)
    assert len(payload["curves"]) == len(TINY["policies"])
    for curve in payload["curves"]:
        assert len(curve["points"]) == len(TINY["rates"])
        assert curve["saturation_throughput"] > 0
        rates = [point["offered_rate"] for point in curve["points"]]
        assert rates == TINY["rates"]


def test_compute_is_deterministic_per_seed():
    assert compute_netsweep(TINY) == compute_netsweep(TINY)


def test_sweep_metrics_flatten_every_point():
    payload = compute_netsweep(TINY)
    metrics = sweep_metrics(payload)
    per_point = len(TINY["policies"]) * len(TINY["rates"])
    assert len(metrics) == 2 * per_point + len(TINY["policies"])
    assert "mesh16_dimension-order_inj0.05_throughput" in metrics
    assert "mesh16_escape-vc_inj0.2_latency" in metrics
    assert "mesh16_escape-vc_saturation" in metrics


def test_render_mentions_every_cell():
    payload = compute_netsweep(TINY)
    text = render_netsweep(TINY, payload)
    for policy in TINY["policies"]:
        assert policy in text
    assert "saturation" in text
