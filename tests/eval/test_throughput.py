"""Tests for the steady-state throughput report."""

import pytest

from repro.eval import (
    STANDARD_STREAM,
    collect_throughput as collect,
    render_throughput,
)


@pytest.fixture(scope="module")
def rows():
    return collect()


class TestThroughput:
    def test_all_models(self, rows):
        assert len(rows) == 6

    def test_handled_everything(self, rows):
        assert all(r.handled == len(STANDARD_STREAM) for r in rows)

    def test_rate_ordering(self, rows):
        by = {r.model_key: r.cycles_per_message for r in rows}
        assert by["optimized-register"] < by["optimized-onchip"]
        assert by["optimized-onchip"] < by["optimized-offchip"]
        assert by["basic-onchip"] < by["basic-offchip"]
        assert by["optimized-register"] < by["basic-register"]

    def test_register_rate_band(self, rows):
        by = {r.model_key: r.cycles_per_message for r in rows}
        # The mixed stream lands between the 2-cycle read and the
        # heavier send1 service on the register model.
        assert 2.0 <= by["optimized-register"] <= 4.0

    def test_speed_ratio_band(self, rows):
        by = {r.model_key: r.cycles_per_message for r in rows}
        ratio = by["basic-offchip"] / by["optimized-register"]
        assert 4.0 <= ratio <= 7.0

    def test_render(self, rows):
        text = render_throughput(rows)
        assert "cycles/message" in text
        assert "optimized-register" in text
