"""Figure 12 reproduction tests: the paper's shape claims, asserted.

The absolute cycle counts cannot match the paper (our TAM programs are
not the authors' Id binaries), but the claims its conclusions rest on are
asserted here as bands and orderings — see DESIGN.md's fidelity targets.
"""

import pytest

from repro.eval import headline_metrics, render_figure, run_program
from repro.impls.base import ALL_MODELS
from repro.tam.costmap import breakdown_all_models

MATMUL_N = 16
GAMTEB_PHOTONS = 32


@pytest.fixture(scope="module")
def matmul_breakdowns():
    return breakdown_all_models(run_program("matmul", size=MATMUL_N))


@pytest.fixture(scope="module")
def gamteb_breakdowns():
    return breakdown_all_models(run_program("gamteb", size=GAMTEB_PHOTONS))


def by_key(breakdowns):
    return {b.model_key: b for b in breakdowns}


class TestOrderings:
    @pytest.mark.parametrize("program", ["matmul", "gamteb"])
    def test_overhead_strictly_ordered_within_architecture(
        self, program, matmul_breakdowns, gamteb_breakdowns
    ):
        bd = by_key(matmul_breakdowns if program == "matmul" else gamteb_breakdowns)
        for arch in ("optimized", "basic"):
            assert (
                bd[f"{arch}-register"].overhead
                < bd[f"{arch}-onchip"].overhead
                < bd[f"{arch}-offchip"].overhead
            )

    @pytest.mark.parametrize("program", ["matmul", "gamteb"])
    def test_optimized_beats_basic_per_placement(
        self, program, matmul_breakdowns, gamteb_breakdowns
    ):
        bd = by_key(matmul_breakdowns if program == "matmul" else gamteb_breakdowns)
        for placement in ("register", "onchip", "offchip"):
            assert (
                bd[f"optimized-{placement}"].overhead
                < bd[f"basic-{placement}"].overhead
            )

    def test_slowest_optimized_beats_fastest_basic_matmul(self, matmul_breakdowns):
        """The paper's headline ordering, asserted for matrix multiply.

        (For our Gamteb mix the comparison is a near-tie — recorded in
        EXPERIMENTS.md rather than asserted.)
        """
        metrics = headline_metrics(matmul_breakdowns)
        assert metrics.optimized_always_beats_basic

    def test_optimizations_matter_more_than_placement_matmul(
        self, matmul_breakdowns
    ):
        """'hardware optimizations ... are more important than placement'."""
        bd = by_key(matmul_breakdowns)
        placement_gain = (
            bd["basic-offchip"].overhead - bd["basic-register"].overhead
        )
        optimization_gain = (
            bd["basic-offchip"].overhead - bd["optimized-offchip"].overhead
        )
        assert optimization_gain > placement_gain


class TestBands:
    @pytest.mark.parametrize("program", ["matmul", "gamteb"])
    def test_overhead_reduction_band(
        self, program, matmul_breakdowns, gamteb_breakdowns
    ):
        """Aggregate overhead reduction: paper ~5x; our leaner presence-bit
        runtime compresses it — assert the 2.5x-6x band."""
        bd = matmul_breakdowns if program == "matmul" else gamteb_breakdowns
        metrics = headline_metrics(bd)
        assert 2.5 <= metrics.overhead_reduction <= 6.0

    @pytest.mark.parametrize("program", ["matmul", "gamteb"])
    def test_total_reduction_band(
        self, program, matmul_breakdowns, gamteb_breakdowns
    ):
        """Total execution cut: paper ~40%; assert 25%-65%."""
        bd = matmul_breakdowns if program == "matmul" else gamteb_breakdowns
        metrics = headline_metrics(bd)
        assert 25.0 <= metrics.total_reduction_percent <= 65.0

    @pytest.mark.parametrize("program", ["matmul", "gamteb"])
    def test_overhead_share_shrinks_substantially(
        self, program, matmul_breakdowns, gamteb_breakdowns
    ):
        bd = matmul_breakdowns if program == "matmul" else gamteb_breakdowns
        metrics = headline_metrics(bd)
        assert (
            metrics.overhead_fraction_optimized_register
            < 0.75 * metrics.overhead_fraction_basic_offchip
        )

    def test_dispatch_component_reduction_is_large(self, matmul_breakdowns):
        """Per-component, dispatch shrinks ~8x ('as much as five fold')."""
        bd = by_key(matmul_breakdowns)
        ratio = bd["basic-offchip"].dispatch / bd["optimized-register"].dispatch
        assert ratio >= 5.0


class TestCompute:
    def test_compute_constant_across_models(self, matmul_breakdowns):
        assert len({b.compute for b in matmul_breakdowns}) == 1

    def test_all_models_present(self, matmul_breakdowns):
        assert {b.model_key for b in matmul_breakdowns} == {
            m.key for m in ALL_MODELS
        }


class TestRendering:
    def test_render_contains_models_and_metrics(self):
        stats = run_program("matmul", size=8)
        text = render_figure("matmul", stats)
        assert "optimized-register" in text
        assert "basic-offchip" in text
        assert "overhead" in text
        assert "flops/message" in text

    def test_paper_cost_source_renders(self):
        stats = run_program("gamteb", size=8)
        text = render_figure("gamteb", stats, source="paper")
        assert "paper" in text
