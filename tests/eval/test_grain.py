"""Tests for the grain-size sensitivity study."""

import pytest

from repro.eval import crossover_grain, grain_sweep as sweep, render_grain


@pytest.fixture(scope="module")
def results():
    return sweep((1, 10, 100))


class TestGrainSweep:
    def test_overhead_share_shrinks_with_grain(self, results):
        fractions = [r.overhead_fraction_basic_offchip for r in results]
        assert fractions[0] > fractions[-1]

    def test_optimized_always_lower_share(self, results):
        for r in results:
            assert (
                r.overhead_fraction_optimized_register
                < r.overhead_fraction_basic_offchip
            )

    def test_speedup_approaches_one(self, results):
        assert results[-1].speedup_basic_to_optimized < results[0].speedup_basic_to_optimized
        assert results[-1].speedup_basic_to_optimized >= 1.0

    def test_crossover_reporting(self, results):
        crossings = crossover_grain(results, threshold=0.2)
        # The optimized model reaches any threshold no later than basic.
        if "basic-offchip" in crossings and "optimized-register" in crossings:
            assert (
                crossings["optimized-register"] <= crossings["basic-offchip"]
            )

    def test_render(self, results):
        text = render_grain(results)
        assert "flops/message" in text
        assert "§4.2.2" in text or "4.2.2" in text
