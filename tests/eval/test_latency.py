"""Tests for the off-chip latency sensitivity study (Section 4.2.3)."""

import pytest

from repro.eval import (
    cost_table_at_latency,
    latency_sweep as sweep,
    relative_overheads,
    render_sweep,
    run_program,
)


@pytest.fixture(scope="module")
def matmul_stats():
    return run_program("matmul", size=16)


class TestCostTablesAtLatency:
    def test_baseline_matches_default(self):
        from repro.tam.costmap import measured_cost_table

        at2 = cost_table_at_latency(2)
        default = measured_cost_table("optimized-offchip")
        assert at2.dispatch == default.dispatch
        assert at2.processing == default.processing
        assert at2.sending == default.sending

    def test_sending_immune_to_latency(self):
        # Sends are stores; read latency never touches them.
        assert cost_table_at_latency(2).sending == cost_table_at_latency(16).sending

    def test_processing_grows_with_latency(self):
        at2 = cost_table_at_latency(2)
        at8 = cost_table_at_latency(8)
        assert at8.processing["read"] > at2.processing["read"]
        assert at8.processing["send0"] > at2.processing["send0"]

    def test_dispatch_grows_beyond_maskable_window(self):
        assert cost_table_at_latency(8).dispatch > cost_table_at_latency(2).dispatch


class TestSweep:
    def test_overhead_monotonic_in_latency(self, matmul_stats):
        points = sweep(matmul_stats, latencies=(2, 4, 8, 16))
        overheads = [p.overhead for p in points]
        assert overheads == sorted(overheads)
        assert overheads[0] < overheads[-1]

    def test_paper_doubling_claim(self, matmul_stats):
        """'If the latency is increased to 8 cycles instead of 2, then the
        communication costs of the off-chip optimized model will double.'"""
        ratios = relative_overheads(sweep(matmul_stats, latencies=(2, 8)))
        assert 1.7 <= ratios[8] <= 2.3

    def test_baseline_ratio_is_one(self, matmul_stats):
        ratios = relative_overheads(sweep(matmul_stats, latencies=(2, 4)))
        assert ratios[2] == pytest.approx(1.0)

    def test_render(self, matmul_stats):
        text = render_sweep("matmul", sweep(matmul_stats, latencies=(2, 8)))
        assert "latency" in text
        assert "2-cycle baseline" in text
