"""Tests for the collectives evaluation section."""

import pytest

from repro.errors import EvaluationError
from repro.eval.collectives import (
    collectives_metrics,
    collectives_params,
    compute_collectives,
    metric_name,
    render_collectives,
)
from repro.exp.spec import EvalOptions

#: A tiny grid so the compute tests stay in tier-1 time.
TINY = {
    "node_counts": [16],
    "kinds": ["barrier", "allreduce"],
    "arities": [2],
    "op": "sum",
    "model_keys": ["optimized-register", "basic-register"],
}


def test_smoke_params_are_the_ci_grid():
    params = collectives_params(EvalOptions())
    assert params["node_counts"] == [16]
    assert len(params["kinds"]) == 4
    assert params["arities"] == [2]


def test_paper_scale_covers_the_node_ladder_and_flat_trees():
    params = collectives_params(EvalOptions(paper_scale=True))
    assert params["node_counts"] == [16, 64, 256]
    assert "flat" in params["arities"]
    assert len(params["model_keys"]) == 6


def test_metric_names_are_distinct_per_cell():
    names = {
        metric_name(kind, n, arity, "overlap")
        for kind in ("barrier", "allreduce")
        for n in (16, 64)
        for arity in (2, "flat")
    }
    assert len(names) == 8
    assert metric_name("allreduce", 64, 2, "overlap") == "coll_allreduce64_a2_overlap"


def test_compute_runs_both_variants_per_cell():
    payload = compute_collectives(TINY)
    assert len(payload["cells"]) == 2
    for cell in payload["cells"]:
        assert cell["results_identical"]
        assert set(cell["priced"]) == set(TINY["model_keys"])
        for priced in cell["priced"].values():
            assert priced["nic_proc_cycles"] < priced["proc_proc_cycles"]
            assert 0 < priced["nic_overlap"] < 1
        assert cell["case2_dispatches"] == cell["events"]["handled"]
        assert cell["boundary_dispatches"] == 0


def test_compute_is_deterministic():
    assert compute_collectives(TINY) == compute_collectives(TINY)


def test_metrics_flatten_the_optimized_register_pricing():
    payload = compute_collectives(TINY)
    metrics = collectives_metrics(payload)
    assert len(metrics) == 3 * len(payload["cells"])
    assert "coll_barrier16_a2_overlap" in metrics
    assert "coll_allreduce16_a2_nic_proc_cycles" in metrics


def test_render_mentions_every_cell():
    payload = compute_collectives(TINY)
    text = render_collectives(TINY, payload)
    for kind in TINY["kinds"]:
        assert kind in text
    assert "overlap" in text


def test_non_square_node_count_rejected():
    bad = dict(TINY, node_counts=[18])
    with pytest.raises(EvaluationError):
        compute_collectives(bad)


def test_registered_in_the_experiment_registry():
    from repro.exp import registry

    registry.load_all()
    assert "collectives" in registry.names()
    spec = registry.get("collectives")
    assert spec.produces == ("op", "models", "cells")
