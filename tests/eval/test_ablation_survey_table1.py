"""Tests for the ablation, survey, and Table 1 report harnesses."""

import pytest

from repro.eval import (
    ABLATIONS,
    collect_rows,
    render_ablation,
    render_report,
    render_survey,
    run_ablation,
    run_program,
)
from repro.eval.table1 import format_cell
from repro.survey.models import SURVEY, survey_principles_satisfied


@pytest.fixture(scope="module")
def matmul_stats():
    return run_program("matmul", size=16)


@pytest.fixture(scope="module")
def ablation_rows(matmul_stats):
    return run_ablation(matmul_stats)


class TestAblation:
    def test_all_variants_and_placements(self, ablation_rows):
        assert len(ablation_rows) == 3 * len(ABLATIONS)

    def test_each_feature_helps(self, ablation_rows):
        by = {(r.placement, r.variant): r.result for r in ablation_rows}
        for placement in ("register", "onchip", "offchip"):
            basic = by[(placement, "basic")].overhead
            for feature in ("+dispatch", "+types", "+reply/forward"):
                assert by[(placement, feature)].overhead < basic

    def test_dispatch_is_the_biggest_single_win(self, ablation_rows):
        """Matches the paper: most dispatch savings come from MsgIp."""
        by = {(r.placement, r.variant): r.result for r in ablation_rows}
        for placement in ("register", "onchip", "offchip"):
            basic = by[(placement, "basic")].overhead
            gains = {
                feature: basic - by[(placement, feature)].overhead
                for feature in ("+dispatch", "+types", "+reply/forward")
            }
            assert gains["+dispatch"] == max(gains.values())

    def test_full_bundle_beats_every_single_feature(self, ablation_rows):
        by = {(r.placement, r.variant): r.result for r in ablation_rows}
        for placement in ("register", "onchip", "offchip"):
            optimized = by[(placement, "optimized")].overhead
            for feature in ("+dispatch", "+types", "+reply/forward"):
                assert optimized < by[(placement, feature)].overhead

    def test_render(self, matmul_stats, ablation_rows):
        text = render_ablation("matmul", ablation_rows)
        assert "+dispatch" in text and "overhead saved" in text


class TestSurvey:
    def test_render_lists_cited_machines(self):
        text = render_survey()
        for name in ("iPSC/2", "CM-5", "MDP"):
            assert name in text
        assert "this work" in text

    def test_os_dma_orders_of_magnitude_slower(self):
        cycles = {i.name: i.cycles() for i in SURVEY}
        assert cycles["iPSC/2"] > 100 * cycles["CM-5"]

    def test_principles_scoring(self):
        by_name = {i.name: i for i in SURVEY}
        assert survey_principles_satisfied(by_name["iPSC/2"]) == 1
        assert survey_principles_satisfied(by_name["MDP (J-Machine)"]) == 4
        # Register-mapped but no general message-passing model: loses one.
        assert (
            survey_principles_satisfied(by_name["CM-2 grid / iWARP systolic"]) == 3
        )


class TestTable1Report:
    @pytest.fixture(scope="class")
    def rows(self):
        return collect_rows()

    def test_row_count(self, rows):
        # 7 sending + 1 dispatch + 10 processing.
        assert len(rows) == 18

    def test_exact_rows_all_match(self, rows):
        for row in rows:
            if row.exact_expected:
                assert row.matches(), (row.section, row.case, row.measured)

    def test_structural_rows_never_exceed_paper(self, rows):
        """Our leaner runtime must not be *slower* than the paper's."""
        for row in rows:
            if row.exact_expected or row.case == "pwrite_deferred":
                continue
            for key, measured in row.measured.items():
                paper = row.paper[key]
                assert measured <= paper + 1, (row.case, key, measured, paper)

    def test_format_cell(self):
        assert format_cell("sending", "send1", 4) == "4"
        assert format_cell("sending", "send1", (2, 3)) == "2-3"
        assert format_cell("sending", "send1", (2, 2)) == "2"
        assert format_cell("processing", "pwrite_deferred", (15, 6)) == "15+6n"

    def test_render_report(self, rows):
        text = render_report(rows)
        assert "DISPATCH" in text
        assert "exact" in text
        assert "structural" in text
        assert "MISMATCH" not in text


class TestJsonExport:
    def test_records_roundtrip(self):
        import json

        from repro.eval import rows_as_records

        records = rows_as_records(collect_rows())
        assert len(records) == 18
        # Serialisable and faithful.
        parsed = json.loads(json.dumps(records))
        assert parsed[0]["action"] == "sending"
        exact = sum(1 for r in parsed if r["exact"])
        assert exact >= 12
