"""Tests for the end-to-end operation cost report."""

import pytest

from repro.eval import (
    collect_roundtrips as collect,
    render_roundtrips,
    roundtrip_cost,
)
from repro.eval.roundtrip import OPERATIONS
from repro.tam.costmap import measured_cost_table, paper_cost_table


@pytest.fixture(scope="module")
def rows():
    return collect()


class TestRoundtrips:
    def test_all_operations_present(self, rows):
        assert [r.operation for r in rows] == list(OPERATIONS)

    def test_remote_read_five_fold(self, rows):
        """The paper's 'five fold' claim, per operation: a complete remote
        read round trip is ~5x cheaper on the optimized register model."""
        read = next(r for r in rows if r.operation == "read")
        assert 4.5 <= read.reduction <= 5.5

    def test_remote_read_five_fold_with_paper_prices(self):
        read = next(r for r in collect(source="paper") if r.operation == "read")
        assert 4.5 <= read.reduction <= 5.5

    def test_every_operation_improves(self, rows):
        for row in rows:
            assert row.reduction > 1.5, row.operation

    def test_ordering_within_each_row(self, rows):
        for row in rows:
            c = row.cycles
            assert c["optimized-register"] <= c["optimized-onchip"]
            assert c["optimized-onchip"] <= c["optimized-offchip"]
            assert c["basic-register"] <= c["basic-onchip"]
            assert c["basic-onchip"] <= c["basic-offchip"]
            assert c["optimized-register"] < c["basic-register"]

    def test_roundtrip_cost_arithmetic(self):
        table = measured_cost_table("optimized-onchip")
        assert roundtrip_cost(table, "write") == (
            table.sending["write"] + table.dispatch + table.processing["write"]
        )
        assert roundtrip_cost(table, "read") == (
            table.sending["read"]
            + 2 * table.dispatch
            + table.processing["read"]
            + table.processing["send1"]
        )

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            roundtrip_cost(paper_cost_table("optimized-register"), "teleport")

    def test_render(self, rows):
        text = render_roundtrips(rows)
        assert "read" in text and "basic-off / opt-reg" in text
