"""Golden regression: dimension-order routing is byte-identical.

The routing layer became pluggable (``repro.network.routing``); this
pins the refactor's central promise — the default :class:`DimensionOrder`
policy reproduces the pre-refactor fabric bit for bit.  The golden
payload below is the Section 2.1.1 hot-spot experiment's full output,
captured on the last commit before the routing layer existed.  Every
counter must match exactly: a one-cycle drift anywhere in the router's
buffer keys, the credit snapshot, or the arbitration order shows up here.
"""

from repro.eval.flowcontrol import hotspot_params, run_hotspot
from repro.exp.spec import EvalOptions
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import Tracer

#: run_hotspot(hotspot_params(EvalOptions())) on the pre-routing-layer
#: tree, with observability attached and the trace summary dropped.
GOLDEN_HOTSPOT = {
    "blocked_moves": 18668,
    "chain": {
        "first_refused_delivery": 15,
        "first_send_stall": 37,
        "first_sender_oq_almost_full": 32,
        "hot_iq_almost_full": 13,
    },
    "cycles": 2400,
    "delivered": 300,
    "deliveries_refused": 2024,
    "ejected": 300,
    "forwarded": 960,
    "hot_iq": {
        "peak_depth": 8,
        "pops": 300,
        "pushes": 300,
        "rejected": 0,
        "threshold_crossings": 1,
    },
    "injected": 300,
    "mean_hops": 3.2,
    "mean_latency": 345.437,
    "offered": 300,
    "peak_in_flight": 90,
    "refused": 2024,
    "send_stalls": 5154,
    "sender_oq_crossings": 14,
    "sender_oq_peak": 8,
    "sends": 300,
    "serviced": 300,
}


def test_hotspot_payload_matches_pre_refactor_golden():
    params = hotspot_params(EvalOptions())
    payload = run_hotspot(params, tracer=Tracer(), metrics=MetricsRecorder())
    payload.pop("trace", None)
    assert payload == GOLDEN_HOTSPOT
