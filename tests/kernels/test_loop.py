"""Tests for the composed service loop: Table 1 phases compose exactly."""

import pytest

from repro.errors import EvaluationError
from repro.impls.base import ALL_MODELS, OPTIMIZED_ON_CHIP, OPTIMIZED_REGISTER
from repro.kernels.harness import measure_dispatch, measure_processing
from repro.kernels.loop import build_service_loop, measure_stream

STREAM = ["read", "write", "send1", "read", "write"]


def expected_cycles(model, stream):
    idle_tail = measure_stream(model, []).cycles
    return (
        sum(
            measure_dispatch(model).cycles + measure_processing(name, model).cycles
            for name in stream
        )
        + idle_tail
    )


class TestComposition:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_loop_equals_sum_of_table1_phases(self, model):
        """The central consistency check: dispatch and processing compose
        with zero interaction slack under every model."""
        measurement = measure_stream(model, STREAM)
        assert measurement.handled == len(STREAM)
        assert measurement.cycles == expected_cycles(model, STREAM)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_empty_stream_just_polls(self, model):
        measurement = measure_stream(model, [])
        assert measurement.handled == 0
        # The idle poll is a handful of cycles, not a runaway loop.
        assert 1 <= measurement.cycles <= 10

    def test_two_instruction_steady_state(self):
        """At steady state the optimized register model spends two
        instructions per remote read — the paper's headline, in a loop."""
        reads = ["read"] * 10
        measurement = measure_stream(OPTIMIZED_REGISTER, reads)
        idle = measure_stream(OPTIMIZED_REGISTER, []).cycles
        assert (measurement.cycles - idle) / len(reads) == 2.0

    def test_homogeneous_write_stream(self):
        measurement = measure_stream(OPTIMIZED_ON_CHIP, ["write"] * 8)
        idle = measure_stream(OPTIMIZED_ON_CHIP, []).cycles
        per_message = (measurement.cycles - idle) / 8
        assert per_message == (
            measure_dispatch(OPTIMIZED_ON_CHIP).cycles
            + measure_processing("write", OPTIMIZED_ON_CHIP).cycles
        )

    def test_ordering_preserved_under_load(self):
        # All models handle the same stream; relative speed matches Table 1.
        totals = {
            model.key: measure_stream(model, STREAM).cycles for model in ALL_MODELS
        }
        assert totals["optimized-register"] < totals["optimized-onchip"]
        assert totals["optimized-onchip"] < totals["optimized-offchip"]
        assert totals["basic-register"] < totals["basic-onchip"]
        assert totals["optimized-offchip"] < totals["basic-offchip"]


class TestGuards:
    def test_two_send_handlers_rejected(self):
        with pytest.raises(EvaluationError):
            build_service_loop(OPTIMIZED_REGISTER, ("send0", "send1"))

    def test_labelled_handlers_rejected(self):
        with pytest.raises(EvaluationError):
            build_service_loop(OPTIMIZED_REGISTER, ("pread_full",))

    def test_stream_length_capped(self):
        with pytest.raises(EvaluationError):
            measure_stream(OPTIMIZED_REGISTER, ["write"] * 61)

    def test_unknown_stream_message(self):
        with pytest.raises(EvaluationError):
            measure_stream(OPTIMIZED_REGISTER, ["teleport"])


class TestFunctionalEffects:
    def test_replies_and_writes_happen(self):
        from repro.kernels.harness import ADDR_LOCAL, MEMORY_WORD, VALUE_A, _fresh_machine
        from repro.kernels.loop import build_service_loop

        # measure_stream hides the machine; re-run at a lower level to
        # inspect effects.
        model = OPTIMIZED_ON_CHIP
        loop = build_service_loop(model)
        machine = _fresh_machine(model)
        machine.memory.store(ADDR_LOCAL, MEMORY_WORD)
        from repro.kernels.harness import _deliver_processing_message

        _deliver_processing_message(machine, "read", False)
        _deliver_processing_message(machine, "write", False)
        machine.run(loop.sequence, resolve_jump=loop.resolve_jump)
        # One reply (from the read), and the write landed.
        reply = machine.interface.transmit()
        assert reply is not None and reply.word(2) == MEMORY_WORD
        assert machine.interface.transmit() is None
        assert machine.memory.load(ADDR_LOCAL) == VALUE_A  # write overwrote


class TestBoundaryConditionVersions:
    """Long streams trip iafull mid-run; dispatch still lands correctly."""

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_long_stream_crosses_thresholds(self, model):
        stream = ["read", "write", "send1"] * 14  # 42 > iq_threshold of 12
        measurement = measure_stream(model, stream)
        assert measurement.handled == len(stream)
        assert measurement.cycles == expected_cycles(model, stream)

    def test_type0_boundary_fallback(self):
        # A pure type-0 stream deep enough to trip iafull: the hardware
        # abandons the IP-in-message fast path and dispatches through the
        # table's slot-0 boundary versions (Figure 7 case 1).
        measurement = measure_stream(OPTIMIZED_ON_CHIP, ["send1"] * 40)
        assert measurement.handled == 40
