"""Tests for kernel construction, listings, and error handling."""

import pytest

from repro.errors import EvaluationError
from repro.impls.base import (
    ALL_MODELS,
    BASIC_ON_CHIP,
    OPTIMIZED_OFF_CHIP,
    OPTIMIZED_REGISTER,
)
from repro.kernels.sequences import (
    PROCESSING_CASES,
    SENDING_MESSAGES,
    dispatch_kernel,
    processing_kernel,
    sending_kernel,
)


class TestKernelConstruction:
    @pytest.mark.parametrize("message", SENDING_MESSAGES)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_sending_builds(self, message, model):
        kernel = sending_kernel(message, model)
        assert len(kernel.sequence) >= 0
        assert model.key in kernel.name

    @pytest.mark.parametrize("case", PROCESSING_CASES)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_processing_builds(self, case, model):
        kernel = processing_kernel(case, model)
        assert len(kernel.sequence) > 0

    def test_unknown_sending_message(self):
        with pytest.raises(EvaluationError):
            sending_kernel("nope", OPTIMIZED_REGISTER)

    def test_unknown_processing_case(self):
        with pytest.raises(EvaluationError):
            processing_kernel("nope", OPTIMIZED_REGISTER)

    def test_unknown_variant(self):
        with pytest.raises(EvaluationError):
            sending_kernel("send0", OPTIMIZED_REGISTER, variant="median")

    def test_best_variant_only_differs_for_register(self):
        # Memory-mapped placements have one schedule regardless of variant.
        a = sending_kernel("send2", BASIC_ON_CHIP, "best").sequence
        b = sending_kernel("send2", BASIC_ON_CHIP, "worst").sequence
        assert len(a) == len(b)

    def test_best_variant_shorter_for_register(self):
        best = sending_kernel("send2", OPTIMIZED_REGISTER, "best")
        worst = sending_kernel("send2", OPTIMIZED_REGISTER, "worst")
        assert len(best.sequence) < len(worst.sequence)
        assert best.preload_outputs  # the harness supplies the in-place values


class TestListings:
    def test_listing_contains_riders(self):
        kernel = processing_kernel("read", OPTIMIZED_REGISTER)
        listing = kernel.sequence.listing()
        assert "SEND-reply" in listing
        assert "NEXT" in listing

    def test_listing_shows_masking(self):
        kernel = dispatch_kernel(OPTIMIZED_OFF_CHIP)
        listing = kernel.sequence.listing()
        assert "latency masked" in listing
        assert "slot filled" in listing

    def test_listing_has_labels(self):
        kernel = processing_kernel("pread_full", OPTIMIZED_REGISTER)
        assert "defer:" in kernel.sequence.listing()

    def test_flagship_register_read_is_one_line(self):
        kernel = processing_kernel("read", OPTIMIZED_REGISTER)
        assert len(kernel.sequence) == 1

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_every_kernel_renders(self, model):
        for message in SENDING_MESSAGES:
            assert sending_kernel(message, model).sequence.listing()
        for case in PROCESSING_CASES:
            assert processing_kernel(case, model).sequence.listing()
        assert dispatch_kernel(model).sequence.listing()
