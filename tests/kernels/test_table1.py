"""Table 1 reproduction tests: exact rows, structural rows, orderings.

Every measurement here also *functionally verifies* the kernel (the
harness checks the transmitted words, memory effects, and I-structure
transitions and raises on any mismatch), so these tests cover semantics
and timing together.
"""

import pytest

from repro.impls.base import (
    ALL_MODELS,
    BASIC_OFF_CHIP,
    BASIC_ON_CHIP,
    BASIC_REGISTER,
    OPTIMIZED_OFF_CHIP,
    OPTIMIZED_ON_CHIP,
    OPTIMIZED_REGISTER,
)
from repro.isa.machine import Placement
from repro.kernels import expected as X
from repro.kernels.harness import (
    measure_dispatch,
    measure_processing,
    measure_pwrite_deferred_line,
    measure_sending,
)
from repro.kernels.sequences import PROCESSING_CASES, SENDING_MESSAGES

ARCH_TRIPLES = {
    "optimized": (OPTIMIZED_REGISTER, OPTIMIZED_ON_CHIP, OPTIMIZED_OFF_CHIP),
    "basic": (BASIC_REGISTER, BASIC_ON_CHIP, BASIC_OFF_CHIP),
}


def sending_cell(message, model):
    if model.placement is Placement.REGISTER:
        lo = measure_sending(message, model, "best").cycles
        hi = measure_sending(message, model, "worst").cycles
        return (lo, hi) if lo != hi else lo
    return measure_sending(message, model).cycles


class TestSendingExact:
    @pytest.mark.parametrize("message", SENDING_MESSAGES)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_matches_paper(self, message, model):
        assert sending_cell(message, model) == X.SENDING_PAPER[message][model.key]

    def test_mm_columns_equal(self):
        # Sending is all stores: the off-chip latency never bites, so the
        # paper's on-chip and off-chip SENDING columns are identical.
        for message in SENDING_MESSAGES:
            for arch in ("optimized", "basic"):
                _, on, off = ARCH_TRIPLES[arch]
                assert sending_cell(message, on) == sending_cell(message, off)


class TestDispatchExact:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_matches_paper(self, model):
        assert measure_dispatch(model).cycles == X.DISPATCH_PAPER[model.key]

    def test_hardware_dispatch_beats_software_everywhere(self):
        # "Even the slowest optimized implementation is better than the
        # fastest unoptimized implementation" holds for dispatch alone.
        slowest_optimized = max(
            measure_dispatch(m).cycles for m in ALL_MODELS if m.optimized
        )
        fastest_basic = min(
            measure_dispatch(m).cycles for m in ALL_MODELS if not m.optimized
        )
        assert slowest_optimized < fastest_basic


class TestProcessingExactRows:
    @pytest.mark.parametrize("case", ["send0", "send1", "send2", "read"])
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.key)
    def test_matches_paper(self, case, model):
        assert (
            measure_processing(case, model).cycles
            == X.PROCESSING_PAPER[case][model.key]
        )

    def test_remote_read_two_instructions_total(self):
        # The headline claim: dispatch + process + reply to a remote read
        # in a total of two RISC instructions on the register model.
        dispatch = measure_dispatch(OPTIMIZED_REGISTER)
        processing = measure_processing("read", OPTIMIZED_REGISTER)
        assert dispatch.instructions + processing.instructions == 2
        assert dispatch.cycles + processing.cycles == 2


class TestProcessingWrite:
    def test_register_and_onchip_exact(self):
        for model in (
            OPTIMIZED_REGISTER,
            OPTIMIZED_ON_CHIP,
            BASIC_REGISTER,
            BASIC_ON_CHIP,
        ):
            assert (
                measure_processing("write", model).cycles
                == X.PROCESSING_PAPER["write"][model.key]
            )

    def test_offchip_within_one_cycle_of_paper(self):
        # The paper's 4 implies late store-data consumption; our model
        # charges the conservative 5.  Documented in EXPERIMENTS.md.
        for model in (OPTIMIZED_OFF_CHIP, BASIC_OFF_CHIP):
            measured = measure_processing("write", model).cycles
            paper = X.PROCESSING_PAPER["write"][model.key]
            assert paper <= measured <= paper + 1


class TestPresenceBitStructure:
    """The structural facts the paper's argument rests on, for P-ops."""

    def test_pread_full_basic_minus_optimized_deltas_match_paper(self):
        for placement in ("register", "onchip", "offchip"):
            basic = measure_processing(
                "pread_full", ARCH_TRIPLES["basic"][_pidx(placement)]
            ).cycles
            optimized = measure_processing(
                "pread_full", ARCH_TRIPLES["optimized"][_pidx(placement)]
            ).cycles
            paper_delta = (
                X.PROCESSING_PAPER["pread_full"][f"basic-{placement}"]
                - X.PROCESSING_PAPER["pread_full"][f"optimized-{placement}"]
            )
            assert basic - optimized == paper_delta

    def test_pread_defer_paths_identical_across_architectures(self):
        # No reply is sent when deferring, so basic == optimized (paper
        # shows the same equality in its empty/deferred rows).
        for placement_index in range(3):
            basic = ARCH_TRIPLES["basic"][placement_index]
            optimized = ARCH_TRIPLES["optimized"][placement_index]
            for case in ("pread_empty", "pread_deferred"):
                b = measure_processing(case, basic).cycles
                o = measure_processing(case, optimized).cycles
                assert abs(b - o) <= 1, (case, basic.key, b, o)

    def test_pwrite_empty_equal_across_architectures(self):
        for placement_index in range(3):
            basic = ARCH_TRIPLES["basic"][placement_index]
            optimized = ARCH_TRIPLES["optimized"][placement_index]
            assert (
                measure_processing("pwrite_empty", basic).cycles
                == measure_processing("pwrite_empty", optimized).cycles
            )

    def test_pwrite_onchip_equals_offchip(self):
        # The paper's PWrite columns are equal on-chip vs off-chip.
        for arch in ("optimized", "basic"):
            _, on, off = ARCH_TRIPLES[arch]
            assert (
                measure_processing("pwrite_empty", on).cycles
                == measure_processing("pwrite_empty", off).cycles
            )

    def test_pwrite_deferred_slopes_match_paper(self):
        for model in ALL_MODELS:
            _, slope = measure_pwrite_deferred_line(model)
            assert slope == X.PWRITE_DEFERRED_PAPER[model.key][1]

    def test_pwrite_deferred_forward_mode_saves_value_copy(self):
        opt_base, _ = measure_pwrite_deferred_line(OPTIMIZED_REGISTER)
        bas_base, _ = measure_pwrite_deferred_line(BASIC_REGISTER)
        assert bas_base > opt_base

    def test_pwrite_many_readers(self):
        # The loop really satisfies each deferred reader (functional check
        # inside the harness) and stays affine far beyond the fit range.
        base, slope = measure_pwrite_deferred_line(
            OPTIMIZED_ON_CHIP, counts=(1, 4, 9)
        )
        assert slope == 8
        cycles = measure_processing(
            "pwrite_deferred", OPTIMIZED_ON_CHIP, deferred_readers=12
        ).cycles
        assert cycles == base + slope * 12


def _pidx(placement: str) -> int:
    return {"register": 0, "onchip": 1, "offchip": 2}[placement]


class TestGlobalOrderings:
    """Cross-cutting orderings Table 1 demonstrates."""

    @pytest.mark.parametrize(
        "case", [c for c in PROCESSING_CASES if c != "pwrite_deferred"]
    )
    def test_optimized_never_worse(self, case):
        for placement_index in range(3):
            optimized = ARCH_TRIPLES["optimized"][placement_index]
            basic = ARCH_TRIPLES["basic"][placement_index]
            assert (
                measure_processing(case, optimized).cycles
                <= measure_processing(case, basic).cycles
            )

    @pytest.mark.parametrize(
        "case", [c for c in PROCESSING_CASES if c != "pwrite_deferred"]
    )
    def test_register_fastest_offchip_slowest(self, case):
        for arch in ("optimized", "basic"):
            reg, on, off = ARCH_TRIPLES[arch]
            r = measure_processing(case, reg).cycles
            o = measure_processing(case, on).cycles
            f = measure_processing(case, off).cycles
            assert r <= o <= f

    @pytest.mark.parametrize("message", SENDING_MESSAGES)
    def test_sending_register_worst_at_most_mm(self, message):
        for arch in ("optimized", "basic"):
            reg, on, _ = ARCH_TRIPLES[arch]
            worst = measure_sending(message, reg, "worst").cycles
            assert worst <= measure_sending(message, on).cycles
