"""Tests for the architectural NetworkInterface model (paper Section 2)."""

import pytest

from repro.errors import MessageFormatError, QueueOverflowError
from repro.nic.control import SendFullPolicy
from repro.nic.dispatch import decode_table_address
from repro.nic.interface import NetworkInterface, SendMode, SendResult
from repro.nic.messages import Message, pack_destination

IP_BASE = 0x0010_0000


def make_ni(**kwargs) -> NetworkInterface:
    ni = NetworkInterface(node=0, **kwargs)
    ni.ip_base = IP_BASE
    return ni


def request(mtype=2, dest=0, words=(0xA0, 0xB0, 0xC0, 0xD0)) -> Message:
    return Message(mtype, (pack_destination(dest),) + tuple(words))


class TestOutputRegistersAndSend:
    def test_write_read_output(self):
        ni = make_ni()
        ni.write_output(3, 99)
        assert ni.read_output(3) == 99

    def test_output_register_bounds(self):
        ni = make_ni()
        with pytest.raises(MessageFormatError):
            ni.write_output(5, 0)
        with pytest.raises(MessageFormatError):
            ni.read_output(-1)

    def test_send_composes_from_output_registers(self):
        ni = make_ni()
        for index in range(5):
            ni.write_output(index, index + 1)
        assert ni.send(2) is SendResult.SENT
        sent = ni.transmit()
        assert sent.mtype == 2
        assert sent.words == (1, 2, 3, 4, 5)

    def test_send_type1_rejected(self):
        ni = make_ni()
        with pytest.raises(MessageFormatError):
            ni.send(1)

    def test_send_type1_raises_the_named_reserved_error(self):
        # §2.2.2: type 1 would dispatch the receiver to its *exception*
        # slot (handler_table_address computes an address for it without
        # complaint), so the send path must refuse it by name — and
        # without touching the output queue.
        from repro.errors import ReservedTypeError
        from repro.nic.messages import TYPE_EXCEPTION

        ni = make_ni()
        with pytest.raises(ReservedTypeError, match="reserved for exception"):
            ni.send(TYPE_EXCEPTION)
        assert ni.output_queue.is_empty
        assert ni.stats.sends == 0
        # The rejection happens in every composition mode.
        ni.deliver(request())
        for mode in (SendMode.NORMAL, SendMode.REPLY, SendMode.FORWARD):
            with pytest.raises(ReservedTypeError):
                ni.send(TYPE_EXCEPTION, mode)

    def test_send_does_not_clear_output_registers(self):
        # Hardware keeps the composed values; software overwrites as needed.
        ni = make_ni()
        ni.write_output(0, 7)
        ni.send(2)
        assert ni.read_output(0) == 7

    def test_sends_counted_by_mode(self):
        ni = make_ni()
        ni.send(2)
        ni.deliver(request())
        ni.send(2, SendMode.REPLY)
        assert ni.stats.sends_by_mode[SendMode.NORMAL] == 1
        assert ni.stats.sends_by_mode[SendMode.REPLY] == 1


class TestSendFullPolicies:
    def test_stall_result_when_full(self):
        ni = make_ni(output_capacity=1)
        assert ni.send(2) is SendResult.SENT
        assert ni.send(2) is SendResult.STALLED
        assert ni.stats.send_stalls == 1
        # Message was not queued and not lost: output regs still compose it.
        assert ni.output_queue.depth == 1

    def test_stall_then_retry_succeeds(self):
        ni = make_ni(output_capacity=1)
        ni.send(2)
        assert ni.send(2) is SendResult.STALLED
        ni.transmit()
        assert ni.send(2) is SendResult.SENT

    def test_exception_policy_raises_and_sets_status(self):
        ni = make_ni(output_capacity=1)
        ni.control.full_policy = SendFullPolicy.EXCEPTION
        ni.send(2)
        with pytest.raises(QueueOverflowError):
            ni.send(2)
        assert ni.status["exc_output_overflow"] == 1
        assert ni.status.has_exception


class TestDeliveryAndInputRegisters:
    def test_first_delivery_autoloads_input_registers(self):
        ni = make_ni()
        assert not ni.msg_valid
        ni.deliver(request(words=(1, 2, 3, 4)))
        assert ni.msg_valid
        assert ni.read_input(1) == 1
        assert ni.input_queue.depth == 0

    def test_second_delivery_queues(self):
        ni = make_ni()
        ni.deliver(request(words=(1, 0, 0, 0)))
        ni.deliver(request(words=(2, 0, 0, 0)))
        assert ni.read_input(1) == 1
        assert ni.input_queue.depth == 1

    def test_next_advances(self):
        ni = make_ni()
        ni.deliver(request(words=(1, 0, 0, 0)))
        ni.deliver(request(words=(2, 0, 0, 0)))
        ni.next()
        assert ni.read_input(1) == 2
        ni.next()
        assert not ni.msg_valid

    def test_next_on_empty_is_harmless(self):
        ni = make_ni()
        ni.next()
        assert not ni.msg_valid

    def test_read_input_invalid_returns_zero(self):
        ni = make_ni()
        assert ni.read_input(0) == 0

    def test_input_register_bounds(self):
        ni = make_ni()
        with pytest.raises(MessageFormatError):
            ni.read_input(9)

    def test_backpressure_when_input_full(self):
        ni = make_ni(input_capacity=1)
        assert ni.deliver(request())  # goes to input registers
        assert ni.deliver(request())  # fills the queue
        assert not ni.deliver(request())  # refused
        assert ni.stats.refused == 1
        assert ni.can_accept() is False


class TestStatusMaintenance:
    def test_msg_valid_and_type(self):
        ni = make_ni()
        ni.deliver(request(mtype=4))
        assert ni.status["msg_valid"] == 1
        assert ni.status["msg_type"] == 4

    def test_queue_lengths_tracked(self):
        ni = make_ni()
        for _ in range(3):
            ni.deliver(request())
        ni.send(2)
        assert ni.status["iq_len"] == 2  # one is in the input registers
        assert ni.status["oq_len"] == 1

    def test_iafull_follows_control_threshold(self):
        ni = make_ni()
        ni.control["iq_threshold"] = 1
        for _ in range(3):
            ni.deliver(request())
        assert ni.status["iafull"] == 1

    def test_oafull_follows_control_threshold(self):
        ni = make_ni()
        ni.control["oq_threshold"] = 0
        ni.send(2)
        assert ni.status["oafull"] == 1


class TestReplyAndForwardModes:
    def test_reply_substitutes_i1_i2(self):
        ni = make_ni()
        # Remote-read style request: word1 = reply FP, word2 = reply IP.
        ni.deliver(request(words=(0x111, 0x222, 0, 0)))
        ni.write_output(2, 0x999)  # the reply value
        ni.write_output(3, 0)
        ni.write_output(4, 0)
        ni.send(6, SendMode.REPLY)
        sent = ni.transmit()
        assert sent.words[0] == 0x111  # from i1
        assert sent.words[1] == 0x222  # from i2
        assert sent.words[2] == 0x999  # from o2

    def test_forward_carries_data_words(self):
        ni = make_ni()
        ni.deliver(request(words=(0, 0xAA, 0xBB, 0xCC)))
        ni.write_output(0, 0x777)
        ni.write_output(1, 0x888)
        ni.send(2, SendMode.FORWARD)
        sent = ni.transmit()
        assert sent.words[0] == 0x777  # new head from o0
        assert sent.words[1] == 0x888  # new head from o1
        assert sent.words[2:] == (0xAA, 0xBB, 0xCC)  # forwarded from i2..i4

    def test_reply_without_message_rejected(self):
        ni = make_ni()
        with pytest.raises(MessageFormatError):
            ni.send(2, SendMode.REPLY)

    def test_forward_without_message_rejected(self):
        ni = make_ni()
        with pytest.raises(MessageFormatError):
            ni.send(2, SendMode.FORWARD)


class TestDispatchIntegration:
    def test_msg_ip_idle_when_no_message(self):
        ni = make_ni()
        handler_id, _, _ = decode_table_address(ni.msg_ip)
        assert handler_id == 0

    def test_msg_ip_tracks_current_type(self):
        ni = make_ni()
        ni.deliver(request(mtype=5))
        assert decode_table_address(ni.msg_ip)[0] == 5

    def test_msg_ip_type0_returns_word1(self):
        ni = make_ni()
        ni.deliver(request(mtype=0, words=(0x4242_4240, 0, 0, 0)))
        assert ni.msg_ip == 0x4242_4240

    def test_next_msg_ip_sees_queue_head(self):
        ni = make_ni()
        ni.deliver(request(mtype=5))
        ni.deliver(request(mtype=6))
        assert decode_table_address(ni.msg_ip)[0] == 5
        assert decode_table_address(ni.next_msg_ip)[0] == 6

    def test_next_msg_ip_idle_when_queue_empty(self):
        ni = make_ni()
        ni.deliver(request(mtype=5))
        assert decode_table_address(ni.next_msg_ip)[0] == 0

    def test_exception_reflected_in_msg_ip(self):
        ni = make_ni()
        ni.deliver(request(mtype=5))
        ni.status.raise_exception("exc_input_error")
        ni._refresh_status()
        assert decode_table_address(ni.msg_ip)[0] == 1

    def test_iafull_selects_handler_version(self):
        ni = make_ni()
        ni.control["iq_threshold"] = 0
        ni.deliver(request(mtype=5))
        ni.deliver(request(mtype=5))  # queue depth 1 > threshold 0
        _, iafull, _ = decode_table_address(ni.msg_ip)
        assert iafull


class TestTransmit:
    def test_transmit_empty_returns_none(self):
        assert make_ni().transmit() is None

    def test_transmit_fifo(self):
        ni = make_ni()
        ni.write_output(1, 1)
        ni.send(2)
        ni.write_output(1, 2)
        ni.send(2)
        assert ni.transmit().words[1] == 1
        assert ni.transmit().words[1] == 2

    def test_peek_outgoing(self):
        ni = make_ni()
        ni.send(2)
        assert ni.peek_outgoing() is not None
        assert ni.output_queue.depth == 1


class TestSendGather:
    def test_fragments_travel_through_the_output_queue(self):
        from repro.nic.messages import GatherAssembler

        ni = NetworkInterface(node=0)
        elements = [(i, 50 + i) for i in range(7)]
        sent = ni.send_gather(2, destination=4, elements=elements)
        assert sent == 3
        assert ni.stats.sends == 3
        assembler = GatherAssembler()
        while True:
            fragment = ni.transmit()
            if fragment is None:
                break
            assert fragment.destination == 4
            assembler.accept(fragment)
        assert assembler.complete
        assert assembler.result() == elements

    def test_stall_stops_at_a_fragment_boundary(self):
        ni = NetworkInterface(node=0, output_capacity=2)
        elements = [(i, i) for i in range(9)]  # 3 typed fragments
        sent = ni.send_gather(2, destination=1, elements=elements)
        assert sent == 2  # third fragment stalled, never half-queued
        assert ni.output_queue.depth == 2
        assert ni.stats.send_stalls == 1
        # Drain one slot and resume from where the return value points.
        ni.transmit()
        resumed = ni.send_gather(2, destination=1, elements=elements[6:])
        assert resumed == 1

    def test_type0_gather_carries_the_handler_ip(self):
        ni = NetworkInterface(node=0)
        sent = ni.send_gather(
            0, destination=2, elements=[(0, 1), (1, 2)], ip=0x5020
        )
        assert sent == 1
        fragment = ni.transmit()
        assert fragment.mtype == 0
        assert fragment.word(1) == 0x5020
