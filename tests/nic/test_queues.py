"""Tests for the bounded message queues and their thresholds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueueOverflowError, QueueUnderflowError
from repro.nic.messages import Message
from repro.nic.queues import DEFAULT_CAPACITY, MessageQueue


def msg(tag: int) -> Message:
    return Message.build(2, 0, payload=[tag])


class TestBasicFifo:
    def test_fifo_order(self):
        q = MessageQueue("q")
        for tag in range(5):
            q.push(msg(tag))
        assert [q.pop().word(1) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = MessageQueue("q")
        q.push(msg(1))
        assert q.peek().word(1) == 1
        assert q.depth == 1

    def test_peek_empty(self):
        assert MessageQueue("q").peek() is None

    def test_peek_at(self):
        q = MessageQueue("q")
        q.push(msg(1))
        q.push(msg(2))
        assert q.peek_at(1).word(1) == 2
        assert q.peek_at(2) is None
        assert q.peek_at(-1) is None

    def test_pop_empty_raises(self):
        with pytest.raises(QueueUnderflowError):
            MessageQueue("q").pop()

    def test_try_pop_empty(self):
        assert MessageQueue("q").try_pop() is None

    def test_default_capacity_matches_paper(self):
        assert MessageQueue("q").capacity == DEFAULT_CAPACITY == 16


class TestBounds:
    def test_overflow_raises(self):
        q = MessageQueue("q", capacity=2)
        q.push(msg(0))
        q.push(msg(1))
        with pytest.raises(QueueOverflowError):
            q.push(msg(2))
        assert q.stats.rejected == 1

    def test_try_push_respects_capacity(self):
        q = MessageQueue("q", capacity=1)
        assert q.try_push(msg(0))
        assert not q.try_push(msg(1))
        assert q.depth == 1

    def test_is_full_and_free_slots(self):
        q = MessageQueue("q", capacity=3)
        q.push(msg(0))
        assert not q.is_full
        assert q.free_slots == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MessageQueue("q", capacity=0)


class TestThreshold:
    def test_almost_full_asserts_above_threshold(self):
        q = MessageQueue("q", capacity=8, threshold=2)
        q.push(msg(0))
        q.push(msg(1))
        assert not q.almost_full
        q.push(msg(2))
        assert q.almost_full

    def test_threshold_clamped(self):
        q = MessageQueue("q", capacity=4, threshold=100)
        assert q.threshold == 4
        q.set_threshold(-5)
        assert q.threshold == 0

    def test_threshold_zero_means_any_occupancy(self):
        q = MessageQueue("q", capacity=4, threshold=0)
        assert not q.almost_full
        q.push(msg(0))
        assert q.almost_full

    def test_crossings_counted_once_per_excursion(self):
        q = MessageQueue("q", capacity=8, threshold=1)
        q.push(msg(0))
        q.push(msg(1))  # crossing 1
        q.push(msg(2))  # still above: no new crossing
        q.pop()
        q.pop()  # back below
        q.push(msg(3))  # crossing 2
        assert q.stats.threshold_crossings == 2


class TestStatsAndDrain:
    def test_push_pop_counts(self):
        q = MessageQueue("q")
        q.push(msg(0))
        q.pop()
        assert q.stats.pushes == 1
        assert q.stats.pops == 1

    def test_peak_depth(self):
        q = MessageQueue("q")
        for tag in range(5):
            q.push(msg(tag))
        q.pop()
        assert q.stats.peak_depth == 5

    def test_drain_returns_in_order(self):
        q = MessageQueue("q")
        for tag in range(3):
            q.push(msg(tag))
        drained = q.drain()
        assert [m.word(1) for m in drained] == [0, 1, 2]
        assert q.is_empty
        assert q.stats.pops == 3

    def test_clear_does_not_count(self):
        q = MessageQueue("q")
        q.push(msg(0))
        q.clear()
        assert q.stats.pops == 0
        assert q.is_empty

    def test_snapshot_keys(self):
        snap = MessageQueue("q").stats.snapshot()
        assert set(snap) == {
            "pushes",
            "pops",
            "rejected",
            "peak_depth",
            "threshold_crossings",
        }


class TestPropertyInvariants:
    @given(ops=st.lists(st.booleans(), max_size=60))
    def test_depth_never_exceeds_capacity(self, ops):
        q = MessageQueue("q", capacity=5)
        for is_push in ops:
            if is_push:
                q.try_push(msg(0))
            else:
                q.try_pop()
            assert 0 <= q.depth <= q.capacity
            assert q.almost_full == (q.depth > q.threshold)

    @given(tags=st.lists(st.integers(min_value=0, max_value=1000), max_size=16))
    def test_fifo_preserved(self, tags):
        q = MessageQueue("q", capacity=16)
        for tag in tags:
            q.push(msg(tag))
        assert [m.word(1) for m in q.drain()] == tags
