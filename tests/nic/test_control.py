"""Tests for the STATUS / CONTROL register layouts."""

from repro.nic.control import (
    CONTROL_LAYOUT,
    EXCEPTION_FIELDS,
    STATUS_LAYOUT,
    ControlRegister,
    SendFullPolicy,
    StatusRegister,
)


class TestStatusRegister:
    def test_initially_clear(self):
        status = StatusRegister()
        assert status.word == 0
        assert not status.has_exception

    def test_raise_exception_sets_summary(self):
        status = StatusRegister()
        status.raise_exception("exc_input_error")
        assert status["exc_input_error"] == 1
        assert status["exc_any"] == 1
        assert status.has_exception

    def test_pending_exceptions(self):
        status = StatusRegister()
        status.raise_exception("exc_pin_mismatch")
        status.raise_exception("exc_output_overflow")
        assert set(status.pending_exceptions()) == {
            "exc_pin_mismatch",
            "exc_output_overflow",
        }

    def test_clear_exceptions(self):
        status = StatusRegister()
        for name in EXCEPTION_FIELDS:
            status.raise_exception(name)
        status.clear_exceptions()
        assert not status.has_exception
        assert status.pending_exceptions() == ()

    def test_clear_preserves_other_fields(self):
        status = StatusRegister()
        status["msg_valid"] = 1
        status["iq_len"] = 7
        status.raise_exception("exc_input_error")
        status.clear_exceptions()
        assert status["msg_valid"] == 1
        assert status["iq_len"] == 7

    def test_queue_length_fields_hold_31(self):
        status = StatusRegister()
        status["iq_len"] = 31
        status["oq_len"] = 31
        assert status["iq_len"] == 31

    def test_layout_has_no_overlap_with_type_field(self):
        # msg_type must be readable independently of msg_valid.
        status = StatusRegister()
        status["msg_type"] = 0xF
        assert status["msg_valid"] == 0


class TestControlRegister:
    def test_default_policy_is_stall(self):
        assert ControlRegister().full_policy is SendFullPolicy.STALL

    def test_policy_roundtrip(self):
        control = ControlRegister()
        control.full_policy = SendFullPolicy.EXCEPTION
        assert control.full_policy is SendFullPolicy.EXCEPTION
        assert control["full_policy"] == 1

    def test_thresholds_default(self):
        control = ControlRegister()
        assert control["iq_threshold"] == 12
        assert control["oq_threshold"] == 12

    def test_custom_thresholds(self):
        control = ControlRegister(iq_threshold=3, oq_threshold=5)
        assert control["iq_threshold"] == 3
        assert control["oq_threshold"] == 5

    def test_pin_checking(self):
        control = ControlRegister()
        assert not control.pin_checking
        control.enable_pin_checking(42)
        assert control.pin_checking
        assert control["active_pin"] == 42
        control.disable_pin_checking()
        assert not control.pin_checking

    def test_pin_field_is_8_bits(self):
        control = ControlRegister()
        control.enable_pin_checking(255)
        assert control["active_pin"] == 255


class TestLayouts:
    def test_status_and_control_fit_one_word(self):
        assert STATUS_LAYOUT.used_mask <= 0xFFFF_FFFF
        assert CONTROL_LAYOUT.used_mask <= 0xFFFF_FFFF

    def test_exception_fields_exist_in_status(self):
        for name in EXCEPTION_FIELDS:
            assert name in STATUS_LAYOUT

    def test_status_has_paper_fields(self):
        # Section 2.1: "one field in the STATUS register reports the number
        # of messages in the input queue"; 2.2.1: the type shows up in STATUS.
        for name in ("iq_len", "oq_len", "msg_valid", "msg_type"):
            assert name in STATUS_LAYOUT

    def test_control_has_paper_fields(self):
        # Section 2.1.1 (full policy), 2.2.4 (thresholds), 2.1.3 (PIN).
        for name in ("full_policy", "iq_threshold", "oq_threshold", "active_pin"):
            assert name in CONTROL_LAYOUT

    def test_policy_enum_values(self):
        assert int(SendFullPolicy.STALL) == 0
        assert int(SendFullPolicy.EXCEPTION) == 1
