"""Tests for the clocked RTL-style NIC model."""

import pytest

from repro.errors import MessageFormatError
from repro.nic.interface import NetworkInterface, SendMode
from repro.nic.messages import Message, pack_destination
from repro.nic.rtl import (
    FLITS_PER_MESSAGE,
    ClockedNIC,
    Flit,
    FlitKind,
    ProcessorAccess,
    serialize,
)


def sample_message(mtype=2, tag=0xAB) -> Message:
    return Message(mtype, (pack_destination(1), tag, 0, 0, 0), pin=3)


class TestSerialization:
    def test_flit_count(self):
        assert len(serialize(sample_message())) == FLITS_PER_MESSAGE == 6

    def test_head_carries_type_and_tags(self):
        head = serialize(sample_message(mtype=5))[0]
        assert head.kind is FlitKind.HEAD
        assert head.payload == 5
        assert head.pin == 3

    def test_data_flits_in_word_order(self):
        flits = serialize(sample_message(tag=0xCD))
        assert flits[2].payload == 0xCD


class TestReceivePath:
    def test_message_assembled_over_six_cycles(self):
        nic = ClockedNIC()
        for flit in serialize(sample_message(tag=7)):
            nic.tick(rx_flit=flit)
        assert nic.interface.msg_valid
        assert nic.interface.read_input(1) == 7
        assert nic.rx.messages_assembled == 1

    def test_interleaved_idle_cycles_tolerated(self):
        nic = ClockedNIC()
        for flit in serialize(sample_message(tag=7)):
            nic.tick()  # idle cycle between flits
            nic.tick(rx_flit=flit)
        assert nic.interface.msg_valid

    def test_data_before_head_rejected(self):
        nic = ClockedNIC()
        with pytest.raises(MessageFormatError):
            nic.tick(rx_flit=Flit.data(1))

    def test_two_heads_rejected(self):
        nic = ClockedNIC()
        nic.tick(rx_flit=Flit.head(sample_message()))
        with pytest.raises(MessageFormatError):
            nic.tick(rx_flit=Flit.head(sample_message()))

    def test_backpressure_when_interface_full(self):
        ni = NetworkInterface(input_capacity=1)
        nic = ClockedNIC(ni)
        # Fill input registers + queue.
        ni.deliver(sample_message())
        ni.deliver(sample_message())
        assert not nic.rx_ready

    def test_mid_message_stays_ready(self):
        # Once a HEAD is accepted the port must accept the rest of the body.
        ni = NetworkInterface(input_capacity=2)
        nic = ClockedNIC(ni)
        nic.tick(rx_flit=Flit.head(sample_message()))
        assert nic.rx_ready


class TestTransmitPath:
    def test_message_serialized_one_flit_per_cycle(self):
        nic = ClockedNIC()
        nic.interface.write_output(1, 99)
        nic.interface.send(2)
        flits = nic.run_idle(FLITS_PER_MESSAGE)
        assert len(flits) == FLITS_PER_MESSAGE
        assert flits[0].kind is FlitKind.HEAD
        assert flits[2].payload == 99

    def test_no_credit_pauses_transmission(self):
        nic = ClockedNIC()
        nic.interface.send(2)
        flit, _ = nic.tick(tx_credit=False)
        assert flit is None
        flit, _ = nic.tick(tx_credit=True)
        assert flit is not None

    def test_idle_when_nothing_to_send(self):
        assert ClockedNIC().run_idle(5) == []

    def test_back_to_back_messages(self):
        nic = ClockedNIC()
        nic.interface.send(2)
        nic.interface.send(3)
        flits = nic.run_idle(2 * FLITS_PER_MESSAGE)
        heads = [f for f in flits if f.kind is FlitKind.HEAD]
        assert [h.payload for h in heads] == [2, 3]
        assert nic.tx.messages_sent == 2


class TestLoopback:
    def test_two_chips_wired_together(self):
        a = ClockedNIC(NetworkInterface(node=0))
        b = ClockedNIC(NetworkInterface(node=1))
        a.interface.write_output(0, pack_destination(1))
        a.interface.write_output(1, 0x1234)
        a.interface.send(4)
        wire = None
        for _ in range(20):
            out_a, _ = a.tick(rx_flit=None)
            b.tick(rx_flit=wire)
            wire = out_a
            if b.interface.msg_valid:
                break
        assert b.interface.msg_valid
        assert b.interface.read_input(1) == 0x1234
        assert b.interface.current_message.mtype == 4

    def test_latency_is_flit_serial(self):
        # A message takes at least FLITS_PER_MESSAGE cycles of link time.
        a = ClockedNIC()
        a.interface.send(2)
        flits = []
        cycles = 0
        while len(flits) < FLITS_PER_MESSAGE:
            flit, _ = a.tick()
            cycles += 1
            if flit:
                flits.append(flit)
        assert cycles >= FLITS_PER_MESSAGE


class TestProcessorPort:
    def test_read_register(self):
        nic = ClockedNIC()
        nic.interface.write_output(2, 55)
        _, reply = nic.tick(access=ProcessorAccess(register="o2"))
        assert reply.read_value == 55

    def test_write_register(self):
        nic = ClockedNIC()
        nic.tick(access=ProcessorAccess(register="o1", write_value=7))
        assert nic.interface.read_output(1) == 7

    def test_send_command(self):
        nic = ClockedNIC()
        _, reply = nic.tick(
            access=ProcessorAccess(send_mode=SendMode.NORMAL, send_type=2)
        )
        assert reply.send_result is not None
        # The transmit port may already have claimed the message this cycle.
        assert nic.tx.busy or nic.interface.output_queue.depth == 1

    def test_combined_access(self):
        nic = ClockedNIC()
        nic.interface.deliver(sample_message(tag=5))
        nic.interface.deliver(sample_message(tag=6))
        _, reply = nic.tick(
            access=ProcessorAccess(register="i1", do_next=True)
        )
        assert reply.read_value == 5
        assert nic.interface.read_input(1) == 6

    def test_msg_ip_wire_updates_after_delivery(self):
        nic = ClockedNIC()
        nic.interface.ip_base = 0x40_0000
        idle_ip = nic.msg_ip_wire
        for flit in serialize(sample_message(mtype=5)):
            nic.tick(rx_flit=flit)
        assert nic.msg_ip_wire != idle_ip
        assert (nic.msg_ip_wire >> 6) & 0xF == 5

    def test_cycle_counter_advances(self):
        nic = ClockedNIC()
        nic.run_idle(3)
        assert nic.cycle == 3


class TestBusLevelAccess:
    """The chip as another device on the cache bus (Section 3.1)."""

    def test_selects_interface_region(self):
        from repro.nic.mmio import DEFAULT_BASE_ADDRESS, encode_address

        nic = ClockedNIC()
        assert nic.selects(encode_address(register="i1"))
        assert nic.selects(DEFAULT_BASE_ADDRESS)
        assert not nic.selects(0x1000)

    def test_paper_example_single_load(self):
        """§3.1: one load returns i1, sends a reply of type 7, and NEXTs."""
        from repro.nic.mmio import encode_address

        nic = ClockedNIC(NetworkInterface(node=0))
        nic.interface.deliver(
            Message(2, (pack_destination(0), 0x11, 0x22, 0, 0))
        )
        nic.interface.deliver(
            Message(2, (pack_destination(0), 0x99, 0, 0, 0))
        )
        address = encode_address(
            register="i1", send_mode=SendMode.REPLY, send_type=7, do_next=True
        )
        value, flit = nic.bus_read(address)
        assert value == 0x11  # the pre-command register read
        assert nic.interface.read_input(1) == 0x99  # NEXT advanced
        # The reply started serialising on the same clock.
        assert flit is not None and flit.payload == 7

    def test_bus_write_composes(self):
        from repro.nic.mmio import encode_address

        nic = ClockedNIC()
        nic.bus_write(encode_address(register="o1"), 42)
        flit = nic.bus_write(
            encode_address(register="o0", send_mode=SendMode.NORMAL, send_type=3),
            pack_destination(1),
        )
        # HEAD flit of the sent message emerges within the same cycle.
        assert flit is not None
        assert flit.kind is FlitKind.HEAD
        assert flit.payload == 3
