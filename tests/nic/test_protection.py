"""Tests for the multi-user protection extensions (paper Section 2.1.3)."""

import pytest

from repro.errors import ProtectionError
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message
from repro.nic.protection import (
    RESERVED_PIN,
    GangScheduler,
    PrivilegedStore,
    ProtectionDomain,
    check_pin,
)


def msg(pin=0, privileged=False, tag=0) -> Message:
    return Message(2, (0, tag, 0, 0, 0), pin=pin, privileged=privileged)


class TestPrivilegedStore:
    def test_os_messages_separated(self):
        store = PrivilegedStore()
        store.file(msg(privileged=True))
        store.file(msg(pin=3))
        assert len(store.os_messages) == 1
        assert len(store.pending_for(3)) == 1

    def test_take_for_empties(self):
        store = PrivilegedStore()
        store.file(msg(pin=3))
        assert len(store.take_for(3)) == 1
        assert store.pending_for(3) == []

    def test_take_for_missing_pin(self):
        assert PrivilegedStore().take_for(9) == []


class TestProtectionDomain:
    def test_privileged_message_never_reaches_user(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        assert ni.deliver(msg(privileged=True))
        assert not ni.msg_valid
        assert len(domain.store.os_messages) == 1

    def test_pin_mismatch_diverted_and_flagged(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        ni.control.enable_pin_checking(7)
        assert ni.deliver(msg(pin=8, tag=42))
        assert not ni.msg_valid
        assert ni.status["exc_pin_mismatch"] == 1
        assert domain.store.pending_for(8)[0].word(1) == 42

    def test_matching_pin_passes(self):
        ni = NetworkInterface()
        ProtectionDomain(ni)
        ni.control.enable_pin_checking(7)
        ni.deliver(msg(pin=7, tag=1))
        assert ni.msg_valid

    def test_no_checking_means_all_pass(self):
        ni = NetworkInterface()
        ProtectionDomain(ni)
        ni.deliver(msg(pin=99))
        assert ni.msg_valid

    def test_activate_redelivers_stored_messages(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        ni.control.enable_pin_checking(1)
        ni.deliver(msg(pin=2, tag=10))
        ni.deliver(msg(pin=2, tag=11))
        redelivered = domain.activate(2)
        assert redelivered == 2
        assert ni.msg_valid
        assert ni.read_input(1) == 10

    def test_activate_with_full_queue_keeps_remainder(self):
        ni = NetworkInterface(input_capacity=1)
        domain = ProtectionDomain(ni)
        ni.control.enable_pin_checking(1)
        for tag in range(4):
            ni.deliver(msg(pin=2, tag=tag))
        redelivered = domain.activate(2)
        # input regs + 1 queue slot = 2 delivered; the rest stay stored.
        assert redelivered == 2
        assert len(domain.store.pending_for(2)) == 2

    def test_deactivate(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        domain.activate(4)
        domain.deactivate()
        assert not ni.control.pin_checking

    def test_privileged_interrupt_counted(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        ni.control["privileged_interrupt"] = 1
        ni.deliver(msg(privileged=True))
        assert domain.store.interrupts_raised == 1

    def test_os_take_all(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        ni.deliver(msg(privileged=True))
        assert len(domain.os_take_all()) == 1
        assert domain.store.os_messages == []


class TestReservedPin:
    """PIN 0 is the no-process sentinel; no tenant may ever hold it."""

    def test_check_pin_rejects_zero(self):
        with pytest.raises(ProtectionError):
            check_pin(RESERVED_PIN)

    def test_check_pin_rejects_negative(self):
        with pytest.raises(ProtectionError):
            check_pin(-3)

    def test_check_pin_passes_positive(self):
        assert check_pin(1) == 1

    def test_activate_rejects_sentinel(self):
        domain = ProtectionDomain(NetworkInterface())
        with pytest.raises(ProtectionError):
            domain.activate(0)

    def test_start_slice_rejects_sentinel(self):
        sched = GangScheduler([NetworkInterface()])
        with pytest.raises(ProtectionError):
            sched.start_slice(0)

    def test_deactivate_parks_at_sentinel(self):
        ni = NetworkInterface()
        domain = ProtectionDomain(ni)
        domain.activate(4)
        domain.deactivate()
        assert ni.control["active_pin"] == RESERVED_PIN
        assert not ni.control.pin_checking


class TestGangScheduler:
    def test_needs_interfaces(self):
        with pytest.raises(ProtectionError):
            GangScheduler([])

    def test_slice_lifecycle(self):
        nis = [NetworkInterface(node=n) for n in range(2)]
        sched = GangScheduler(nis)
        sched.start_slice(1)
        nis[0].deliver(msg(pin=1, tag=5))
        nis[0].deliver(msg(pin=1, tag=6))
        sched.end_slice()
        # Network state is drained: nothing visible to the next process.
        assert not nis[0].msg_valid
        assert nis[0].input_queue.is_empty
        assert sched.saved_message_count(1) == 2

    def test_restore_on_next_slice(self):
        nis = [NetworkInterface(node=n) for n in range(1)]
        sched = GangScheduler(nis)
        sched.start_slice(1)
        nis[0].deliver(msg(pin=1, tag=5))
        sched.end_slice()
        sched.start_slice(2)
        assert not nis[0].msg_valid
        sched.end_slice()
        sched.start_slice(1)
        assert nis[0].msg_valid
        assert nis[0].read_input(1) == 5

    def test_double_start_rejected(self):
        sched = GangScheduler([NetworkInterface()])
        sched.start_slice(1)
        with pytest.raises(ProtectionError):
            sched.start_slice(2)

    def test_end_without_start_rejected(self):
        sched = GangScheduler([NetworkInterface()])
        with pytest.raises(ProtectionError):
            sched.end_slice()

    def test_no_messages_lost_across_slices(self):
        nis = [NetworkInterface(node=0)]
        sched = GangScheduler(nis)
        sched.start_slice(1)
        tags = list(range(8))
        for tag in tags:
            nis[0].deliver(msg(pin=1, tag=tag))
        sched.end_slice()
        sched.start_slice(1)
        seen = []
        while nis[0].msg_valid:
            seen.append(nis[0].read_input(1))
            nis[0].next()
        assert seen == tags

    def test_start_slice_refiles_overflow_instead_of_raising(self):
        # Saved state larger than the room left at restore time must be
        # refiled in order, not raised on or dropped.
        ni = NetworkInterface(input_capacity=2)
        sched = GangScheduler([ni])
        sched.start_slice(1)
        for tag in range(3):  # input registers + the 2 queue slots
            ni.deliver(msg(pin=1, tag=tag))
        sched.end_slice()
        assert sched.saved_message_count(1) == 3
        # Fresh traffic occupies most of the interface before the
        # process resumes, so only one saved message fits.
        ni.deliver(msg(pin=1, tag=10))
        ni.deliver(msg(pin=1, tag=11))
        sched.start_slice(1)
        assert sched.saved_message_count(1) == 2

    def test_refill_delivers_refiled_tail_in_order(self):
        ni = NetworkInterface(input_capacity=2)
        sched = GangScheduler([ni])
        sched.start_slice(1)
        for tag in range(3):
            ni.deliver(msg(pin=1, tag=tag))
        sched.end_slice()
        ni.deliver(msg(pin=1, tag=10))
        ni.deliver(msg(pin=1, tag=11))
        sched.start_slice(1)
        seen = []
        while sched.saved_message_count(1) or ni.msg_valid:
            if ni.msg_valid:
                seen.append(ni.read_input(1))
                ni.next()
            sched.refill()
        assert seen == [10, 11, 0, 1, 2]

    def test_refill_requires_running_slice(self):
        sched = GangScheduler([NetworkInterface()])
        with pytest.raises(ProtectionError):
            sched.refill()

    def test_refill_with_nothing_refiled_is_noop(self):
        sched = GangScheduler([NetworkInterface()])
        sched.start_slice(1)
        assert sched.refill() == 0
