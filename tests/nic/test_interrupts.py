"""Tests for interrupt-driven reception (paper Section 2.1's open choice)."""

from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message, pack_destination


def msg(tag: int = 0) -> Message:
    return Message(2, (pack_destination(0), tag, 0, 0, 0))


class TestArrivalInterrupts:
    def test_polled_by_default(self):
        ni = NetworkInterface()
        ni.deliver(msg())
        assert ni.interrupts_raised == 0

    def test_interrupt_fires_per_delivery(self):
        ni = NetworkInterface()
        fired = []
        ni.enable_arrival_interrupts(lambda: fired.append(True))
        ni.deliver(msg(1))
        ni.deliver(msg(2))
        assert len(fired) == 2
        assert ni.interrupts_raised == 2

    def test_interrupt_sees_queued_message(self):
        ni = NetworkInterface()
        seen = []
        ni.enable_arrival_interrupts(lambda: seen.append(ni.read_input(1)))
        ni.deliver(msg(42))
        assert seen == [42]

    def test_disable_restores_polling(self):
        ni = NetworkInterface()
        fired = []
        ni.enable_arrival_interrupts(lambda: fired.append(True))
        ni.disable_arrival_interrupts()
        ni.deliver(msg())
        assert fired == []

    def test_refused_delivery_does_not_interrupt(self):
        ni = NetworkInterface(input_capacity=1)
        fired = []
        ni.deliver(msg())  # to input registers
        ni.deliver(msg())  # fills the queue
        ni.enable_arrival_interrupts(lambda: fired.append(True))
        assert not ni.deliver(msg())
        assert fired == []

    def test_diverted_messages_do_not_interrupt_user(self):
        # A privileged message must not raise the *user* arrival interrupt.
        ni = NetworkInterface()
        fired = []
        ni.enable_arrival_interrupts(lambda: fired.append(True))
        ni.deliver(msg().as_privileged())
        assert fired == []

    def test_interrupt_driven_service_loop(self):
        """An interrupt-driven node handles messages with no polling loop."""
        from repro.node.node import Node
        from repro.node.handlers import build_write_request

        node = Node(0)
        node.interface.enable_arrival_interrupts(lambda: node.service())
        node.interface.deliver(build_write_request(0, 0x80, 7))
        # No explicit service call: the interrupt already ran the handler.
        assert node.memory.load(0x80) == 7
        assert node.idle
