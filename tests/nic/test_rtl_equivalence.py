"""Property test: the clocked NIC is observationally equivalent to the
architectural interface.

Any sequence of messages delivered flit-serially through the RTL receive
port must leave the interface in exactly the state that direct
architectural delivery produces; any sequence of sends serialised by the
transmit port must emit exactly the messages the architectural queue
holds, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message, pack_destination
from repro.nic.rtl import ClockedNIC, serialize

message_strategy = st.builds(
    lambda mtype, words, pin: Message(
        mtype,
        (pack_destination(0),) + tuple(words),
        pin=pin,
    ),
    mtype=st.sampled_from([0, 2, 3, 4, 5, 15]),
    words=st.tuples(*([st.integers(min_value=0, max_value=0xFFFF_FFFF)] * 4)),
    pin=st.integers(min_value=0, max_value=255),
)


class TestReceiveEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(messages=st.lists(message_strategy, max_size=8))
    def test_flit_serial_delivery_equals_direct_delivery(self, messages):
        rtl = ClockedNIC(NetworkInterface(input_capacity=16))
        reference = NetworkInterface(input_capacity=16)
        for message in messages:
            for flit in serialize(message):
                rtl.tick(rx_flit=flit)
            reference.deliver(message)
        # Observable state must agree completely.
        assert rtl.interface.msg_valid == reference.msg_valid
        assert rtl.interface.current_message == reference.current_message
        assert rtl.interface.input_queue.depth == reference.input_queue.depth
        assert list(rtl.interface.input_queue) == list(reference.input_queue)
        assert rtl.interface.msg_ip == reference.msg_ip

    @settings(max_examples=50, deadline=None)
    @given(
        messages=st.lists(message_strategy, min_size=1, max_size=6),
        idle_gaps=st.integers(min_value=0, max_value=3),
    )
    def test_idle_cycles_between_flits_do_not_matter(self, messages, idle_gaps):
        rtl = ClockedNIC(NetworkInterface(input_capacity=16))
        reference = NetworkInterface(input_capacity=16)
        for message in messages:
            for flit in serialize(message):
                rtl.run_idle(idle_gaps)
                rtl.tick(rx_flit=flit)
            reference.deliver(message)
        assert list(rtl.interface.input_queue) == list(reference.input_queue)
        assert rtl.interface.current_message == reference.current_message


class TestTransmitEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(types=st.lists(st.sampled_from([0, 2, 3, 4, 5]), max_size=8))
    def test_serialised_stream_reassembles_to_queued_messages(self, types):
        architectural = NetworkInterface(output_capacity=16)
        rtl_side = NetworkInterface(output_capacity=16)
        rtl = ClockedNIC(rtl_side)
        expected = []
        for index, mtype in enumerate(types):
            for ni in (architectural, rtl_side):
                ni.write_output(0, pack_destination(1))
                ni.write_output(1, index)
                ni.send(mtype)
            expected.append(architectural.transmit())
        # Drain the RTL transmit port and reassemble messages.
        flits = rtl.run_idle(len(types) * 6 + 10)
        reassembled = []
        head = None
        words = []
        for flit in flits:
            if flit.kind.value == "head":
                head = flit
                words = []
            else:
                words.append(flit.payload)
                if len(words) == 5:
                    reassembled.append(
                        Message(head.payload, tuple(words), pin=head.pin)
                    )
        assert reassembled == expected
