"""Tests for the MsgIp / NextMsgIp hardware dispatch (paper Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nic.dispatch import (
    HANDLER_ID_EXCEPTION,
    HANDLER_ID_NO_MESSAGE,
    HANDLER_REGION_BYTES,
    HANDLER_SLOT_BYTES,
    TABLE_BYTES,
    DispatchConditions,
    DispatchUnit,
    compute_msg_ip,
    decode_table_address,
    handler_table_address,
)
from repro.nic.messages import Message

IP_BASE = 0x0004_0000


def msg(mtype: int, word1: int = 0xDEAD_BEE0) -> Message:
    return Message(mtype, (0, word1, 0, 0, 0))


class TestHandlerTableAddress:
    def test_base_bits_preserved(self):
        addr = handler_table_address(IP_BASE, 5)
        assert addr & ~(TABLE_BYTES - 1) == IP_BASE

    def test_handler_id_encoded(self):
        addr = handler_table_address(IP_BASE, 7)
        handler_id, iafull, oafull = decode_table_address(addr)
        assert handler_id == 7
        assert not iafull and not oafull

    def test_condition_bits_encoded(self):
        addr = handler_table_address(IP_BASE, 3, iafull=True, oafull=True)
        assert decode_table_address(addr) == (3, True, True)

    def test_versions_are_slot_spaced(self):
        plain = handler_table_address(IP_BASE, 3)
        ia = handler_table_address(IP_BASE, 3, iafull=True)
        oa = handler_table_address(IP_BASE, 3, oafull=True)
        assert ia - plain == HANDLER_SLOT_BYTES
        assert oa - plain == 2 * HANDLER_SLOT_BYTES

    def test_types_are_region_spaced(self):
        assert (
            handler_table_address(IP_BASE, 4) - handler_table_address(IP_BASE, 3)
            == HANDLER_REGION_BYTES
        )

    def test_handler_id_range(self):
        with pytest.raises(ValueError):
            handler_table_address(IP_BASE, 16)

    def test_dirty_base_low_bits_replaced(self):
        addr = handler_table_address(IP_BASE | 0x3FF, 0)
        assert decode_table_address(addr) == (0, False, False)

    @given(
        handler=st.integers(min_value=0, max_value=15),
        iafull=st.booleans(),
        oafull=st.booleans(),
    )
    def test_decode_roundtrip(self, handler, iafull, oafull):
        addr = handler_table_address(IP_BASE, handler, iafull, oafull)
        assert decode_table_address(addr) == (handler, iafull, oafull)


class TestComputeMsgIp:
    def test_case1_typical(self):
        # Ordinary typed message, no conditions: table lookup on the type.
        ip = compute_msg_ip(IP_BASE, msg(5), DispatchConditions())
        assert decode_table_address(ip) == (5, False, False)

    def test_case2_type0_uses_word1(self):
        # Figure 7 case 2: type 0, no boundary conditions.
        ip = compute_msg_ip(IP_BASE, msg(0, word1=0x1234_5678), DispatchConditions())
        assert ip == 0x1234_5678

    def test_type0_with_iafull_falls_back_to_table(self):
        conditions = DispatchConditions(iafull=True)
        ip = compute_msg_ip(IP_BASE, msg(0), conditions)
        assert decode_table_address(ip) == (0, True, False)

    def test_type0_with_oafull_falls_back_to_table(self):
        conditions = DispatchConditions(oafull=True)
        ip = compute_msg_ip(IP_BASE, msg(0), conditions)
        assert decode_table_address(ip) == (0, False, True)

    def test_no_message_gives_idle_handler(self):
        ip = compute_msg_ip(IP_BASE, None, DispatchConditions())
        assert decode_table_address(ip)[0] == HANDLER_ID_NO_MESSAGE

    def test_exception_wins_over_message(self):
        conditions = DispatchConditions(exception=True)
        ip = compute_msg_ip(IP_BASE, msg(5), conditions)
        assert decode_table_address(ip)[0] == HANDLER_ID_EXCEPTION

    def test_exception_wins_over_type0(self):
        conditions = DispatchConditions(exception=True)
        ip = compute_msg_ip(IP_BASE, msg(0), conditions)
        assert decode_table_address(ip)[0] == HANDLER_ID_EXCEPTION

    def test_exception_wins_over_no_message(self):
        conditions = DispatchConditions(exception=True)
        ip = compute_msg_ip(IP_BASE, None, conditions)
        assert decode_table_address(ip)[0] == HANDLER_ID_EXCEPTION

    def test_conditions_visible_in_typed_dispatch(self):
        conditions = DispatchConditions(iafull=True, oafull=True)
        ip = compute_msg_ip(IP_BASE, msg(9), conditions)
        assert decode_table_address(ip) == (9, True, True)

    @given(
        mtype=st.integers(min_value=2, max_value=15),
        iafull=st.booleans(),
        oafull=st.booleans(),
    )
    def test_typed_messages_always_table_dispatch(self, mtype, iafull, oafull):
        conditions = DispatchConditions(iafull=iafull, oafull=oafull)
        ip = compute_msg_ip(IP_BASE, msg(mtype), conditions)
        assert decode_table_address(ip) == (mtype, iafull, oafull)


class TestDispatchUnit:
    def test_ip_base_property(self):
        unit = DispatchUnit()
        unit.ip_base = IP_BASE
        assert unit.ip_base == IP_BASE

    def test_msg_ip_and_next_msg_ip_independent(self):
        unit = DispatchUnit(IP_BASE)
        current = msg(5)
        queued = msg(6)
        conditions = DispatchConditions()
        assert decode_table_address(unit.msg_ip(current, conditions))[0] == 5
        assert decode_table_address(unit.next_msg_ip(queued, conditions))[0] == 6

    def test_idle_and_exception_ips(self):
        unit = DispatchUnit(IP_BASE)
        assert decode_table_address(unit.idle_ip())[0] == HANDLER_ID_NO_MESSAGE
        assert decode_table_address(unit.exception_ip())[0] == HANDLER_ID_EXCEPTION

    def test_ip_base_truncated_to_word(self):
        unit = DispatchUnit(1 << 36)
        assert unit.ip_base == 0


class TestDispatchUnitBoundaryVersions:
    """Section 2.2.4's four handler versions, selected at the unit level."""

    SLOTS = (
        (False, False, 0),
        (True, False, HANDLER_SLOT_BYTES),
        (False, True, 2 * HANDLER_SLOT_BYTES),
        (True, True, 3 * HANDLER_SLOT_BYTES),
    )

    def test_all_four_version_slots_selected(self):
        # Every iafull x oafull combination lands in its own slot, at the
        # architected offset from the unconditioned entry.
        unit = DispatchUnit(IP_BASE)
        base_ip = unit.msg_ip(msg(5), DispatchConditions())
        for iafull, oafull, offset in self.SLOTS:
            conditions = DispatchConditions(iafull=iafull, oafull=oafull)
            ip = unit.msg_ip(msg(5), conditions)
            assert decode_table_address(ip) == (5, iafull, oafull)
            assert ip - base_ip == offset

    def test_version_slots_never_collide(self):
        unit = DispatchUnit(IP_BASE)
        ips = {
            unit.msg_ip(msg(5), DispatchConditions(iafull=ia, oafull=oa))
            for ia, oa, _ in self.SLOTS
        }
        assert len(ips) == 4

    @pytest.mark.parametrize(
        "conditions",
        [
            DispatchConditions(iafull=True),
            DispatchConditions(oafull=True),
            DispatchConditions(exception=True),
            DispatchConditions(iafull=True, oafull=True),
            DispatchConditions(iafull=True, oafull=True, exception=True),
        ],
        ids=["iafull", "oafull", "exception", "both-full", "all"],
    )
    def test_case2_suppressed_under_any_boundary_condition(self, conditions):
        # The type-0 fast path (MsgIp = word 1) must never fire when any
        # boundary condition holds: the word-1 IP would skip the special
        # handler version the condition selects.
        unit = DispatchUnit(IP_BASE)
        ip = unit.msg_ip(msg(0, word1=0x1234_5678), conditions)
        assert ip != 0x1234_5678
        expected = 0 if not conditions.exception else HANDLER_ID_EXCEPTION
        assert decode_table_address(ip) == (
            expected, conditions.iafull, conditions.oafull
        )

    def test_next_msg_ip_sees_the_same_versions(self):
        unit = DispatchUnit(IP_BASE)
        conditions = DispatchConditions(iafull=True, oafull=True)
        assert unit.next_msg_ip(msg(7), conditions) == unit.msg_ip(
            msg(7), conditions
        )

    @given(
        mtype=st.integers(min_value=2, max_value=15),
        iafull=st.booleans(),
        oafull=st.booleans(),
    )
    def test_unit_dispatch_roundtrips_through_decode(self, mtype, iafull, oafull):
        # decode_table_address recovers exactly what the unit encoded,
        # whatever message type and condition pair produced the address.
        unit = DispatchUnit(IP_BASE)
        conditions = DispatchConditions(iafull=iafull, oafull=oafull)
        ip = unit.msg_ip(msg(mtype), conditions)
        assert decode_table_address(ip) == (mtype, iafull, oafull)
        assert ip & ~(TABLE_BYTES - 1) == IP_BASE
