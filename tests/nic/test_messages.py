"""Tests for the five-word message format (paper Figure 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MessageFormatError
from repro.nic.messages import (
    DEST_BITS,
    LAST_USER_TYPE,
    MESSAGE_WORDS,
    TYPE_EXCEPTION,
    TYPE_MSG_IP,
    Message,
    MessageTypeRegistry,
    default_registry,
    pack_destination,
    unpack_destination,
)

word = st.integers(min_value=0, max_value=0xFFFF_FFFF)
node = st.integers(min_value=0, max_value=(1 << DEST_BITS) - 1)


class TestDestinationPacking:
    @given(node=node)
    def test_roundtrip(self, node):
        m0 = pack_destination(node, 0x123)
        assert unpack_destination(m0) == (node, 0x123)

    def test_node_out_of_range(self):
        with pytest.raises(MessageFormatError):
            pack_destination(1 << DEST_BITS)
        with pytest.raises(MessageFormatError):
            pack_destination(-1)

    def test_low_bits_collision_rejected(self):
        with pytest.raises(MessageFormatError):
            pack_destination(0, 0xFFFF_FFFF)

    def test_zero_low_bits(self):
        assert unpack_destination(pack_destination(5)) == (5, 0)


class TestMessage:
    def test_build_defaults(self):
        msg = Message.build(2, destination=3)
        assert msg.mtype == 2
        assert msg.destination == 3
        assert msg.words[1:] == (0, 0, 0, 0)

    def test_build_payload(self):
        msg = Message.build(2, 1, payload=[10, 20, 30])
        assert msg.words[1] == 10
        assert msg.words[2] == 20
        assert msg.words[3] == 30
        assert msg.words[4] == 0

    def test_payload_too_long(self):
        with pytest.raises(MessageFormatError):
            Message.build(2, 1, payload=[1, 2, 3, 4, 5])

    def test_wrong_word_count(self):
        with pytest.raises(MessageFormatError):
            Message(2, (1, 2, 3))

    def test_type_range(self):
        with pytest.raises(MessageFormatError):
            Message(16, (0, 0, 0, 0, 0))
        with pytest.raises(MessageFormatError):
            Message(-1, (0, 0, 0, 0, 0))

    def test_words_truncated_to_32_bits(self):
        msg = Message(2, (1 << 40, 0, 0, 0, 0))
        assert msg.words[0] == 0

    def test_word_accessor(self):
        msg = Message.build(2, 0, payload=[7])
        assert msg.word(1) == 7
        with pytest.raises(MessageFormatError):
            msg.word(5)

    def test_immutability(self):
        msg = Message.build(2, 0)
        with pytest.raises(AttributeError):
            msg.mtype = 3

    def test_with_type(self):
        msg = Message.build(2, 0).with_type(5)
        assert msg.mtype == 5

    def test_with_pin_and_privileged(self):
        msg = Message.build(2, 0).with_pin(9).as_privileged()
        assert msg.pin == 9
        assert msg.privileged

    def test_m0_low(self):
        msg = Message.build(2, 4, m0_low=0x44)
        assert msg.m0_low == 0x44

    @given(mtype=st.integers(min_value=0, max_value=15), words=st.tuples(*([word] * MESSAGE_WORDS)))
    def test_roundtrip_words(self, mtype, words):
        msg = Message(mtype, words)
        assert msg.words == words
        assert msg.mtype == mtype

    def test_str_contains_type_and_dest(self):
        text = str(Message.build(3, 9))
        assert "type=3" in text and "dest=9" in text


class TestRegistry:
    def test_register_and_lookup(self):
        reg = MessageTypeRegistry()
        reg.register("ping", 4)
        assert reg.lookup("ping") == 4

    def test_exception_type_rejected(self):
        reg = MessageTypeRegistry()
        with pytest.raises(MessageFormatError):
            reg.register("bad", TYPE_EXCEPTION)

    def test_duplicate_value_rejected(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        with pytest.raises(MessageFormatError):
            reg.register("b", 4)

    def test_rebinding_name_rejected(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        with pytest.raises(MessageFormatError):
            reg.register("a", 5)

    def test_idempotent_rebind_ok(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        assert reg.register("a", 4) == 4

    def test_unknown_lookup(self):
        with pytest.raises(MessageFormatError):
            MessageTypeRegistry().lookup("ghost")

    def test_name_of(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        assert reg.name_of(4) == "a"
        assert reg.name_of(9) == "type9"

    def test_escape(self):
        reg = MessageTypeRegistry()
        reg.register_escape("esc", 15)
        assert reg.escape_type == 15

    def test_default_registry_conventions(self):
        reg = default_registry()
        assert reg.lookup("send") == TYPE_MSG_IP
        assert reg.lookup("read") == 2
        assert reg.lookup("pwrite") == 5
        assert reg.escape_type == LAST_USER_TYPE
        values = [v for _, v in reg.registered()]
        assert TYPE_EXCEPTION not in values
        assert len(set(values)) == len(values)


class TestScatterGatherFraming:
    def _sg_imports(self):
        from repro.nic.messages import (
            GatherAssembler,
            build_gather_messages,
            pack_sg_header,
            sg_capacity,
            sg_header_word,
            unpack_sg_header,
        )

        return (
            GatherAssembler,
            build_gather_messages,
            pack_sg_header,
            sg_capacity,
            sg_header_word,
            unpack_sg_header,
        )

    def test_header_roundtrip(self):
        _, _, pack, _, _, unpack = self._sg_imports()
        assert unpack(pack(0, 1, 1)) == (0, 1, 1)
        assert unpack(pack(4095, 15, 65535)) == (4095, 15, 65535)
        assert unpack(pack(7, 3, 12)) == (7, 3, 12)

    def test_header_rejects_out_of_range_fields(self):
        _, _, pack, _, _, _ = self._sg_imports()
        for offset, count, total in (
            (4096, 1, 1),
            (-1, 1, 1),
            (0, 0, 1),
            (0, 16, 16),
            (0, 1, 0),
            (0, 1, 65536),
        ):
            with pytest.raises(MessageFormatError):
                pack(offset, count, total)

    def test_capacity_depends_on_type(self):
        _, _, _, capacity, header_word, _ = self._sg_imports()
        # Type-0 fragments carry the handler IP in word 1, so the header
        # moves to word 2 and one fewer value fits.
        assert header_word(TYPE_MSG_IP) == 2
        assert capacity(TYPE_MSG_IP) == 2
        assert header_word(2) == 1
        assert capacity(2) == 3

    def test_contiguous_run_coalesces_into_full_fragments(self):
        _, build, _, _, _, unpack = self._sg_imports()
        elements = [(i, 100 + i) for i in range(7)]
        fragments = build(2, destination=3, elements=elements)
        assert len(fragments) == 3  # 3 + 3 + 1 values
        offsets = [unpack(f.word(1))[0] for f in fragments]
        assert offsets == [0, 3, 6]
        assert all(unpack(f.word(1))[2] == 7 for f in fragments)
        assert fragments[0].words[2:4] == (100, 101)

    def test_non_contiguous_offsets_split_fragments(self):
        _, build, _, _, _, unpack = self._sg_imports()
        elements = [(0, 1), (1, 2), (10, 3), (11, 4)]
        fragments = build(2, destination=0, elements=elements)
        assert [unpack(f.word(1))[:2] for f in fragments] == [(0, 2), (10, 2)]

    def test_type0_requires_ip_and_typed_forbids_it(self):
        _, build, _, _, _, _ = self._sg_imports()
        with pytest.raises(MessageFormatError):
            build(TYPE_MSG_IP, 0, [(0, 1)])
        with pytest.raises(MessageFormatError):
            build(2, 0, [(0, 1)], ip=0x4000)
        with pytest.raises(MessageFormatError):
            build(TYPE_EXCEPTION, 0, [(0, 1)])
        with pytest.raises(MessageFormatError):
            build(2, 0, [])

    def test_type0_fragment_layout_keeps_ip_in_word_1(self):
        _, build, _, _, _, unpack = self._sg_imports()
        fragments = build(TYPE_MSG_IP, 5, [(2, 7), (3, 8)], ip=0x5020, m0_low=4)
        assert len(fragments) == 1
        fragment = fragments[0]
        assert fragment.word(1) == 0x5020
        assert unpack(fragment.word(2)) == (2, 2, 2)
        assert fragment.words[3:] == (7, 8)
        assert fragment.destination == 5
        assert fragment.m0_low == 4

    def test_assembler_rebuilds_out_of_order(self):
        Assembler, build, _, _, _, _ = self._sg_imports()
        elements = [(i, i * i) for i in range(8)]
        fragments = build(2, 0, elements)
        assembler = Assembler()
        for fragment in reversed(fragments):
            assembler.accept(fragment)
        assert assembler.complete
        assert assembler.result() == elements

    def test_assembler_counts_duplicates_and_rejects_mismatched_totals(self):
        Assembler, build, _, _, _, _ = self._sg_imports()
        fragments = build(2, 0, [(i, i) for i in range(4)])
        assembler = Assembler()
        assembler.accept(fragments[0])
        assembler.accept(fragments[0])
        # Duplicate counting is per value, and the first fragment of a
        # 4-element typed transfer carries 3 values.
        assert assembler.duplicates == 3
        other = build(2, 0, [(0, 9)])
        with pytest.raises(MessageFormatError):
            assembler.accept(other[0])

    def test_incomplete_result_raises(self):
        Assembler, build, _, _, _, _ = self._sg_imports()
        fragments = build(2, 0, [(i, i) for i in range(6)])
        assembler = Assembler()
        assert not assembler.accept(fragments[0])
        assert not assembler.complete
        with pytest.raises(MessageFormatError):
            assembler.result()
