"""Tests for the five-word message format (paper Figure 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MessageFormatError
from repro.nic.messages import (
    DEST_BITS,
    LAST_USER_TYPE,
    MESSAGE_WORDS,
    TYPE_EXCEPTION,
    TYPE_MSG_IP,
    Message,
    MessageTypeRegistry,
    default_registry,
    pack_destination,
    unpack_destination,
)

word = st.integers(min_value=0, max_value=0xFFFF_FFFF)
node = st.integers(min_value=0, max_value=(1 << DEST_BITS) - 1)


class TestDestinationPacking:
    @given(node=node)
    def test_roundtrip(self, node):
        m0 = pack_destination(node, 0x123)
        assert unpack_destination(m0) == (node, 0x123)

    def test_node_out_of_range(self):
        with pytest.raises(MessageFormatError):
            pack_destination(1 << DEST_BITS)
        with pytest.raises(MessageFormatError):
            pack_destination(-1)

    def test_low_bits_collision_rejected(self):
        with pytest.raises(MessageFormatError):
            pack_destination(0, 0xFFFF_FFFF)

    def test_zero_low_bits(self):
        assert unpack_destination(pack_destination(5)) == (5, 0)


class TestMessage:
    def test_build_defaults(self):
        msg = Message.build(2, destination=3)
        assert msg.mtype == 2
        assert msg.destination == 3
        assert msg.words[1:] == (0, 0, 0, 0)

    def test_build_payload(self):
        msg = Message.build(2, 1, payload=[10, 20, 30])
        assert msg.words[1] == 10
        assert msg.words[2] == 20
        assert msg.words[3] == 30
        assert msg.words[4] == 0

    def test_payload_too_long(self):
        with pytest.raises(MessageFormatError):
            Message.build(2, 1, payload=[1, 2, 3, 4, 5])

    def test_wrong_word_count(self):
        with pytest.raises(MessageFormatError):
            Message(2, (1, 2, 3))

    def test_type_range(self):
        with pytest.raises(MessageFormatError):
            Message(16, (0, 0, 0, 0, 0))
        with pytest.raises(MessageFormatError):
            Message(-1, (0, 0, 0, 0, 0))

    def test_words_truncated_to_32_bits(self):
        msg = Message(2, (1 << 40, 0, 0, 0, 0))
        assert msg.words[0] == 0

    def test_word_accessor(self):
        msg = Message.build(2, 0, payload=[7])
        assert msg.word(1) == 7
        with pytest.raises(MessageFormatError):
            msg.word(5)

    def test_immutability(self):
        msg = Message.build(2, 0)
        with pytest.raises(AttributeError):
            msg.mtype = 3

    def test_with_type(self):
        msg = Message.build(2, 0).with_type(5)
        assert msg.mtype == 5

    def test_with_pin_and_privileged(self):
        msg = Message.build(2, 0).with_pin(9).as_privileged()
        assert msg.pin == 9
        assert msg.privileged

    def test_m0_low(self):
        msg = Message.build(2, 4, m0_low=0x44)
        assert msg.m0_low == 0x44

    @given(mtype=st.integers(min_value=0, max_value=15), words=st.tuples(*([word] * MESSAGE_WORDS)))
    def test_roundtrip_words(self, mtype, words):
        msg = Message(mtype, words)
        assert msg.words == words
        assert msg.mtype == mtype

    def test_str_contains_type_and_dest(self):
        text = str(Message.build(3, 9))
        assert "type=3" in text and "dest=9" in text


class TestRegistry:
    def test_register_and_lookup(self):
        reg = MessageTypeRegistry()
        reg.register("ping", 4)
        assert reg.lookup("ping") == 4

    def test_exception_type_rejected(self):
        reg = MessageTypeRegistry()
        with pytest.raises(MessageFormatError):
            reg.register("bad", TYPE_EXCEPTION)

    def test_duplicate_value_rejected(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        with pytest.raises(MessageFormatError):
            reg.register("b", 4)

    def test_rebinding_name_rejected(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        with pytest.raises(MessageFormatError):
            reg.register("a", 5)

    def test_idempotent_rebind_ok(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        assert reg.register("a", 4) == 4

    def test_unknown_lookup(self):
        with pytest.raises(MessageFormatError):
            MessageTypeRegistry().lookup("ghost")

    def test_name_of(self):
        reg = MessageTypeRegistry()
        reg.register("a", 4)
        assert reg.name_of(4) == "a"
        assert reg.name_of(9) == "type9"

    def test_escape(self):
        reg = MessageTypeRegistry()
        reg.register_escape("esc", 15)
        assert reg.escape_type == 15

    def test_default_registry_conventions(self):
        reg = default_registry()
        assert reg.lookup("send") == TYPE_MSG_IP
        assert reg.lookup("read") == 2
        assert reg.lookup("pwrite") == 5
        assert reg.escape_type == LAST_USER_TYPE
        values = [v for _, v in reg.registered()]
        assert TYPE_EXCEPTION not in values
        assert len(set(values)) == len(values)
