"""Tests for the Figure 9 memory-mapped command encoding."""

import pytest

from repro.errors import MessageFormatError
from repro.nic.interface import NetworkInterface, SendMode
from repro.nic.messages import Message, pack_destination
from repro.nic.mmio import (
    DEFAULT_BASE_ADDRESS,
    REGISTER_NAMES,
    MemoryMappedInterface,
    decode_address,
    encode_address,
    matches_base,
)


def make_mmio() -> MemoryMappedInterface:
    ni = NetworkInterface()
    ni.ip_base = 0x20_0000
    return MemoryMappedInterface(ni)


def deliver_request(mmio, words=(0x11, 0x22, 0x33, 0x44), mtype=2):
    mmio.interface.deliver(Message(mtype, (pack_destination(0),) + tuple(words)))


class TestAddressEncoding:
    def test_fifteen_registers(self):
        # Figure 1: "The interface consists of 15 interface registers".
        assert len(REGISTER_NAMES) == 15

    def test_roundtrip_all_registers(self):
        for name in REGISTER_NAMES:
            addr = encode_address(register=name)
            access = decode_address(addr)
            assert access.register == name
            assert access.send_mode is None
            assert not access.do_next

    def test_roundtrip_send_modes(self):
        for mode in SendMode:
            addr = encode_address(register="o0", send_mode=mode, send_type=7)
            access = decode_address(addr)
            assert access.send_mode is mode
            assert access.send_type == 7

    def test_next_bit(self):
        access = decode_address(encode_address(register="i1", do_next=True))
        assert access.do_next

    def test_paper_example_combination(self):
        # The §3.1 example: load i1, SEND reply type 7, NEXT — one address.
        addr = encode_address(
            register="i1", send_mode=SendMode.REPLY, send_type=7, do_next=True
        )
        access = decode_address(addr)
        assert access.register == "i1"
        assert access.send_mode is SendMode.REPLY
        assert access.send_type == 7
        assert access.do_next

    def test_type_without_send_rejected(self):
        with pytest.raises(MessageFormatError):
            encode_address(register="o0", send_type=3)

    def test_unknown_register_rejected(self):
        with pytest.raises(MessageFormatError):
            encode_address(register="zz")

    def test_register_number_out_of_range(self):
        with pytest.raises(MessageFormatError):
            encode_address(register=15)

    def test_misaligned_base_rejected(self):
        with pytest.raises(MessageFormatError):
            encode_address(register="o0", base=0x1234)

    def test_matches_base(self):
        addr = encode_address(register="o0")
        assert matches_base(addr)
        assert not matches_base(0x1000)

    def test_foreign_address_rejected_by_decode(self):
        with pytest.raises(MessageFormatError):
            decode_address(0x1000)

    def test_base_is_high_region(self):
        assert DEFAULT_BASE_ADDRESS & 0x1FFF == 0


class TestMemoryMappedAccess:
    def test_store_output_register(self):
        mmio = make_mmio()
        mmio.store(encode_address(register="o2"), 0xABC)
        assert mmio.interface.read_output(2) == 0xABC

    def test_load_input_register(self):
        mmio = make_mmio()
        deliver_request(mmio)
        assert mmio.load(encode_address(register="i1")) == 0x11

    def test_load_status(self):
        mmio = make_mmio()
        deliver_request(mmio)
        status = mmio.load(encode_address(register="STATUS"))
        assert status & 1  # msg_valid

    def test_store_control(self):
        mmio = make_mmio()
        mmio.store(encode_address(register="CONTROL"), 0x3)
        assert mmio.interface.control["iq_threshold"] == 3

    def test_store_ipbase_and_load_msgip(self):
        mmio = make_mmio()
        mmio.store(encode_address(register="IpBase"), 0x30_0000)
        deliver_request(mmio, mtype=5)
        msg_ip = mmio.load(encode_address(register="MsgIp"))
        assert msg_ip & ~0x3FF == 0x30_0000

    def test_load_next_msg_ip(self):
        mmio = make_mmio()
        deliver_request(mmio, mtype=5)
        deliver_request(mmio, mtype=6)
        next_ip = mmio.load(encode_address(register="NextMsgIp"))
        assert (next_ip >> 6) & 0xF == 6

    def test_store_to_input_register_ignored(self):
        mmio = make_mmio()
        deliver_request(mmio)
        mmio.store(encode_address(register="i0"), 0xFFFF)
        assert mmio.load(encode_address(register="i1")) == 0x11

    def test_store_zero_to_status_clears_exceptions(self):
        mmio = make_mmio()
        mmio.interface.status.raise_exception("exc_input_error")
        mmio.store(encode_address(register="STATUS"), 0)
        assert not mmio.interface.status.has_exception


class TestCombinedCommands:
    def test_store_with_send(self):
        mmio = make_mmio()
        mmio.store(encode_address(register="o1"), 42)
        mmio.store(
            encode_address(register="o4", send_mode=SendMode.NORMAL, send_type=3), 0
        )
        sent = mmio.interface.transmit()
        assert sent.mtype == 3
        assert sent.words[1] == 42

    def test_paper_example_load_reply_next(self):
        """§3.1: one load returns i1, sends a reply of type 7, and NEXTs."""
        mmio = make_mmio()
        deliver_request(mmio, words=(0x11, 0x22, 0x33, 0x44), mtype=2)
        deliver_request(mmio, words=(0x99, 0, 0, 0), mtype=2)
        addr = encode_address(
            register="i1", send_mode=SendMode.REPLY, send_type=7, do_next=True
        )
        value = mmio.load(addr)
        # Register read uses pre-command state.
        assert value == 0x11
        # The reply was composed from the old message's i1/i2.
        sent = mmio.interface.transmit()
        assert sent.mtype == 7
        assert sent.words[0] == 0x11
        assert sent.words[1] == 0x22
        # NEXT advanced to the second message.
        assert mmio.load(encode_address(register="i1")) == 0x99

    def test_bare_next_store(self):
        mmio = make_mmio()
        deliver_request(mmio)
        mmio.store(encode_address(do_next=True), 0)
        assert not mmio.interface.msg_valid

    def test_send_result_recorded(self):
        mmio = make_mmio()
        mmio.store(encode_address(send_mode=SendMode.NORMAL, send_type=2), 0)
        assert mmio.last_send_result is not None
