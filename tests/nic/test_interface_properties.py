"""Property-based tests: the interface against a reference model.

A pure-Python reference (two unbounded-ish lists plus a current slot)
shadows the architectural :class:`NetworkInterface` through random
operation sequences; at every step both must agree on what is visible,
and no message may ever be duplicated or lost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import Message, pack_destination

CAPACITY = 4


def msg(tag: int) -> Message:
    return Message(2, (pack_destination(0), tag, 0, 0, 0))


operations = st.lists(
    st.one_of(
        st.tuples(st.just("deliver"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("next"), st.just(0)),
        st.tuples(st.just("send"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("transmit"), st.just(0)),
    ),
    max_size=60,
)


class Reference:
    """The obvious model of the interface's queueing behaviour."""

    def __init__(self) -> None:
        self.current = None
        self.input = []
        self.output = []

    def deliver(self, tag):
        if self.current is None:
            self.current = tag
            return True
        if len(self.input) >= CAPACITY:
            return False
        self.input.append(tag)
        return True

    def next(self):
        self.current = self.input.pop(0) if self.input else None

    def send(self, tag):
        if len(self.output) >= CAPACITY:
            return False
        self.output.append(tag)
        return True

    def transmit(self):
        return self.output.pop(0) if self.output else None


class TestAgainstReference:
    @settings(max_examples=200)
    @given(ops=operations)
    def test_visible_state_always_agrees(self, ops):
        ni = NetworkInterface(input_capacity=CAPACITY, output_capacity=CAPACITY)
        ref = Reference()
        delivered = sent = consumed = transmitted = 0
        for op, tag in ops:
            if op == "deliver":
                accepted = ni.deliver(msg(tag))
                assert accepted == ref.deliver(tag)
                delivered += int(accepted)
            elif op == "next":
                if ref.current is not None:
                    consumed += 1
                ni.next()
                ref.next()
            elif op == "send":
                ni.write_output(1, tag)
                result = ni.send(2)
                ok = ref.send(tag)
                assert (result is SendResult.SENT) == ok
                sent += int(ok)
            else:
                got = ni.transmit()
                expected = ref.transmit()
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got.word(1) == expected
                    transmitted += 1
            # Visible state agrees after every operation.
            assert ni.msg_valid == (ref.current is not None)
            if ref.current is not None:
                assert ni.read_input(1) == ref.current
            assert ni.input_queue.depth == len(ref.input)
            assert ni.output_queue.depth == len(ref.output)
            assert ni.status["msg_valid"] == int(ref.current is not None)
            assert ni.status["iq_len"] == len(ref.input)
            assert ni.status["oq_len"] == len(ref.output)
        # Conservation: everything delivered is either consumed, current,
        # or still queued; everything sent is transmitted or queued.
        in_flight = (1 if ref.current is not None else 0) + len(ref.input)
        assert delivered == consumed + in_flight
        assert sent == transmitted + len(ref.output)

    @settings(max_examples=100)
    @given(tags=st.lists(st.integers(min_value=0, max_value=999), max_size=10))
    def test_fifo_end_to_end(self, tags):
        ni = NetworkInterface(input_capacity=len(tags) + 1)
        for tag in tags:
            assert ni.deliver(msg(tag))
        seen = []
        while ni.msg_valid:
            seen.append(ni.read_input(1))
            ni.next()
        assert seen == tags

    @settings(max_examples=100)
    @given(ops=operations)
    def test_msg_ip_consistent_with_state(self, ops):
        from repro.nic.dispatch import decode_table_address

        ni = NetworkInterface(input_capacity=CAPACITY, output_capacity=CAPACITY)
        ni.ip_base = 0x8000
        for op, tag in ops:
            if op == "deliver":
                ni.deliver(msg(tag))
            elif op == "next":
                ni.next()
            elif op == "send":
                ni.send(2)
            else:
                ni.transmit()
            handler, iafull, oafull = decode_table_address(ni.msg_ip)
            if ni.msg_valid:
                assert handler == 2
            else:
                assert handler == 0
            assert iafull == ni.input_queue.almost_full
            assert oafull == ni.output_queue.almost_full
