"""Tests for SCROLL-IN / SCROLL-OUT variable-length message support."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MessageFormatError, QueueUnderflowError
from repro.nic.interface import NetworkInterface
from repro.nic.scroll import (
    ScrollingReceiver,
    ScrollingSender,
    StreamReceiver,
    StreamSender,
    reassemble,
    segment_words,
)

word = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestSegmentWords:
    def test_single_segment(self):
        segments = segment_words(2, 1, [10, 20])
        assert len(segments) == 1
        assert not segments[0].continued
        assert segments[0].message.destination == 1

    def test_multi_segment_marking(self):
        segments = segment_words(2, 1, list(range(10)))
        assert [s.continued for s in segments] == [True, True, False]

    def test_empty_rejected(self):
        with pytest.raises(MessageFormatError):
            segment_words(2, 1, [])

    @given(words=st.lists(word, min_size=1, max_size=40))
    def test_reassemble_recovers_prefix(self, words):
        segments = segment_words(2, 3, words)
        recovered = reassemble(segments)
        # Reassembly may include zero padding in the final segment.
        assert recovered[: len(words)] == [w & 0xFFFF_FFFF for w in words]
        assert all(w == 0 for w in recovered[len(words):])

    @given(words=st.lists(word, min_size=1, max_size=40))
    def test_all_segments_share_destination(self, words):
        segments = segment_words(2, 7, words)
        assert all(s.message.destination == 7 for s in segments)


class TestScrollingSender:
    def test_scroll_out_keeps_message_open(self):
        ni = NetworkInterface()
        sender = ScrollingSender(ni)
        ni.write_output(1, 1)
        sender.scroll_out(2)
        assert sender.message_open
        ni.write_output(1, 2)
        sender.send(2)
        assert not sender.message_open

    def test_take_open_segments_marks_continued(self):
        ni = NetworkInterface()
        sender = ScrollingSender(ni)
        sender.scroll_out(2)
        segments = sender.take_open_segments()
        assert len(segments) == 1
        assert segments[0].continued

    def test_final_send_goes_to_queue(self):
        ni = NetworkInterface()
        sender = ScrollingSender(ni)
        sender.scroll_out(2)
        sender.send(2)
        assert ni.output_queue.depth == 1


class TestScrollingReceiver:
    def make_receiver(self, nwords: int) -> ScrollingReceiver:
        receiver = ScrollingReceiver()
        for segment in segment_words(2, 0, list(range(1, nwords + 1))):
            receiver.accept(segment)
        return receiver

    def test_window_starts_at_first_segment(self):
        receiver = self.make_receiver(10)
        assert receiver.window.words[1] == 1

    def test_scroll_in_advances(self):
        receiver = self.make_receiver(10)
        window = receiver.scroll_in()
        assert window.words[1] == 5

    def test_scroll_past_end_raises(self):
        receiver = self.make_receiver(3)
        assert not receiver.more_to_scroll
        with pytest.raises(QueueUnderflowError):
            receiver.scroll_in()

    def test_finish_resets(self):
        receiver = self.make_receiver(10)
        receiver.scroll_in()
        messages = receiver.finish()
        assert len(messages) == 3
        assert receiver.window is None


class TestStreams:
    def test_stream_roundtrip(self):
        sender_ni = NetworkInterface(node=0)
        receiver_ni = NetworkInterface(node=1)
        sender = StreamSender(sender_ni, destination=1, mtype=9)
        receiver = StreamReceiver(receiver_ni, mtype=9)
        values = list(range(100, 111))
        for value in values:
            sender.put(value)
        sender.flush()
        # Move everything across a zero-latency "wire".
        while (message := sender_ni.transmit()) is not None:
            assert receiver_ni.deliver(message)
        received = []
        while (value := receiver.get()) is not None:
            received.append(value)
        assert received == values

    def test_stream_partial_flush(self):
        sender_ni = NetworkInterface(node=0)
        receiver_ni = NetworkInterface(node=1)
        sender = StreamSender(sender_ni, destination=1, mtype=9)
        sender.put(5)
        sender.flush()
        message = sender_ni.transmit()
        assert message is not None
        assert message.m0_low == 1  # word count rides in m0's low bits
        receiver_ni.deliver(message)
        receiver = StreamReceiver(receiver_ni, mtype=9)
        assert receiver.get() == 5
        assert receiver.get() is None

    def test_flush_empty_is_noop(self):
        ni = NetworkInterface()
        StreamSender(ni, destination=0, mtype=9).flush()
        assert ni.output_queue.is_empty


class TestScrollEdges:
    def test_scroll_out_stalls_when_queue_full(self):
        from repro.nic.interface import SendResult

        ni = NetworkInterface(output_capacity=1)
        ni.send(2)  # fill the queue
        sender = ScrollingSender(ni)
        assert sender.scroll_out(2) is SendResult.STALLED
        assert not sender.message_open

    def test_final_send_stall_keeps_message_open(self):
        from repro.nic.interface import SendResult

        ni = NetworkInterface(output_capacity=1)
        sender = ScrollingSender(ni)
        sender.scroll_out(2)
        ni.send(2)  # now full
        assert sender.send(2) is SendResult.STALLED
        assert sender.message_open

    def test_stream_receiver_stops_at_foreign_type(self):
        receiver_ni = NetworkInterface(node=1)
        receiver = StreamReceiver(receiver_ni, mtype=9)
        from repro.nic.messages import Message, pack_destination

        # A non-stream message ahead of the stream data must not be eaten.
        receiver_ni.deliver(Message(2, (pack_destination(1), 0xAA, 0, 0, 0)))
        assert receiver.get() is None
        assert receiver_ni.msg_valid
        assert receiver_ni.current_message.mtype == 2
