"""Tests for the full-duplex RTL link."""

from repro.nic.interface import NetworkInterface
from repro.nic.link import Link
from repro.nic.messages import pack_destination
from repro.nic.rtl import FLITS_PER_MESSAGE, ClockedNIC


def chips():
    return ClockedNIC(NetworkInterface(node=0)), ClockedNIC(
        NetworkInterface(node=1)
    )


def compose(ni, dest, tag, mtype=2):
    ni.write_output(0, pack_destination(dest))
    ni.write_output(1, tag)
    ni.send(mtype)


class TestDelivery:
    def test_one_message_each_way(self):
        a, b = chips()
        link = Link(a, b)
        compose(a.interface, 1, 0xAAA)
        compose(b.interface, 0, 0xBBB)
        link.run_until_idle()
        assert a.interface.read_input(1) == 0xBBB
        assert b.interface.read_input(1) == 0xAAA

    def test_flit_accounting(self):
        a, b = chips()
        link = Link(a, b)
        compose(a.interface, 1, 1)
        link.run_until_idle()
        assert link.flits_a_to_b == FLITS_PER_MESSAGE
        assert link.flits_b_to_a == 0

    def test_back_to_back_messages(self):
        a, b = chips()
        link = Link(a, b)
        for tag in range(5):
            compose(a.interface, 1, tag)
        link.run_until_idle()
        received = []
        while b.interface.msg_valid:
            received.append(b.interface.read_input(1))
            b.interface.next()
        assert received == [0, 1, 2, 3, 4]

    def test_wire_delay_at_least_flit_count(self):
        a, b = chips()
        link = Link(a, b)
        compose(a.interface, 1, 7)
        elapsed = link.run_until_idle()
        assert elapsed >= FLITS_PER_MESSAGE

    def test_idle_link_reports_immediately(self):
        a, b = chips()
        assert Link(a, b).run_until_idle() == 0


class TestBackpressure:
    def test_full_receiver_stalls_sender(self):
        a = ClockedNIC(NetworkInterface(node=0))
        b = ClockedNIC(NetworkInterface(node=1, input_capacity=1))
        link = Link(a, b)
        for tag in range(6):
            compose(a.interface, 1, tag)
        # b never services: its registers + 1-deep queue absorb 2 messages;
        # the rest must wait in a's queues/ports without loss.
        link.run(200)
        assert link._a_to_b.stalled_cycles > 0
        held_at_b = b.interface.input_queue.depth + (
            1 if b.interface.msg_valid else 0
        )
        assert held_at_b == 2
        # Draining b releases the stall; all six arrive.
        received = []
        for _ in range(300):
            while b.interface.msg_valid:
                received.append(b.interface.read_input(1))
                b.interface.next()
            link.step()
        assert received == [0, 1, 2, 3, 4, 5]

    def test_never_drops_mid_message(self):
        # Credit is conservative: once a HEAD is accepted the body always
        # fits, so no partial message can ever be stranded by backpressure.
        a = ClockedNIC(NetworkInterface(node=0))
        b = ClockedNIC(NetworkInterface(node=1, input_capacity=2))
        link = Link(a, b)
        for tag in range(4):
            compose(a.interface, 1, tag)
        link.run(500)
        assert not b.rx.busy or b.rx_ready
