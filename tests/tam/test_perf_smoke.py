"""Perf-regression smoke tests for the fast interpreter path.

The Figure 12 harness is only usable at paper scale because the fast
path keeps the interpreter quick; a large regression would quietly make
``python -m repro --paper-scale`` impractical.  The budgets here are
deliberately generous multiples of the measured times (see
``BENCH_runtime.json``) so the tests stay green under CI noise but fail
on an order-of-magnitude slip — e.g. losing compile-at-load dispatch or
reintroducing the scan-all-nodes scheduler.
"""

import time

import pytest

from repro.programs.matmul import run_matmul

# Measured ~0.2 s on the development machine (BENCH_runtime.json); the
# seed interpreter took ~0.95 s.  Budget sits far above the former and
# meaningfully below the latter.
MATMUL_BUDGET_SECONDS = 2.5


def test_matmul_fast_path_within_budget():
    start = time.perf_counter()
    result = run_matmul(n=40, nodes=16)
    elapsed = time.perf_counter() - start
    assert result.machine.turns_executed > 0
    assert elapsed < MATMUL_BUDGET_SECONDS, (
        f"matmul 40x40 took {elapsed:.2f}s (budget "
        f"{MATMUL_BUDGET_SECONDS}s) — the fast path has regressed"
    )


@pytest.mark.slow
def test_matmul_paper_scale_within_budget():
    """The paper's 100x100 configuration stays practical (opt-in: -m slow)."""
    start = time.perf_counter()
    result = run_matmul(n=100, nodes=16)
    elapsed = time.perf_counter() - start
    assert result.machine.turns_executed > 0
    assert elapsed < 30.0, (
        f"matmul 100x100 took {elapsed:.2f}s; paper-scale evaluation "
        "is no longer practical"
    )
