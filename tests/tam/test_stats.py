"""Tests for the TAM statistics containers."""

import pytest

from repro.tam.instructions import Kind
from repro.tam.stats import MessageMix, TamStats


class TestMessageMix:
    def test_count_send_buckets(self):
        mix = MessageMix()
        mix.count_send(0)
        mix.count_send(2)
        mix.count_send(2)
        assert mix.sends == 3
        assert mix.sends_by_words[2] == 2

    def test_count_send_rejects_three_words(self):
        with pytest.raises(ValueError):
            MessageMix().count_send(3)

    def test_totals(self):
        mix = MessageMix()
        mix.count_send(1)
        mix.reads = 2
        mix.writes = 3
        mix.preads_full = 4
        mix.preads_empty = 1
        mix.pwrites_empty = 5
        assert mix.preads == 5
        assert mix.pwrites == 5
        assert mix.total_messages == 1 + 2 + 3 + 5 + 5

    def test_as_dict_keys(self):
        keys = set(MessageMix().as_dict())
        assert "send0" in keys and "pwrite_deferred" in keys


class TestTamStats:
    def test_instruction_counting(self):
        stats = TamStats()
        stats.count_instruction(Kind.IOP)
        stats.count_instruction(Kind.IOP)
        stats.count_instruction(Kind.FOP)
        assert stats.instructions[Kind.IOP] == 2
        assert stats.total_instructions == 3
        assert stats.flops() == 1

    def test_message_fraction(self):
        stats = TamStats()
        stats.count_instruction(Kind.SEND)
        stats.count_instruction(Kind.IOP)
        stats.count_instruction(Kind.IOP)
        stats.count_instruction(Kind.IOP)
        assert stats.message_instruction_fraction == pytest.approx(0.25)

    def test_message_fraction_empty(self):
        assert TamStats().message_instruction_fraction == 0.0

    def test_flops_per_message_infinite_without_messages(self):
        stats = TamStats()
        stats.count_instruction(Kind.FOP)
        assert stats.flops_per_message() == float("inf")

    def test_flops_per_message(self):
        stats = TamStats()
        for _ in range(6):
            stats.count_instruction(Kind.FOP)
        stats.messages.count_send(0)
        stats.messages.reads = 1
        assert stats.flops_per_message() == pytest.approx(3.0)
