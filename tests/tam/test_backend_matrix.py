"""The three-backend equivalence matrix: reference = fastpath = codegen.

:mod:`tests.tam.test_golden_equivalence` pins the fastpath to the
reference interpreter; this module extends the contract to the codegen
backend and pins all three *as a matrix* — every paper program on every
backend, compared turn-for-turn on the full statistics object, the
program-level results, and the activation frames themselves (through
``frame_view``, so the flat codegen frame is compared slot by slot
against the reference ``Frame``).

Also here: repeat-run determinism for the codegen machine (the
generated-code + scheduler pipeline has no hidden iteration-order
dependence) and error parity (a malformed program fails with the same
exception and message on every backend).
"""

import pytest

from repro.errors import TamError
from repro.programs.gamteb import run_gamteb
from repro.programs.matmul import run_matmul
from repro.programs.queens import run_queens
from repro.tam.codeblock import Codeblock
from repro.tam.instructions import SelfInstr, SendInstr, StopInstr
from repro.tam.runtime import TamMachine
from repro.tam.stats import TamStats

BACKENDS = ("reference", "fastpath", "codegen")


def stats_as_dict(stats: TamStats) -> dict:
    """Every field of TamStats, flattened for exact comparison."""
    return {
        "instructions": {
            kind.name: count for kind, count in stats.instructions.items()
        },
        "messages": stats.messages.as_dict(),
        "threads_run": stats.threads_run,
        "frames_allocated": stats.frames_allocated,
        "istructures_allocated": stats.istructures_allocated,
    }

PROGRAMS = {
    "matmul": lambda backend: run_matmul(n=8, nodes=5, backend=backend),
    "gamteb": lambda backend: run_gamteb(n_photons=6, nodes=5, backend=backend),
    "queens": lambda backend: run_queens(n=5, nodes=5, backend=backend),
}


def result_fingerprint(name, result):
    if name == "matmul":
        return result.total
    if name == "gamteb":
        return (result.absorbed, result.escaped, result.photons_traced)
    return result.solutions


@pytest.fixture(scope="module")
def matrix():
    """Every program on every backend, executed once for the module."""
    return {
        name: {backend: runner(backend) for backend in BACKENDS}
        for name, runner in PROGRAMS.items()
    }


@pytest.mark.parametrize("program", sorted(PROGRAMS))
@pytest.mark.parametrize("backend", ["fastpath", "codegen"])
def test_stats_match_reference(matrix, program, backend):
    reference = matrix[program]["reference"]
    other = matrix[program][backend]
    assert stats_as_dict(other.stats) == stats_as_dict(reference.stats)
    assert (
        other.machine.turns_executed == reference.machine.turns_executed
    )


@pytest.mark.parametrize("program", sorted(PROGRAMS))
@pytest.mark.parametrize("backend", ["fastpath", "codegen"])
def test_results_match_reference(matrix, program, backend):
    assert result_fingerprint(program, matrix[program][backend]) == (
        result_fingerprint(program, matrix[program]["reference"])
    )


def test_frame_views_match_across_backends():
    """The driver activation is slot-identical on every backend.

    ``frame_view`` exposes the codegen backend's flat frame through the
    same ``slots`` surface as the reference ``Frame``, so the final
    frame contents — results, loop indices, counters — compare
    directly.
    """
    from repro.programs.queens import build_driver, build_worker

    frames = {}
    for backend in BACKENDS:
        machine = TamMachine(5, backend=backend)
        machine.load(build_worker(5))
        machine.load(build_driver())
        ref = machine.boot("queens_driver")
        machine.run()
        frames[backend] = machine.frame_view(ref)
    reference = frames["reference"]
    for backend in ("fastpath", "codegen"):
        view = frames[backend]
        assert list(view.slots) == list(reference.slots)
        for counter in ("kid_ready", "root_done"):
            assert view.counter_value(counter) == reference.counter_value(
                counter
            )


def test_codegen_repeat_runs_are_deterministic():
    """Same program, same machine parameters, identical run every time."""
    baseline = run_matmul(n=8, nodes=5, backend="codegen")
    for _ in range(3):
        repeat = run_matmul(n=8, nodes=5, backend="codegen")
        assert stats_as_dict(repeat.stats) == stats_as_dict(baseline.stats)
        assert (
            repeat.machine.turns_executed
            == baseline.machine.turns_executed
        )
        assert repeat.total == baseline.total


def _missing_inlet_program():
    """A codeblock whose entry sends to an inlet that does not exist."""
    block = Codeblock("bad_send", frame_size=2)
    block.add_thread(
        "entry",
        [
            SelfInstr(0),
            SendInstr(frame_slot=0, inlet=9, values=()),
            StopInstr(),
        ],
    )
    block.set_entry("entry")
    return block


@pytest.mark.parametrize("backend", BACKENDS)
def test_missing_inlet_error_parity(backend):
    machine = TamMachine(2, backend=backend)
    machine.load(_missing_inlet_program())
    machine.boot("bad_send")
    with pytest.raises(TamError, match=r"'bad_send' has no inlet 9"):
        machine.run()


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_codeblock_error_parity(backend):
    machine = TamMachine(2, backend=backend)
    with pytest.raises(TamError, match=r"unknown codeblock"):
        machine.boot("nope")
