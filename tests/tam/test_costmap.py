"""Tests for the TAM-to-cycles cost mapping (Figure 12's pricing)."""

import pytest

from repro.impls.base import (
    ALL_MODELS,
    BASIC_OFF_CHIP,
    OPTIMIZED_ON_CHIP,
    OPTIMIZED_REGISTER,
)
from repro.tam.costmap import (
    INSTRUCTION_CYCLES,
    breakdown,
    breakdown_all_models,
    cost_table,
    measured_cost_table,
    paper_cost_table,
)
from repro.tam.instructions import Kind
from repro.tam.stats import TamStats


def stats_with(instructions=None, **messages) -> TamStats:
    stats = TamStats()
    for kind, count in (instructions or {}).items():
        stats.instructions[kind] = count
    mix = stats.messages
    for name, value in messages.items():
        setattr(mix, name, value)
    return stats


class TestCostTables:
    def test_measured_table_cached(self):
        a = measured_cost_table("optimized-register")
        b = measured_cost_table("optimized-register")
        assert a is b

    def test_measured_matches_kernel_harness(self):
        from repro.kernels.harness import measure_dispatch

        table = measured_cost_table("basic-offchip")
        assert table.dispatch == measure_dispatch(BASIC_OFF_CHIP).cycles

    def test_paper_table_values(self):
        table = paper_cost_table("optimized-register")
        assert table.dispatch == 1
        assert table.sending["send0"] == 2
        assert table.processing["read"] == 1
        assert table.pwrite_deferred_slope == 6

    def test_paper_range_collapsed_low_middle(self):
        table = paper_cost_table("optimized-register")
        # send2 range is 2-4; the low-middle collapse gives 3.
        assert table.sending["send2"] == 3

    def test_cost_table_source_dispatch(self):
        assert cost_table(OPTIMIZED_REGISTER, "measured").source == "measured"
        assert cost_table(OPTIMIZED_REGISTER, "paper").source == "paper"
        with pytest.raises(ValueError):
            cost_table(OPTIMIZED_REGISTER, "vibes")


class TestBreakdownArithmetic:
    def test_pure_compute(self):
        stats = stats_with({Kind.IOP: 100, Kind.FOP: 10})
        result = breakdown(stats, OPTIMIZED_REGISTER)
        assert result.compute == 100 * 1 + 10 * 2
        assert result.dispatch == 0
        assert result.communication == 0

    def test_single_send_priced(self):
        stats = TamStats()
        stats.messages.count_send(1)
        table = measured_cost_table("optimized-onchip")
        result = breakdown(stats, OPTIMIZED_ON_CHIP)
        assert result.dispatch == table.dispatch
        assert (
            result.communication
            == table.sending["send1"] + table.processing["send1"]
        )

    def test_read_includes_reply_costs(self):
        stats = stats_with(reads=1)
        table = measured_cost_table("optimized-onchip")
        result = breakdown(stats, OPTIMIZED_ON_CHIP)
        # Request dispatch + reply dispatch.
        assert result.dispatch == 2 * table.dispatch
        assert result.communication == (
            table.sending["read"]
            + table.processing["read"]
            + table.processing["send1"]
        )

    def test_pwrite_deferred_readers_priced_affine(self):
        table = measured_cost_table("optimized-onchip")
        one = breakdown(
            stats_with(pwrites_deferred=1, deferred_readers_satisfied=1),
            OPTIMIZED_ON_CHIP,
        )
        three = breakdown(
            stats_with(pwrites_deferred=1, deferred_readers_satisfied=3),
            OPTIMIZED_ON_CHIP,
        )
        per_reader = (three.total - one.total) // 2
        assert per_reader == (
            table.pwrite_deferred_slope
            + table.processing["send1"]
            + table.dispatch
        )

    def test_overhead_fraction(self):
        stats = stats_with({Kind.IOP: 100}, writes=1)
        result = breakdown(stats, OPTIMIZED_REGISTER)
        assert 0 < result.overhead_fraction < 1
        assert result.overhead == result.dispatch + result.communication

    def test_breakdown_all_models_order(self):
        stats = stats_with({Kind.IOP: 1})
        results = breakdown_all_models(stats)
        assert [r.model_key for r in results] == [m.key for m in ALL_MODELS]


class TestInstructionCycles:
    def test_every_kind_priced(self):
        assert set(INSTRUCTION_CYCLES) == set(Kind)

    def test_message_issuers_priced_by_table1(self):
        # Their cycles live in the SENDING rows, not the compute map.
        for kind in (Kind.SEND, Kind.IFETCH, Kind.ISTORE, Kind.READ, Kind.WRITE):
            assert INSTRUCTION_CYCLES[kind] == 0

    def test_fp_costlier_than_int(self):
        assert INSTRUCTION_CYCLES[Kind.FOP] > INSTRUCTION_CYCLES[Kind.IOP]


class TestModelOrderings:
    def test_same_stats_cheaper_on_optimized(self):
        stats = stats_with(
            {Kind.IOP: 50},
            reads=5,
            writes=5,
            preads_full=10,
            pwrites_empty=5,
        )
        stats.messages.count_send(1)
        by_key = {r.model_key: r for r in breakdown_all_models(stats)}
        assert (
            by_key["optimized-register"].overhead
            < by_key["basic-register"].overhead
        )
        assert (
            by_key["optimized-register"].overhead
            < by_key["optimized-onchip"].overhead
            < by_key["optimized-offchip"].overhead
        )
        assert by_key["basic-offchip"].overhead == max(
            r.overhead for r in by_key.values()
        )

    def test_compute_identical_across_models(self):
        stats = stats_with({Kind.FOP: 10}, reads=2)
        results = breakdown_all_models(stats)
        assert len({r.compute for r in results}) == 1
