"""Error-path and host-API tests for the TAM runtime."""

import pytest

from repro.errors import TamError
from repro.tam.codeblock import Codeblock
from repro.tam.frame import FrameRef
from repro.tam.instructions import (
    ConInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    StopInstr,
)
from repro.tam.runtime import IStructRef, TamMachine


def trivial_machine() -> TamMachine:
    machine = TamMachine(2)
    block = Codeblock("t", frame_size=2)
    block.add_thread("entry", [ConInstr(0, 1), StopInstr()]).set_entry("entry")
    machine.load(block)
    return machine


class TestConstruction:
    def test_zero_nodes_rejected(self):
        with pytest.raises(TamError):
            TamMachine(0)

    def test_boot_without_entry(self):
        machine = TamMachine(1)
        block = Codeblock("noentry", frame_size=1)
        block.add_thread("t", [StopInstr()])
        machine.load(block)
        with pytest.raises(TamError):
            machine.boot("noentry")


class TestHostApi:
    def test_read_write_slot(self):
        machine = trivial_machine()
        ref = machine.boot("t")
        machine.write_slot(ref, 1, 99)
        machine.run()
        assert machine.read_slot(ref, 0) == 1
        assert machine.read_slot(ref, 1) == 99

    def test_unknown_frame_rejected(self):
        machine = trivial_machine()
        machine.boot("t")
        with pytest.raises(TamError):
            machine.read_slot(FrameRef(0, 999), 0)

    def test_istructure_peek(self):
        machine = TamMachine(1)
        block = Codeblock("p", frame_size=3)
        block.add_inlet(0, dest_slots=(0,), counter="d")
        block.add_counter("d", 1, "store")
        block.add_thread(
            "entry",
            [
                ConInstr(1, 42),
                # Allocate locally through the runtime for the test.
                StopInstr(),
            ],
        )
        block.add_thread(
            "store", [IstoreInstr(0, Imm(0), value=1), StopInstr()]
        )
        block.set_entry("entry")
        machine.load(block)
        ref = machine.boot("p")
        # Allocate by hand and inject the descriptor, then run the store.
        desc = machine.nodes[0].istructures.allocate(2)
        machine.write_slot(ref, 1, 42)
        machine.write_slot(ref, 0, IStructRef(0, desc))
        machine.nodes[0].stack.append(
            (machine.nodes[0].frames[ref.frame_id], "store")
        )
        machine.run()
        assert machine.istructure_peek(IStructRef(0, desc), 0) == 42
        assert machine.istructure_peek(IStructRef(0, desc), 1) is None


class TestBadReferences:
    def test_ifetch_through_non_descriptor(self):
        machine = TamMachine(1)
        block = Codeblock("bad", frame_size=2)
        block.add_inlet(0, dest_slots=(1,), counter="v")
        block.add_counter("v", 1, "done")
        block.add_thread(
            "entry",
            [ConInstr(0, 123), IfetchInstr(0, Imm(0), reply_inlet=0), StopInstr()],
        )
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        machine.load(block)
        machine.boot("bad")
        with pytest.raises(TamError):
            machine.run()

    def test_istore_through_non_descriptor(self):
        machine = TamMachine(1)
        block = Codeblock("bad", frame_size=2)
        block.add_thread(
            "entry",
            [ConInstr(0, 5), IstoreInstr(0, Imm(0), value=0), StopInstr()],
        )
        block.set_entry("entry")
        machine.load(block)
        machine.boot("bad")
        with pytest.raises(TamError):
            machine.run()

    def test_turn_limit_guards_runaway(self):
        from repro.tam.instructions import ForkInstr

        machine = TamMachine(1)
        block = Codeblock("spin", frame_size=1)
        block.add_thread("entry", [ForkInstr("entry"), StopInstr()])
        block.set_entry("entry")
        machine.load(block)
        machine.boot("spin")
        with pytest.raises(TamError):
            machine.run(max_turns=100)


class TestTurnBoundExactness:
    """``max_turns`` is an exact bound on productive turns.

    Regression pin: the pre-kernel scheduler loops tested
    ``turns > max_turns`` after incrementing, silently permitting
    ``max_turns + 1`` productive turns before raising.
    """

    @staticmethod
    def two_turn_machine(fast: bool) -> TamMachine:
        from repro.tam.instructions import ForkInstr

        machine = TamMachine(1, fast=fast)
        block = Codeblock("two", frame_size=1)
        block.add_thread("entry", [ForkInstr("second"), StopInstr()])
        block.add_thread("second", [ConInstr(0, 7), StopInstr()])
        block.set_entry("entry")
        machine.load(block)
        machine.boot("two")
        return machine

    @pytest.mark.parametrize("fast", [True, False])
    def test_exact_bound_succeeds(self, fast):
        machine = self.two_turn_machine(fast)
        machine.run(max_turns=2)
        assert machine.turns_executed == 2

    @pytest.mark.parametrize("fast", [True, False])
    def test_one_below_bound_raises(self, fast):
        machine = self.two_turn_machine(fast)
        with pytest.raises(TamError):
            machine.run(max_turns=1)
