"""Golden equivalence: the fast path IS the reference path, bit for bit.

The compiled interpreter (:mod:`repro.tam.fastpath`) and the active-node
scheduler are pure performance work — every observable quantity must be
identical to the reference interpreter's.  That is a strong property:
the message-outcome mix (full/empty/deferred presence-bit reads) depends
on the exact interleaving of threads and messages, so these tests fail
if the fast scheduler services even one node out of order.

Each program runs once per path at small scale and the *entire*
statistics object is compared field for field, together with the
program-level results (matmul C values, gamteb tallies, queens count)
and the productive-turn count.
"""

import pytest

from repro.programs.gamteb import run_gamteb
from repro.programs.matmul import run_matmul
from repro.programs.queens import run_queens
from repro.tam.stats import TamStats


def stats_as_dict(stats: TamStats) -> dict:
    """Every field of TamStats, flattened for exact comparison."""
    return {
        "instructions": {
            kind.name: count for kind, count in stats.instructions.items()
        },
        "messages": stats.messages.as_dict(),
        "threads_run": stats.threads_run,
        "frames_allocated": stats.frames_allocated,
        "istructures_allocated": stats.istructures_allocated,
    }


@pytest.mark.parametrize("nodes", [1, 5])
def test_matmul_paths_identical(nodes):
    fast = run_matmul(n=8, nodes=nodes)
    reference = run_matmul(n=8, nodes=nodes, fast=False)
    assert stats_as_dict(fast.stats) == stats_as_dict(reference.stats)
    assert fast.total == reference.total
    assert (
        fast.machine.turns_executed == reference.machine.turns_executed
    )


@pytest.mark.parametrize("nodes", [1, 5])
def test_gamteb_paths_identical(nodes):
    fast = run_gamteb(n_photons=8, nodes=nodes)
    reference = run_gamteb(n_photons=8, nodes=nodes, fast=False)
    assert stats_as_dict(fast.stats) == stats_as_dict(reference.stats)
    assert (fast.absorbed, fast.escaped, fast.photons_traced) == (
        reference.absorbed,
        reference.escaped,
        reference.photons_traced,
    )
    assert (
        fast.machine.turns_executed == reference.machine.turns_executed
    )


@pytest.mark.parametrize("nodes", [1, 5])
def test_queens_paths_identical(nodes):
    fast = run_queens(n=5, nodes=nodes)
    reference = run_queens(n=5, nodes=nodes, fast=False)
    assert stats_as_dict(fast.stats) == stats_as_dict(reference.stats)
    assert fast.solutions == reference.solutions
    assert (
        fast.machine.turns_executed == reference.machine.turns_executed
    )


def test_istructure_outcome_mix_is_order_sensitive_and_matches():
    """The subtlest equivalence: presence-bit outcomes match exactly.

    A pread that arrives before the pwrite is counted empty/deferred; one
    that arrives after is counted full.  Identical counts across paths
    therefore certify identical scheduling order, not just identical
    totals.
    """
    fast = run_matmul(n=12, nodes=7)
    reference = run_matmul(n=12, nodes=7, fast=False)
    f, r = fast.stats.messages, reference.stats.messages
    assert (f.preads_full, f.preads_empty, f.preads_deferred) == (
        r.preads_full,
        r.preads_empty,
        r.preads_deferred,
    )
    assert (f.pwrites_empty, f.pwrites_deferred) == (
        r.pwrites_empty,
        r.pwrites_deferred,
    )
    # Both orderings genuinely occur at this scale, so the equality above
    # is discriminating.
    assert f.preads_full > 0
    assert f.preads_empty + f.preads_deferred > 0
