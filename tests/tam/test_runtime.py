"""Tests for the TAM runtime: threads, inlets, counters, messages."""

import pytest

from repro.errors import DeadlockError, FrameError, TamError
from repro.tam.codeblock import Codeblock
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    Kind,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.runtime import TamMachine


def simple_block() -> Codeblock:
    """slots: 0=a, 1=b, 2=result"""
    block = Codeblock("simple", frame_size=4)
    block.add_thread(
        "entry",
        [
            ConInstr(0, 20),
            ConInstr(1, 22),
            OpInstr(Op.IADD, 2, 0, 1),
            StopInstr(),
        ],
    )
    block.set_entry("entry")
    return block


class TestBasics:
    def test_boot_and_run(self):
        machine = TamMachine(1)
        machine.load(simple_block())
        ref = machine.boot("simple")
        machine.run()
        assert machine.nodes[0].frames[ref.frame_id].read(2) == 42

    def test_instruction_counts(self):
        machine = TamMachine(1)
        machine.load(simple_block())
        machine.boot("simple")
        stats = machine.run()
        assert stats.instructions[Kind.CON] == 2
        assert stats.instructions[Kind.IOP] == 1
        assert stats.instructions[Kind.STOP] == 1
        assert stats.threads_run == 1

    def test_duplicate_codeblock_rejected(self):
        machine = TamMachine(1)
        machine.load(simple_block())
        with pytest.raises(TamError):
            machine.load(simple_block())

    def test_boot_unknown_codeblock(self):
        with pytest.raises(TamError):
            TamMachine(1).boot("ghost")

    def test_thread_without_stop_rejected(self):
        block = Codeblock("nostop", frame_size=1)
        block.add_thread("entry", [ConInstr(0, 1)]).set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        machine.boot("nostop")
        with pytest.raises(TamError):
            machine.run()

    def test_boot_slots(self):
        machine = TamMachine(1)
        block = Codeblock("args", frame_size=2)
        block.add_thread(
            "entry", [OpInstr(Op.IMUL, 1, 0, Imm(3)), StopInstr()]
        ).set_entry("entry")
        machine.load(block)
        ref = machine.boot("args", slots={0: 7})
        machine.run()
        assert machine.nodes[0].frames[ref.frame_id].read(1) == 21


class TestControlFlow:
    def test_fork_runs_both_threads_lifo(self):
        block = Codeblock("forky", frame_size=3)
        block.add_thread(
            "entry", [ForkInstr("a"), ForkInstr("b"), StopInstr()]
        )
        block.add_thread("a", [ConInstr(0, 1), StopInstr()])
        block.add_thread("b", [MovInstr(1, 0), StopInstr()])
        block.set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        ref = machine.boot("forky")
        machine.run()
        frame = machine.nodes[0].frames[ref.frame_id]
        # LIFO: b runs before a, so it copies the pre-a value of slot 0.
        assert frame.read(1) == 0
        assert frame.read(0) == 1

    def test_switch_then_branch(self):
        block = Codeblock("sw", frame_size=2)
        block.add_thread(
            "entry", [ConInstr(0, 1), SwitchInstr(0, "yes", "no"), StopInstr()]
        )
        block.add_thread("yes", [ConInstr(1, 100), StopInstr()])
        block.add_thread("no", [ConInstr(1, 200), StopInstr()])
        block.set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        ref = machine.boot("sw")
        machine.run()
        assert machine.nodes[0].frames[ref.frame_id].read(1) == 100

    def test_loop_with_counter_reset(self):
        # Thread loops 5 times via SWITCH; accumulates into slot 1.
        block = Codeblock("loop", frame_size=3)
        block.add_thread(
            "entry",
            [ConInstr(0, 0), ConInstr(1, 0), ForkInstr("body"), StopInstr()],
        )
        block.add_thread(
            "body",
            [
                OpInstr(Op.IADD, 1, 1, 0),
                OpInstr(Op.IADD, 0, 0, Imm(1)),
                OpInstr(Op.LT, 2, 0, Imm(5)),
                SwitchInstr(2, "body"),
                StopInstr(),
            ],
        )
        block.set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        ref = machine.boot("loop")
        machine.run()
        assert machine.nodes[0].frames[ref.frame_id].read(1) == 0 + 1 + 2 + 3 + 4


class TestFrameAllocationAndSends:
    def child_block(self) -> Codeblock:
        """Child: waits for two argument words, sends back their product."""
        block = Codeblock("child", frame_size=4)
        # slot 0 = parent frame ref, slots 1,2 = args
        block.add_inlet(0, dest_slots=(0, 1), counter="args")
        block.add_inlet(1, dest_slots=(2,), counter="args")
        block.add_counter("args", 2, "go")
        block.add_thread(
            "go",
            [
                OpInstr(Op.IMUL, 3, 1, 2),
                SendInstr(frame_slot=0, inlet=2, values=(3,)),
                StopInstr(),
            ],
        )
        return block

    def parent_block(self) -> Codeblock:
        block = Codeblock("parent", frame_size=4)
        # slot 0 = child ref, slot 1 = result, slot 3 = self ref
        block.add_inlet(0, dest_slots=(0,), counter="child")
        block.add_counter("child", 1, "feed")
        block.add_inlet(2, dest_slots=(1,), counter="result")
        block.add_counter("result", 1, "done")
        block.add_thread("entry", [FallocInstr("child", reply_inlet=0), StopInstr()])
        block.add_thread(
            "feed",
            [
                SendInstr(frame_slot=0, inlet=0, values=(3, 2)),
                SendInstr(frame_slot=0, inlet=1, values=(2,)),
                StopInstr(),
            ],
        )
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        return block

    def run_parent_child(self, n_nodes: int) -> TamMachine:
        machine = TamMachine(n_nodes)
        machine.load(self.child_block())
        machine.load(self.parent_block())
        ref = machine.boot("parent", slots={})
        # slot 3 must hold the parent's own ref so the child can reply;
        # the feed thread sends slot values, so bank it before running.
        machine.nodes[0].frames[ref.frame_id].write(3, ref)
        self.parent_ref = ref
        machine.run()
        return machine

    def test_child_computes_and_replies(self):
        machine = self.run_parent_child(n_nodes=3)
        frame = machine.nodes[0].frames[self.parent_ref.frame_id]
        # child received (parent_ref, 2) at inlet 0 and 2 at inlet 1...
        # feed sent values from slots 3 (= parent ref) and 2.
        assert frame.read(1) != 0 or machine.stats.frames_allocated == 2

    def test_falloc_counts_messages(self):
        machine = self.run_parent_child(n_nodes=2)
        # falloc request + frame-ref reply + two argument sends + result.
        assert machine.stats.messages.sends == 5
        assert machine.stats.frames_allocated == 2

    def test_send_to_non_frame_slot_rejected(self):
        block = Codeblock("bad", frame_size=2)
        block.add_thread(
            "entry", [ConInstr(0, 5), SendInstr(0, 0, ()), StopInstr()]
        ).set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        machine.boot("bad")
        with pytest.raises(TamError):
            machine.run()


class TestIStructures:
    def producer_consumer(self, n_nodes: int, produce_first: bool) -> TamMachine:
        block = Codeblock("pc", frame_size=6)
        # slot 0 = descriptor, slot 1 = fetched value
        block.add_inlet(0, dest_slots=(0,), counter="desc")
        block.add_counter("desc", 1, "first")
        block.add_inlet(1, dest_slots=(1,), counter="value")
        block.add_counter("value", 1, "done")
        first, second = ("produce", "consume") if produce_first else (
            "consume",
            "produce",
        )
        block.add_thread(
            "entry", [IallocInstr(Imm(4), reply_inlet=0), StopInstr()]
        )
        block.add_thread(
            "first", [ForkInstr(second), ForkInstr(first), StopInstr()]
        )
        block.add_thread(
            "produce",
            [ConInstr(2, 77), IstoreInstr(0, Imm(1), value=2), StopInstr()],
        )
        block.add_thread(
            "consume", [IfetchInstr(0, Imm(1), reply_inlet=1), StopInstr()]
        )
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        machine = TamMachine(n_nodes)
        machine.load(block)
        self.ref = machine.boot("pc")
        machine.run()
        return machine

    def test_fetch_after_store_is_full(self):
        machine = self.producer_consumer(2, produce_first=False)
        # LIFO: "first" thread forks second then first; first runs LAST...
        # either way the value must arrive.
        frame = machine.nodes[0].frames[self.ref.frame_id]
        assert frame.read(1) == 77

    def test_fetch_before_store_defers_then_satisfies(self):
        machine = self.producer_consumer(2, produce_first=True)
        frame = machine.nodes[0].frames[self.ref.frame_id]
        assert frame.read(1) == 77
        mix = machine.stats.messages
        assert mix.preads_full + mix.preads_empty == 1

    def test_outcome_statistics_recorded(self):
        machine = self.producer_consumer(1, produce_first=False)
        mix = machine.stats.messages
        assert mix.preads == 1
        assert mix.pwrites == 1

    def test_deadlock_detected(self):
        block = Codeblock("stuck", frame_size=3)
        block.add_inlet(0, dest_slots=(0,), counter="desc")
        block.add_counter("desc", 1, "fetch")
        block.add_inlet(1, dest_slots=(1,), counter="value")
        block.add_counter("value", 1, "done")
        block.add_thread("entry", [IallocInstr(Imm(2), 0), StopInstr()])
        block.add_thread("fetch", [IfetchInstr(0, Imm(0), 1), StopInstr()])
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        machine = TamMachine(1)
        machine.load(block)
        machine.boot("stuck")
        with pytest.raises(DeadlockError):
            machine.run()


class TestPlainMemory:
    def test_write_then_read(self):
        block = Codeblock("mem", frame_size=4)
        block.add_inlet(0, dest_slots=(1,), counter="value")
        block.add_counter("value", 1, "done")
        block.add_thread(
            "entry",
            [
                ConInstr(0, 1),  # target node
                ConInstr(2, 123),
                WriteInstr(node_slot=0, address=Imm(0x40), value=2),
                ReadInstr(node_slot=0, address=Imm(0x40), reply_inlet=0),
                StopInstr(),
            ],
        )
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        machine = TamMachine(2)
        machine.load(block)
        ref = machine.boot("mem")
        machine.run()
        assert machine.nodes[0].frames[ref.frame_id].read(1) == 123
        assert machine.nodes[1].memory.load(0x40) == 123
        assert machine.stats.messages.reads == 1
        assert machine.stats.messages.writes == 1


class TestValidation:
    def test_counter_posting_unknown_thread(self):
        block = Codeblock("bad", frame_size=1)
        block.add_counter("c", 1, "ghost")
        with pytest.raises(TamError):
            block.validate()

    def test_inlet_with_unknown_counter(self):
        block = Codeblock("bad", frame_size=1)
        block.add_inlet(0, counter="ghost")
        with pytest.raises(TamError):
            block.validate()

    def test_inlet_slot_out_of_range(self):
        block = Codeblock("bad", frame_size=1)
        block.add_inlet(0, dest_slots=(5,))
        with pytest.raises(TamError):
            block.validate()

    def test_counter_underflow(self):
        from repro.tam.frame import Frame, FrameRef

        block = Codeblock("c", frame_size=1)
        block.add_thread("t", [StopInstr()])
        block.add_counter("k", 1, "t")
        frame = Frame(block, FrameRef(0, 1))
        assert frame.decrement("k") == "t"
        with pytest.raises(FrameError):
            frame.decrement("k")
