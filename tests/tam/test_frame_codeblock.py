"""Direct tests for frames, counters, and codeblock structure."""

import pytest

from repro.errors import FrameError, TamError
from repro.tam.codeblock import Codeblock, CounterSpec
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import StopInstr


def block_with_counter(count: int = 2) -> Codeblock:
    block = Codeblock("b", frame_size=4)
    block.add_thread("go", [StopInstr()])
    block.add_counter("c", count, "go")
    return block


class TestFrame:
    def test_slots_start_zero(self):
        frame = Frame(block_with_counter(), FrameRef(0, 1))
        assert frame.read(0) == 0

    def test_write_read(self):
        frame = Frame(block_with_counter(), FrameRef(0, 1))
        frame.write(2, 3.5)
        assert frame.read(2) == 3.5

    def test_slot_bounds(self):
        frame = Frame(block_with_counter(), FrameRef(0, 1))
        with pytest.raises(FrameError):
            frame.read(4)
        with pytest.raises(FrameError):
            frame.write(-1, 0)

    def test_counter_posts_at_zero(self):
        frame = Frame(block_with_counter(2), FrameRef(0, 1))
        assert frame.decrement("c") is None
        assert frame.decrement("c") == "go"

    def test_unknown_counter(self):
        frame = Frame(block_with_counter(), FrameRef(0, 1))
        with pytest.raises(FrameError):
            frame.decrement("nope")
        with pytest.raises(FrameError):
            frame.reset("nope", 1)

    def test_reset_rearms(self):
        frame = Frame(block_with_counter(1), FrameRef(0, 1))
        assert frame.decrement("c") == "go"
        frame.reset("c", 1)
        assert frame.decrement("c") == "go"

    def test_reset_negative_rejected(self):
        frame = Frame(block_with_counter(), FrameRef(0, 1))
        with pytest.raises(FrameError):
            frame.reset("c", -1)

    def test_counter_value(self):
        frame = Frame(block_with_counter(3), FrameRef(0, 1))
        frame.decrement("c")
        assert frame.counter_value("c") == 2


class TestCodeblockStructure:
    def test_duplicate_thread_rejected(self):
        block = Codeblock("b", frame_size=1)
        block.add_thread("t", [StopInstr()])
        with pytest.raises(TamError):
            block.add_thread("t", [StopInstr()])

    def test_duplicate_inlet_rejected(self):
        block = Codeblock("b", frame_size=1)
        block.add_inlet(0)
        with pytest.raises(TamError):
            block.add_inlet(0)

    def test_duplicate_counter_rejected(self):
        block = Codeblock("b", frame_size=1)
        block.add_thread("t", [StopInstr()])
        block.add_counter("c", 1, "t")
        with pytest.raises(TamError):
            block.add_counter("c", 1, "t")

    def test_negative_counter_rejected(self):
        with pytest.raises(TamError):
            CounterSpec(-1, "t")

    def test_unknown_thread_lookup(self):
        block = Codeblock("b", frame_size=1)
        with pytest.raises(TamError):
            block.thread("ghost")

    def test_unknown_inlet_lookup(self):
        block = Codeblock("b", frame_size=1)
        with pytest.raises(TamError):
            block.inlet(7)

    def test_entry_must_exist(self):
        block = Codeblock("b", frame_size=1)
        block.set_entry("ghost")
        with pytest.raises(TamError):
            block.validate()

    def test_chaining(self):
        block = (
            Codeblock("b", frame_size=2)
            .add_thread("t", [StopInstr()])
            .add_inlet(0, dest_slots=(1,), counter="c")
            .add_counter("c", 1, "t")
            .set_entry("t")
        )
        block.validate()
        assert block.entry == "t"
