"""Unit and property tests for the bit-field machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BitfieldError
from repro.utils.bitfield import (
    BitField,
    BitLayout,
    Register,
    mask,
    sign_extend,
    to_word,
)


def demo_layout() -> BitLayout:
    return BitLayout(
        "demo",
        [BitField("lo", 0, 4), BitField("mid", 4, 8), BitField("hi", 28, 4)],
    )


class TestMaskAndWords:
    def test_mask_zero(self):
        assert mask(0) == 0

    def test_mask_values(self):
        assert mask(4) == 0xF
        assert mask(32) == 0xFFFF_FFFF

    def test_mask_negative_rejected(self):
        with pytest.raises(BitfieldError):
            mask(-1)

    def test_to_word_truncates(self):
        assert to_word(1 << 40) == 0
        assert to_word(-1) == 0xFFFF_FFFF

    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_sign_extend_negative(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x8000, 16) == -32768

    def test_sign_extend_bad_width(self):
        with pytest.raises(BitfieldError):
            sign_extend(0, 0)
        with pytest.raises(BitfieldError):
            sign_extend(0, 33)


class TestBitField:
    def test_extract_and_insert_roundtrip(self):
        field = BitField("type", 28, 4)
        word = field.insert(0, 0xA)
        assert word == 0xA000_0000
        assert field.extract(word) == 0xA

    def test_insert_preserves_other_bits(self):
        field = BitField("mid", 8, 8)
        word = field.insert(0xFFFF_FFFF, 0)
        assert word == 0xFFFF_00FF

    def test_insert_overflow_rejected(self):
        field = BitField("small", 0, 2)
        with pytest.raises(BitfieldError):
            field.insert(0, 4)
        with pytest.raises(BitfieldError):
            field.insert(0, -1)

    def test_field_past_word_rejected(self):
        with pytest.raises(BitfieldError):
            BitField("wide", 30, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(BitfieldError):
            BitField("empty", 0, 0)

    def test_unnamed_rejected(self):
        with pytest.raises(BitfieldError):
            BitField("", 0, 1)


class TestBitLayout:
    def test_pack_unpack_roundtrip(self):
        layout = demo_layout()
        word = layout.pack(lo=3, mid=200, hi=15)
        assert layout.unpack(word) == {"lo": 3, "mid": 200, "hi": 15}

    def test_unspecified_fields_default_zero(self):
        layout = demo_layout()
        assert layout.unpack(layout.pack(mid=1))["lo"] == 0

    def test_overlap_rejected(self):
        with pytest.raises(BitfieldError):
            BitLayout("bad", [BitField("a", 0, 4), BitField("b", 3, 4)])

    def test_duplicate_name_rejected(self):
        with pytest.raises(BitfieldError):
            BitLayout("bad", [BitField("a", 0, 4), BitField("a", 8, 4)])

    def test_unknown_field_rejected(self):
        layout = demo_layout()
        with pytest.raises(BitfieldError):
            layout.pack(nope=1)

    def test_update_changes_only_named_field(self):
        layout = demo_layout()
        word = layout.pack(lo=1, mid=2, hi=3)
        updated = layout.update(word, mid=9)
        assert layout.unpack(updated) == {"lo": 1, "mid": 9, "hi": 3}

    def test_used_mask(self):
        layout = demo_layout()
        assert layout.used_mask == (0xF | (0xFF << 4) | (0xF << 28))

    def test_contains(self):
        layout = demo_layout()
        assert "lo" in layout
        assert "zz" not in layout

    @given(
        lo=st.integers(min_value=0, max_value=0xF),
        mid=st.integers(min_value=0, max_value=0xFF),
        hi=st.integers(min_value=0, max_value=0xF),
    )
    def test_pack_unpack_property(self, lo, mid, hi):
        layout = demo_layout()
        assert layout.unpack(layout.pack(lo=lo, mid=mid, hi=hi)) == {
            "lo": lo,
            "mid": mid,
            "hi": hi,
        }

    @given(word=st.integers(min_value=0, max_value=0xFFFF_FFFF))
    def test_unpack_pack_preserves_used_bits(self, word):
        layout = demo_layout()
        repacked = layout.pack(**layout.unpack(word))
        assert repacked == word & layout.used_mask


class TestRegister:
    def test_field_assignment(self):
        reg = Register(demo_layout())
        reg["mid"] = 42
        assert reg["mid"] == 42
        assert reg.word == 42 << 4

    def test_load_many(self):
        reg = Register(demo_layout())
        reg.load({"lo": 1, "hi": 2})
        assert reg.as_dict()["lo"] == 1
        assert reg.as_dict()["hi"] == 2

    def test_raw_word_truncated(self):
        reg = Register(demo_layout(), initial=1 << 36)
        assert reg.word == 0
        reg.word = -1
        assert reg.word == 0xFFFF_FFFF

    def test_overflowing_field_rejected(self):
        reg = Register(demo_layout())
        with pytest.raises(BitfieldError):
            reg["lo"] = 16
