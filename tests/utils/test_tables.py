"""Tests for the report table/bar-chart renderers."""

from repro.utils.tables import render_bar_chart, render_table


class TestRenderTable:
    def test_headers_present(self):
        out = render_table(["name", "cycles"], [["send", 3]])
        assert "name" in out and "cycles" in out

    def test_rows_rendered(self):
        out = render_table(["a"], [["x"], ["y"]])
        assert "x" in out and "y" in out

    def test_integer_grouping(self):
        out = render_table(["n"], [[1234567]])
        assert "1,234,567" in out

    def test_float_formatting(self):
        out = render_table(["f"], [[3.14159]])
        assert "3.14" in out

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.startswith("Table 1\n=======")

    def test_numeric_right_alignment(self):
        out = render_table(["n"], [[5], [12345]])
        lines = out.splitlines()
        assert lines[-2].endswith("5")
        assert lines[-1].endswith("12,345")

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert "a" in out

    def test_mixed_column_left_aligned(self):
        out = render_table(["what"], [["2-3"], ["word"]])
        assert "2-3" in out


class TestRenderBarChart:
    def test_totals_shown(self):
        out = render_bar_chart(["m1"], [("compute", [100.0]), ("comm", [50.0])])
        assert "150" in out

    def test_legend(self):
        out = render_bar_chart(["m1"], [("compute", [1.0])])
        assert "legend: #=compute" in out

    def test_bars_scale(self):
        out = render_bar_chart(
            ["big", "small"], [("c", [100.0, 10.0])], width=40
        )
        big_line, small_line = out.splitlines()[0:2]
        assert big_line.count("#") > small_line.count("#")

    def test_zero_values_safe(self):
        out = render_bar_chart(["z"], [("c", [0.0])])
        assert "z" in out

    def test_title_rendered(self):
        out = render_bar_chart(["a"], [("c", [1.0])], title="Figure 12")
        assert out.startswith("Figure 12")
