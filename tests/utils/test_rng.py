"""Tests for the deterministic splittable PRNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import SplitMix64, stream_for


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SplitMix64(12345)
        b = SplitMix64(12345)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]

    def test_stream_for_is_stable(self):
        assert stream_for(7, 3).next_u64() == stream_for(7, 3).next_u64()

    def test_stream_for_path_sensitive(self):
        assert stream_for(7, 3).next_u64() != stream_for(7, 4).next_u64()
        assert stream_for(7, 3, 0).next_u64() != stream_for(7, 3, 1).next_u64()


class TestRanges:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_float_in_unit_interval(self, seed):
        rng = SplitMix64(seed)
        for _ in range(5):
            value = rng.next_float()
            assert 0.0 <= value < 1.0

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=1, max_value=1000),
    )
    def test_next_below_in_range(self, seed, bound):
        rng = SplitMix64(seed)
        for _ in range(5):
            assert 0 <= rng.next_below(bound) < bound

    def test_next_below_rejects_nonpositive(self):
        rng = SplitMix64(0)
        with pytest.raises(ValueError):
            rng.next_below(0)

    def test_next_below_covers_small_range(self):
        rng = SplitMix64(99)
        seen = {rng.next_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestSplit:
    def test_split_streams_independent(self):
        parent = SplitMix64(42)
        child_a = parent.split(0)
        child_b = parent.split(1)
        assert child_a.next_u64() != child_b.next_u64()

    def test_split_salt_distinguishes(self):
        a = SplitMix64(42).split(10)
        b = SplitMix64(42).split(11)
        assert a.next_u64() != b.next_u64()


class TestChoice:
    def test_choice_respects_zero_weight(self):
        rng = SplitMix64(5)
        for _ in range(100):
            assert rng.choice_index([0.0, 1.0, 0.0]) == 1

    def test_choice_rejects_all_zero(self):
        rng = SplitMix64(5)
        with pytest.raises(ValueError):
            rng.choice_index([0.0, 0.0])

    def test_choice_rejects_negative(self):
        rng = SplitMix64(5)
        with pytest.raises(ValueError):
            rng.choice_index([1.0, -0.5, 2.0])

    def test_choice_roughly_proportional(self):
        rng = SplitMix64(2024)
        counts = [0, 0]
        for _ in range(4000):
            counts[rng.choice_index([1.0, 3.0])] += 1
        ratio = counts[1] / counts[0]
        assert 2.3 < ratio < 3.9

    def test_uniformity_of_floats(self):
        rng = SplitMix64(77)
        draws = [rng.next_float() for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 0.47 < mean < 0.53
