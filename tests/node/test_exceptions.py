"""Tests for the node-level exception path (dispatch id 0001)."""

import pytest

from repro.errors import QueueOverflowError
from repro.nic.control import SendFullPolicy
from repro.nic.interface import NetworkInterface
from repro.nic.messages import pack_destination
from repro.node.handlers import build_write_request
from repro.node.node import Node


def overflow_node() -> Node:
    node = Node(0, interface=NetworkInterface(node=0, output_capacity=1))
    node.interface.control.full_policy = SendFullPolicy.EXCEPTION
    return node


class TestExceptionService:
    def trigger_overflow(self, node: Node) -> None:
        node.interface.write_output(0, pack_destination(0))
        node.interface.send(2)
        with pytest.raises(QueueOverflowError):
            node.interface.send(2)

    def test_exception_preempts_messages(self):
        node = overflow_node()
        order = []
        node.on_exception(lambda n, pending: order.append(("exc", pending)))
        node.interface.deliver(build_write_request(0, 0x40, 1))
        self.trigger_overflow(node)
        node.service()
        assert order and order[0][0] == "exc"
        assert "exc_output_overflow" in order[0][1]
        # The queued message was still handled afterwards.
        assert node.memory.load(0x40) == 1

    def test_exception_cleared_after_service(self):
        node = overflow_node()
        self.trigger_overflow(node)
        node.service()
        assert not node.interface.status.has_exception
        assert node.stats.exceptions_handled == 1

    def test_exception_without_message_serviced(self):
        node = overflow_node()
        self.trigger_overflow(node)
        assert node.service() == 1

    def test_default_handler_is_clearing_only(self):
        node = overflow_node()
        self.trigger_overflow(node)
        node.service()  # no handler installed: clears and counts
        assert node.stats.exceptions_handled == 1

    def test_msgip_reports_exception_while_pending(self):
        from repro.nic.dispatch import decode_table_address

        node = overflow_node()
        node.interface.ip_base = 0x8000
        self.trigger_overflow(node)
        handler, _, _ = decode_table_address(node.interface.msg_ip)
        assert handler == 1
        node.service()
        handler, _, _ = decode_table_address(node.interface.msg_ip)
        assert handler == 0
