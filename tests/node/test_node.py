"""Tests for the node service loop and behavioural handlers."""

import pytest

from repro.errors import MessageFormatError, QueueOverflowError
from repro.kernels import protocol as P
from repro.nic.messages import pack_destination
from repro.node.handlers import (
    build_pread_request,
    build_pwrite_request,
    build_read_request,
    build_send,
    build_write_request,
)
from repro.node.node import Node


def make_node(node_id: int = 0) -> Node:
    return Node(node_id)


class TestServiceLoop:
    def test_idle_when_no_messages(self):
        node = make_node()
        assert node.idle
        assert not node.service_one()

    def test_service_counts_by_type(self):
        node = make_node()
        node.interface.deliver(build_write_request(0, 0x100, 1))
        node.interface.deliver(build_write_request(0, 0x104, 2))
        assert node.service() == 2
        assert node.stats.handled_by_type[P.TYPE_WRITE] == 2

    def test_service_limit(self):
        node = make_node()
        for i in range(4):
            node.interface.deliver(build_write_request(0, 0x100 + 4 * i, i))
        assert node.service(limit=2) == 2
        assert not node.idle

    def test_unknown_type_raises(self):
        node = Node(0, handlers={})
        node.interface.deliver(build_write_request(0, 0x100, 1))
        with pytest.raises(MessageFormatError):
            node.service_one()


class TestWriteAndReadHandlers:
    def test_write_banks_value(self):
        node = make_node()
        node.interface.deliver(build_write_request(0, 0x200, 0xBEEF))
        node.service()
        assert node.memory.load(0x200) == 0xBEEF

    def test_read_replies_with_value(self):
        node = make_node()
        node.memory.store(0x300, 77)
        node.interface.deliver(
            build_read_request(0, 0x300, pack_destination(1, 0x50), 0x4444)
        )
        node.service()
        reply = node.interface.transmit()
        assert reply.mtype == P.TYPE_SEND
        assert reply.destination == 1
        assert reply.word(0) == pack_destination(1, 0x50)
        assert reply.word(1) == 0x4444
        assert reply.word(2) == 77


class TestSendHandler:
    def test_send_invokes_inlet_with_data(self):
        node = make_node()
        seen = []

        def inlet(n, message):
            seen.append((message.m0_low, message.word(2), message.word(3)))

        ip = node.register_inlet(inlet)
        node.interface.deliver(build_send(0, 0x20, ip, data=(5, 6)))
        node.service()
        assert seen == [(0x20, 5, 6)]

    def test_unregistered_inlet_raises(self):
        node = make_node()
        node.interface.deliver(build_send(0, 0, 0x9999))
        with pytest.raises(MessageFormatError):
            node.service_one()

    def test_inlet_ips_unique(self):
        node = make_node()
        a = node.register_inlet(lambda n, m: None)
        b = node.register_inlet(lambda n, m: None)
        assert a != b

    def test_explicit_ip_collision_rejected(self):
        node = make_node()
        node.register_inlet(lambda n, m: None, ip=0x100)
        with pytest.raises(MessageFormatError):
            node.register_inlet(lambda n, m: None, ip=0x100)

    def test_send_data_word_limit(self):
        with pytest.raises(MessageFormatError):
            build_send(0, 0, 0x4000, data=(1, 2, 3))


class TestPresenceHandlers:
    def test_pread_full_replies(self):
        node = make_node()
        desc = node.istructures.allocate(4)
        node.istructures.write(desc, 2, 11)
        node.interface.deliver(
            build_pread_request(0, desc, 2, pack_destination(1, 0), 0x4000)
        )
        node.service()
        reply = node.interface.transmit()
        assert reply.word(2) == 11

    def test_pread_empty_defers_silently(self):
        node = make_node()
        desc = node.istructures.allocate(4)
        node.interface.deliver(
            build_pread_request(0, desc, 1, pack_destination(1, 0), 0x4000)
        )
        node.service()
        assert node.interface.transmit() is None
        assert node.istructures.waiter_count(desc, 1) == 1

    def test_pwrite_satisfies_deferred_readers_via_forward(self):
        node = make_node()
        desc = node.istructures.allocate(2)
        for i in range(3):
            node.interface.deliver(
                build_pread_request(0, desc, 0, pack_destination(2, 0x10 * i), 0x4000 + i)
            )
        node.service()
        assert node.interface.peek_outgoing() is None
        node.interface.deliver(build_pwrite_request(0, desc, 0, 0xAB))
        node.service()
        replies = []
        while (reply := node.interface.transmit()) is not None:
            replies.append(reply)
        assert len(replies) == 3
        assert all(r.word(2) == 0xAB for r in replies)
        assert [r.word(1) for r in replies] == [0x4000, 0x4001, 0x4002]
        assert all(r.destination == 2 for r in replies)


class TestSendRetry:
    def test_send_without_drain_hook_raises_when_jammed(self):
        from repro.nic.interface import NetworkInterface

        node = Node(0, interface=NetworkInterface(node=0, output_capacity=1))
        node.interface.write_output(0, pack_destination(0))
        node.send_with_retry(P.TYPE_WRITE)
        with pytest.raises(QueueOverflowError):
            node.send_with_retry(P.TYPE_WRITE)

    def test_send_retries_through_drain_hook(self):
        from repro.nic.interface import NetworkInterface

        node = Node(0, interface=NetworkInterface(node=0, output_capacity=1))
        drained = []

        def drain():
            drained.append(node.interface.transmit())

        node.set_drain_hook(drain)
        node.interface.write_output(0, pack_destination(0))
        node.send_with_retry(P.TYPE_WRITE)
        node.send_with_retry(P.TYPE_WRITE)
        assert node.stats.send_retries >= 1
        assert drained
