"""Tests for the escape-type secondary dispatch (paper Section 2.2.1)."""

import pytest

from repro.errors import MessageFormatError
from repro.nic.messages import Message, default_registry, pack_destination
from repro.node.handlers import ESCAPE_TYPE
from repro.node.node import Node


def escape_message(escape_id: int, payload: int = 0) -> Message:
    return Message(
        ESCAPE_TYPE, (pack_destination(0), payload, 0, 0, escape_id)
    )


class TestEscapeDispatch:
    def test_escape_type_matches_registry_convention(self):
        assert default_registry().escape_type == ESCAPE_TYPE

    def test_escape_handler_invoked_by_word4_id(self):
        node = Node(0)
        seen = []
        node.register_escape_handler(
            0xBEEF, lambda n, m: seen.append(m.word(1))
        )
        node.interface.deliver(escape_message(0xBEEF, payload=7))
        node.service()
        assert seen == [7]

    def test_two_escape_kinds_coexist(self):
        node = Node(0)
        seen = []
        node.register_escape_handler(1, lambda n, m: seen.append("one"))
        node.register_escape_handler(2, lambda n, m: seen.append("two"))
        node.interface.deliver(escape_message(2))
        node.interface.deliver(escape_message(1))
        node.service()
        assert seen == ["two", "one"]

    def test_unknown_escape_id_raises(self):
        node = Node(0)
        node.interface.deliver(escape_message(0x999))
        with pytest.raises(MessageFormatError):
            node.service_one()

    def test_duplicate_registration_rejected(self):
        node = Node(0)
        node.register_escape_handler(1, lambda n, m: None)
        with pytest.raises(MessageFormatError):
            node.register_escape_handler(1, lambda n, m: None)

    def test_escape_coexists_with_common_types(self):
        """Common kinds keep their fast 4-bit dispatch; rare kinds escape."""
        from repro.node.handlers import build_write_request

        node = Node(0)
        seen = []
        node.register_escape_handler(42, lambda n, m: seen.append("rare"))
        node.interface.deliver(build_write_request(0, 0x40, 5))
        node.interface.deliver(escape_message(42))
        node.service()
        assert node.memory.load(0x40) == 5
        assert seen == ["rare"]
