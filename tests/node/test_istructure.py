"""Tests for I-structure memory semantics and statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IStructureError
from repro.node.istructure import DeferredReader, IStructureMemory


def reader(tag: int = 0) -> DeferredReader:
    return DeferredReader(frame_pointer=0x1000 + tag, instruction_pointer=0x4000 + tag)


class TestAllocation:
    def test_descriptors_distinct(self):
        mem = IStructureMemory()
        a = mem.allocate(4)
        b = mem.allocate(4)
        assert a != b

    def test_length(self):
        mem = IStructureMemory()
        desc = mem.allocate(7)
        assert mem.length(desc) == 7

    def test_negative_length_rejected(self):
        with pytest.raises(IStructureError):
            IStructureMemory().allocate(-1)

    def test_unknown_descriptor(self):
        mem = IStructureMemory()
        with pytest.raises(IStructureError):
            mem.read(0xDEAD, 0, reader())

    def test_index_bounds(self):
        mem = IStructureMemory()
        desc = mem.allocate(2)
        with pytest.raises(IStructureError):
            mem.read(desc, 2, reader())
        with pytest.raises(IStructureError):
            mem.write(desc, -1, 0)


class TestProtocol:
    def test_read_after_write_is_full(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        mem.write(desc, 0, 42)
        state, value = mem.read(desc, 0, reader())
        assert state == "full"
        assert value == 42

    def test_read_before_write_defers(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        state, value = mem.read(desc, 0, reader())
        assert state == "empty"
        assert value is None
        assert mem.waiter_count(desc, 0) == 1

    def test_second_read_is_deferred_state(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        mem.read(desc, 0, reader(0))
        state, _ = mem.read(desc, 0, reader(1))
        assert state == "deferred"
        assert mem.waiter_count(desc, 0) == 2

    def test_write_satisfies_waiters_in_order(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        mem.read(desc, 0, reader(0))
        mem.read(desc, 0, reader(1))
        state, satisfied = mem.write(desc, 0, 9)
        assert state == "deferred"
        assert [r.frame_pointer for r in satisfied] == [0x1000, 0x1001]
        assert mem.waiter_count(desc, 0) == 0

    def test_write_to_fresh_element_is_empty_state(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        state, satisfied = mem.write(desc, 0, 9)
        assert state == "empty"
        assert satisfied == []

    def test_double_write_rejected(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        mem.write(desc, 0, 1)
        with pytest.raises(IStructureError):
            mem.write(desc, 0, 2)

    def test_peek(self):
        mem = IStructureMemory()
        desc = mem.allocate(1)
        assert mem.peek(desc, 0) is None
        mem.write(desc, 0, 5)
        assert mem.peek(desc, 0) == 5

    def test_store_sequence(self):
        mem = IStructureMemory()
        desc = mem.allocate(3)
        mem.store_sequence(desc, [1, 2, 3])
        assert all(mem.is_full(desc, i) for i in range(3))


class TestStats:
    def test_outcome_counts(self):
        mem = IStructureMemory()
        desc = mem.allocate(2)
        mem.write(desc, 0, 1)  # writes_empty
        mem.read(desc, 0, reader())  # full
        mem.read(desc, 1, reader(0))  # empty
        mem.read(desc, 1, reader(1))  # deferred
        mem.write(desc, 1, 2)  # writes_deferred, 2 satisfied
        stats = mem.stats
        assert stats.reads_full == 1
        assert stats.reads_empty == 1
        assert stats.reads_deferred == 1
        assert stats.writes_empty == 1
        assert stats.writes_deferred == 1
        assert stats.deferred_readers_satisfied == 2
        assert stats.reads == 3
        assert stats.writes == 2

    def test_merge(self):
        a = IStructureMemory()
        b = IStructureMemory()
        d1 = a.allocate(1)
        d2 = b.allocate(1)
        a.write(d1, 0, 1)
        b.write(d2, 0, 1)
        a.stats.merge(b.stats)
        assert a.stats.writes_empty == 2

    @given(order=st.permutations(list(range(6))))
    def test_every_reader_satisfied_exactly_once(self, order):
        """Property: whatever the interleaving, reads never lose values."""
        mem = IStructureMemory()
        desc = mem.allocate(3)
        satisfied = []
        direct = []
        # Operations: 3 writes (ops 0-2) and 3 reads (ops 3-5) over 3 slots.
        for op in order:
            if op < 3:
                _, readers = mem.write(desc, op, 100 + op)
                satisfied.extend((r.frame_pointer, 100 + op) for r in readers)
            else:
                slot = op - 3
                state, value = mem.read(desc, slot, reader(slot))
                if state == "full":
                    direct.append((0x1000 + slot, value))
        results = sorted(satisfied + direct)
        assert results == [(0x1000 + i, 100 + i) for i in range(3)]
