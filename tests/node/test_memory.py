"""Tests for the word-addressed node memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.node.memory import Memory

aligned = st.integers(min_value=0, max_value=1 << 20).map(lambda i: i * 4)
word = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestBasics:
    def test_uninitialised_reads_zero(self):
        assert Memory().load(0x100) == 0

    def test_store_load(self):
        mem = Memory()
        mem.store(0x100, 42)
        assert mem.load(0x100) == 42

    def test_misaligned_rejected(self):
        mem = Memory()
        with pytest.raises(MachineError):
            mem.load(0x101)
        with pytest.raises(MachineError):
            mem.store(0x102, 1)

    def test_negative_rejected(self):
        with pytest.raises(MachineError):
            Memory().load(-4)

    def test_values_truncated(self):
        mem = Memory()
        mem.store(0, 1 << 36)
        assert mem.load(0) == 0

    def test_len_counts_written_words(self):
        mem = Memory()
        mem.store(0, 1)
        mem.store(4, 2)
        mem.store(0, 3)
        assert len(mem) == 2

    def test_clear(self):
        mem = Memory()
        mem.store(0, 1)
        mem.clear()
        assert mem.load(0) == 0

    def test_access_counters(self):
        mem = Memory()
        mem.store(0, 1)
        mem.load(0)
        mem.load(4)
        assert mem.stores == 1
        assert mem.loads == 2


class TestBlocks:
    def test_block_roundtrip(self):
        mem = Memory()
        mem.store_block(0x40, [1, 2, 3])
        assert mem.load_block(0x40, 3) == [1, 2, 3]

    def test_block_pads_with_zero(self):
        mem = Memory()
        mem.store(0x40, 9)
        assert mem.load_block(0x40, 3) == [9, 0, 0]

    @given(address=aligned, values=st.lists(word, min_size=1, max_size=16))
    def test_block_property(self, address, values):
        mem = Memory()
        mem.store_block(address, values)
        assert mem.load_block(address, len(values)) == values

    @given(
        ops=st.lists(
            st.tuples(aligned, word),
            min_size=1,
            max_size=40,
        )
    )
    def test_last_write_wins(self, ops):
        mem = Memory()
        model = {}
        for address, value in ops:
            mem.store(address, value)
            model[address] = value
        for address, value in model.items():
            assert mem.load(address) == value
