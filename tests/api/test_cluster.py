"""Tests for the high-level Cluster API."""

import pytest

from repro.api.cluster import Cluster, RemoteValue
from repro.errors import NetworkError
from repro.network.topology import Hypercube, Mesh2D, Torus2D


class TestConstruction:
    def test_default_cluster(self):
        cluster = Cluster()
        assert cluster.n_nodes == 4

    def test_custom_topology(self):
        cluster = Cluster(Hypercube(3))
        assert cluster.n_nodes == 8

    def test_node_lookup_checked(self):
        with pytest.raises(NetworkError):
            Cluster(Mesh2D(2, 2)).node(7)


class TestRemoteMemory:
    def test_remote_read(self):
        cluster = Cluster(Mesh2D(4, 4))
        cluster.node(13).memory.store(0x500, 31337)
        assert cluster.remote_read(source=2, target=13, address=0x500) == 31337

    def test_remote_write_then_read(self):
        cluster = Cluster(Mesh2D(3, 3))
        cluster.remote_write(source=0, target=8, address=0x40, value=99)
        assert cluster.node(8).memory.load(0x40) == 99
        assert cluster.remote_read(source=4, target=8, address=0x40) == 99

    def test_read_own_node(self):
        cluster = Cluster(Mesh2D(2, 2))
        cluster.node(1).memory.store(0x10, 5)
        assert cluster.remote_read(source=1, target=1, address=0x10) == 5

    def test_unready_remote_value_raises(self):
        with pytest.raises(NetworkError):
            RemoteValue().get()


class TestIStructures:
    def test_read_after_write(self):
        cluster = Cluster(Torus2D(3, 3))
        desc = cluster.istructure_alloc(4, length=8)
        cluster.istructure_write(source=0, target=4, descriptor=desc, index=3, value=7)
        result = cluster.istructure_read(source=8, target=4, descriptor=desc, index=3)
        assert result.get() == 7

    def test_deferred_read_satisfied_by_later_write(self):
        cluster = Cluster(Mesh2D(3, 3))
        desc = cluster.istructure_alloc(4, length=2)
        pending = cluster.istructure_read(0, 4, desc, 0)
        assert not pending.ready  # reader deferred on the empty element
        cluster.istructure_write(8, 4, desc, 0, value=123)
        assert pending.ready
        assert pending.get() == 123

    def test_many_deferred_readers(self):
        cluster = Cluster(Mesh2D(4, 4))
        desc = cluster.istructure_alloc(5, length=1)
        pendings = [
            cluster.istructure_read(source, 5, desc, 0)
            for source in (0, 1, 2, 3, 6, 7)
        ]
        cluster.istructure_write(15, 5, desc, 0, value=55)
        assert all(p.get() == 55 for p in pendings)
        stats = cluster.istructure_stats()
        assert stats.reads_empty == 1
        assert stats.reads_deferred == 5
        assert stats.deferred_readers_satisfied == 6


class TestSpawn:
    def test_spawn_runs_inlet_remotely(self):
        cluster = Cluster(Mesh2D(2, 2))
        results = []
        ip = cluster.node(3).register_inlet(
            lambda node, message: results.append(message.word(2) + message.word(3))
        )
        cluster.spawn(source=0, target=3, inlet_ip=ip, data=(20, 22))
        assert results == [42]

    def test_message_accounting(self):
        cluster = Cluster(Mesh2D(2, 2))
        cluster.remote_write(0, 3, 0x0, 1)
        cluster.remote_write(1, 2, 0x0, 1)
        assert cluster.total_messages_handled() == 2

    def test_fabric_stats_accumulate(self):
        cluster = Cluster(Mesh2D(4, 1))
        cluster.remote_write(0, 3, 0x0, 1)
        assert cluster.fabric.stats.delivered >= 1
        assert cluster.fabric.stats.mean_hops >= 3


class TestBlockOperations:
    def test_block_write_then_block_read(self):
        cluster = Cluster(Mesh2D(3, 3))
        values = [10 * i + 3 for i in range(20)]
        cluster.remote_block_write(source=0, target=8, address=0x400, values=values)
        assert (
            cluster.remote_block_read(source=4, target=8, address=0x400, count=20)
            == values
        )

    def test_block_write_exercises_flow_control(self):
        # 40 words overflow the 16-deep output queue: the sender must
        # stall and drain through the fabric mid-burst.
        cluster = Cluster(Mesh2D(2, 1))
        values = list(range(40))
        cluster.remote_block_write(source=0, target=1, address=0x0, values=values)
        assert cluster.node(0).stats.send_retries > 0
        assert [cluster.node(1).memory.load(4 * i) for i in range(40)] == values

    def test_block_read_pipelines(self):
        cluster = Cluster(Mesh2D(4, 1))
        cluster.node(3).memory.store_block(0x100, [7, 8, 9])
        assert cluster.remote_block_read(0, 3, 0x100, 3) == [7, 8, 9]

    def test_empty_block_write(self):
        cluster = Cluster(Mesh2D(2, 1))
        cluster.remote_block_write(0, 1, 0x0, [])
        assert cluster.total_messages_handled() == 0


class TestCycleAccounting:
    """One kernel cycle per service round — including node-only rounds.

    Regression pin for the pre-kernel ``Cluster.run`` loop, which
    advanced its round counter only while the fabric had traffic
    pending: work that drained entirely inside nodes (a message already
    delivered to an input queue) consumed no simulated time and a run
    could report 0 rounds despite handling messages.
    """

    def test_node_only_work_consumes_cycles(self):
        from repro.node.handlers import build_write_request

        cluster = Cluster(Mesh2D(2, 1))
        # Hand the message straight to node 0's interface: the fabric
        # never sees it, so the legacy counter would have reported 0.
        delivered = cluster.node(0).interface.deliver(
            build_write_request(0, 0x80, 99)
        )
        assert delivered
        cycles = cluster.run()
        assert cycles >= 1
        assert cluster.node(0).memory.load(0x80) == 99

    def test_quiescent_machine_runs_zero_cycles(self):
        cluster = Cluster(Mesh2D(2, 1))
        assert cluster.run() == 0

    def test_cycles_accumulate_across_operations(self):
        cluster = Cluster(Mesh2D(2, 1))
        cluster.remote_write(source=0, target=1, address=0x0, value=5)
        before = cluster._kernel.cycle
        cluster.remote_write(source=0, target=1, address=0x4, value=6)
        assert cluster._kernel.cycle > before
