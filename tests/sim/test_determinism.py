"""Determinism pins for every kernel-driven workload (ISSUE 4).

Two kinds of guarantee:

* **Repeatability** — the same workload run twice produces byte-identical
  payloads, cycle counts, and trace event streams.  The kernel has no
  hidden state (no wall clock, no hashing order, no RNG), so any
  divergence here is a scheduling bug.
* **Policy equivalence** — the TAM reference and fast interpreters are
  two policies over the same sweep contract; their observable event
  streams must match turn for turn, not just in aggregate.
"""

from repro.api.cluster import Cluster
from repro.eval.flowcontrol import hotspot_params, run_hotspot
from repro.exp.spec import EvalOptions
from repro.network.topology import Mesh2D
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import TAM_HANDLE, TAM_POST, Tracer
from repro.programs.matmul import run_matmul
from repro.programs.queens import run_queens


def small_hotspot():
    params = hotspot_params(EvalOptions())
    params["messages_per_sender"] = 6
    return params


def drive_cluster(tracer):
    """A mixed read/write workload with cross-fabric traffic."""
    cluster = Cluster(Mesh2D(3, 3), tracer=tracer)
    cluster.remote_block_write(source=0, target=8, address=0x100, values=range(12))
    values = cluster.remote_block_read(source=4, target=8, address=0x100, count=12)
    assert values == list(range(12))
    return cluster


class TestRepeatability:
    def test_hotspot_twice_is_identical(self):
        runs = []
        for _ in range(2):
            tracer = Tracer(capacity=None)
            payload = run_hotspot(
                small_hotspot(), tracer=tracer, metrics=MetricsRecorder()
            )
            runs.append((payload, list(tracer.events)))
        (payload_a, events_a), (payload_b, events_b) = runs
        assert payload_a == payload_b
        assert events_a == events_b

    def test_cluster_twice_is_identical(self):
        runs = []
        for _ in range(2):
            tracer = Tracer(capacity=None)
            cluster = drive_cluster(tracer)
            runs.append(
                (
                    cluster.fabric.stats.cycles,
                    cluster.total_messages_handled(),
                    list(tracer.events),
                )
            )
        assert runs[0] == runs[1]


class TestPolicyEquivalence:
    """Reference and fast TAM schedulers: same events, same order."""

    def tam_stream(self, tracer):
        return [
            event
            for event in tracer.events
            if event.kind in (TAM_POST, TAM_HANDLE)
        ]

    def test_matmul_turn_for_turn(self):
        fast, ref = Tracer(capacity=None), Tracer(capacity=None)
        a = run_matmul(n=8, nodes=4, fast=True, tracer=fast)
        b = run_matmul(n=8, nodes=4, fast=False, tracer=ref)
        assert a.total == b.total
        assert a.machine.turns_executed == b.machine.turns_executed
        assert self.tam_stream(fast) == self.tam_stream(ref)

    def test_queens_turn_for_turn(self):
        fast, ref = Tracer(capacity=None), Tracer(capacity=None)
        a = run_queens(n=5, nodes=4, fast=True, tracer=fast)
        b = run_queens(n=5, nodes=4, fast=False, tracer=ref)
        assert a.solutions == b.solutions
        assert a.machine.turns_executed == b.machine.turns_executed
        assert self.tam_stream(fast) == self.tam_stream(ref)
