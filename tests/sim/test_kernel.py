"""The cycle engine's contract: ordering, wake/sleep, stop conditions."""

import pytest

from repro.errors import SimStallError, SimulationError
from repro.sim import SimComponent, SimKernel


class Recorder(SimComponent):
    """Ticks for a fixed number of cycles, logging (name, cycle) pairs."""

    def __init__(self, name, work, log):
        self.name = name
        self.work = work
        self.log = log

    def tick(self, cycle):
        self.log.append((self.name, cycle))
        if self.work:
            self.work -= 1

    def quiescent(self):
        return self.work == 0

    def snapshot(self):
        return {"work": self.work}


class TestOrdering:
    def test_components_tick_in_registration_order(self):
        log = []
        kernel = SimKernel()
        kernel.register(Recorder("b", 2, log))
        kernel.register(Recorder("a", 2, log))
        kernel.run()
        assert log == [("b", 1), ("a", 1), ("b", 2), ("a", 2)]

    def test_empty_kernel_rejected(self):
        with pytest.raises(SimulationError):
            SimKernel().run()

    def test_register_mid_run_rejected(self):
        kernel = SimKernel()
        log = []

        class Registrar(Recorder):
            def tick(self, cycle):
                kernel.register(Recorder("late", 1, log))

        kernel.register(Registrar("r", 1, log))
        with pytest.raises(SimulationError):
            kernel.run()


class TestStopConditions:
    def test_quiescent_machine_runs_zero_cycles(self):
        kernel = SimKernel()
        kernel.register(Recorder("a", 0, []))
        result = kernel.run()
        assert result.cycles == 0
        assert result.reason == "quiescent"

    def test_runs_until_all_components_quiescent(self):
        kernel = SimKernel()
        kernel.register(Recorder("short", 1, []))
        kernel.register(Recorder("long", 5, []))
        result = kernel.run()
        assert result.cycles == 5

    def test_custom_predicate_overrides_quiescence(self):
        log = []
        kernel = SimKernel()
        kernel.register(Recorder("a", 100, log))
        result = kernel.run(until=lambda: len(log) >= 3)
        assert result.cycles == 3
        assert result.reason == "predicate"

    def test_stall_raises_with_component_snapshots(self):
        kernel = SimKernel()
        kernel.register(Recorder("stuck", 10_000, []), name="stuck")
        with pytest.raises(SimStallError) as err:
            kernel.run(max_cycles=7)
        message = str(err.value)
        assert "within 7 cycles" in message
        assert "stuck" in message
        assert "work=9993" in message

    def test_stall_error_type_is_pluggable(self):
        kernel = SimKernel()
        kernel.register(Recorder("stuck", 100, []))
        with pytest.raises(TimeoutError):
            kernel.run(max_cycles=3, stall_error=TimeoutError)

    def test_cycle_counter_accumulates_across_runs(self):
        kernel = SimKernel()
        component = Recorder("a", 2, [])
        kernel.register(component)
        assert kernel.run().cycles == 2
        component.work = 3
        # max_cycles bounds the new run, not the accumulated total.
        assert kernel.run(max_cycles=3).cycles == 3
        assert kernel.cycle == 5


class TestWakeSleep:
    def test_sleeping_component_is_skipped(self):
        log = []

        class Sleeper(Recorder):
            def tick(self, cycle):
                super().tick(cycle)
                self.handle.sleep()

        kernel = SimKernel()
        sleeper = Sleeper("sleeper", 1, log)
        sleeper.handle = kernel.register(sleeper)
        kernel.register(Recorder("worker", 4, log))
        kernel.run()
        assert [entry for entry in log if entry[0] == "sleeper"] == [("sleeper", 1)]

    def test_timed_wake_resumes_on_schedule(self):
        log = []

        class Periodic(Recorder):
            def tick(self, cycle):
                super().tick(cycle)
                if self.work:
                    self.handle.wake_at(cycle + 3)
                else:
                    self.handle.sleep()

        kernel = SimKernel()
        periodic = Periodic("p", 3, log)
        periodic.handle = kernel.register(periodic)
        kernel.register(Recorder("clock", 10, log))
        kernel.run()
        assert [c for name, c in log if name == "p"] == [1, 4, 7]

    def test_wake_reenters_scan(self):
        log = []

        class Waker(Recorder):
            def __init__(self, name, work, log, target):
                super().__init__(name, work, log)
                self.target = target

            def tick(self, cycle):
                super().tick(cycle)
                if cycle == 2:
                    self.target.handle.wake()

        kernel = SimKernel()
        sleeper = Recorder("sleeper", 1, log)
        waker = Waker("waker", 3, log, sleeper)
        waker.handle = kernel.register(waker)
        sleeper.handle = kernel.register(sleeper)
        sleeper.handle.sleep()
        kernel.run()
        # Woken mid-cycle 2 by an earlier-registered component, the
        # sleeper joins that same cycle's scan.
        assert ("sleeper", 2) in log

    def test_sleeping_component_still_holds_machine_open(self):
        kernel = SimKernel()
        sleeper = Recorder("sleeper", 5, [])
        handle = kernel.register(sleeper)
        handle.wake_at(10_000)
        kernel.register(Recorder("clock", 1, []))
        with pytest.raises(SimStallError):
            kernel.run(max_cycles=50)


class TestTimedWakeTies:
    """Heap ties resolve like the flag-array scan: registration order.

    The timed-wake heap stores ``(cycle, index)`` events, so several
    components due on the same cycle pop in index order — exactly the
    order the awake-flag ``list.index`` scan would service them.  The
    repeat run pins the order as deterministic, and the
    ``fast_forward=False`` twin pins it equal to the literal
    cycle-by-cycle loop's.
    """

    @staticmethod
    def _run_tied(fast_forward):
        log = []
        kernel = SimKernel(fast_forward=fast_forward)
        components = [Recorder(f"c{i}", 1, log) for i in range(5)]
        handles = [kernel.register(c) for c in components]
        # Same due cycle for every component, scheduled in reverse so a
        # naive insertion order would differ from index order.
        for handle in reversed(handles):
            handle.wake_at(10)
        kernel.run()
        return log

    @pytest.mark.parametrize("fast_forward", [True, False])
    def test_same_cycle_wakes_tick_in_registration_order(self, fast_forward):
        assert self._run_tied(fast_forward) == [
            (f"c{i}", 10) for i in range(5)
        ]

    def test_tie_order_is_deterministic_across_repeats(self):
        runs = [self._run_tied(fast_forward=True) for _ in range(5)]
        assert all(run == runs[0] for run in runs)
        # ...and identical to the flag-scan (no fast-forward) loop.
        assert runs[0] == self._run_tied(fast_forward=False)


class TestHooks:
    def test_cycle_hook_sees_every_cycle(self):
        seen = []
        kernel = SimKernel()
        kernel.register(Recorder("a", 3, []))
        kernel.add_cycle_hook(seen.append)
        kernel.run()
        assert seen == [1, 2, 3]
