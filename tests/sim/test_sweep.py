"""The three turn policies: identical service order, exact turn bounds.

The synthetic states here model the TAM shape (a work stack that can
spawn work on other states) without any TAM machinery, so the policy
contract is pinned independently of the runtime that uses it.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import ActiveSweep, EventSweep, ReferenceSweep


class State:
    """A work queue that can push follow-on work onto other states."""

    def __init__(self, index):
        self.index = index
        self.work = []  # each item: list of (target_index, payload) spawns
        self.serviced = []


class Harness:
    """Drives N states under either policy, recording service order."""

    def __init__(self, n):
        self.states = [State(i) for i in range(n)]
        self.order = []
        self.sweep = ActiveSweep(n)

    def spawn(self, index, item):
        self.states[index].work.append(item)

    def _do_one(self, state):
        spawns = state.work.pop(0)
        self.order.append(state.index)
        state.serviced.append(spawns)
        for target, item in spawns:
            self.states[target].work.append(item)
            if self.sweep.active:
                self.sweep.wake(target)

    def run_reference(self, max_turns=1000, stall=None):
        return ReferenceSweep().run(
            self.states,
            has_work=lambda state: state.work,
            do_one=self._do_one,
            max_turns=max_turns,
            stall=stall or (lambda: SimulationError("turn bound exceeded")),
        )

    def run_active(self, max_turns=1000, stall=None):
        def service(state):
            if not state.work:
                return None
            self._do_one(state)
            return bool(state.work)

        return self.sweep.run(
            self.states,
            service,
            initially_active=[s.index for s in self.states if s.work],
            max_turns=max_turns,
            stall=stall or (lambda: SimulationError("turn bound exceeded")),
        )

    def run_event(self, max_turns=1000, stall=None):
        # Same run contract as ActiveSweep; _do_one keeps reporting
        # spawns through self.sweep.wake.
        self.sweep = EventSweep(len(self.states))
        return self.run_active(max_turns=max_turns, stall=stall)


def cascade(harness):
    """State 0 fans out to 2 and 1; 1 then feeds 3; 3 re-arms 0."""
    harness.spawn(0, [(2, []), (1, [(3, [])])])
    harness.spawn(1, [])
    harness.spawn(3, [(0, [])])


class TestEquivalence:
    @pytest.mark.parametrize("policy", ["reference", "active", "event"])
    def test_service_order(self, policy):
        harness = Harness(4)
        cascade(harness)
        runner = getattr(harness, f"run_{policy}")
        turns = runner()
        # Both policies service ascending index order, sweep by sweep,
        # with mid-sweep spawns joining the current sweep only when the
        # sweep has not passed the target yet.
        assert turns == len(harness.order)
        reference = Harness(4)
        cascade(reference)
        reference.run_reference()
        assert harness.order == reference.order

    def test_turn_counts_match(self):
        a, b = Harness(5), Harness(5)
        for h in (a, b):
            h.spawn(0, [(4, [(2, [])]), (1, [])])
            h.spawn(3, [])
        assert a.run_reference() == b.run_active()
        assert a.order == b.order


class TestTurnBound:
    """``max_turns`` is exact: K turns within a bound of K succeed."""

    @pytest.mark.parametrize("policy", ["reference", "active", "event"])
    def test_exact_bound_succeeds(self, policy):
        probe = Harness(4)
        cascade(probe)
        needed = probe.run_reference()
        harness = Harness(4)
        cascade(harness)
        runner = getattr(harness, f"run_{policy}")
        assert runner(max_turns=needed) == needed

    @pytest.mark.parametrize("policy", ["reference", "active", "event"])
    def test_one_below_bound_raises(self, policy):
        probe = Harness(4)
        cascade(probe)
        needed = probe.run_reference()
        harness = Harness(4)
        cascade(harness)
        runner = getattr(harness, f"run_{policy}")
        with pytest.raises(SimulationError):
            runner(max_turns=needed - 1)

    @pytest.mark.parametrize("policy", ["reference", "active", "event"])
    def test_runaway_work_raises(self, policy):
        harness = Harness(2)
        harness.spawn(0, [(0, [])])
        original = harness._do_one

        def do_one(state):
            # State 0 perpetually re-arms itself: never quiesces.
            original(state)
            state.work.append([(0, [])])
            if harness.sweep.active:
                harness.sweep.wake(0)

        harness._do_one = do_one
        runner = getattr(harness, f"run_{policy}")
        with pytest.raises(SimulationError):
            runner(max_turns=50)
