"""The obs package surface: lazy exports, __all__, and Tracer.clear.

``repro.obs`` resolves its exports lazily (PEP 562), so importing the
package must not pull in any submodule, every ``__all__`` name must
resolve to the right object, and the order names are touched in must
not matter.  The laziness checks run in a subprocess because the rest
of the suite imports the submodules eagerly.
"""

import subprocess
import sys

import pytest

import repro.obs as obs
from repro.obs.tracer import HOP, SEND, Tracer


def run_snippet(code: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestLazyExports:
    def test_import_pulls_no_submodules(self):
        # `import repro` itself loads obs.tracer (via repro.nic); the
        # package import must add nothing beyond that baseline.
        out = run_snippet(
            "import sys\n"
            "import repro\n"
            "baseline = {m for m in sys.modules if m.startswith('repro.obs')}\n"
            "import repro.obs\n"
            "loaded = [m for m in sys.modules\n"
            "          if m.startswith('repro.obs.') and m not in baseline]\n"
            "print(loaded)\n"
        )
        assert out == "[]"

    def test_attribute_access_loads_only_its_module(self):
        out = run_snippet(
            "import sys\n"
            "import repro.obs\n"
            "baseline = {m for m in sys.modules if m.startswith('repro.obs.')}\n"
            "assert 'repro.obs.lineage' not in baseline\n"
            "repro.obs.LineageTracker\n"
            "loaded = sorted(m for m in sys.modules\n"
            "                if m.startswith('repro.obs.') "
            "and m not in baseline)\n"
            "print(loaded)\n"
        )
        assert out == "['repro.obs.lineage']"

    def test_import_order_does_not_matter(self):
        # breakdown imports lineage; touching them in either order must
        # resolve to the same objects.
        out = run_snippet(
            "from repro.obs import reconcile_lineage, LineageTracker\n"
            "from repro.obs.breakdown import reconcile_lineage as direct\n"
            "print(reconcile_lineage is direct)\n"
        )
        assert out == "True"
        out = run_snippet(
            "from repro.obs import LineageTracker, reconcile_lineage\n"
            "from repro.obs.lineage import LineageTracker as direct\n"
            "print(LineageTracker is direct)\n"
        )
        assert out == "True"

    def test_all_names_resolve(self):
        for name in obs.__all__:
            assert getattr(obs, name) is not None

    def test_all_is_complete(self):
        # Every public name of the submodules' own __all__ that the
        # package maps must round-trip; and the lineage/breakdown
        # additions must be present.
        for required in (
            "Tracer",
            "MetricsRecorder",
            "SimProfiler",
            "chrome_trace",
            "LineageTracker",
            "LineageRecord",
            "Span",
            "PHASES",
            "LINEAGE_SCHEMA",
            "reconcile_lineage",
            "phase_breakdown",
            "critical_path",
            "lineage_report",
            "write_lineage",
        ):
            assert required in obs.__all__
        assert list(obs.__all__) == sorted(obs.__all__)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            obs.does_not_exist

    def test_dir_lists_exports(self):
        assert set(obs.__all__) <= set(dir(obs))

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro.obs import *", namespace)
        exported = {k for k in namespace if not k.startswith("__")}
        assert exported == set(obs.__all__)


class TestTracerClear:
    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=2)
        for ts in range(5):
            tracer.emit(ts, SEND, 0)
        assert tracer.dropped == 3
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.emitted == 0
        assert len(tracer) == 0

    def test_clear_resets_per_kind_counts(self):
        tracer = Tracer()
        tracer.emit(0, SEND, 0)
        tracer.emit(1, HOP, 0)
        tracer.emit(2, HOP, 0)
        tracer.clear()
        assert tracer.count(SEND) == 0
        assert tracer.count(HOP) == 0
        # The tracer is reusable after clear with exact counts again.
        tracer.emit(3, HOP, 0)
        assert tracer.count(HOP) == 1
        assert tracer.dropped == 0
