"""The simulation profiler: attribution accuracy and the zero-cost-off
guarantee.

Two properties carry the whole design:

* **Off means off.**  A kernel with no profiler attached must execute
  the original run loop — identical payloads, identical kernel results,
  and no profiling attribute ever written onto a component.
* **On means exact.**  With a profiler attached, tick attribution must
  reconcile with the tracer's independent event counts, and everything
  except wall-clock seconds must be deterministic run to run.
"""

import pytest

from repro.errors import ReconciliationError, SimulationError
from repro.eval.flowcontrol import (
    compute_flowcontrol,
    hotspot_params,
    reconcile_hotspot,
    run_hotspot,
)
from repro.exp.spec import EvalOptions
from repro.obs.chrome import PROFILER_PID, chrome_trace_events
from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler, reconcile, render_profile
from repro.obs.tracer import Tracer
from repro.programs.matmul import run_matmul
from repro.sim import SimComponent, SimKernel


def small_params() -> dict:
    params = hotspot_params(EvalOptions())
    params["messages_per_sender"] = 4
    return params


def strip_seconds(profile: dict) -> dict:
    """Drop the wall-clock fields (the one volatile part of a profile)."""
    out = dict(profile)
    out["components"] = {
        name: {k: v for k, v in entry.items() if k != "seconds"}
        for name, entry in profile["components"].items()
    }
    return out


class _Counter(SimComponent):
    name = "counter"

    def __init__(self, limit: int) -> None:
        self.count = 0
        self.limit = limit

    def tick(self, cycle: int) -> None:
        self.count += 1

    def quiescent(self) -> bool:
        return self.count >= self.limit


class TestZeroCostOff:
    def test_hotspot_payload_identical_with_and_without_profiler(self):
        params = small_params()
        plain = run_hotspot(params)
        profiled = run_hotspot(params, profiler=SimProfiler())
        assert plain == profiled

    def test_unprofiled_run_never_enters_the_profiled_loop(self, monkeypatch):
        kernel = SimKernel()
        kernel.register(_Counter(3))
        monkeypatch.setattr(
            kernel,
            "_run_profiled",
            lambda *a, **k: pytest.fail("profiled loop ran without a profiler"),
        )
        assert kernel.run(max_cycles=10).reason == "quiescent"

    def test_profiling_writes_no_attributes_onto_components(self):
        component = _Counter(3)
        before = set(vars(component))
        kernel = SimKernel()
        kernel.register(component)
        kernel.attach_profiler(SimProfiler())
        kernel.run(max_cycles=10)
        assert set(vars(component)) == before

    def test_attach_mid_run_is_rejected(self):
        kernel = SimKernel()

        class Attacher(SimComponent):
            name = "attacher"

            def tick(self, cycle: int) -> None:
                kernel.attach_profiler(SimProfiler())

            def quiescent(self) -> bool:
                return False

        kernel.register(Attacher())
        with pytest.raises(SimulationError):
            kernel.run(max_cycles=3)


class TestKernelAttribution:
    def test_fabric_ticks_every_cycle_and_sleepers_are_skipped(self):
        profiler = SimProfiler()
        payload = run_hotspot(small_params(), profiler=profiler)
        rows = {p.name: p for p in profiler.kernel_components}
        assert profiler.cycles == payload["cycles"]
        assert rows["fabric"].ticks == payload["cycles"]
        assert profiler.utilization(rows["fabric"]) == 1.0
        # Senders sleep between offer slots: far fewer ticks than cycles,
        # and every return to the scan came from a timed wake.
        for name, row in rows.items():
            if name.startswith("sender"):
                assert 0 < row.ticks < payload["cycles"]
                assert row.timed_wakes > 0

    def test_attribution_reconciles_with_the_tracer(self):
        profiler = SimProfiler()
        tracer = Tracer(capacity=None)
        payload = run_hotspot(small_params(), tracer=tracer, profiler=profiler)
        reconcile_hotspot(profiler, tracer, payload)

    def test_reconcile_raises_on_mismatch(self):
        with pytest.raises(ReconciliationError, match="expected 3, observed 4"):
            reconcile({"ticks": (3, 4), "fine": (1, 1)})

    def test_profile_deterministic_up_to_seconds(self):
        profiles = []
        for _ in range(2):
            profiler = SimProfiler(sample_interval=32)
            run_hotspot(small_params(), profiler=profiler)
            profiles.append(profiler.to_dict(include_samples=True))
        assert strip_seconds(profiles[0]) == strip_seconds(profiles[1])

    def test_attribution_accumulates_across_runs(self):
        kernel = SimKernel()
        component = _Counter(3)
        kernel.register(component)
        profiler = SimProfiler()
        kernel.attach_profiler(profiler)
        kernel.run(max_cycles=10)
        component.limit = 5
        kernel.run(max_cycles=10)
        assert profiler.runs == 2
        assert profiler.kernel_components[0].ticks == component.count

    def test_samples_feed_the_chrome_counter_track(self):
        profiler = SimProfiler(sample_interval=64)
        payload = run_hotspot(small_params(), profiler=profiler)
        assert profiler.samples
        final_cycle, final_ticks = profiler.samples[-1]
        assert final_cycle == payload["cycles"]
        events = [
            e
            for e in chrome_trace_events(profiler=profiler)
            if e["pid"] == PROFILER_PID
        ]
        assert len(events) == len(profiler.samples)
        # The per-window deltas sum back to the cumulative totals.
        names = [c.name for c in profiler.kernel_components]
        for index, name in enumerate(names):
            assert sum(e["args"][name] for e in events) == final_ticks[index]


class TestTamAttribution:
    def test_profiled_run_identical_to_unprofiled(self):
        plain = run_matmul(n=8, nodes=4)
        profiled = run_matmul(n=8, nodes=4, profiler=SimProfiler())
        assert plain.total == profiled.total
        assert plain.stats == profiled.stats

    def test_node_turns_sum_to_turns_executed_on_both_paths(self):
        for fast in (True, False):
            profiler = SimProfiler()
            result = run_matmul(n=8, nodes=4, fast=fast, profiler=profiler)
            assert sum(p.ticks for p in profiler.tracked.values()) == (
                result.machine.turns_executed
            )

    def test_fast_and_reference_attribute_identically(self):
        ticks = []
        for fast in (True, False):
            profiler = SimProfiler()
            run_matmul(n=8, nodes=4, fast=fast, profiler=profiler)
            ticks.append({n: p.ticks for n, p in profiler.tracked.items()})
        assert ticks[0] == ticks[1]

    def test_stats_counters_land_in_the_registry(self):
        profiler = SimProfiler()
        result = run_matmul(n=8, nodes=4, profiler=profiler)
        assert profiler.counters["tam.turns"] == result.machine.turns_executed
        assert profiler.counters["tam.instructions"] == (
            result.stats.total_instructions
        )
        assert profiler.counters["tam.messages"] == (
            result.stats.messages.total_messages
        )


class TestRegistryAndRendering:
    def test_metrics_feed_publishes_summaries(self):
        metrics = MetricsRecorder()
        for cycle in range(10):
            metrics.sample("depth", cycle, cycle)
        profiler = SimProfiler()
        metrics.feed_profiler(profiler)
        assert profiler.counters["metrics.depth.samples"] == 10
        assert profiler.gauges["metrics.depth.mean"] == 4.5
        assert profiler.counters["metrics.crossings"] == 0

    def test_render_profile_works_on_plain_payload(self):
        params = small_params()
        params["profile_sim"] = True
        payload = compute_flowcontrol(params)
        text = render_profile(payload["profile"])
        assert "fabric" in text
        assert "tick share" in text
        assert "tam" not in text  # kernel rows only in this workload

    def test_counter_helpers(self):
        profiler = SimProfiler()
        profiler.add_counter("a")
        profiler.add_counter("a", 2)
        profiler.set_counter("a", 10)
        profiler.set_gauge("g", 1.5)
        assert profiler.counters == {"a": 10}
        assert profiler.gauges == {"g": 1.5}
        assert "registry entry" in profiler.table()
