"""The perf database and the cross-run trend report.

The database is an append-only JSONL log; the report's statistics are
small enough to pin exactly: median baselines, MAD noise bands, the
same-host partition, and the regression gate's arming rule.
"""

import json

import pytest

from repro.exp.runner import ExperimentOutcome, record_outcomes
from repro.obs import perfdb
from repro.obs.report import (
    analyze_bench,
    analyze_db,
    main as report_main,
    median,
    noise_band,
    render_html,
    render_markdown,
)


def record(bench="demo", seconds=1.0, host="h1", **extra):
    return perfdb.make_record(
        bench,
        {"run_seconds": seconds, "cycles": 2400},
        sha="abc1234",
        host=host,
        timestamp=1000.0,
        **extra,
    )


class TestPerfdb:
    def test_record_shape(self):
        rec = record()
        assert rec["schema_version"] == perfdb.SCHEMA_VERSION
        assert rec["bench"] == "demo"
        assert rec["host"] == "h1"
        assert rec["metrics"] == {"run_seconds": 1.0, "cycles": 2400}
        json.dumps(rec)  # must be plain JSON types

    def test_append_is_append_only(self, tmp_path):
        path1 = perfdb.append_record(tmp_path, record(seconds=1.0))
        path2 = perfdb.append_record(tmp_path, record(seconds=2.0))
        assert path1 == path2
        loaded = perfdb.load_bench(tmp_path, "demo")
        assert [r["metrics"]["run_seconds"] for r in loaded] == [1.0, 2.0]

    def test_load_skips_garbage_and_foreign_schemas(self, tmp_path):
        path = perfdb.append_record(tmp_path, record())
        with path.open("a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema_version": 999, "metrics": {}}) + "\n")
            fh.write("\n")
        assert len(perfdb.load_bench(tmp_path, "demo")) == 1

    def test_load_all_and_bench_name_sanitisation(self, tmp_path):
        perfdb.append_record(tmp_path, record(bench="a/b"))
        perfdb.append_record(tmp_path, record(bench="plain"))
        assert perfdb.bench_path(tmp_path, "a/b").name == "a_b.jsonl"
        assert set(perfdb.load_all(tmp_path)) == {"a/b", "plain"}

    def test_missing_db_is_empty(self, tmp_path):
        assert perfdb.load_bench(tmp_path / "nope", "x") == []
        assert perfdb.load_all(tmp_path / "nope") == {}

    def test_host_fingerprint_is_stable(self):
        assert perfdb.host_fingerprint() == perfdb.host_fingerprint()
        assert len(perfdb.host_fingerprint()) == 12

    def test_git_sha_inside_this_repo(self):
        assert perfdb.git_sha() != "unknown"

    def test_empty_bench_name_rejected(self):
        with pytest.raises(ValueError):
            perfdb.make_record("", {})


class TestStatistics:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_noise_band(self):
        assert noise_band([1.0], 1.0) == 0.0
        band = noise_band([1.0, 1.1, 0.9, 1.0], 1.0)
        assert band == pytest.approx(1.4826 * 0.05)


class TestAnalysis:
    def seed(self, seconds_list, host="h1"):
        return [record(seconds=s, host=host) for s in seconds_list]

    def test_gate_needs_two_prior_runs(self):
        report = analyze_bench("demo", self.seed([1.0, 5.0]), host="h1")
        entry = next(
            e for e in report["metrics"] if e["name"] == "run_seconds"
        )
        assert entry["status"] == "needs-history"
        assert not report["regressed"]

    def test_regression_must_clear_noise_and_threshold(self):
        # Baseline 1.0, no noise: the limit is exactly 1.10.
        ok = analyze_bench("demo", self.seed([1.0, 1.0, 1.0, 1.09]), host="h1")
        bad = analyze_bench("demo", self.seed([1.0, 1.0, 1.0, 1.11]), host="h1")
        assert not ok["regressed"]
        assert bad["regressed"]
        assert bad["status"] == "REGRESSED"

    def test_noisy_history_widens_the_limit(self):
        # Same +15% excursion: regression on a quiet bench, noise on a
        # jittery one.
        quiet = analyze_bench(
            "demo", self.seed([1.0, 1.0, 1.0, 1.0, 1.15]), host="h1"
        )
        noisy = analyze_bench(
            "demo", self.seed([1.0, 1.2, 0.85, 1.1, 1.15]), host="h1"
        )
        assert quiet["regressed"]
        assert not noisy["regressed"]

    def test_single_outlier_cannot_shift_the_baseline(self):
        report = analyze_bench(
            "demo", self.seed([1.0, 1.0, 9.0, 1.0, 1.0, 1.05]), host="h1"
        )
        entry = next(
            e for e in report["metrics"] if e["name"] == "run_seconds"
        )
        assert entry["baseline"] == 1.0
        assert not report["regressed"]

    def test_other_hosts_never_enter_the_comparison(self):
        records = self.seed([1.0, 1.0, 1.0], host="h1")
        records += self.seed([0.1], host="h2")  # a faster machine, last
        report = analyze_bench("demo", records, host="h1")
        assert report["runs"] == 3
        assert report["runs_all_hosts"] == 4
        assert not report["regressed"]
        assert analyze_bench("demo", records, host="h3")["status"] == (
            "no-runs-on-this-host"
        )

    def test_counts_are_context_not_gated(self):
        records = self.seed([1.0, 1.0, 1.0, 1.0])
        records[-1]["metrics"]["cycles"] = 99999  # huge, but not *_seconds
        report = analyze_bench("demo", records, host="h1")
        entry = next(e for e in report["metrics"] if e["name"] == "cycles")
        assert entry["status"] == "info"
        assert not report["regressed"]

    def test_profile_meta_reaches_the_report(self):
        records = self.seed([1.0, 1.0])
        profile = {"cycles": 7, "components": {"fabric": {"ticks": 7}}}
        records[-1]["meta"]["profile"] = profile
        report = analyze_bench("demo", records, host="h1")
        assert report["profile"] == profile
        markdown = render_markdown([report], 0.10)
        assert "fabric" in markdown
        assert "tick share" in markdown


class TestRenderAndCli:
    def seed_db(self, tmp_path, seconds_list):
        for s in seconds_list:
            perfdb.append_record(
                tmp_path, perfdb.make_record("demo", {"run_seconds": s})
            )

    def test_markdown_and_html_render(self, tmp_path):
        self.seed_db(tmp_path, [1.0, 1.0, 1.0, 5.0])
        reports = analyze_db(tmp_path)
        markdown = render_markdown(reports, 0.10)
        assert "REGRESSED" in markdown and "`run_seconds`" in markdown
        html = render_html(reports, 0.10)
        assert "<table>" in html and "REGRESSED" in html

    def test_check_exit_codes(self, tmp_path, capsys):
        self.seed_db(tmp_path, [1.0, 1.0, 1.0, 1.0])
        assert report_main(["--db", str(tmp_path), "--check"]) == 0
        self.seed_db(tmp_path, [5.0])
        assert report_main(["--db", str(tmp_path), "--check"]) == 1
        # A looser threshold lets the same excursion through.
        assert (
            report_main(
                ["--db", str(tmp_path), "--check", "--threshold", "9.0"]
            )
            == 0
        )
        capsys.readouterr()

    def test_html_artifact_written(self, tmp_path, capsys):
        self.seed_db(tmp_path, [1.0])
        out = tmp_path / "out" / "report.html"
        assert (
            report_main(["--db", str(tmp_path), "--html", str(out)]) == 0
        )
        assert out.read_text().startswith("<!doctype html>")
        capsys.readouterr()

    def test_empty_db_reports_cleanly(self, tmp_path, capsys):
        assert report_main(["--db", str(tmp_path), "--check"]) == 0
        assert "empty perf database" in capsys.readouterr().out


class TestRunnerIntegration:
    def test_record_outcomes_appends_section_records(self, tmp_path):
        outcomes = [
            ExperimentOutcome(
                name="flowcontrol",
                title="Hot-spot",
                text="",
                artifact={
                    "data": {"profile": {"cycles": 1, "components": {}}}
                },
                wall_clock_seconds=0.5,
            )
        ]
        paths = record_outcomes(tmp_path, outcomes)
        assert [p.name for p in paths] == ["section.flowcontrol.jsonl"]
        loaded = perfdb.load_bench(tmp_path, "section.flowcontrol")
        assert loaded[0]["metrics"] == {"wall_clock_seconds": 0.5}
        assert loaded[0]["meta"]["profile"] == {
            "cycles": 1,
            "components": {},
        }
