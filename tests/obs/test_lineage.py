"""Lineage tracking: span state machine, partition invariant, causality.

The acceptance trio lives here: with lineage attached the golden
hot-spot payload is byte-identical to the untraced run, every message's
spans exactly partition ``[inject, deliver]``, and the 64-node NIC
barrier's structural critical path matches the combining tree's closed
form (``2 * depth``).
"""

import pytest

from repro.collectives.engine import run_nic_collective
from repro.collectives.tree import CombiningTree
from repro.errors import ReconciliationError
from repro.eval.flowcontrol import hotspot_params, run_hotspot
from repro.exp.spec import EvalOptions
from repro.network.topology import Mesh2D
from repro.obs.breakdown import critical_path, reconcile_lineage
from repro.obs.lineage import (
    DIVERT_PARK,
    PHASE_DISPATCH,
    PHASE_DIVERT,
    PHASE_EJECT,
    PHASE_HANDLER,
    PHASE_INJECT_WAIT,
    PHASE_LINK,
    PHASE_QUEUE,
    PHASE_SERIALIZE,
    PHASE_VC_BLOCK,
    LineageTracker,
    Span,
)


class FakeMessage:
    def __init__(self, dest=3):
        self.dest = dest
        self.mtype = None


class TestSpanStateMachine:
    """Drive the hooks by hand and inspect the resulting spans."""

    def full_path(self):
        tracker = LineageTracker(origin="unit")
        message = FakeMessage()
        tracker.on_send(message, 0, ts=10)
        tracker.on_serialize_start(message, ts=12)
        tracker.on_inject(message, ts=14, node=0)
        tracker.on_block(message, ts=16)
        tracker.on_hop(message, ts=18, hops=1, node=1, vc=0, src=0)
        tracker.on_deliver(message, ts=20)
        tracker.on_dispatch(message, ts=22, detail={"case": 1})
        tracker.on_retire(message, ts=25)
        return tracker, tracker.records[0]

    def test_phases_in_order(self):
        _, record = self.full_path()
        assert [span.phase for span in record.spans] == [
            PHASE_INJECT_WAIT,   # [10, 12)
            PHASE_SERIALIZE,     # [12, 15)
            PHASE_QUEUE,         # [15, 16)
            PHASE_VC_BLOCK,      # [16, 17) charged blocked cycle
            PHASE_QUEUE,         # [17, 18)
            PHASE_LINK,          # [18, 19)
            PHASE_QUEUE,         # [19, 20)
            PHASE_EJECT,         # [20, 21)
            PHASE_DISPATCH,      # [21, 22)
            PHASE_HANDLER,       # [22, 25)
        ]

    def test_spans_partition_lifetime(self):
        tracker, record = self.full_path()
        assert record.state == "done"
        assert record.delivered == 21
        assert record.retired == 25
        cursor = record.created
        for span in record.spans:
            assert span.start == cursor
            assert span.end > span.start
            cursor = span.end
        assert cursor == record.retired
        assert reconcile_lineage(tracker) == {
            "checked": 1,
            "complete": 1,
            "incomplete": 0,
        }

    def test_blocked_cycles_become_vc_block(self):
        _, record = self.full_path()
        totals = record.phase_totals()
        assert totals[PHASE_VC_BLOCK] == 1
        # close_wait consumed the blocked list.
        assert record.blocked == []

    def test_same_cycle_dispatch_after_delivery(self):
        # Delivery at ts closes the eject span at ts+1; a dispatch fired
        # with the same clock value must clamp to the cursor, not record
        # a negative span.
        tracker = LineageTracker()
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        tracker.on_inject(message, ts=1, node=0)
        tracker.on_deliver(message, ts=5)
        tracker.on_dispatch(message, ts=5)
        tracker.on_retire(message, ts=9)
        reconcile_lineage(tracker, require_complete=True)
        record = tracker.records[0]
        assert record.phase_totals()[PHASE_HANDLER] == 3  # [6, 9)

    def test_divert_opens_until_redelivery(self):
        tracker = LineageTracker()
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        tracker.on_inject(message, ts=2, node=0)
        tracker.on_divert(message, ts=6, reason="pin")
        assert tracker.records[0].state == "diverted"
        tracker.on_deliver(message, ts=30)  # ordered redelivery
        tracker.on_dispatch(message, ts=31)
        tracker.on_retire(message, ts=33)
        record = tracker.records[0]
        diverts = [s for s in record.spans if s.phase == PHASE_DIVERT]
        assert len(diverts) == 1
        assert diverts[0].end - diverts[0].start == 30 - 7
        assert diverts[0].detail["reason"] == "pin"
        reconcile_lineage(tracker, require_complete=True)

    def test_scheduler_park_is_typed_divert(self):
        tracker = LineageTracker()
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        tracker.on_inject(message, ts=1, node=0)
        tracker.on_deliver(message, ts=4)
        tracker.on_drain(message, ts=10)  # scheduler parks the queue
        tracker.on_deliver(message, ts=50)
        tracker.on_dispatch(message, ts=51)
        tracker.on_retire(message, ts=52)
        record = tracker.records[0]
        parks = [s for s in record.spans if s.phase == PHASE_DIVERT]
        assert len(parks) == 1
        assert parks[0].detail["reason"] == DIVERT_PARK
        reconcile_lineage(tracker, require_complete=True)

    def test_unknown_message_hooks_are_noops(self):
        tracker = LineageTracker()
        stranger = FakeMessage()
        tracker.on_deliver(stranger, ts=5)
        tracker.on_dispatch(stranger, ts=6)
        tracker.on_retire(stranger, ts=7)
        assert tracker.records == []

    def test_clear_resets_everything(self):
        tracker, _ = self.full_path()
        tracker.clear()
        assert tracker.records == []
        assert tracker.live == {}
        assert tracker.last_record is None
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        assert tracker.records[0].lid == 0  # lid counter restarted


class TestReconciliationRejectsTampering:
    def tracked(self):
        tracker = LineageTracker()
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        tracker.on_inject(message, ts=2, node=0)
        tracker.on_deliver(message, ts=6)
        tracker.on_dispatch(message, ts=8)
        tracker.on_retire(message, ts=9)
        return tracker

    def test_gap_detected(self):
        tracker = self.tracked()
        record = tracker.records[0]
        span = record.spans[1]
        record.spans[1] = Span(span.phase, span.start + 1, span.end, span.detail)
        with pytest.raises(ReconciliationError, match="gap"):
            reconcile_lineage(tracker)

    def test_overlap_detected(self):
        tracker = self.tracked()
        record = tracker.records[0]
        span = record.spans[1]
        record.spans[1] = Span(span.phase, span.start - 1, span.end, span.detail)
        with pytest.raises(ReconciliationError, match="overlap"):
            reconcile_lineage(tracker)

    def test_missing_span_detected(self):
        tracker = self.tracked()
        del tracker.records[0].spans[1]
        with pytest.raises(ReconciliationError):
            reconcile_lineage(tracker)

    def test_in_flight_record_rejected_when_complete_required(self):
        tracker = LineageTracker()
        message = FakeMessage()
        tracker.on_send(message, 0, ts=0)
        reconcile_lineage(tracker)  # contiguity alone is fine
        with pytest.raises(ReconciliationError, match="never completed"):
            reconcile_lineage(tracker, require_complete=True)


class TestHotspotAcceptance:
    """The golden hot-spot run under lineage: identical and exact.

    (The untraced payload itself is pinned against the golden dict in
    ``tests/eval/test_flowcontrol_golden.py``; here we pin lineage-on
    against lineage-off, which closes the loop.)
    """

    @pytest.fixture(scope="class")
    def lineage_run(self):
        params = hotspot_params(EvalOptions())
        tracker = LineageTracker(origin="test")
        observed = run_hotspot(params, lineage=tracker)
        untraced = run_hotspot(params)
        return observed, untraced, tracker

    def test_payload_byte_identical_to_lineage_off(self, lineage_run):
        observed, untraced, _ = lineage_run
        assert observed == untraced

    def test_every_message_partitions_inject_to_deliver(self, lineage_run):
        _, untraced, tracker = lineage_run
        summary = reconcile_lineage(tracker, require_complete=True)
        assert summary["checked"] == untraced["delivered"]
        assert summary["incomplete"] == 0
        for record in tracker.records:
            boundaries = {record.created}
            cursor = record.created
            for span in record.spans:
                assert span.start == cursor
                cursor = span.end
                boundaries.add(cursor)
            assert record.delivered in boundaries

    def test_blocked_moves_fully_attributed(self, lineage_run):
        # Every blocked move the fabric charged appears as exactly one
        # vc_block cycle in some message's spans.
        _, untraced, tracker = lineage_run
        vc_cycles = sum(
            span.end - span.start
            for record in tracker.records
            for span in record.spans
            if span.phase == PHASE_VC_BLOCK
        )
        assert vc_cycles == untraced["blocked_moves"]


class TestCollectivesCriticalPath:
    def test_barrier_chain_matches_tree_depth(self):
        topology = Mesh2D(8, 8)
        tracker = LineageTracker(origin="barrier")
        run_nic_collective("barrier", topology, lineage=tracker)
        reconcile_lineage(tracker, require_complete=True)
        tree = CombiningTree(64, arity=2)
        path = critical_path(tracker)
        # Up-combines then down-broadcast: one message per tree level
        # each way, so the structural chain is exactly 2 * depth.
        assert path["max_chain"] == 2 * tree.depth()
        assert path["length"] >= 1
        assert path["duration"] == sum(path["phases"].values())

    def test_barrier_fan_in_parents(self):
        topology = Mesh2D(4, 4)
        tracker = LineageTracker(origin="barrier")
        run_nic_collective("barrier", topology, arity=4, lineage=tracker)
        # Some emission must have combined multiple children.
        assert any(len(record.parents) > 1 for record in tracker.records)


class TestTamLineage:
    def producer_consumer(self, backend):
        from repro.tam.codeblock import Codeblock
        from repro.tam.instructions import (
            ConInstr,
            ForkInstr,
            IallocInstr,
            IfetchInstr,
            Imm,
            IstoreInstr,
            StopInstr,
        )
        from repro.tam.runtime import TamMachine

        block = Codeblock("pc", frame_size=6)
        block.add_inlet(0, dest_slots=(0,), counter="desc")
        block.add_counter("desc", 1, "first")
        block.add_inlet(1, dest_slots=(1,), counter="value")
        block.add_counter("value", 1, "done")
        block.add_thread(
            "entry", [IallocInstr(Imm(4), reply_inlet=0), StopInstr()]
        )
        block.add_thread(
            "first", [ForkInstr("consume"), ForkInstr("produce"), StopInstr()]
        )
        block.add_thread(
            "produce",
            [ConInstr(2, 77), IstoreInstr(0, Imm(1), value=2), StopInstr()],
        )
        block.add_thread(
            "consume", [IfetchInstr(0, Imm(1), reply_inlet=1), StopInstr()]
        )
        block.add_thread("done", [StopInstr()])
        block.set_entry("entry")
        tracker = LineageTracker(origin="tam")
        machine = TamMachine(2, backend=backend, lineage=tracker)
        machine.load(block)
        machine.boot("pc")
        machine.run()
        return tracker

    @pytest.mark.parametrize("backend", ["reference", "fastpath", "codegen"])
    def test_request_response_edge(self, backend):
        tracker = self.producer_consumer(backend)
        assert tracker.live == {}
        reconcile_lineage(tracker, require_complete=True)
        # The ifetch reply was posted inside the wrapped pread handler,
        # so the request is its causal parent and the chain spans both.
        assert critical_path(tracker)["max_chain"] >= 2
        assert any(record.parents for record in tracker.records)

    def test_backends_record_identical_structure(self):
        shapes = set()
        for backend in ("reference", "fastpath", "codegen"):
            tracker = self.producer_consumer(backend)
            shapes.add(
                (
                    len(tracker.records),
                    tuple(
                        tuple(parent.lid for parent in record.parents)
                        for record in tracker.records
                    ),
                )
            )
        assert len(shapes) == 1

    def test_turn_timeline_tagged(self):
        tracker = self.producer_consumer("fastpath")
        assert {record.timeline for record in tracker.records} == {"turns"}
        phases = {
            span.phase for record in tracker.records for span in record.spans
        }
        assert phases <= {PHASE_QUEUE, PHASE_HANDLER}


class TestTenancyLineage:
    def test_policies_reconcile_and_stay_identical(self):
        from repro.tenancy import MultiTenantRun, make_tenants

        tenants = make_tenants(32, 16, 7)
        kwargs = dict(seed=7, gen_window=1500, horizon=2500)
        for name in ("gang", "round-robin"):
            observed = MultiTenantRun(name, tenants, **kwargs)
            tracker = LineageTracker(origin=name)
            observed.fabric.attach_lineage(tracker)
            plain = MultiTenantRun(name, tenants, **kwargs)
            observed.run()
            plain.run()
            assert observed.payload() == plain.payload()
            summary = reconcile_lineage(tracker)
            assert summary["checked"] > 0
