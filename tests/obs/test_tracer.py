"""The ring-buffered tracer: bounded memory, eviction-proof counts."""

import pytest

from repro.obs.tracer import (
    ALL_KINDS,
    HOP,
    SEND,
    TraceEvent,
    Tracer,
)


class TestTracer:
    def test_emit_and_iterate(self):
        tracer = Tracer()
        tracer.emit(3, SEND, 1, dest=4)
        tracer.emit(5, HOP, 2, src=1, dest=4, hops=1)
        events = list(tracer)
        assert events == [
            TraceEvent(3, SEND, 1, {"dest": 4}),
            TraceEvent(5, HOP, 2, {"src": 1, "dest": 4, "hops": 1}),
        ]
        assert len(tracer) == 2
        assert tracer.count(SEND) == 1
        assert tracer.count(HOP) == 1
        assert tracer.count("nope") == 0

    def test_ring_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for ts in range(5):
            tracer.emit(ts, SEND, 0)
        assert len(tracer) == 3
        assert [event.ts for event in tracer] == [2, 3, 4]
        assert tracer.dropped == 2
        assert tracer.emitted == 5

    def test_counts_survive_eviction(self):
        tracer = Tracer(capacity=2)
        for ts in range(10):
            tracer.emit(ts, SEND, 0)
        for ts in range(7):
            tracer.emit(ts, HOP, 0)
        assert tracer.count(SEND) == 10
        assert tracer.count(HOP) == 7
        assert len(tracer) == 2

    def test_unbounded_keeps_everything(self):
        tracer = Tracer(capacity=None)
        for ts in range(1000):
            tracer.emit(ts, SEND, 0)
        assert len(tracer) == 1000
        assert tracer.dropped == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1, SEND, 0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.count(SEND) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_kind_constants_distinct(self):
        assert len(set(ALL_KINDS)) == len(ALL_KINDS)
