"""Traced runs reconcile exactly with the statistics counters.

The tracer keeps eviction-proof per-kind counts, and every counter in
``FabricStats`` / ``InterfaceStats`` / ``RouterStats`` has exactly one
emission site — so after any traced run the two accountings must agree
to the message.  The same workload run *without* a tracer must produce
identical statistics: tracing observes, it never perturbs.
"""

from repro.eval.flowcontrol import hotspot_params, run_hotspot
from repro.exp.spec import EvalOptions
from repro.network.fabric import Fabric
from repro.network.topology import Mesh2D
from repro.nic.interface import NetworkInterface
from repro.nic.messages import pack_destination
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import (
    BLOCK,
    DELIVER,
    EJECT,
    HOP,
    INJECT,
    NEXT,
    REFUSE,
    SEND,
    SEND_STALL,
    TAM_HANDLE,
    TAM_POST,
    Tracer,
)
from repro.programs.matmul import run_matmul


def run_congested_fabric(tracer=None, metrics=None) -> Fabric:
    """A small hot-spot: three senders flood node 0, slow service."""
    interfaces = [
        NetworkInterface(node=node, input_capacity=2, output_capacity=2)
        for node in range(4)
    ]
    fabric = Fabric(
        Mesh2D(2, 2),
        interfaces,
        link_buffer_depth=1,
        serialization_cycles=2,
        tracer=tracer,
        metrics=metrics,
    )
    receiver = fabric.interface(0)
    remaining = {node: 10 for node in (1, 2, 3)}
    for cycle in range(1, 2_000):
        for node, left in remaining.items():
            if left == 0:
                continue
            ni = fabric.interface(node)
            ni.write_output(0, pack_destination(0))
            ni.write_output(1, node)
            if ni.send(2).value == "sent":
                remaining[node] -= 1
        if cycle % 4 == 0 and receiver.msg_valid:
            receiver.next()
        fabric.step()
        if (
            not any(remaining.values())
            and fabric.pending() == 0
            and receiver.input_queue.is_empty
            and not receiver.msg_valid
        ):
            break
    return fabric


class TestFabricReconciliation:
    def test_event_counts_match_stats_counters(self):
        tracer = Tracer(capacity=None)
        fabric = run_congested_fabric(tracer=tracer)
        interfaces = fabric.interfaces
        routers = fabric.routers
        assert tracer.count(SEND) == sum(ni.stats.sends for ni in interfaces)
        assert tracer.count(SEND_STALL) == sum(
            ni.stats.send_stalls for ni in interfaces
        )
        assert tracer.count(INJECT) == sum(r.stats.injected for r in routers)
        assert tracer.count(HOP) == sum(r.stats.forwarded for r in routers)
        assert tracer.count(EJECT) == sum(r.stats.ejected for r in routers)
        assert tracer.count(EJECT) == fabric.stats.delivered
        assert tracer.count(DELIVER) == sum(
            ni.stats.delivered for ni in interfaces
        )
        assert tracer.count(REFUSE) == fabric.stats.deliveries_refused
        assert tracer.count(REFUSE) == sum(ni.stats.refused for ni in interfaces)
        assert tracer.count(NEXT) == sum(ni.stats.nexts for ni in interfaces)
        assert tracer.count(BLOCK) == sum(
            r.stats.blocked_moves for r in routers
        )
        # The run actually exercised the congested paths.
        assert tracer.count(SEND_STALL) > 0
        assert tracer.count(REFUSE) > 0
        assert tracer.count(BLOCK) > 0

    def test_counts_reconcile_even_after_ring_wrap(self):
        tracer = Tracer(capacity=16)
        fabric = run_congested_fabric(tracer=tracer)
        assert tracer.dropped > 0
        assert tracer.count(EJECT) == fabric.stats.delivered
        assert tracer.count(REFUSE) == fabric.stats.deliveries_refused

    def test_conservation_along_the_message_path(self):
        tracer = Tracer(capacity=None)
        run_congested_fabric(tracer=tracer)
        # Every sent message was injected, every injected message ejected,
        # every ejected message either queued or diverted (none here).
        assert tracer.count(SEND) == tracer.count(INJECT)
        assert tracer.count(INJECT) == tracer.count(EJECT)
        assert tracer.count(EJECT) == tracer.count(DELIVER)


def strip_stats(fabric: Fabric) -> dict:
    return {
        "cycles": fabric.stats.cycles,
        "delivered": fabric.stats.delivered,
        "refused": fabric.stats.deliveries_refused,
        "hops": fabric.stats.total_hops,
        "latency": fabric.stats.total_latency,
        "sends": [ni.stats.sends for ni in fabric.interfaces],
        "stalls": [ni.stats.send_stalls for ni in fabric.interfaces],
        "blocked": [r.stats.blocked_moves for r in fabric.routers],
        "forwarded": [r.stats.forwarded for r in fabric.routers],
    }


class TestTracerDoesNotPerturb:
    def test_fabric_run_identical_with_and_without_tracer(self):
        plain = run_congested_fabric()
        traced = run_congested_fabric(
            tracer=Tracer(), metrics=MetricsRecorder()
        )
        assert strip_stats(plain) == strip_stats(traced)

    def test_hotspot_payload_identical_with_and_without_tracer(self):
        params = hotspot_params(EvalOptions())
        params["messages_per_sender"] = 4
        plain = run_hotspot(params)
        traced = run_hotspot(
            params, tracer=Tracer(), metrics=MetricsRecorder()
        )
        for extra in ("chain", "trace"):
            plain.pop(extra, None)
            traced.pop(extra, None)
        assert plain == traced


class TestTamReconciliation:
    def test_posts_equal_handles(self):
        tracer = Tracer(capacity=None)
        result = run_matmul(n=8, nodes=4, tracer=tracer)
        assert result.machine.tracer is tracer
        assert tracer.count(TAM_POST) > 0
        assert tracer.count(TAM_POST) == tracer.count(TAM_HANDLE)

    def test_traced_run_identical_to_untraced(self):
        plain = run_matmul(n=8, nodes=4)
        traced = run_matmul(n=8, nodes=4, tracer=Tracer())
        assert plain.total == traced.total
        assert plain.stats == traced.stats
        assert (
            plain.machine.turns_executed == traced.machine.turns_executed
        )

    def test_both_interpreter_paths_emit_identical_counts(self):
        fast_tracer = Tracer(capacity=None)
        ref_tracer = Tracer(capacity=None)
        run_matmul(n=8, nodes=4, fast=True, tracer=fast_tracer)
        run_matmul(n=8, nodes=4, fast=False, tracer=ref_tracer)
        assert fast_tracer.count(TAM_POST) == ref_tracer.count(TAM_POST)
        assert fast_tracer.count(TAM_HANDLE) == ref_tracer.count(TAM_HANDLE)
