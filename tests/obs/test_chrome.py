"""Chrome trace_event export: structure, tracks, and file output."""

import json

from repro.obs.chrome import (
    COUNTERS_PID,
    EVENTS_PID,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import SEND, Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    tracer.emit(3, SEND, 1, dest=4)
    tracer.emit(7, SEND, 2, dest=4)
    return tracer


def make_metrics() -> MetricsRecorder:
    metrics = MetricsRecorder()
    metrics.sample("in_flight", 1, 2)
    metrics.sample("in_flight", 2, 5)
    metrics.crossing(9, 4, "iq", True)
    return metrics


class TestChromeExport:
    def test_instant_events_per_node(self):
        events = chrome_trace_events(make_tracer())
        instants = [e for e in events if e["ph"] == "i"]
        assert [(e["ts"], e["tid"]) for e in instants] == [(3, 1), (7, 2)]
        assert all(e["pid"] == EVENTS_PID for e in instants)
        assert instants[0]["name"] == SEND
        assert instants[0]["args"] == {"dest": 4}

    def test_thread_name_metadata(self):
        events = chrome_trace_events(make_tracer())
        names = {
            e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {1: "node 1", 2: "node 2"}

    def test_counter_tracks(self):
        events = chrome_trace_events(metrics=make_metrics())
        counters = [e for e in events if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["in_flight"]) for e in counters] == [
            (1, 2),
            (2, 5),
        ]
        assert all(e["pid"] == COUNTERS_PID for e in counters)

    def test_threshold_crossing_instants(self):
        events = chrome_trace_events(metrics=make_metrics())
        crossings = [e for e in events if e["cat"] == "threshold"]
        assert len(crossings) == 1
        assert crossings[0]["ts"] == 9
        assert crossings[0]["tid"] == 4
        assert "asserted" in crossings[0]["name"]

    def test_document_shape(self):
        document = chrome_trace(make_tracer(), make_metrics())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert "events_dropped_from_ring" not in document["otherData"]

    def test_document_reports_drops(self):
        tracer = Tracer(capacity=1)
        tracer.emit(1, SEND, 0)
        tracer.emit(2, SEND, 0)
        document = chrome_trace(tracer)
        assert document["otherData"]["events_dropped_from_ring"] == 1

    def test_write_round_trips(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "traces" / "t.json", make_tracer(), make_metrics()
        )
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        # Every event is plain JSON already (args were sanitised).
        for event in document["traceEvents"]:
            assert isinstance(event["name"], str)
