"""Chrome trace_event export: structure, tracks, and file output."""

import json

from repro.obs.chrome import (
    COUNTERS_PID,
    EVENTS_PID,
    LINEAGE_PID,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import SEND, Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    tracer.emit(3, SEND, 1, dest=4)
    tracer.emit(7, SEND, 2, dest=4)
    return tracer


def make_metrics() -> MetricsRecorder:
    metrics = MetricsRecorder()
    metrics.sample("in_flight", 1, 2)
    metrics.sample("in_flight", 2, 5)
    metrics.crossing(9, 4, "iq", True)
    return metrics


class TestChromeExport:
    def test_instant_events_per_node(self):
        events = chrome_trace_events(make_tracer())
        instants = [e for e in events if e["ph"] == "i"]
        assert [(e["ts"], e["tid"]) for e in instants] == [(3, 1), (7, 2)]
        assert all(e["pid"] == EVENTS_PID for e in instants)
        assert instants[0]["name"] == SEND
        assert instants[0]["args"] == {"dest": 4}

    def test_thread_name_metadata(self):
        events = chrome_trace_events(make_tracer())
        names = {
            e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {1: "node 1", 2: "node 2"}

    def test_counter_tracks(self):
        events = chrome_trace_events(metrics=make_metrics())
        counters = [e for e in events if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["in_flight"]) for e in counters] == [
            (1, 2),
            (2, 5),
        ]
        assert all(e["pid"] == COUNTERS_PID for e in counters)

    def test_threshold_crossing_instants(self):
        events = chrome_trace_events(metrics=make_metrics())
        crossings = [e for e in events if e["cat"] == "threshold"]
        assert len(crossings) == 1
        assert crossings[0]["ts"] == 9
        assert crossings[0]["tid"] == 4
        assert "asserted" in crossings[0]["name"]

    def test_document_shape(self):
        document = chrome_trace(make_tracer(), make_metrics())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert "events_dropped_from_ring" not in document["otherData"]

    def test_document_reports_drops(self):
        tracer = Tracer(capacity=1)
        tracer.emit(1, SEND, 0)
        tracer.emit(2, SEND, 0)
        document = chrome_trace(tracer)
        assert document["otherData"]["events_dropped_from_ring"] == 1

    def test_write_round_trips(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "traces" / "t.json", make_tracer(), make_metrics()
        )
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        # Every event is plain JSON already (args were sanitised).
        for event in document["traceEvents"]:
            assert isinstance(event["name"], str)


class TestOverflowWarning:
    """A truncated ring must be loudly visible in the exported trace."""

    def overflowed(self) -> Tracer:
        tracer = Tracer(capacity=2)
        for ts in range(5):
            tracer.emit(ts, SEND, 0)
        return tracer

    def test_overflow_counter_track(self):
        events = chrome_trace_events(self.overflowed())
        overflow = [e for e in events if e["name"] == "trace_overflow"]
        assert [e["args"]["events_dropped"] for e in overflow] == [3, 0]
        assert overflow[0]["ts"] == 0
        # The counter drops to zero at the first retained event, so the
        # truncation boundary sits on the time axis.
        assert overflow[1]["ts"] == 3
        assert all(e["pid"] == COUNTERS_PID for e in overflow)
        assert all(e["ph"] == "C" for e in overflow)

    def test_top_of_trace_warning(self):
        document = chrome_trace(self.overflowed())
        warning = document["otherData"]["warning"]
        assert "INCOMPLETE TRACE" in warning
        assert "3" in warning
        assert document["otherData"]["events_dropped_from_ring"] == 3

    def test_no_overflow_no_counter_no_warning(self):
        document = chrome_trace(make_tracer())
        assert "warning" not in document["otherData"]
        names = {e["name"] for e in document["traceEvents"]}
        assert "trace_overflow" not in names


class TestLineageExport:
    def lineage(self):
        from repro.obs.lineage import LineageTracker

        class Msg:
            dest = 1
            mtype = None

        tracker = LineageTracker(origin="unit")
        parent, child = Msg(), Msg()
        tracker.on_send(parent, 0, ts=0)
        tracker.on_inject(parent, ts=1, node=0)
        tracker.on_deliver(parent, ts=4)
        tracker.on_dispatch(parent, ts=5)
        tracker.on_retire(parent, ts=6)
        tracker.on_send(child, 1, ts=7)
        tracker.on_inject(child, ts=8, node=1)
        tracker.on_deliver(child, ts=11)
        tracker.on_dispatch(child, ts=12)
        tracker.on_retire(child, ts=13)
        tracker.records[1].parents.append(tracker.records[0])
        return tracker

    def test_spans_are_complete_events_on_lineage_pid(self):
        events = chrome_trace_events(lineage=self.lineage())
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        assert all(e["pid"] == LINEAGE_PID for e in spans)
        assert all(e["dur"] > 0 for e in spans)

    def test_message_flow_spans_creation_to_delivery(self):
        events = chrome_trace_events(lineage=self.lineage())
        starts = [e for e in events if e["ph"] == "s" and e.get("cat") == "lineage-flow"]
        finishes = [e for e in events if e["ph"] == "f" and e.get("cat") == "lineage-flow"]
        assert len(starts) == len(finishes) == 2
        assert starts[0]["ts"] == 0
        assert finishes[0]["ts"] == 5  # delivered = eject end

    def test_causal_edges_get_flow_arrows(self):
        events = chrome_trace_events(lineage=self.lineage())
        causal = [e for e in events if e.get("cat") == "lineage-causal"]
        assert len(causal) == 2  # one s + one f per parent edge
        assert causal[0]["tid"] == 0  # from the parent's track
        assert causal[1]["tid"] == 1  # into the child's track

    def test_lineage_composes_with_tracer(self):
        events = chrome_trace_events(make_tracer(), lineage=self.lineage())
        pids = {e["pid"] for e in events}
        assert EVENTS_PID in pids
        assert LINEAGE_PID in pids
