"""The regression gate: pattern-scoped metrics and CLI exit codes."""

from repro.obs import perfdb
from repro.obs.report import (
    DEFAULT_GATE_PATTERN,
    analyze_bench,
    analyze_metric,
    main,
)


def seed_history(db_dir, values, name="hotspot_untraced_seconds", extra=None):
    """Append one record per value, all under this host's fingerprint."""
    for value in values:
        metrics = {name: value}
        if extra:
            metrics.update(extra)
        perfdb.append_record(db_dir, perfdb.make_record("bench", metrics))


class TestGatePattern:
    def test_default_gates_only_seconds(self):
        assert DEFAULT_GATE_PATTERN == "*_seconds"
        gated = analyze_metric("run_seconds", [1.0, 1.0], 1.0, 0.1)
        context = analyze_metric("cycles_total", [100.0, 100.0], 900.0, 0.1)
        assert gated["gated"] is True
        assert context["gated"] is False
        assert context["status"] == "info"
        assert context["regressed"] is False  # 9x jump, still not gated

    def test_custom_pattern_widens_the_gate(self):
        entry = analyze_metric(
            "victim_p99", [10.0, 10.0], 100.0, 0.1, gate_pattern="victim_*"
        )
        assert entry["gated"] is True
        assert entry["regressed"] is True

    def test_custom_pattern_narrows_the_gate(self):
        entry = analyze_metric(
            "run_seconds", [1.0, 1.0], 9.0, 0.1, gate_pattern="matmul_*"
        )
        assert entry["gated"] is False
        assert entry["regressed"] is False

    def test_analyze_bench_threads_pattern(self):
        records = [
            perfdb.make_record("bench", {"victim_p99": 10.0}) for _ in range(2)
        ]
        records.append(perfdb.make_record("bench", {"victim_p99": 100.0}))
        report = analyze_bench(
            "bench", records, threshold=0.1, gate_pattern="victim_*"
        )
        assert report["regressed"] is True
        default = analyze_bench("bench", records, threshold=0.1)
        assert default["regressed"] is False


class TestCliExitCodes:
    def test_clean_db_exits_zero(self, tmp_path, capsys):
        seed_history(tmp_path, [1.0, 1.0, 1.0])
        assert main(["--db", str(tmp_path), "--check"]) == 0
        assert "No regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        seed_history(tmp_path, [1.0, 1.0, 9.0])
        assert main(["--db", str(tmp_path), "--check"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_without_check_regression_still_exits_zero(self, tmp_path, capsys):
        seed_history(tmp_path, [1.0, 1.0, 9.0])
        assert main(["--db", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_gate_pattern_flag_changes_the_verdict(self, tmp_path, capsys):
        # A non-seconds metric regresses: invisible to the default gate,
        # fatal under --gate-pattern that matches it.
        seed_history(
            tmp_path,
            [1.0, 1.0, 1.0],
            extra=None,
        )
        for value in (10.0, 10.0, 100.0):
            perfdb.append_record(
                tmp_path, perfdb.make_record("qos", {"victim_p99": value})
            )
        assert main(["--db", str(tmp_path), "--check"]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "--db",
                    str(tmp_path),
                    "--check",
                    "--gate-pattern",
                    "victim_*",
                ]
            )
            == 1
        )
        capsys.readouterr()

    def test_narrow_pattern_ignores_seconds_regression(self, tmp_path, capsys):
        seed_history(tmp_path, [1.0, 1.0, 9.0])
        assert (
            main(
                [
                    "--db",
                    str(tmp_path),
                    "--check",
                    "--gate-pattern",
                    "nothing_matches_*",
                ]
            )
            == 0
        )
        capsys.readouterr()
