"""Breakdown aggregation, critical-path extraction, lineage.json shape."""

import json

import pytest

from repro.errors import ReconciliationError
from repro.obs.breakdown import (
    LINEAGE_SCHEMA,
    critical_path,
    lineage_report,
    phase_breakdown,
    write_lineage,
)
from repro.obs.lineage import LineageTracker


class FakeMessage:
    def __init__(self, dest=1):
        self.dest = dest
        self.mtype = None


def tracked_message(tracker, send_ts, deliver_ts, retire_ts, node=0):
    message = FakeMessage()
    tracker.on_send(message, node, ts=send_ts)
    tracker.on_inject(message, ts=send_ts, node=node)
    tracker.on_deliver(message, ts=deliver_ts)
    tracker.on_dispatch(message, ts=deliver_ts + 1)
    tracker.on_retire(message, ts=retire_ts)
    return tracker.records[-1]


class TestPhaseBreakdown:
    def test_totals_and_shares(self):
        tracker = LineageTracker()
        tracked_message(tracker, 0, 10, 14)
        tracked_message(tracker, 2, 6, 9)
        breakdown = phase_breakdown(tracker)
        assert breakdown["messages"] == 2
        total = sum(e["total"] for e in breakdown["phases"].values())
        assert breakdown["traced_cycles"] == total
        shares = sum(e["share"] for e in breakdown["phases"].values())
        assert shares == pytest.approx(1.0, abs=1e-4)
        # Totals equal the raw span sums.
        raw = sum(
            span.end - span.start
            for record in tracker.records
            for span in record.spans
        )
        assert total == raw

    def test_percentiles_per_phase(self):
        tracker = LineageTracker()
        for offset in range(10):
            tracked_message(tracker, offset, offset + 10, offset + 12)
        breakdown = phase_breakdown(tracker)
        queue = breakdown["phases"]["queue"]
        assert queue["messages"] == 10
        assert queue["p50"] <= queue["p99"]

    def test_empty_tracker(self):
        breakdown = phase_breakdown(LineageTracker())
        assert breakdown == {
            "messages": 0,
            "traced_cycles": 0,
            "phases": {},
        }


class TestCriticalPath:
    def test_longest_chain_follows_parents(self):
        tracker = LineageTracker()
        a = tracked_message(tracker, 0, 4, 5)
        b = tracked_message(tracker, 6, 8, 9)
        c = tracked_message(tracker, 10, 20, 21)
        # a -> b -> c plus a second parent for c; the chain walks the
        # duration-heaviest parent at each step.
        b.parents.append(a)
        c.parents.append(b)
        short = tracked_message(tracker, 10, 11, 12)
        c.parents.append(short)
        path = critical_path(tracker)
        assert path["max_chain"] == 3
        assert [entry["lid"] for entry in path["chain"]] == [a.lid, b.lid, c.lid]
        assert path["duration"] == a.duration() + b.duration() + c.duration()

    def test_independent_records_chain_of_one(self):
        tracker = LineageTracker()
        tracked_message(tracker, 0, 5, 6)
        tracked_message(tracker, 1, 9, 10)
        path = critical_path(tracker)
        assert path["max_chain"] == 1
        assert path["length"] == 1

    def test_empty_tracker(self):
        path = critical_path(LineageTracker())
        assert path["max_chain"] == 0
        assert path["chain"] == []


class TestLineageReport:
    def test_report_shape(self):
        tracker = LineageTracker(origin="unit")
        tracked_message(tracker, 0, 5, 7)
        report = lineage_report(tracker)
        assert report["schema"] == LINEAGE_SCHEMA
        assert report["origin"] == "unit"
        assert report["reconciliation"]["complete"] == 1
        assert report["breakdown"]["messages"] == 1
        assert len(report["sample"]) == 1
        assert report["sample"][0]["spans"]

    def test_strict_report_raises_on_tamper(self):
        tracker = LineageTracker()
        record = tracked_message(tracker, 0, 5, 7)
        del record.spans[0]
        with pytest.raises(ReconciliationError):
            lineage_report(tracker, strict=True)
        assert lineage_report(tracker, strict=False)["schema"] == LINEAGE_SCHEMA

    def test_write_round_trips(self, tmp_path):
        tracker = LineageTracker()
        tracked_message(tracker, 0, 5, 7)
        path = tmp_path / "traces" / "lineage.json"
        payload = write_lineage(str(path), tracker)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["schema"] == LINEAGE_SCHEMA

    def test_sample_is_bounded(self):
        tracker = LineageTracker()
        for offset in range(40):
            tracked_message(tracker, offset, offset + 3, offset + 4)
        report = lineage_report(tracker, sample_messages=8)
        assert len(report["sample"]) == 8
