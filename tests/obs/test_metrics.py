"""Time-series metrics: histograms, percentiles, threshold timelines."""

import pytest

from repro.obs.metrics import Histogram, MetricsRecorder, ThresholdCrossing


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_percentiles(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.add(value)
        assert hist.percentile(0.5) == 50
        assert hist.percentile(0.9) == 90
        assert hist.percentile(1.0) == 100
        assert hist.mean == pytest.approx(50.5)

    def test_percentile_bounds(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_float_quantisation(self):
        hist = Histogram()
        hist.add(0.12349)
        hist.add(0.12351)
        assert hist.counts == {0.123: 1, 0.124: 1}

    def test_summary(self):
        hist = Histogram()
        for value in (2, 2, 4, 8):
            hist.add(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 2
        assert summary["max"] == 8
        assert summary["mean"] == 4.0
        assert summary["p50"] == 2


class TestHistogramReservoir:
    """Bounded-memory mode: exact moments, Algorithm R percentiles."""

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Histogram(reservoir=0)

    def test_exact_while_under_capacity(self):
        exact = Histogram()
        bounded = Histogram(reservoir=64, seed=7)
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        for value in values:
            exact.add(value)
            bounded.add(value)
        # Nothing has been evicted: every statistic matches the exact
        # histogram, percentiles included.
        assert bounded.summary() == exact.summary()
        for p in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert bounded.percentile(p) == exact.percentile(p)

    def test_moments_stay_exact_past_capacity(self):
        bounded = Histogram(reservoir=16, seed=1)
        for value in range(1, 1001):
            bounded.add(value)
        summary = bounded.summary()
        assert summary["count"] == 1000
        assert summary["min"] == 1
        assert summary["max"] == 1000
        assert summary["mean"] == 500.5
        # The reservoir holds a bounded sample of in-range values.
        assert len(bounded._reservoir) == 16
        assert all(1 <= v <= 1000 for v in bounded._reservoir)
        assert 1 <= bounded.percentile(0.5) <= 1000

    def test_deterministic_per_seed(self):
        def build(seed):
            hist = Histogram(reservoir=8, seed=seed)
            for value in range(200):
                hist.add(value * 3 % 97)
            return hist

        assert build(5).summary() == build(5).summary()
        assert sorted(build(5)._reservoir) != sorted(build(6)._reservoir)

    def test_empty_summary(self):
        assert Histogram(reservoir=4).summary()["count"] == 0


class TestMetricsRecorder:
    def test_series_created_on_first_sample(self):
        metrics = MetricsRecorder()
        metrics.sample("depth", 1, 3)
        metrics.sample("depth", 2, 5)
        series = metrics.series["depth"]
        assert series.cycles == [1, 2]
        assert series.values == [3, 5]
        assert len(series) == 2
        assert series.summary()["max"] == 5

    def test_first_crossing_filters(self):
        metrics = MetricsRecorder()
        metrics.crossing(10, 0, "oq", True)
        metrics.crossing(12, 3, "iq", True)
        metrics.crossing(15, 3, "iq", False)
        metrics.crossing(20, 5, "iq", True)
        assert metrics.first_crossing("iq") == 12
        assert metrics.first_crossing("iq", node=5) == 20
        assert metrics.first_crossing("iq", asserted=False) == 15
        assert metrics.first_crossing("oq") == 10
        assert metrics.first_crossing("iq", node=9) is None
        assert metrics.crossings[0] == ThresholdCrossing(10, 0, "oq", True)

    def test_to_dict_round_trips_through_json(self):
        import json

        metrics = MetricsRecorder()
        metrics.sample("depth", 1, 3)
        metrics.crossing(2, 0, "iq", True)
        full = json.loads(json.dumps(metrics.to_dict()))
        assert full["series"]["depth"]["values"] == [3]
        assert full["crossings"] == [
            {"cycle": 2, "node": 0, "queue": "iq", "asserted": True}
        ]
        lean = metrics.to_dict(include_samples=False)
        assert "values" not in lean["series"]["depth"]
        assert lean["series"]["depth"]["summary"]["count"] == 1
