"""Multi-user integration: two applications time-sharing one machine.

Exercises the Section 2.1.3 machinery end to end over a real fabric: two
applications gang-scheduled across slices, their in-flight network state
drained and restored, with complete isolation between them; then the
PIN-based alternative with independent switching.
"""

from repro.api.cluster import Cluster
from repro.network.topology import Mesh2D
from repro.nic.messages import pack_destination
from repro.nic.protection import GangScheduler, ProtectionDomain


class TestGangScheduledApplications:
    def test_two_applications_isolated_across_slices(self):
        cluster = Cluster(Mesh2D(2, 2))
        scheduler = GangScheduler([node.interface for node in cluster.nodes])

        # Application 1's slice: writes land, then a read is left pending
        # in the input queues when the slice ends.
        scheduler.start_slice(1)
        cluster.node(1).memory.store(0x100, 111)
        # Inject traffic that will still be queued at slice end: sends
        # without running the machine to quiescence.
        ni = cluster.node(0).interface
        ni.write_output(0, pack_destination(3, 0x40))
        ni.write_output(1, 0xA1)
        ni.send(3)  # a Write toward node 3
        cluster.fabric.run_until_quiescent()  # delivered but not serviced
        assert cluster.node(3).interface.msg_valid
        scheduler.end_slice()
        # Slice ended: nothing of app 1 is visible.
        assert not cluster.node(3).interface.msg_valid

        # Application 2's slice runs a full computation undisturbed.
        scheduler.start_slice(2)
        value = cluster.remote_read(source=0, target=1, address=0x100)
        assert value == 111  # memory is per-node state, not drained
        scheduler.end_slice()

        # Application 1 resumes: its parked Write is redelivered and lands.
        scheduler.start_slice(1)
        assert cluster.node(3).interface.msg_valid
        cluster.node(3).service()
        assert cluster.node(3).memory.load(0x40) == 0xA1
        scheduler.end_slice()

    def test_saved_state_accounting(self):
        cluster = Cluster(Mesh2D(2, 1))
        scheduler = GangScheduler([node.interface for node in cluster.nodes])
        scheduler.start_slice(7)
        ni = cluster.node(0).interface
        for tag in range(3):
            ni.write_output(0, pack_destination(1, 0x10 * tag))
            ni.write_output(1, tag)
            ni.send(3)
        cluster.fabric.run_until_quiescent()
        scheduler.end_slice()
        assert scheduler.saved_message_count(7) == 3


class TestPinBasedSwitching:
    def test_messages_for_switched_out_app_wait(self):
        cluster = Cluster(Mesh2D(2, 1))
        receiver = cluster.node(1)
        domain = ProtectionDomain(receiver.interface)
        # App 5 is running on the receiver.
        domain.activate(5)
        # App 9 on the sender posts a write; it arrives PIN-tagged 9.
        sender_ni = cluster.node(0).interface
        sender_ni.control["active_pin"] = 9
        sender_ni.write_output(0, pack_destination(1, 0x20))
        sender_ni.write_output(1, 0xB2)
        sender_ni.send(3)
        cluster.fabric.run_until_quiescent()
        receiver.service()
        # Not applied: app 9 is not resident.
        assert receiver.memory.load(0x20) == 0
        assert len(domain.store.pending_for(9)) == 1
        # Context switch to app 9: the message is redelivered and handled.
        receiver.interface.status.clear_exceptions()
        domain.activate(9)
        receiver.service()
        assert receiver.memory.load(0x20) == 0xB2

    def test_resident_app_unaffected_by_foreign_traffic(self):
        cluster = Cluster(Mesh2D(2, 1))
        receiver = cluster.node(1)
        domain = ProtectionDomain(receiver.interface)
        domain.activate(5)
        receiver.memory.store(0x50, 555)
        # Foreign write arrives and diverts...
        sender_ni = cluster.node(0).interface
        sender_ni.control["active_pin"] = 9
        sender_ni.write_output(0, pack_destination(1, 0x50))
        sender_ni.write_output(1, 0)
        sender_ni.send(3)
        cluster.fabric.run_until_quiescent()
        receiver.interface.status.clear_exceptions()
        # ...while the resident app's own remote read works normally.
        sender_ni.control["active_pin"] = 5
        value = cluster.remote_read(source=0, target=1, address=0x50)
        assert value == 555


class TestFlooderVictimContention:
    """One tenant floods a node another tenant is resident on.

    The tenant-granularity version of the Section 2.1.1 hot-spot: every
    flood message diverts (PIN mismatch), raising the modelled interrupt
    and filing into privileged state, while the resident victim's own
    traffic keeps flowing; a context switch to the flooder then
    redelivers the whole flood in arrival order.
    """

    FLOODER, VICTIM = 9, 5
    FLOOD = 6

    def flood(self, cluster):
        flooder_ni = cluster.node(0).interface
        flooder_ni.control["active_pin"] = self.FLOODER
        for tag in range(self.FLOOD):
            flooder_ni.write_output(0, pack_destination(3, 0x100 + 4 * tag))
            flooder_ni.write_output(1, tag + 1)
            flooder_ni.send(3)
        cluster.fabric.run_until_quiescent()

    def test_flood_diverts_and_interrupts_while_victim_served(self):
        cluster = Cluster(Mesh2D(2, 2))
        receiver = cluster.node(3)
        domain = ProtectionDomain(receiver.interface)
        receiver.interface.control["privileged_interrupt"] = 1
        domain.activate(self.VICTIM)
        self.flood(cluster)
        receiver.service()
        # Every flood message diverted and raised the OS interrupt;
        # none touched the victim's memory.
        assert len(domain.store.pending_for(self.FLOODER)) == self.FLOOD
        assert domain.store.interrupts_raised == self.FLOOD
        for tag in range(self.FLOOD):
            assert receiver.memory.load(0x100 + 4 * tag) == 0
        receiver.interface.status.clear_exceptions()
        # The resident victim's own traffic still lands.
        cluster.node(1).interface.control["active_pin"] = self.VICTIM
        cluster.remote_write(source=1, target=3, address=0x40, value=77)
        assert receiver.memory.load(0x40) == 77

    def test_switch_to_flooder_redelivers_in_arrival_order(self):
        cluster = Cluster(Mesh2D(2, 2))
        receiver = cluster.node(3)
        domain = ProtectionDomain(receiver.interface)
        domain.activate(self.VICTIM)
        self.flood(cluster)
        stored = domain.store.pending_for(self.FLOODER)
        assert [m.word(1) for m in stored] == list(range(1, self.FLOOD + 1))
        receiver.interface.status.clear_exceptions()
        redelivered = domain.activate(self.FLOODER)
        assert redelivered == self.FLOOD
        while receiver.interface.msg_valid:
            receiver.service()
        for tag in range(self.FLOOD):
            assert receiver.memory.load(0x100 + 4 * tag) == tag + 1
