"""Cross-layer integration tests.

These tie the layers together: the assembly kernels against the
behavioural handlers, the RTL chip model against the architectural model,
the fabric against the protection machinery, and the whole TAM-to-Figure
-12 pipeline.
"""

from repro.api.cluster import Cluster
from repro.impls.base import OPTIMIZED_REGISTER
from repro.kernels import protocol as P
from repro.network.topology import Mesh2D
from repro.nic.dispatch import decode_table_address
from repro.nic.interface import NetworkInterface, SendMode
from repro.nic.messages import Message, pack_destination
from repro.nic.rtl import ClockedNIC, serialize
from repro.node.handlers import build_read_request
from repro.node.node import Node


class TestKernelVersusBehaviouralHandlers:
    """The assembly kernels and the Python handlers implement one protocol."""

    def test_read_reply_identical(self):
        request = build_read_request(
            destination=0,
            address=0x1000,
            reply_fp=pack_destination(1, 0x3000),
            reply_ip=P.REPLY_IP,
        )
        # Behavioural path.
        node = Node(0)
        node.memory.store(0x1000, 0x7777)
        node.interface.deliver(request)
        node.service()
        behavioural_reply = node.interface.transmit()
        # Kernel path.
        from repro.kernels.harness import _fresh_machine
        from repro.kernels.sequences import processing_kernel

        machine = _fresh_machine(OPTIMIZED_REGISTER)
        machine.memory.store(0x1000, 0x7777)
        machine.interface.deliver(request)
        machine.run(processing_kernel("read", OPTIMIZED_REGISTER).sequence)
        kernel_reply = machine.interface.transmit()
        assert kernel_reply.words == behavioural_reply.words
        assert kernel_reply.mtype == behavioural_reply.mtype

    def test_pwrite_forwarding_identical(self):
        from repro.node.handlers import build_pread_request, build_pwrite_request

        def run_scenario(consume):
            """Two deferred readers, then the write; returns the replies."""
            node = Node(0)
            desc = node.istructures.allocate(2)
            for i in range(2):
                node.interface.deliver(
                    build_pread_request(
                        0, desc, 0, pack_destination(1, 0x100 * (i + 1)), 0x4000 + i
                    )
                )
            node.service()
            node.interface.deliver(build_pwrite_request(0, desc, 0, 0xAB))
            node.service()
            replies = []
            while (reply := node.interface.transmit()) is not None:
                replies.append(reply)
            return replies

        replies = run_scenario(True)
        assert len(replies) == 2
        assert [r.word(2) for r in replies] == [0xAB, 0xAB]
        assert [r.word(1) for r in replies] == [0x4000, 0x4001]


class TestRtlIntoSystem:
    def test_flit_serial_delivery_feeds_handlers(self):
        """A message serialised by one RTL chip, delivered into a Node."""
        sender = ClockedNIC(NetworkInterface(node=0))
        receiver_node = Node(1)
        receiver = ClockedNIC(receiver_node.interface)
        # Compose a remote write on the sender's architectural interface.
        sender.interface.write_output(0, pack_destination(1, 0x40))
        sender.interface.write_output(1, 0xBEEF)
        sender.interface.send(P.TYPE_WRITE)
        # Clock both chips, wire tx(a) -> rx(b).
        wire = None
        for _ in range(30):
            out_flit, _ = sender.tick()
            if wire is not None:
                receiver.tick(rx_flit=wire)
            wire = out_flit
            if receiver_node.interface.msg_valid:
                break
        assert receiver_node.service() == 1
        assert receiver_node.memory.load(0x40) == 0xBEEF

    def test_rtl_serialization_matches_fabric_model(self):
        from repro.nic.rtl import FLITS_PER_MESSAGE

        message = Message(2, (pack_destination(0), 1, 2, 3, 4))
        assert len(serialize(message)) == FLITS_PER_MESSAGE


class TestClusterScenarios:
    def test_hot_spot_remote_reads(self):
        """Many nodes read one node's counter; every reply is correct."""
        cluster = Cluster(Mesh2D(4, 4))
        cluster.node(5).memory.store(0x100, 4242)
        values = [
            cluster.remote_read(source=s, target=5, address=0x100)
            for s in range(16)
            if s != 5
        ]
        assert values == [4242] * 15

    def test_producer_consumer_pipeline(self):
        """A chain of I-structure handoffs across the mesh."""
        cluster = Cluster(Mesh2D(4, 2))
        descs = [cluster.istructure_alloc(n, length=1) for n in range(8)]
        pendings = [
            cluster.istructure_read(source=(n + 1) % 8, target=n, descriptor=descs[n], index=0)
            for n in range(8)
        ]
        assert not any(p.ready for p in pendings)
        for n in range(8):
            cluster.istructure_write(
                source=n, target=n, descriptor=descs[n], index=0, value=100 + n
            )
        assert [p.get() for p in pendings] == [100 + n for n in range(8)]

    def test_queue_threshold_shows_in_msgip(self):
        """Boundary conditions: iafull selects the handler version."""
        ni = NetworkInterface(node=0)
        ni.ip_base = 0x8000
        ni.control["iq_threshold"] = 1
        for _ in range(3):
            ni.deliver(Message(P.TYPE_READ, (pack_destination(0), 0, 0, 0, 0)))
        handler, iafull, _ = decode_table_address(ni.msg_ip)
        assert handler == P.TYPE_READ
        assert iafull

    def test_protection_composes_with_fabric(self):
        from repro.nic.protection import ProtectionDomain

        cluster = Cluster(Mesh2D(2, 1))
        domain = ProtectionDomain(cluster.node(1).interface)
        cluster.node(1).interface.control.enable_pin_checking(7)
        # A write tagged with the wrong PIN must be diverted, not applied.
        ni = cluster.node(0).interface
        ni.control["active_pin"] = 9
        ni.write_output(0, pack_destination(1, 0x50))
        ni.write_output(1, 0xAA)
        ni.send(P.TYPE_WRITE)
        cluster.fabric.run_until_quiescent()
        cluster.node(1).service()
        assert cluster.node(1).memory.load(0x50) == 0
        assert len(domain.store.pending_for(9)) == 1


class TestWholePipeline:
    def test_matmul_to_figure12_to_latency(self):
        from repro.eval import (
            headline_metrics,
            latency_sweep as sweep,
            relative_overheads,
            run_program,
        )
        from repro.tam.costmap import breakdown_all_models

        stats = run_program("matmul", size=8, nodes=4)
        breakdowns = breakdown_all_models(stats)
        metrics = headline_metrics(breakdowns)
        assert metrics.overhead_reduction > 1.0
        ratios = relative_overheads(sweep(stats, latencies=(2, 8)))
        assert ratios[8] > 1.5

    def test_reply_mode_used_by_system_handlers(self):
        """The full system exercises the REPLY hardware mode for reads."""
        cluster = Cluster(Mesh2D(2, 1))
        cluster.node(1).memory.store(0x10, 5)
        cluster.remote_read(source=0, target=1, address=0x10)
        stats = cluster.node(1).interface.stats
        assert stats.sends_by_mode[SendMode.REPLY] == 1

    def test_forward_mode_used_for_deferred_readers(self):
        cluster = Cluster(Mesh2D(2, 1))
        desc = cluster.istructure_alloc(1, length=1)
        cluster.istructure_read(0, 1, desc, 0)
        cluster.istructure_write(0, 1, desc, 0, value=9)
        stats = cluster.node(1).interface.stats
        assert stats.sends_by_mode[SendMode.FORWARD] == 1
