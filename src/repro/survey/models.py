"""Analytic overhead models of the four interface categories (paper §1).

The paper's survey grounds its motivation in concrete per-message numbers:

* **OS-level DMA interfaces** — iPSC/2: 267 µs per simple send; NCUBE:
  437 µs; the rewritten nCUBE/2 system software still 11/15 µs
  (send/receive) because of DMA setup and kernel crossings.
* **User-level memory-mapped interfaces** — CM-5: 1.6 µs to send a single
  -packet message, mostly spent crossing the external memory bus; the MDP
  faster still with its on-chip path and two-words-per-cycle sends, plus a
  3-cycle hardware dispatch.
* **User-level register-mapped interfaces** (CM-2 grid, iWARP systolic) —
  single-cycle transfers but no general message-passing model.
* **Hardwired interfaces** (Alewife shared memory, Monsoon dataflow) — as
  fast as one message per cycle, but the network is invisible to software.

These models exist for the qualitative §1 comparison bench: they convert
the cited figures into cycles at a nominal clock so they can sit next to
this reproduction's measured per-message costs on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

DEFAULT_CLOCK_MHZ = 25.0
"""A nominal 88100-generation clock for µs → cycle conversion."""


@dataclass(frozen=True)
class SurveyInterface:
    """One surveyed design point."""

    name: str
    category: str
    send_overhead_us: Optional[float] = None
    receive_overhead_us: Optional[float] = None
    send_overhead_cycles: Optional[int] = None
    receive_overhead_cycles: Optional[int] = None
    user_level: bool = False
    explicit_messages: bool = True
    general_message_passing: bool = True
    citation: str = ""

    def cycles(self, clock_mhz: float = DEFAULT_CLOCK_MHZ) -> float:
        """Total per-message overhead in cycles at ``clock_mhz``."""
        total = 0.0
        if self.send_overhead_cycles is not None:
            total += self.send_overhead_cycles
        if self.receive_overhead_cycles is not None:
            total += self.receive_overhead_cycles
        if self.send_overhead_us is not None:
            total += self.send_overhead_us * clock_mhz
        if self.receive_overhead_us is not None:
            total += self.receive_overhead_us * clock_mhz
        return total


SURVEY: List[SurveyInterface] = [
    SurveyInterface(
        name="iPSC/2",
        category="OS-level DMA",
        send_overhead_us=267.0,
        user_level=False,
        citation="[Bra88]: 'a simple send with small messages takes 267 us'",
    ),
    SurveyInterface(
        name="NCUBE/four",
        category="OS-level DMA",
        send_overhead_us=437.0,
        user_level=False,
        citation="[Bra88]",
    ),
    SurveyInterface(
        name="nCUBE/2 (tuned OS)",
        category="OS-level DMA",
        send_overhead_us=11.0,
        receive_overhead_us=15.0,
        user_level=False,
        citation="[vECGS92]: an order of magnitude below stock, still 11/15 us",
    ),
    SurveyInterface(
        name="CM-5",
        category="user-level memory-mapped",
        send_overhead_us=1.6,
        user_level=True,
        citation="[vECGS92]: 'sending a single packet message ... takes 1.6 us'",
    ),
    SurveyInterface(
        name="MDP (J-Machine)",
        category="user-level memory-mapped",
        send_overhead_cycles=6,  # two words per cycle, on-chip path
        receive_overhead_cycles=3,  # hardware dispatch in three cycles
        user_level=True,
        citation="[DDF+92]: on-chip sends, 3-cycle dispatch-on-IP",
    ),
    SurveyInterface(
        name="CM-2 grid / iWARP systolic",
        category="user-level register-mapped",
        send_overhead_cycles=1,
        receive_overhead_cycles=1,
        user_level=True,
        general_message_passing=False,
        citation="single-cycle neighbour/gate-register transfers, no MP model",
    ),
    SurveyInterface(
        name="Monsoon / Alewife shared memory",
        category="hardwired",
        send_overhead_cycles=1,
        receive_overhead_cycles=1,
        user_level=False,
        explicit_messages=False,
        general_message_passing=False,
        citation="message creation/dispatch at one per cycle, bound in hardware",
    ),
]


def survey_principles_satisfied(interface: SurveyInterface) -> int:
    """How many of the paper's four §1.5 principles the design satisfies.

    1. user-mode programmable, 2. explicit send/receive under program
    control, 3. register-mapped (approximated here by sub-10-cycle access),
    4. hardware-assisted frequent operations (approximated by sub-10-cycle
    receive overhead).
    """
    score = 0
    if interface.user_level:
        score += 1
    if interface.explicit_messages and interface.general_message_passing:
        score += 1
    if (interface.send_overhead_cycles or 10**9) <= 10:
        score += 1
    if (interface.receive_overhead_cycles or 10**9) <= 10:
        score += 1
    return score
