"""Analytic models of the surveyed interface categories (paper Section 1)."""

from repro.survey.models import SURVEY, SurveyInterface, survey_principles_satisfied

__all__ = ["SURVEY", "SurveyInterface", "survey_principles_satisfied"]
