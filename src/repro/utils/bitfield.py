"""Declarative packing and unpacking of bit fields in 32-bit words.

The architecture in the paper is defined almost entirely in terms of bit
fields: the 4-bit message type, the destination address in the high bits of
``m0``, the ``STATUS`` and ``CONTROL`` register layouts, the ``MsgIp``
composition of Figure 7, and the memory-address command encoding of
Figure 9.  This module gives all of those a single, well-tested mechanism.

A :class:`BitField` names a contiguous run of bits; a :class:`BitLayout`
is an ordered, non-overlapping collection of fields over a fixed word width
and converts between integers and field dictionaries.

Example
-------
>>> layout = BitLayout("demo", [BitField("lo", 0, 4), BitField("hi", 4, 4)])
>>> layout.pack(lo=0x3, hi=0xA)
163
>>> layout.unpack(163)["hi"]
10
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping

from repro.errors import BitfieldError

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF


def mask(width: int) -> int:
    """Return a mask of ``width`` low-order one bits."""
    if width < 0:
        raise BitfieldError(f"negative field width: {width}")
    return (1 << width) - 1


def to_word(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit word."""
    return value & WORD_MASK


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement integer."""
    if bits <= 0 or bits > WORD_BITS:
        raise BitfieldError(f"cannot sign-extend to {bits} bits")
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


@dataclass(frozen=True)
class BitField:
    """A named run of ``width`` bits starting at bit ``shift`` (LSB = 0)."""

    name: str
    shift: int
    width: int

    def __post_init__(self) -> None:
        if not self.name:
            raise BitfieldError("bit field must have a name")
        if self.shift < 0 or self.width <= 0:
            raise BitfieldError(
                f"field {self.name!r}: shift and width must be non-negative/positive"
            )
        if self.shift + self.width > WORD_BITS:
            raise BitfieldError(
                f"field {self.name!r} spills past bit {WORD_BITS - 1} "
                f"(shift={self.shift}, width={self.width})"
            )

    @property
    def max_value(self) -> int:
        """Largest value representable in this field."""
        return mask(self.width)

    @property
    def field_mask(self) -> int:
        """Mask with ones in this field's bit positions."""
        return mask(self.width) << self.shift

    def extract(self, word: int) -> int:
        """Read this field out of ``word``."""
        return (word >> self.shift) & mask(self.width)

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field replaced by ``value``."""
        if value < 0 or value > self.max_value:
            raise BitfieldError(
                f"value {value} does not fit in {self.width}-bit field {self.name!r}"
            )
        return (word & ~self.field_mask & WORD_MASK) | (value << self.shift)


class BitLayout:
    """An ordered set of non-overlapping :class:`BitField` objects.

    The layout checks at construction time that no two fields overlap, which
    catches register-layout typos immediately rather than as corrupt state
    during simulation.
    """

    def __init__(self, name: str, fields: Iterable[BitField]):
        self.name = name
        self._fields: Dict[str, BitField] = {}
        used = 0
        for field in fields:
            if field.name in self._fields:
                raise BitfieldError(f"layout {name!r}: duplicate field {field.name!r}")
            if used & field.field_mask:
                raise BitfieldError(
                    f"layout {name!r}: field {field.name!r} overlaps an earlier field"
                )
            used |= field.field_mask
            self._fields[field.name] = field
        self._used_mask = used

    def __iter__(self) -> Iterator[BitField]:
        return iter(self._fields.values())

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def field(self, name: str) -> BitField:
        """Look up a field by name."""
        try:
            return self._fields[name]
        except KeyError:
            raise BitfieldError(f"layout {self.name!r} has no field {name!r}") from None

    @property
    def used_mask(self) -> int:
        """Mask of all bits claimed by some field."""
        return self._used_mask

    def pack(self, **values: int) -> int:
        """Build a word from field values; unspecified fields are zero."""
        word = 0
        for name, value in values.items():
            word = self.field(name).insert(word, value)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Split ``word`` into a ``{field name: value}`` dictionary."""
        return {f.name: f.extract(word) for f in self}

    def update(self, word: int, **values: int) -> int:
        """Return ``word`` with the named fields replaced."""
        for name, value in values.items():
            word = self.field(name).insert(word, value)
        return word

    def get(self, word: int, name: str) -> int:
        """Extract one named field from ``word``."""
        return self.field(name).extract(word)

    def describe(self, word: int) -> str:
        """Human-readable rendering, used by ``repr`` of register classes."""
        parts = ", ".join(f"{f.name}={f.extract(word)}" for f in self)
        return f"<{self.name} {parts}>"


class Register:
    """A mutable 32-bit register with a :class:`BitLayout`.

    Used for the NI's ``STATUS`` and ``CONTROL`` registers, where software
    and hardware both read and write individual fields.
    """

    def __init__(self, layout: BitLayout, initial: int = 0):
        self.layout = layout
        self._word = to_word(initial)

    @property
    def word(self) -> int:
        """The raw 32-bit contents."""
        return self._word

    @word.setter
    def word(self, value: int) -> None:
        self._word = to_word(value)

    def __getitem__(self, name: str) -> int:
        return self.layout.get(self._word, name)

    def __setitem__(self, name: str, value: int) -> None:
        self._word = self.layout.update(self._word, **{name: value})

    def load(self, values: Mapping[str, int]) -> None:
        """Set several fields at once."""
        self._word = self.layout.update(self._word, **dict(values))

    def as_dict(self) -> Dict[str, int]:
        """All fields of the current value."""
        return self.layout.unpack(self._word)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.layout.describe(self._word)
