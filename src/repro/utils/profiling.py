"""Opt-in lightweight profiling: named timing spans and counters.

The evaluation harnesses wrap coarse units of work (one TAM program run,
one report section) in :meth:`Profiler.span` and record throughput
counters with :meth:`Profiler.add`.  Everything is a no-op until the
profiler is enabled (``python -m repro --profile``), so the interpreter
hot loop pays nothing in normal runs.

Usage::

    from repro.utils.profiling import PROFILER

    with PROFILER.span("tam.run"):
        ...
    PROFILER.add("tam.turns", turns)
    print(PROFILER.report())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class Profiler:
    """Accumulates span timings and counters; disabled by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        # name -> [total_seconds, calls]
        self._spans: Dict[str, List[float]] = {}
        self._counters: Dict[str, float] = {}

    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        self._spans.clear()
        self._counters.clear()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name``; nested spans are fine."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self._spans.get(name)
            if entry is None:
                self._spans[name] = [elapsed, 1]
            else:
                entry[0] += elapsed
                entry[1] += 1

    def add(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (e.g. turns executed, messages sent)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def spans(self) -> Dict[str, Dict[str, float]]:
        """Span data as plain dicts (for JSON export)."""
        return {
            name: {"seconds": total, "calls": calls}
            for name, (total, calls) in self._spans.items()
        }

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def report(self) -> str:
        """A readable summary: spans by total time, then counters."""
        lines = ["profile: timing spans"]
        if not self._spans:
            lines.append("  (none recorded)")
        for name, (total, calls) in sorted(
            self._spans.items(), key=lambda item: -item[1][0]
        ):
            mean = total / calls if calls else 0.0
            lines.append(
                f"  {name:<32} {total:10.4f} s  x{calls:<6d} "
                f"(avg {mean * 1000:9.3f} ms)"
            )
        lines.append("profile: counters")
        if not self._counters:
            lines.append("  (none recorded)")
        for name, value in sorted(self._counters.items()):
            rendered = f"{value:,.0f}" if value == int(value) else f"{value:,.3f}"
            lines.append(f"  {name:<32} {rendered:>14}")
        return "\n".join(lines)


#: The process-wide profiler every harness records into.
PROFILER = Profiler()
