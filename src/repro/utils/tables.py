"""Fixed-width text table rendering for evaluation reports.

Every evaluation harness (Table 1, Figure 12, the latency sweep, the
ablations) prints its results as aligned text tables so they can be compared
directly against the paper.  This module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Numeric cells are right-aligned, text cells left-aligned; integers get
    thousands separators.  Returns the table as a single string ending
    without a trailing newline.
    """
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    numeric: List[bool] = []
    all_rows = materialized if materialized else [[str(h) for h in headers]]
    for col in range(len(headers)):
        numeric.append(
            all(
                _looks_numeric(row[col])
                for row in materialized
                if col < len(row) and row[col]
            )
            and bool(materialized)
        )
    widths = [len(str(h)) for h in headers]
    for row in materialized:
        for col, text in enumerate(row):
            if col < len(widths):
                widths[col] = max(widths[col], len(text))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for col, text in enumerate(cells):
            if col >= len(widths):
                parts.append(text)
            elif numeric[col]:
                parts.append(text.rjust(widths[col]))
            else:
                parts.append(text.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append(fmt_row(["-" * w for w in widths]))
    for row in materialized:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    stripped = text.replace(",", "").replace("%", "").replace("+", "").replace("-", "")
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def render_bar_chart(
    labels: Sequence[str],
    series: Sequence[tuple[str, Sequence[float]]],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render stacked horizontal bars, one per label, as ASCII.

    ``series`` is a list of ``(component name, values per label)`` pairs; the
    components are stacked the way Figure 12 stacks compute / dispatch /
    other-communication.  Each component uses a distinct fill character.
    """
    fills = "#=+*o."
    totals = [sum(values[i] for _, values in series) for i in range(len(labels))]
    peak = max(totals) if totals else 1.0
    if peak <= 0:
        peak = 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = max((len(label) for label in labels), default=0)
    for i, label in enumerate(labels):
        bar = ""
        for s, (_, values) in enumerate(series):
            segment = int(round(values[i] / peak * width))
            bar += fills[s % len(fills)] * segment
        lines.append(f"{label.ljust(label_width)} |{bar}  {totals[i]:,.0f}")
    legend = "  ".join(
        f"{fills[s % len(fills)]}={name}" for s, (name, _) in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
