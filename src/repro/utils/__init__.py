"""Shared low-level utilities: bit fields, deterministic RNG, report tables."""

from repro.utils.bitfield import BitField, BitLayout, Register
from repro.utils.rng import SplitMix64, stream_for
from repro.utils.tables import render_bar_chart, render_table

__all__ = [
    "BitField",
    "BitLayout",
    "Register",
    "SplitMix64",
    "render_bar_chart",
    "render_table",
    "stream_for",
]
