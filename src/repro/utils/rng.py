"""Deterministic, splittable pseudo-random number generation.

The Gamteb reproduction is a Monte Carlo photon-transport simulation.  To
keep every run (and therefore every test and benchmark) bit-for-bit
reproducible, we avoid Python's global :mod:`random` state entirely and use
an explicit 64-bit SplitMix-style generator.  Each photon receives its own
independent stream derived from the run seed and the photon index, so
results are independent of scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF
_GAMMA = 0x9E37_79B9_7F4A_7C15


def _mix64(z: int) -> int:
    """SplitMix64 finalizer: diffuse the bits of ``z``."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58_476D_1CE4_E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D0_49BB_1331_11EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


@dataclass
class SplitMix64:
    """A tiny, fast, splittable PRNG (SplitMix64).

    Not cryptographic; statistically solid for Monte Carlo workloads of the
    size used here and, critically, *splittable*: :meth:`split` derives an
    independent child stream, which we use to give each photon its own
    generator regardless of execution interleaving.
    """

    state: int

    def __post_init__(self) -> None:
        self.state &= _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        self.state = (self.state + _GAMMA) & _MASK64
        return _mix64(self.state)

    def next_float(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def next_below(self, bound: int) -> int:
        """Return an integer uniformly distributed in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Rejection sampling to avoid modulo bias; the loop terminates with
        # probability 1 and in practice almost always on the first draw.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % bound)
        while True:
            draw = self.next_u64()
            if draw < limit:
                return draw % bound

    def split(self, salt: int = 0) -> "SplitMix64":
        """Derive an independent child generator.

        The child's seed mixes this generator's next output with ``salt`` so
        that ``rng.split(i)`` for distinct ``i`` yields distinct streams even
        without advancing the parent differently.
        """
        return SplitMix64(_mix64(self.next_u64() ^ _mix64(salt)))

    def choice_index(self, weights: list[float]) -> int:
        """Sample an index proportionally to non-negative ``weights``."""
        if any(weight < 0.0 for weight in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if total <= 0.0:
            raise ValueError("weights must have a positive sum")
        point = self.next_float() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if point < acc:
                return index
        return len(weights) - 1


def stream_for(seed: int, *path: int) -> SplitMix64:
    """Build the generator for a hierarchical position.

    ``stream_for(seed, photon_index)`` and ``stream_for(seed, photon_index,
    collision_index)`` give stable, independent streams keyed by position in
    the simulation rather than by execution order.
    """
    state = _mix64(seed)
    for component in path:
        state = _mix64(state ^ _mix64(component ^ _GAMMA))
    return SplitMix64(state)
