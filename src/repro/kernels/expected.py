"""The paper's Table 1, machine readable, with the reproduction's match policy.

Columns follow the paper's order (optimized register / on-chip / off-chip,
then basic register / on-chip / off-chip), keyed here by
:attr:`~repro.impls.base.InterfaceModel.key`.  Cell values are:

* an ``int`` — a plain cycle count;
* a ``(lo, hi)`` tuple — the register-placement SENDING ranges ("the
  number of instructions needed may depend on whether the values in the
  message can be computed directly into the output registers");
* a ``(base, slope)`` tuple — the affine PWrite(deferred) rows,
  ``base + slope * n`` for *n* deferred readers.

**Match policy.** Rows in :data:`EXACT_ROWS` are reproduced cycle for
cycle — they follow from the paper's three cost rules plus documented
conventions, and the test suite asserts equality.  The remaining rows (the
presence-bit handlers, and the single Write/off-chip cell) depend on the
authors' TAM runtime internals, which the paper does not list; for those,
the suite asserts the *structural* facts the paper's argument rests on —
cross-model deltas, placement orderings, on-chip/off-chip equalities, and
the per-reader slopes — and EXPERIMENTS.md reports measured-versus-paper
for every cell.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

Cell = Union[int, Tuple[int, int]]

OPT_REG = "optimized-register"
OPT_ON = "optimized-onchip"
OPT_OFF = "optimized-offchip"
BAS_REG = "basic-register"
BAS_ON = "basic-onchip"
BAS_OFF = "basic-offchip"

MODEL_ORDER = (OPT_REG, OPT_ON, OPT_OFF, BAS_REG, BAS_ON, BAS_OFF)


def _row(opt_reg: Cell, opt_on: Cell, opt_off: Cell, bas_reg: Cell, bas_on: Cell, bas_off: Cell) -> Dict[str, Cell]:
    return {
        OPT_REG: opt_reg,
        OPT_ON: opt_on,
        OPT_OFF: opt_off,
        BAS_REG: bas_reg,
        BAS_ON: bas_on,
        BAS_OFF: bas_off,
    }


SENDING_PAPER: Dict[str, Dict[str, Cell]] = {
    "send0": _row(2, 3, 3, 3, 4, 4),
    "send1": _row((2, 3), 4, 4, (3, 4), 5, 5),
    "send2": _row((2, 4), 5, 5, (3, 5), 6, 6),
    "pread": _row((2, 4), 5, 5, (3, 5), 7, 7),
    "pwrite": _row((0, 3), 3, 3, (1, 4), 5, 5),
    "read": _row((2, 3), 4, 4, (3, 4), 6, 6),
    "write": _row((0, 2), 2, 2, (1, 3), 4, 4),
}

DISPATCH_PAPER: Dict[str, int] = _row(1, 2, 2, 5, 7, 8)

PROCESSING_PAPER: Dict[str, Dict[str, int]] = {
    "send0": _row(1, 1, 3, 1, 1, 3),
    "send1": _row(2, 3, 5, 2, 3, 5),
    "send2": _row(3, 5, 6, 3, 5, 6),
    "read": _row(1, 3, 5, 4, 8, 8),
    "write": _row(1, 3, 4, 1, 3, 4),
    "pread_full": _row(9, 12, 13, 12, 17, 17),
    "pread_empty": _row(19, 23, 23, 19, 23, 23),
    "pread_deferred": _row(15, 19, 19, 15, 19, 19),
    "pwrite_empty": _row(14, 17, 17, 14, 17, 17),
}

PWRITE_DEFERRED_PAPER: Dict[str, Tuple[int, int]] = _row(
    (15, 6), (19, 8), (19, 8), (16, 6), (20, 8), (20, 8)
)

EXACT_ROWS = frozenset(
    [("sending", message) for message in SENDING_PAPER]
    + [("dispatch", "-")]
    + [
        ("processing", "send0"),
        ("processing", "send1"),
        ("processing", "send2"),
        ("processing", "read"),
    ]
)
"""Rows the test suite asserts cycle-exact against the paper."""

EXACT_CELL_EXCEPTIONS = frozenset()
"""Exact-row cells known to deviate (none at present)."""

STRUCTURAL_ROWS = frozenset(
    [
        ("processing", "write"),
        ("processing", "pread_full"),
        ("processing", "pread_empty"),
        ("processing", "pread_deferred"),
        ("processing", "pwrite_empty"),
        ("processing", "pwrite_deferred"),
    ]
)
"""Rows asserted structurally (deltas / orderings / slopes), not cycle-exact.

``write`` is near-exact: only its off-chip cell deviates (measured 5 versus
the paper's 4; the paper's count implies the store consumes its data a
cycle after issue, which our cost model conservatively does not assume).
The presence-bit rows embed the authors' TAM-runtime list management whose
exact instruction sequences the paper does not give; our handlers implement
the complete I-structure protocol in fewer cycles while preserving every
cross-model relationship.
"""
