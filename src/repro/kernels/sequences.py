"""The handwritten handler kernels behind Table 1 (paper Section 4.1).

Every entry of the paper's Table 1 corresponds to one executable kernel
built here: a short 88100-style sequence that *performs* the action
(composes and sends the message, dispatches on it, or processes it against
real interface and memory state) under one of the six interface models.
The Table 1 harness (:mod:`repro.eval.table1`) runs each kernel on the
behavioural machine and reports the measured cycles next to the paper's.

Conventions the kernels rely on (each is called out where used):

* **SEND rides the last operand store** in the memory-mapped placements
  (Figure 9 allows any store to carry commands); in the register placement
  it rides the last triadic instruction.
* **NEXT rides the handler's last read of the input registers**, or the
  final store when REPLY/FORWARD still needs the input registers.
* **Reply IPs are compile-time constants** materialised by one ``loadimm``.
* **The basic architecture's Send id is pinned in a register** (Sends
  dominate every mix); other ids are materialised at send time.
* **Register-placement SENDING has two variants**: ``worst`` moves every
  operand into the output registers explicitly; ``best`` assumes operands
  were *computed directly into* the output registers by surrounding code
  (the paper's "values ... computed directly into the output registers"),
  so those moves — and possibly the instruction carrying SEND — cost this
  action nothing.  The harness supplies the preloaded values and issues any
  context-carried SEND, uncounted.
* **Masked loads / filled delay slots** in the optimized dispatch encode
  the Section 2.2.3 ``NextMsgIp`` overlap; the flags appear in the
  listings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import EvaluationError
from repro.impls.base import InterfaceModel
from repro.isa.assembler import SequenceBuilder
from repro.isa.instructions import AluFn, Cond, Sequence
from repro.isa.machine import Placement
from repro.kernels import protocol as P
from repro.nic.interface import SendMode

BASIC_WIRE_TYPE = 2
"""The 4-bit type basic-architecture messages travel with.

The basic architecture ignores the hardware type field (Section 2.1);
messages still need *some* legal type on the wire, and 2 avoids the two
reserved values.
"""

SENDING_MESSAGES = ("send0", "send1", "send2", "pread", "pwrite", "read", "write")
PROCESSING_CASES = (
    "send0",
    "send1",
    "send2",
    "read",
    "write",
    "pread_full",
    "pread_empty",
    "pread_deferred",
    "pwrite_empty",
    "pwrite_deferred",
)


@dataclass(frozen=True)
class Kernel:
    """One executable Table 1 kernel plus its measurement metadata."""

    sequence: Sequence
    final_use: Optional[str] = None
    context_send: Optional[Tuple[SendMode, int]] = None
    preload_outputs: Tuple[Tuple[str, str], ...] = ()

    @property
    def name(self) -> str:
        return self.sequence.name


def _builder(name: str, model: InterfaceModel) -> SequenceBuilder:
    return SequenceBuilder(f"{name}[{model.key}]", model.placement)


def _is_register(model: InterfaceModel) -> bool:
    return model.placement is Placement.REGISTER


# ---------------------------------------------------------------------------
# SENDING kernels.
# ---------------------------------------------------------------------------


def sending_kernel(
    message: str, model: InterfaceModel, variant: str = "worst"
) -> Kernel:
    """The kernel that composes and sends one ``message`` under ``model``.

    ``variant`` selects the register placement's best/worst case (the
    ranges in Table 1); memory-mapped placements have a single schedule.
    """
    if message not in SENDING_MESSAGES:
        raise EvaluationError(f"unknown sending kernel {message!r}")
    if variant not in ("best", "worst"):
        raise EvaluationError(f"unknown variant {variant!r}")
    if _is_register(model):
        return _register_sending(message, model, variant)
    return _mm_sending(message, model)


def _register_sending(message: str, model: InterfaceModel, variant: str) -> Kernel:
    """Register placement: operands are moved (worst) or in place (best)."""
    basic = not model.optimized
    best = variant == "best"
    b = _builder(f"send:{message}:{variant}", model)

    def wire(mtype: int) -> int:
        return BASIC_WIRE_TYPE if basic else mtype

    # Moves that the best variant assumes were computed in place.  Each is
    # (output register, source symbolic register).
    elidable: Tuple[Tuple[str, str], ...]
    fixed_head = []  # (emit_fn) steps always paid
    if message == "send0":
        fixed_head = [lambda: b.loadimm("o1", P.REPLY_IP, note="thread IP")]
        elidable = ()
        closer = ("o0", "fp")
    elif message == "send1":
        fixed_head = [lambda: b.loadimm("o1", P.REPLY_IP, note="thread IP")]
        elidable = (("o2", "v"),)
        closer = ("o0", "fp")
    elif message == "send2":
        fixed_head = [lambda: b.loadimm("o1", P.REPLY_IP, note="thread IP")]
        elidable = (("o2", "v"), ("o3", "v2"))
        closer = ("o0", "fp")
    elif message == "read":
        fixed_head = [lambda: b.loadimm("o2", P.REPLY_IP, note="reply IP")]
        elidable = (("o0", "a"),)
        closer = ("o1", "fp")
    elif message == "write":
        fixed_head = []
        elidable = (("o0", "a"),)
        closer = ("o1", "v")
    elif message == "pread":
        fixed_head = [lambda: b.loadimm("o2", P.REPLY_IP, note="reply IP")]
        elidable = (("o0", "a"), ("o3", "x"))
        closer = ("o1", "fp")
    else:  # pwrite
        fixed_head = []
        elidable = (("o0", "a"), ("o1", "x"))
        closer = ("o2", "v")

    mtypes = {
        "send0": P.TYPE_SEND,
        "send1": P.TYPE_SEND,
        "send2": P.TYPE_SEND,
        "read": P.TYPE_READ,
        "write": P.TYPE_WRITE,
        "pread": P.TYPE_PREAD,
        "pwrite": P.TYPE_PWRITE,
    }
    send_type = wire(mtypes[message])
    for emit in fixed_head:
        emit()
    preload = ()
    if best:
        preload = elidable
    else:
        for out_reg, src in elidable:
            b.mov(out_reg, src)
    if basic:
        # The 32-bit id written into word 4 (Section 2.2.1's overhead).
        if message in ("send0", "send1", "send2"):
            b.mov("o4", "send_id", note="pinned Send id")
        else:
            ids = {
                "read": P.ID_READ,
                "write": P.ID_WRITE,
                "pread": P.ID_PREAD,
                "pwrite": P.ID_PWRITE,
            }
            b.loadimm("o4", ids[message], note="message id")
    # The closing move carries SEND; in the best variants of write/pwrite
    # (no fixed head, everything in place) even that instruction belongs to
    # the surrounding computation, so SEND rides context.
    context_send = None
    if best and message in ("write", "pwrite") and not basic:
        preload = elidable + ((closer[0], closer[1]),)
        context_send = (SendMode.NORMAL, send_type)
    elif best and message in ("write", "pwrite") and basic:
        # The id loadimm above is the only counted instruction; SEND still
        # rides the (uncounted) closing computation.
        preload = elidable + ((closer[0], closer[1]),)
        context_send = (SendMode.NORMAL, send_type)
    else:
        b.mov(closer[0], closer[1], send_mode=SendMode.NORMAL, send_type=send_type)
    return Kernel(b.build(), context_send=context_send, preload_outputs=preload)


def _mm_sending(message: str, model: InterfaceModel) -> Kernel:
    """Memory-mapped placements: one store per word, SEND on the last."""
    basic = not model.optimized
    b = _builder(f"send:{message}", model)

    def close_optimized(last_reg: str, last_value: str, mtype: int) -> None:
        b.ni_write(
            last_reg,
            last_value,
            send_mode=SendMode.NORMAL,
            send_type=mtype,
            note="SEND rides the final store",
        )

    def close_basic(mtype_ignored: int) -> None:
        if message in ("send0", "send1", "send2"):
            b.ni_write(
                "o4",
                "send_id",
                send_mode=SendMode.NORMAL,
                send_type=BASIC_WIRE_TYPE,
                note="pinned Send id; SEND rides its store",
            )
        else:
            ids = {
                "read": P.ID_READ,
                "write": P.ID_WRITE,
                "pread": P.ID_PREAD,
                "pwrite": P.ID_PWRITE,
            }
            b.loadimm("id", ids[message], note="message id")
            b.ni_write(
                "o4",
                "id",
                send_mode=SendMode.NORMAL,
                send_type=BASIC_WIRE_TYPE,
                note="SEND rides the id store",
            )

    if message in ("send0", "send1", "send2"):
        nwords = int(message[-1])
        b.ni_write("o0", "fp", note="FP (carries destination)")
        b.loadimm("t", P.REPLY_IP, note="thread IP")
        # Word stores in order; the last one carries SEND when optimized.
        stores = [("o1", "t")]
        if nwords >= 1:
            stores.append(("o2", "v"))
        if nwords >= 2:
            stores.append(("o3", "v2"))
        for reg, value in stores[:-1]:
            b.ni_write(reg, value)
        if basic:
            b.ni_write(*stores[-1])
            close_basic(P.TYPE_SEND)
        else:
            close_optimized(stores[-1][0], stores[-1][1], P.TYPE_SEND)
    elif message == "read":
        b.ni_write("o0", "a", note="remote address")
        b.ni_write("o1", "fp", note="reply FP")
        b.loadimm("t", P.REPLY_IP, note="reply IP")
        if basic:
            b.ni_write("o2", "t")
            close_basic(P.TYPE_READ)
        else:
            close_optimized("o2", "t", P.TYPE_READ)
    elif message == "write":
        b.ni_write("o0", "a", note="remote address")
        if basic:
            b.ni_write("o1", "v")
            close_basic(P.TYPE_WRITE)
        else:
            close_optimized("o1", "v", P.TYPE_WRITE)
    elif message == "pread":
        b.ni_write("o0", "a", note="array descriptor")
        b.ni_write("o3", "x", note="element index")
        b.ni_write("o1", "fp", note="reply FP")
        b.loadimm("t", P.REPLY_IP, note="reply IP")
        if basic:
            b.ni_write("o2", "t")
            close_basic(P.TYPE_PREAD)
        else:
            close_optimized("o2", "t", P.TYPE_PREAD)
    elif message == "pwrite":
        b.ni_write("o0", "a", note="array descriptor")
        b.ni_write("o1", "x", note="element index")
        if basic:
            b.ni_write("o2", "v")
            close_basic(P.TYPE_PWRITE)
        else:
            close_optimized("o2", "v", P.TYPE_PWRITE)
    return Kernel(b.build())


# ---------------------------------------------------------------------------
# DISPATCHING kernels.
# ---------------------------------------------------------------------------


def dispatch_kernel(model: InterfaceModel) -> Kernel:
    """Poll for and dispatch on an arrived message (Figure 5/6 top halves)."""
    b = _builder("dispatch", model)
    if model.optimized:
        if _is_register(model):
            b.jump_reg(
                "MsgIp",
                slot_filled=True,
                note="slot overlapped per §2.2.3 (NextMsgIp)",
            )
        else:
            b.ni_read(
                "t",
                "MsgIp",
                masked=True,
                note="issued early via NextMsgIp overlap (§2.2.3)",
            )
            b.jump_reg(
                "t", slot_filled=True, note="slot overlapped per §2.2.3"
            )
        return Kernel(b.build())
    # Basic architecture: poll STATUS, index the handler table with the
    # 32-bit id in word 4, jump.  The paper notes the basic dispatch jump's
    # delay slot cannot be filled.
    if _is_register(model):
        b.branch_bit(
            0, "STATUS", "idle", on_set=False, slot_filled=True, note="poll msg_valid"
        )
        b.alui(AluFn.SHL, "t", "i4", P.BASIC_HANDLER_STRIDE_SHIFT, note="id -> offset")
        b.alu(AluFn.ADD, "t", "t", "ip_base")
        b.jump_reg("t", note="unfillable slot (+1)")
    else:
        b.ni_read("stat", "STATUS")
        b.ni_read("id", "i4", note="32-bit message id")
        b.branch_bit(
            0, "stat", "idle", on_set=False, slot_filled=True, note="poll msg_valid"
        )
        b.alui(AluFn.SHL, "t", "id", P.BASIC_HANDLER_STRIDE_SHIFT, note="id -> offset")
        b.alu(AluFn.ADD, "t", "t", "ip_base")
        b.jump_reg("t", note="unfillable slot (+1)")
    b.label("idle").halt()
    return Kernel(b.build())


# ---------------------------------------------------------------------------
# PROCESSING kernels.
# ---------------------------------------------------------------------------


def processing_kernel(case: str, model: InterfaceModel) -> Kernel:
    """Handle one arrived message of the given ``case`` under ``model``."""
    if case not in PROCESSING_CASES:
        raise EvaluationError(f"unknown processing kernel {case!r}")
    if case.startswith("send"):
        return _proc_send(int(case[-1]), model)
    if case == "read":
        return _proc_read(model)
    if case == "write":
        return _proc_write(model)
    if case.startswith("pread"):
        return _proc_pread(model)
    return _proc_pwrite(model)


def _proc_send(nwords: int, model: InterfaceModel) -> Kernel:
    """A Send invokes a thread; the thread banks 0-2 message words.

    Identical for basic and optimized architectures (Table 1 agrees): a
    Send uses no id generation on receipt, no reply, and dispatch is
    counted separately.
    """
    b = _builder(f"proc:send{nwords}", model)
    if _is_register(model):
        if nwords == 0:
            b.mov("fp", "i0", do_next=True, note="thread takes its FP")
        elif nwords == 1:
            b.mov("fp", "i0", note="thread takes its FP")
            b.mem_store("i2", "fp", P.FRAME_WORD0_OFFSET, do_next=True)
        else:
            b.mov("fp", "i0", note="thread takes its FP")
            b.mem_store("i2", "fp", P.FRAME_WORD0_OFFSET)
            b.mem_store("i3", "fp", P.FRAME_WORD1_OFFSET, do_next=True)
        return Kernel(b.build(), final_use="fp" if nwords == 0 else None)
    if nwords == 0:
        b.ni_read("fp", "i0", do_next=True, note="thread takes its FP")
        return Kernel(b.build(), final_use="fp")
    if nwords == 1:
        b.ni_read("fp", "i0")
        b.ni_read("v", "i2", do_next=True, note="NEXT rides the last input read")
        b.mem_store("v", "fp", P.FRAME_WORD0_OFFSET)
        return Kernel(b.build())
    b.ni_read("fp", "i0")
    b.ni_read("v", "i2")
    b.ni_read("v2", "i3", do_next=True, note="NEXT rides the last input read")
    b.mem_store("v", "fp", P.FRAME_WORD0_OFFSET)
    b.mem_store("v2", "fp", P.FRAME_WORD1_OFFSET)
    return Kernel(b.build())


def _proc_read(model: InterfaceModel) -> Kernel:
    """Remote read: load the word, reply with its value (Figures 5 and 6)."""
    b = _builder("proc:read", model)
    if model.optimized:
        if _is_register(model):
            # The paper's flagship: one instruction (plus dispatch) total.
            b.mem_load(
                "o2",
                "i0",
                send_mode=SendMode.REPLY,
                send_type=P.TYPE_SEND,
                do_next=True,
                note="load straight into o2; REPLY + NEXT ride along",
            )
            return Kernel(b.build())
        b.ni_read("a", "i0")
        b.mem_load("v", "a")
        b.ni_write(
            "o2",
            "v",
            send_mode=SendMode.REPLY,
            send_type=P.TYPE_SEND,
            do_next=True,
            note="REPLY composes head from i1/i2; NEXT after",
        )
        return Kernel(b.build())
    # Basic: copy the continuation explicitly, id the reply as a Send.
    if _is_register(model):
        b.mov("o0", "i1", note="reply FP copied by hand")
        b.mov("o1", "i2", note="reply IP copied by hand")
        b.mem_load("o2", "i0")
        b.mov(
            "o4",
            "send_id",
            send_mode=SendMode.NORMAL,
            send_type=BASIC_WIRE_TYPE,
            do_next=True,
        )
        return Kernel(b.build())
    b.ni_read("a", "i0")
    b.ni_read("f", "i1")
    b.ni_read("ip2", "i2", do_next=True, note="NEXT rides the last input read")
    b.mem_load("v", "a")
    b.ni_write("o0", "f")
    b.ni_write("o1", "ip2")
    b.ni_write("o2", "v")
    b.ni_write(
        "o4",
        "send_id",
        send_mode=SendMode.NORMAL,
        send_type=BASIC_WIRE_TYPE,
        note="SEND rides the id store",
    )
    return Kernel(b.build())


def _proc_write(model: InterfaceModel) -> Kernel:
    """Remote write: store the value.  Identical basic vs optimized."""
    b = _builder("proc:write", model)
    if _is_register(model):
        b.mem_store("i1", "i0", do_next=True, note="one instruction")
        return Kernel(b.build())
    b.ni_read("a", "i0")
    b.ni_read("v", "i1", do_next=True, note="NEXT rides the last input read")
    b.mem_store("v", "a")
    return Kernel(b.build())


def _element_address_register(b: SequenceBuilder, index_reg: str) -> None:
    """desc + 8*index, register placement (inputs read in place)."""
    b.alui(AluFn.SHL, "t", index_reg, P.ELEMENT_SHIFT, note="index -> byte offset")
    b.alu(AluFn.ADD, "a", "i0", "t", note="element address")


def _defer_reader_register(b: SequenceBuilder, basic: bool) -> None:
    """Push (i1, i2) onto the element's deferred list; register placement.

    The same code serves the empty and the already-deferred element: the
    old tag (0 or list head) becomes the new node's next pointer.
    """
    b.mem_load("node", "heap", note="free-list head")
    b.mem_load("nxt", "node", note="next free node")
    b.mem_store("nxt", "heap")
    b.mem_store("i1", "node", P.NODE_FP_OFFSET)
    b.mem_store("i2", "node", P.NODE_IP_OFFSET)
    b.mem_store("tag", "node", P.NODE_NEXT_OFFSET, note="chain old tag")
    b.mem_store("node", "a", P.TAG_OFFSET, do_next=True, note="tag <- node")


def _proc_pread(model: InterfaceModel) -> Kernel:
    """PRead: reply when full, defer the reader otherwise.

    One kernel covers the full / empty / deferred rows; the harness sets
    the element state so the measured path is the intended one.  Empty and
    already-deferred share code here (the old tag is the chained next
    pointer), unlike the paper's runtime — see EXPERIMENTS.md.
    """
    b = _builder("proc:pread", model)
    basic = not model.optimized
    if _is_register(model):
        _element_address_register(b, "i3")
        b.mem_load("tag", "a", P.TAG_OFFSET)
        b.branch_cond(
            Cond.NE, "tag", P.TAG_FULL, "defer", slot_filled=True, note="present?"
        )
        if basic:
            b.mov("o0", "i1", note="reply FP copied by hand")
            b.mov("o1", "i2", note="reply IP copied by hand")
            b.mem_load("o2", "a", P.VALUE_OFFSET)
            b.mov(
                "o4",
                "send_id",
                send_mode=SendMode.NORMAL,
                send_type=BASIC_WIRE_TYPE,
                do_next=True,
            )
        else:
            b.mem_load(
                "o2",
                "a",
                P.VALUE_OFFSET,
                send_mode=SendMode.REPLY,
                send_type=P.TYPE_SEND,
                do_next=True,
                note="value straight to o2; REPLY + NEXT ride along",
            )
        b.halt()
        b.label("defer")
        _defer_reader_register(b, basic)
        return Kernel(b.build())
    # Memory mapped.  Off-chip-friendly order: interface loads first.
    b.ni_read("x", "i3", note="element index")
    b.ni_read("b", "i0", note="array descriptor")
    if basic:
        b.ni_read("f", "i1")
        b.ni_read("ip2", "i2", do_next=True, note="NEXT rides the last input read")
    b.alui(AluFn.SHL, "t", "x", P.ELEMENT_SHIFT, note="index -> byte offset")
    b.alu(AluFn.ADD, "a", "b", "t", note="element address")
    b.mem_load("tag", "a", P.TAG_OFFSET)
    if basic:
        b.ni_write("o0", "f", note="scheduled before the branch to hide latency")
        b.branch_cond(
            Cond.NE, "tag", P.TAG_FULL, "defer", slot_filled=True, note="present?"
        )
        b.ni_write("o1", "ip2")
        b.mem_load("v", "a", P.VALUE_OFFSET)
        b.ni_write("o2", "v")
        b.ni_write(
            "o4",
            "send_id",
            send_mode=SendMode.NORMAL,
            send_type=BASIC_WIRE_TYPE,
            note="SEND rides the id store",
        )
    else:
        b.branch_cond(
            Cond.NE, "tag", P.TAG_FULL, "defer", slot_filled=True, note="present?"
        )
        b.mem_load("v", "a", P.VALUE_OFFSET)
        b.ni_write(
            "o2",
            "v",
            send_mode=SendMode.REPLY,
            send_type=P.TYPE_SEND,
            do_next=True,
            note="REPLY composes head from i1/i2; NEXT after",
        )
    b.halt()
    b.label("defer")
    if not basic:
        b.ni_read("f", "i1")
        b.ni_read("ip2", "i2", do_next=True, note="NEXT rides the last input read")
    b.mem_load("node", "heap", note="free-list head")
    b.mem_load("nxt", "node", note="next free node")
    b.mem_store("nxt", "heap")
    b.mem_store("f", "node", P.NODE_FP_OFFSET)
    b.mem_store("ip2", "node", P.NODE_IP_OFFSET)
    b.mem_store("tag", "node", P.NODE_NEXT_OFFSET, note="chain old tag")
    b.mem_store("node", "a", P.TAG_OFFSET, note="tag <- node")
    return Kernel(b.build())


def _proc_pwrite(model: InterfaceModel) -> Kernel:
    """PWrite: store the value; satisfy any deferred readers by FORWARD.

    Optimized models forward the value in hardware (i2 rides into the
    outgoing word 2); basic models bank it into ``o2`` once before the
    loop, which persists across sends.  Deferred nodes are not re-chained
    onto the free list inside the loop (arena reclamation — see
    EXPERIMENTS.md), matching the paper's per-reader slopes.
    """
    b = _builder("proc:pwrite", model)
    basic = not model.optimized
    if _is_register(model):
        _element_address_register(b, "i1")
        b.mem_load("tag", "a", P.TAG_OFFSET)
        b.mem_store("i2", "a", P.VALUE_OFFSET, note="write the value")
        b.branch_cond(
            Cond.NE, "tag", P.TAG_EMPTY, "readers", slot_filled=True
        )
        b.loadimm("one", P.TAG_FULL)
        b.mem_store("one", "a", P.TAG_OFFSET, do_next=True, note="tag <- FULL")
        b.halt()
        b.label("readers")
        b.branch_cond(
            Cond.EQ, "tag", P.TAG_FULL, "error", slot_filled=True, note="double write?"
        )
        if basic:
            b.mov("o2", "i2", note="value banked once; persists across sends")
            b.mov("o4", "send_id", note="Send id banked once")
        b.mov("p", "tag", note="deferred-list head")
        b.label("loop").mem_load("o0", "p", P.NODE_FP_OFFSET)
        b.mem_load("o1", "p", P.NODE_IP_OFFSET)
        b.mem_load("nxt", "p", P.NODE_NEXT_OFFSET)
        if basic:
            b.ni_command(send_mode=SendMode.NORMAL, send_type=BASIC_WIRE_TYPE)
        else:
            b.ni_command(
                send_mode=SendMode.FORWARD,
                send_type=P.TYPE_SEND,
                note="value rides from i2 in hardware",
            )
        b.mov("p", "nxt")
        b.branch_cond(Cond.NE, "p", 0, "loop", slot_filled=True)
        b.loadimm("one", P.TAG_FULL)
        b.mem_store("one", "a", P.TAG_OFFSET, do_next=True, note="tag <- FULL")
        b.halt()
        b.label("error").halt()
        return Kernel(b.build())
    # Memory mapped.  All three interface loads come first so the off-chip
    # dead cycles are fully covered by the address arithmetic — the paper's
    # on-chip and off-chip PWrite columns are equal for the same reason.
    b.ni_read("x", "i1", note="element index")
    b.ni_read("b", "i0", note="array descriptor")
    b.ni_read("v", "i2", note="copy for the store; i2 also feeds FORWARD")
    b.alui(AluFn.SHL, "t", "x", P.ELEMENT_SHIFT, note="index -> byte offset")
    b.alu(AluFn.ADD, "a", "b", "t", note="element address")
    b.mem_load("tag", "a", P.TAG_OFFSET)
    b.mem_store("v", "a", P.VALUE_OFFSET, note="write the value")
    b.branch_cond(Cond.NE, "tag", P.TAG_EMPTY, "readers", slot_filled=True)
    # Empty: set the tag and release the input registers.  NEXT cannot ride
    # an input read here (the FORWARD path shares the prefix and needs the
    # message), so it costs one bare command.
    b.loadimm("one", P.TAG_FULL)
    b.mem_store("one", "a", P.TAG_OFFSET, note="tag <- FULL")
    b.ni_command(do_next=True, note="input registers released")
    b.halt()
    b.label("readers")
    b.branch_cond(
        Cond.EQ, "tag", P.TAG_FULL, "error", slot_filled=True, note="double write?"
    )
    if basic:
        b.ni_write("o2", "v", note="value banked once; persists across sends")
        b.ni_write("o4", "send_id", note="Send id banked once")
    b.mov("p", "tag", note="deferred-list head")
    b.label("loop").mem_load("f", "p", P.NODE_FP_OFFSET)
    b.mem_load("ip2", "p", P.NODE_IP_OFFSET)
    b.mem_load("nxt", "p", P.NODE_NEXT_OFFSET)
    b.ni_write("o0", "f")
    b.ni_write("o1", "ip2")
    if basic:
        b.ni_command(send_mode=SendMode.NORMAL, send_type=BASIC_WIRE_TYPE)
    else:
        b.ni_command(
            send_mode=SendMode.FORWARD,
            send_type=P.TYPE_SEND,
            note="value rides from i2 in hardware",
        )
    b.mov("p", "nxt")
    b.branch_cond(Cond.NE, "p", 0, "loop", slot_filled=True)
    b.loadimm("one", P.TAG_FULL)
    b.mem_store("one", "a", P.TAG_OFFSET, note="tag <- FULL")
    b.ni_command(do_next=True, note="input registers finally released")
    b.halt()
    b.label("error").halt()
    return Kernel(b.build())
