"""Execution harness for the Table 1 kernels.

For each (action, message, model) cell the harness builds a machine in the
right placement, installs the preconditions (pinned registers, request
message, I-structure state, free list), runs the kernel, **checks the
functional postconditions** — the reply really carries the right words, the
I-structure really transitions — and returns the measured cycle count.

The functional checks matter: they guarantee the cycle counts describe
code that actually performs the paper's protocol, not straight-line
filler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import EvaluationError
from repro.impls.base import InterfaceModel
from repro.isa.machine import Machine
from repro.isa.registers import resolve
from repro.kernels import protocol as P
from repro.kernels.sequences import (
    BASIC_WIRE_TYPE,
    Kernel,
    dispatch_kernel,
    processing_kernel,
    sending_kernel,
)
from repro.nic.dispatch import handler_table_address
from repro.nic.messages import Message, pack_destination

# Fixed test-bench values.
REMOTE_NODE = 1
LOCAL_NODE = 0
FP_LOCAL = 0x3000
ADDR_LOCAL = 0x1000
FREE_HEAD_ADDR = 0x2000
NODE_ARENA = 0x2100
PREBUILT_NODES = 0x2500
VALUE_A = 0x1111
VALUE_B = 0x2222
MEMORY_WORD = 0x7777
INDEX = 3
IP_BASE_HW = 0x0008_0000
IP_BASE_SW = 0x9000


class CheckFailure(EvaluationError):
    """A kernel's functional postcondition did not hold."""


def _check(condition: bool, what: str) -> None:
    if not condition:
        raise CheckFailure(f"kernel postcondition failed: {what}")


@dataclass
class Measurement:
    """Measured cycles for one Table 1 cell."""

    cycles: int
    instructions: int
    stall_cycles: int


def _fresh_machine(model: InterfaceModel) -> Machine:
    machine = model.make_machine()
    machine.interface.ip_base = IP_BASE_HW
    for name, value in (
        ("fp", pack_destination(REMOTE_NODE, FP_LOCAL)),
        ("a", pack_destination(REMOTE_NODE, ADDR_LOCAL)),
        ("v", VALUE_A),
        ("v2", VALUE_B),
        ("x", INDEX),
        ("send_id", P.ID_SEND),
        ("heap", FREE_HEAD_ADDR),
        ("ip_base", IP_BASE_SW),
    ):
        machine.registers.write(name, value)
    # Free list: three chained nodes, head pointer in memory.
    machine.memory.store(FREE_HEAD_ADDR, NODE_ARENA)
    machine.memory.store(NODE_ARENA, NODE_ARENA + P.NODE_BYTES)
    machine.memory.store(NODE_ARENA + P.NODE_BYTES, NODE_ARENA + 2 * P.NODE_BYTES)
    machine.memory.store(NODE_ARENA + 2 * P.NODE_BYTES, 0)
    return machine


def _run(machine: Machine, kernel: Kernel) -> Measurement:
    for out_reg, src in kernel.preload_outputs:
        machine.interface.write_output(
            int(out_reg[1]), machine.registers.read(src)
        )
    result = machine.run(kernel.sequence)
    cycles = result.cycles
    if kernel.final_use is not None:
        cycles += result.tail_stall(resolve(kernel.final_use))
    if kernel.context_send is not None:
        mode, mtype = kernel.context_send
        machine.interface.send(mtype, mode)
    return Measurement(cycles, result.instructions, result.stall_cycles)


# ---------------------------------------------------------------------------
# SENDING.
# ---------------------------------------------------------------------------

_EXPECTED_WORDS = {
    "send0": lambda: {0: pack_destination(REMOTE_NODE, FP_LOCAL), 1: P.REPLY_IP},
    "send1": lambda: {
        0: pack_destination(REMOTE_NODE, FP_LOCAL),
        1: P.REPLY_IP,
        2: VALUE_A,
    },
    "send2": lambda: {
        0: pack_destination(REMOTE_NODE, FP_LOCAL),
        1: P.REPLY_IP,
        2: VALUE_A,
        3: VALUE_B,
    },
    "read": lambda: {
        0: pack_destination(REMOTE_NODE, ADDR_LOCAL),
        1: pack_destination(REMOTE_NODE, FP_LOCAL),
        2: P.REPLY_IP,
    },
    "write": lambda: {0: pack_destination(REMOTE_NODE, ADDR_LOCAL), 1: VALUE_A},
    "pread": lambda: {
        0: pack_destination(REMOTE_NODE, ADDR_LOCAL),
        1: pack_destination(REMOTE_NODE, FP_LOCAL),
        2: P.REPLY_IP,
        3: INDEX,
    },
    "pwrite": lambda: {
        0: pack_destination(REMOTE_NODE, ADDR_LOCAL),
        1: INDEX,
        2: VALUE_A,
    },
}

_OPT_TYPES = {
    "send0": P.TYPE_SEND,
    "send1": P.TYPE_SEND,
    "send2": P.TYPE_SEND,
    "read": P.TYPE_READ,
    "write": P.TYPE_WRITE,
    "pread": P.TYPE_PREAD,
    "pwrite": P.TYPE_PWRITE,
}

_BASIC_IDS = {
    "send0": P.ID_SEND,
    "send1": P.ID_SEND,
    "send2": P.ID_SEND,
    "read": P.ID_READ,
    "write": P.ID_WRITE,
    "pread": P.ID_PREAD,
    "pwrite": P.ID_PWRITE,
}


def measure_sending(
    message: str, model: InterfaceModel, variant: str = "worst"
) -> Measurement:
    """Run one SENDING kernel and verify the transmitted message."""
    machine = _fresh_machine(model)
    kernel = sending_kernel(message, model, variant)
    measurement = _run(machine, kernel)
    sent = machine.interface.transmit()
    _check(sent is not None, f"{kernel.name}: nothing was sent")
    _check(
        sent.destination == REMOTE_NODE,
        f"{kernel.name}: wrong destination {sent.destination}",
    )
    if model.optimized:
        _check(
            sent.mtype == _OPT_TYPES[message],
            f"{kernel.name}: wrong type {sent.mtype}",
        )
    else:
        _check(
            sent.word(4) == _BASIC_IDS[message],
            f"{kernel.name}: wrong id {sent.word(4):#x}",
        )
    for index, value in _EXPECTED_WORDS[message]().items():
        _check(
            sent.word(index) == value,
            f"{kernel.name}: word {index} is {sent.word(index):#x}, "
            f"expected {value:#x}",
        )
    return measurement


# ---------------------------------------------------------------------------
# DISPATCHING.
# ---------------------------------------------------------------------------


def _read_request(reply_to: int = REMOTE_NODE, basic: bool = False) -> Message:
    words = (
        pack_destination(LOCAL_NODE, ADDR_LOCAL),
        pack_destination(reply_to, FP_LOCAL),
        P.REPLY_IP,
        0,
        P.ID_READ if basic else 0,
    )
    return Message(BASIC_WIRE_TYPE if basic else P.TYPE_READ, words)


def measure_dispatch(model: InterfaceModel) -> Measurement:
    """Run the dispatch kernel against an arrived Read request.

    Verifies the jump lands on the Read handler's address under the
    model's dispatch convention (hardware MsgIp table for optimized,
    software ``IpBase + (id << 4)`` for basic).
    """
    machine = _fresh_machine(model)
    basic = not model.optimized
    machine.interface.deliver(_read_request(basic=basic))
    kernel = dispatch_kernel(model)
    for out_reg, src in kernel.preload_outputs:
        machine.interface.write_output(int(out_reg[1]), machine.registers.read(src))
    result = machine.run(kernel.sequence)
    if basic:
        expected = IP_BASE_SW + (P.ID_READ << P.BASIC_HANDLER_STRIDE_SHIFT)
    else:
        expected = handler_table_address(IP_BASE_HW, P.TYPE_READ)
    _check(
        result.jump_target == expected,
        f"{kernel.name}: dispatched to {result.jump_target:#x}, "
        f"expected {expected:#x}",
    )
    return Measurement(result.cycles, result.instructions, result.stall_cycles)


# ---------------------------------------------------------------------------
# PROCESSING.
# ---------------------------------------------------------------------------


def _element_address(index: int = INDEX) -> int:
    return ADDR_LOCAL + index * P.ELEMENT_BYTES


def _deliver_processing_message(machine: Machine, case: str, basic: bool) -> None:
    wire = BASIC_WIRE_TYPE if basic else None
    if case.startswith("send"):
        nwords = int(case[-1])
        payload = [P.REPLY_IP, VALUE_A, VALUE_B][: nwords + 1]
        words = [pack_destination(LOCAL_NODE, FP_LOCAL)] + payload
        words += [0] * (3 - len(payload))
        words.append(P.ID_SEND if basic else 0)
        machine.interface.deliver(
            Message(wire if basic else P.TYPE_SEND, tuple(words))
        )
    elif case == "read":
        machine.interface.deliver(_read_request(basic=basic))
    elif case == "write":
        machine.interface.deliver(
            Message(
                wire if basic else P.TYPE_WRITE,
                (
                    pack_destination(LOCAL_NODE, ADDR_LOCAL),
                    VALUE_A,
                    0,
                    0,
                    P.ID_WRITE if basic else 0,
                ),
            )
        )
    elif case.startswith("pread"):
        machine.interface.deliver(
            Message(
                wire if basic else P.TYPE_PREAD,
                (
                    pack_destination(LOCAL_NODE, ADDR_LOCAL),
                    pack_destination(REMOTE_NODE, FP_LOCAL),
                    P.REPLY_IP,
                    INDEX,
                    P.ID_PREAD if basic else 0,
                ),
            )
        )
    else:  # pwrite
        machine.interface.deliver(
            Message(
                wire if basic else P.TYPE_PWRITE,
                (
                    pack_destination(LOCAL_NODE, ADDR_LOCAL),
                    INDEX,
                    VALUE_A,
                    0,
                    P.ID_PWRITE if basic else 0,
                ),
            )
        )


def _prebuild_deferred_chain(machine: Machine, n: int) -> List[int]:
    """Build an ``n``-node deferred-reader chain; returns node addresses."""
    addresses = [PREBUILT_NODES + i * P.NODE_BYTES for i in range(n)]
    for i, addr in enumerate(addresses):
        machine.memory.store(
            addr + P.NODE_FP_OFFSET, pack_destination(REMOTE_NODE, FP_LOCAL + 16 * i)
        )
        machine.memory.store(addr + P.NODE_IP_OFFSET, P.REPLY_IP + 16 * i)
        nxt = addresses[i + 1] if i + 1 < n else 0
        machine.memory.store(addr + P.NODE_NEXT_OFFSET, nxt)
    return addresses


def measure_processing(
    case: str, model: InterfaceModel, deferred_readers: int = 1
) -> Measurement:
    """Run one PROCESSING kernel and verify its effects."""
    machine = _fresh_machine(model)
    basic = not model.optimized
    element = _element_address()
    # Element preconditions.
    if case == "read":
        machine.memory.store(ADDR_LOCAL, MEMORY_WORD)
    elif case == "pread_full":
        machine.memory.store(element + P.TAG_OFFSET, P.TAG_FULL)
        machine.memory.store(element + P.VALUE_OFFSET, MEMORY_WORD)
    elif case == "pread_empty":
        machine.memory.store(element + P.TAG_OFFSET, P.TAG_EMPTY)
    elif case == "pread_deferred":
        chain = _prebuild_deferred_chain(machine, 1)
        machine.memory.store(element + P.TAG_OFFSET, chain[0])
    elif case == "pwrite_empty":
        machine.memory.store(element + P.TAG_OFFSET, P.TAG_EMPTY)
    elif case == "pwrite_deferred":
        chain = _prebuild_deferred_chain(machine, deferred_readers)
        machine.memory.store(element + P.TAG_OFFSET, chain[0])
    _deliver_processing_message(machine, case, basic)
    kernel = processing_kernel(case, model)
    measurement = _run(machine, kernel)
    _verify_processing(machine, case, basic, deferred_readers)
    return measurement


def _verify_processing(
    machine: Machine, case: str, basic: bool, deferred_readers: int
) -> None:
    ni = machine.interface
    mem = machine.memory
    element = _element_address()
    name = f"proc:{case}"
    _check(not ni.msg_valid, f"{name}: NEXT was not issued")
    if case == "send0":
        _check(
            machine.registers.read("fp") == pack_destination(LOCAL_NODE, FP_LOCAL),
            f"{name}: thread FP not taken",
        )
    elif case == "send1":
        _check(mem.load(FP_LOCAL) == VALUE_A, f"{name}: word 0 not banked")
    elif case == "send2":
        _check(mem.load(FP_LOCAL) == VALUE_A, f"{name}: word 0 not banked")
        _check(mem.load(FP_LOCAL + 4) == VALUE_B, f"{name}: word 1 not banked")
    elif case in ("read", "pread_full"):
        reply = ni.transmit()
        _check(reply is not None, f"{name}: no reply sent")
        _check(
            reply.destination == REMOTE_NODE, f"{name}: reply to wrong node"
        )
        _check(
            reply.word(0) == pack_destination(REMOTE_NODE, FP_LOCAL),
            f"{name}: reply FP wrong",
        )
        _check(reply.word(1) == P.REPLY_IP, f"{name}: reply IP wrong")
        _check(reply.word(2) == MEMORY_WORD, f"{name}: reply value wrong")
        if basic:
            _check(reply.word(4) == P.ID_SEND, f"{name}: reply id wrong")
        else:
            _check(reply.mtype == P.TYPE_SEND, f"{name}: reply type wrong")
    elif case == "write":
        _check(mem.load(ADDR_LOCAL) == VALUE_A, f"{name}: value not written")
    elif case in ("pread_empty", "pread_deferred"):
        node = mem.load(element + P.TAG_OFFSET)
        _check(node >= P.NODE_AREA_MIN, f"{name}: reader not deferred")
        _check(
            mem.load(node + P.NODE_FP_OFFSET)
            == pack_destination(REMOTE_NODE, FP_LOCAL),
            f"{name}: deferred FP wrong",
        )
        _check(
            mem.load(node + P.NODE_IP_OFFSET) == P.REPLY_IP,
            f"{name}: deferred IP wrong",
        )
        if case == "pread_deferred":
            _check(
                mem.load(node + P.NODE_NEXT_OFFSET) == PREBUILT_NODES,
                f"{name}: old list not chained",
            )
        else:
            _check(
                mem.load(node + P.NODE_NEXT_OFFSET) == 0,
                f"{name}: chain should end",
            )
        _check(ni.peek_outgoing() is None, f"{name}: unexpected reply")
    elif case == "pwrite_empty":
        _check(mem.load(element + P.TAG_OFFSET) == P.TAG_FULL, f"{name}: not full")
        _check(
            mem.load(element + P.VALUE_OFFSET) == VALUE_A,
            f"{name}: value not written",
        )
    elif case == "pwrite_deferred":
        _check(mem.load(element + P.TAG_OFFSET) == P.TAG_FULL, f"{name}: not full")
        _check(
            mem.load(element + P.VALUE_OFFSET) == VALUE_A,
            f"{name}: value not written",
        )
        for i in range(deferred_readers):
            reply = ni.transmit()
            _check(reply is not None, f"{name}: reader {i} not satisfied")
            _check(
                reply.word(0) == pack_destination(REMOTE_NODE, FP_LOCAL + 16 * i),
                f"{name}: reader {i} FP wrong",
            )
            _check(
                reply.word(1) == P.REPLY_IP + 16 * i,
                f"{name}: reader {i} IP wrong",
            )
            _check(
                reply.word(2) == VALUE_A, f"{name}: reader {i} value wrong"
            )
        _check(ni.transmit() is None, f"{name}: too many replies")


def measure_pwrite_deferred_line(
    model: InterfaceModel, counts: Tuple[int, ...] = (1, 2, 3)
) -> Tuple[int, int]:
    """Fit ``base + slope * n`` to the PWrite(deferred) measurements."""
    cycles = [
        measure_processing("pwrite_deferred", model, deferred_readers=n).cycles
        for n in counts
    ]
    slopes = {
        (cycles[i + 1] - cycles[i]) // (counts[i + 1] - counts[i])
        for i in range(len(counts) - 1)
    }
    if len(slopes) != 1:
        raise EvaluationError(
            f"PWrite(deferred) is not affine in n under {model.key}: {cycles}"
        )
    slope = slopes.pop()
    base = cycles[0] - slope * counts[0]
    return base, slope
