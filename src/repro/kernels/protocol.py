"""The software message-protocol conventions behind the Table 1 kernels.

The paper fixes the architecture (five words, 4-bit type, REPLY mode
substituting words 1 and 2) but leaves the message-level protocol to
software.  These are the conventions this reproduction uses everywhere —
the handler kernels, the behavioural node handlers, and the TAM runtime all
import them from here:

**Message layouts** (word 0 always carries the destination in its high
bits):

========  ====================================================bb===========
type      layout
========  ===============================================================
Send (0)  m0 = FP (global), m1 = IP, m2/m3 = 0..2 data words
Read (2)  m0 = address (global), m1 = reply FP, m2 = reply IP
Write (3) m0 = address (global), m1 = value
PRead (4) m0 = array descriptor (global), m1 = reply FP, m2 = reply IP,
          m3 = element index
PWrite(5) m0 = array descriptor (global), m1 = element index, m2 = value
========  ===============================================================

Words 1 and 2 of every *request carrying a continuation* hold the reply FP
and IP so the hardware REPLY mode (i1 → o0, i2 → o1) composes the reply
head for free; PWrite keeps its value in word 2 so the hardware FORWARD
mode (i2..i4 → o2..o4) carries it to deferred readers for free.  A remote
read's reply is an ordinary Send: m0 = FP, m1 = IP, m2 = value.

**I-structure layout**: an array element is a ``[tag, value]`` pair (8
bytes).  ``tag = 0`` means empty, ``tag = 1`` full, and any other value is
the address of the first node of the deferred-reader list — presence state
and list head share the word, as on Monsoon.  A deferred node is
``[FP, IP, next]`` (12 bytes); nodes come from a free list whose head
pointer lives in memory at the address held in the pinned ``heap``
register (word 0 links free nodes).

**Basic-architecture ids**: without the 4-bit type optimization every
message carries a 32-bit identifier in word 4.  Ids are small constants:
handler address = ``IpBase + (id << 4)``.  The Send id is pinned in a
register by software convention (Sends dominate the mix); other ids are
materialised by one ``loadimm`` at send time.
"""

from __future__ import annotations

from repro.nic.messages import TYPE_MSG_IP

# 4-bit types (optimized architecture).
TYPE_SEND = TYPE_MSG_IP  # 0: handler IP travels in word 1
TYPE_READ = 2
TYPE_WRITE = 3
TYPE_PREAD = 4
TYPE_PWRITE = 5

# 32-bit ids (basic architecture).  Small indices into the handler table.
ID_SEND = 1
ID_READ = 2
ID_WRITE = 3
ID_PREAD = 4
ID_PWRITE = 5

BASIC_HANDLER_STRIDE_SHIFT = 4
"""Basic dispatch: handler address = IpBase + (id << 4)."""

# I-structure element layout.
TAG_OFFSET = 0
VALUE_OFFSET = 4
ELEMENT_BYTES = 8
ELEMENT_SHIFT = 3  # index -> byte offset

TAG_EMPTY = 0
TAG_FULL = 1
# Any tag >= NODE_AREA_MIN is a deferred-list head pointer; the harnesses
# place node arenas well above this.
NODE_AREA_MIN = 8

# Deferred-reader node layout: [FP, IP, next]; word 0 doubles as the free
# -list link while the node is free.
NODE_FP_OFFSET = 0
NODE_IP_OFFSET = 4
NODE_NEXT_OFFSET = 8
NODE_BYTES = 12

# Frame conventions for Send-message data words (the invoked thread stores
# message words at fixed offsets from the FP carried by the message).
FRAME_WORD0_OFFSET = 0
FRAME_WORD1_OFFSET = 4

# Reply IPs are 16-bit code addresses materialised by a single loadimm
# (paper kernels treat handler IPs as one-instruction constants).
REPLY_IP = 0x4240
