"""Handwritten Table 1 kernels: protocol, sequences, harness, paper data.

Submodule imports are lazy: the harness pulls in the whole machine stack
(impls → isa → node), and eagerly importing it here would close an import
cycle through :mod:`repro.node.handlers`, which only needs
:mod:`repro.kernels.protocol`.
"""

from typing import Any

_LAZY = {
    "Measurement": "repro.kernels.harness",
    "measure_dispatch": "repro.kernels.harness",
    "measure_processing": "repro.kernels.harness",
    "measure_pwrite_deferred_line": "repro.kernels.harness",
    "measure_sending": "repro.kernels.harness",
    "PROCESSING_CASES": "repro.kernels.sequences",
    "SENDING_MESSAGES": "repro.kernels.sequences",
    "dispatch_kernel": "repro.kernels.sequences",
    "processing_kernel": "repro.kernels.sequences",
    "sending_kernel": "repro.kernels.sequences",
    "protocol": "repro.kernels.protocol",
    "expected": "repro.kernels.expected",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    if name == module_name.rsplit(".", 1)[-1]:
        return module
    return getattr(module, name)
