"""The composed message service loop: dispatch and handlers, end to end.

Table 1 prices DISPATCHING and PROCESSING separately; a running node
executes them *composed*: each handler's tail inlines the dispatch stub
(the paper's Section 2.2.3 overlap — "the processing of one message with
the dispatching of the next"), so control flows message to message with
no extra branches.

This module builds that composed loop as one executable sequence per
interface model, runs it against a stream of delivered messages, and
measures steady-state cycles.  Because the loop is built from the very
kernels Table 1 measures, its end-to-end cycle count must equal the sum
of the per-phase table entries — a consistency check the test suite
asserts exactly — and it yields a derived artifact: steady-state message
-handling throughput per model (:mod:`repro.eval.throughput`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Sequence as Seq, Tuple

from repro.errors import EvaluationError
from repro.impls.base import InterfaceModel
from repro.isa.instructions import Instruction, Opcode, Sequence
from repro.kernels import protocol as P
from repro.kernels.harness import (
    IP_BASE_HW,
    IP_BASE_SW,
    _deliver_processing_message,
    _fresh_machine,
)
from repro.kernels.sequences import dispatch_kernel, processing_kernel
from repro.nic.dispatch import handler_table_address

LOOP_HANDLERS = ("send0", "send1", "send2", "read", "write")
"""Message kinds the composed loop services (the label-free kernels)."""

SEND_HANDLER_IP = 0x5000
"""The word-1 IP that type-0 stream messages carry (send1 convention)."""


def _relabel(instructions: Seq[Instruction], suffix: str) -> List[Instruction]:
    """Clone instructions with labels and branch targets made unique."""
    out: List[Instruction] = []
    for instr in instructions:
        changes = {}
        if instr.label is not None:
            changes["label"] = f"{instr.label}.{suffix}"
        if instr.target is not None:
            changes["target"] = f"{instr.target}.{suffix}"
        out.append(dc_replace(instr, **changes) if changes else instr)
    return out


def _strip_trailing_halt(instructions: List[Instruction]) -> List[Instruction]:
    while instructions and instructions[-1].opcode is Opcode.HALT:
        instructions = instructions[:-1]
    return instructions


@dataclass
class ServiceLoop:
    """The composed loop for one model, ready to run."""

    model: InterfaceModel
    sequence: Sequence
    handler_entry: Dict[str, int]  # handler name -> instruction index
    dispatch_entry: int

    def resolve_jump(self, target: int):
        """Map dispatch-jump addresses to instruction indices."""
        entry = self._address_map.get(target)
        return entry

    @property
    def _address_map(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for name, index in self.handler_entry.items():
            for address in _handler_addresses(self.model, name):
                mapping[address] = index
        return mapping


def _handler_addresses(model: InterfaceModel, name: str) -> Tuple[int, ...]:
    """Every jump target that should land in handler ``name``.

    For the optimized models this includes all four boundary-condition
    versions of the dispatch-table slot (Section 2.2.4): these handlers
    neither care about a filling input queue (they are short) nor about
    the output queue beyond what SEND's own policy covers, so — as the
    paper explicitly allows — all four versions are the same code.
    """
    if name.startswith("send"):
        if model.optimized:
            # Type-0 messages carry the handler IP in word 1 when no
            # boundary condition holds; with iafull/oafull the hardware
            # falls back to the table's slot-0 versions (Figure 7).
            return (SEND_HANDLER_IP,) + _all_versions(0, skip_plain=True)
        return (IP_BASE_SW + (P.ID_SEND << P.BASIC_HANDLER_STRIDE_SHIFT),)
    types = {"read": (P.TYPE_READ, P.ID_READ), "write": (P.TYPE_WRITE, P.ID_WRITE)}
    mtype, mid = types[name]
    if model.optimized:
        return _all_versions(mtype)
    return (IP_BASE_SW + (mid << P.BASIC_HANDLER_STRIDE_SHIFT),)


def _all_versions(handler_id: int, skip_plain: bool = False) -> Tuple[int, ...]:
    """The (up to) four iafull/oafull dispatch-table slots of one handler.

    ``skip_plain`` omits the no-condition slot — for handler id 0 that
    slot is the idle handler, which must stay unmapped so an empty queue
    ends the run.
    """
    addresses = []
    for iafull in (False, True):
        for oafull in (False, True):
            if skip_plain and not iafull and not oafull:
                continue
            addresses.append(
                handler_table_address(IP_BASE_HW, handler_id, iafull, oafull)
            )
    return tuple(addresses)


def build_service_loop(
    model: InterfaceModel, handlers: Seq[str] = ("send1", "read", "write")
) -> ServiceLoop:
    """Compose dispatch + the named handlers into one loop sequence.

    Only one ``send<k>`` handler may be included per loop (all type-0
    messages dispatch through one IP).
    """
    sends = [h for h in handlers if h.startswith("send")]
    if len(sends) > 1:
        raise EvaluationError(
            "one send handler per loop: all type-0 messages share one IP"
        )
    for handler in handlers:
        if handler not in LOOP_HANDLERS:
            raise EvaluationError(
                f"{handler!r} cannot join the composed loop (internal labels)"
            )
    instructions: List[Instruction] = []
    dispatch_instrs = dispatch_kernel(model).sequence.instructions
    instructions.extend(_relabel(dispatch_instrs, "entry"))
    handler_entry: Dict[str, int] = {}
    for name in handlers:
        handler_entry[name] = len(instructions)
        body = _strip_trailing_halt(
            list(processing_kernel(name, model).sequence.instructions)
        )
        instructions.extend(_relabel(body, name))
        # Inline the dispatch stub as this handler's tail.
        instructions.extend(_relabel(dispatch_instrs, f"after.{name}"))
    sequence = Sequence(f"service-loop[{model.key}]", instructions)
    return ServiceLoop(model, sequence, handler_entry, dispatch_entry=0)


@dataclass
class StreamMeasurement:
    """Steady-state measurement over one delivered message stream."""

    cycles: int
    instructions: int
    handled: int

    @property
    def cycles_per_message(self) -> float:
        return self.cycles / self.handled if self.handled else 0.0


def measure_stream(
    model: InterfaceModel, stream: Seq[str], handlers: Seq[str] = ("send1", "read", "write")
) -> StreamMeasurement:
    """Deliver ``stream`` (handler names) and run the composed loop.

    Returns total cycles from first dispatch to the final empty-queue
    dispatch's fall-out.  Functional effects (replies, memory writes) are
    checked by the caller's tests against the interface state.
    """
    if len(stream) > 60:
        raise EvaluationError("streams are capped at 60 messages")
    loop = build_service_loop(model, handlers)
    machine = _fresh_machine(model)
    machine.interface.input_queue.capacity = max(64, len(stream) + 4)
    machine.interface.output_queue.capacity = max(64, len(stream) + 4)
    # The input threshold keeps its default: a long enough stream trips
    # iafull mid-run and dispatch lands in the boundary-condition handler
    # versions, which this loop maps to the same code (Section 2.2.4
    # explicitly allows a handler to ignore the conditions; the four
    # versions cost alike).  The *output* threshold is parked at its
    # maximum: this harness has no network draining the reply queue, and
    # a standing oafull with an empty input queue dispatches the slot-0
    # boundary version forever — handling that needs the full system's
    # drain path, not a cycle-measurement loop.
    machine.interface.control["oq_threshold"] = 31
    basic = not model.optimized
    for name in stream:
        if name not in loop.handler_entry:
            raise EvaluationError(f"stream message {name!r} has no handler")
        _deliver_processing_message(machine, name, basic)
        if name.startswith("send") and model.optimized:
            # Rewrite word 1 to the loop's send-handler IP.
            current = machine.interface.input_queue
            # The message may be in the registers or the queue; patch the
            # most recently delivered copy.
            target = (
                machine.interface.current_message
                if current.is_empty and machine.interface.msg_valid
                else current._items[-1]
            )
            patched = dc_replace(
                target, words=(target.words[0], SEND_HANDLER_IP) + target.words[2:]
            )
            if current.is_empty and machine.interface.msg_valid:
                machine.interface._current = patched
            else:
                current._items[-1] = patched
    result = machine.run(
        loop.sequence,
        resolve_jump=loop.resolve_jump,
        max_steps=1_000_000,
    )
    handled = machine.interface.stats.nexts
    return StreamMeasurement(
        cycles=result.cycles,
        instructions=result.instructions,
        handled=handled,
    )
