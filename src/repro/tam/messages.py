"""TAM inter-frame message types.

Split out of :mod:`repro.tam.runtime` so both the reference interpreter
and the compiled fast path (:mod:`repro.tam.fastpath`) can construct
messages without an import cycle.  A message is what the paper's network
would carry between nodes: argument Sends, frame/I-structure allocation
requests, presence-bit reads and writes, and plain remote memory
accesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

from repro.tam.frame import FrameRef

#: Bits of a frame pointer reserved for the local frame id when a
#: (node, frame) pair is packed into one word for deferred-read lists.
FRAME_ID_BITS = 22


@dataclass(frozen=True)
class IStructRef:
    """A global I-structure name: (node, local descriptor)."""

    node: int
    descriptor: int


class MsgKind(enum.Enum):
    SEND = "send"
    FALLOC = "falloc"
    IALLOC = "ialloc"
    PREAD = "pread"
    PWRITE = "pwrite"
    READ = "read"
    WRITE = "write"
    REPLY = "reply"  # a read / pread-full / forwarded value (costed as
    # part of the requesting operation, received as a Send)


class TamMessage(NamedTuple):
    """One in-flight message.

    A NamedTuple rather than a dataclass: the interpreter constructs one
    of these for every cross-frame interaction (hundreds of thousands per
    run), and tuple construction is several times cheaper than a frozen
    dataclass ``__init__``.
    """

    kind: MsgKind
    node: int
    inlet: int = 0
    frame_id: int = 0
    values: Tuple = ()
    codeblock: str = ""
    reply_to: Optional[Tuple[FrameRef, int]] = None
    descriptor: int = 0
    index: int = 0
    address: int = 0
