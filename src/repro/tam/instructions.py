"""The TL0-flavoured instruction set of the TAM substrate.

The paper's programs were compiled to Berkeley's Threaded Abstract Machine
(TAM, [CSS+91]): codeblocks of short non-blocking *threads* over an
activation *frame*, with *inlets* receiving messages and synchronisation
counters enabling threads once their inputs have arrived.  This module
defines the instruction set our TAM runtime executes; it keeps exactly the
features the evaluation needs:

* frame-slot data movement and integer/float operations;
* thread control (FORK / SWITCH / STOP, counter reset for loop threads);
* inter-frame communication — every cross-frame interaction is a message
  (the paper compiled its programs "so that any two procedure invocations
  would communicate across the network"): frame allocation, argument
  sends, I-structure allocation, IFETCH (a PRead), ISTORE (a PWrite), and
  plain remote memory READ / WRITE.

Operands are frame-slot indices unless a parameter is documented as an
immediate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

Operand = Union[int, "Imm"]


@dataclass(frozen=True)
class Imm:
    """An immediate operand (slot indices are plain ints)."""

    value: float


class Op(enum.Enum):
    """Arithmetic/logic functions for :class:`OpInstr`."""

    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    LT = "lt"
    LE = "le"
    EQ = "eq"
    AND = "and"
    OR = "or"
    MIN = "min"
    MAX = "max"

    @property
    def is_float(self) -> bool:
        return self in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV)


class Kind(enum.Enum):
    """Instruction classes; the dynamic mix is accounted per kind."""

    CON = "con"
    MOV = "mov"
    IOP = "iop"
    FOP = "fop"
    FORK = "fork"
    SWITCH = "switch"
    STOP = "stop"
    RESET = "reset"
    FALLOC = "falloc"
    SEND = "send"
    IALLOC = "ialloc"
    IFETCH = "ifetch"
    ISTORE = "istore"
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Instr:
    """Base class for TAM instructions."""

    @property
    def kind(self) -> Kind:
        raise NotImplementedError


@dataclass(frozen=True)
class ConInstr(Instr):
    """``slots[dest] = value``"""

    dest: int
    value: float

    @property
    def kind(self) -> Kind:
        return Kind.CON


@dataclass(frozen=True)
class MovInstr(Instr):
    """``slots[dest] = slots[src]``"""

    dest: int
    src: int

    @property
    def kind(self) -> Kind:
        return Kind.MOV


@dataclass(frozen=True)
class SelfInstr(Instr):
    """``slots[dest] = this activation's frame reference``.

    TAM code always has its own frame pointer at hand; materialising it
    into a slot costs one move.
    """

    dest: int

    @property
    def kind(self) -> Kind:
        return Kind.MOV


@dataclass(frozen=True)
class OpInstr(Instr):
    """``slots[dest] = op(a, b)``; operands are slots or immediates."""

    op: Op
    dest: int
    a: Operand
    b: Operand

    @property
    def kind(self) -> Kind:
        return Kind.FOP if self.op.is_float else Kind.IOP


@dataclass(frozen=True)
class ForkInstr(Instr):
    """Post another thread of this activation onto the continuation vector."""

    label: str

    @property
    def kind(self) -> Kind:
        return Kind.FORK


@dataclass(frozen=True)
class SwitchInstr(Instr):
    """Post ``then_label`` if ``slots[cond]`` is truthy, else ``else_label``."""

    cond: int
    then_label: str
    else_label: Optional[str] = None

    @property
    def kind(self) -> Kind:
        return Kind.SWITCH


@dataclass(frozen=True)
class StopInstr(Instr):
    """End of thread; the scheduler pops the next continuation."""

    @property
    def kind(self) -> Kind:
        return Kind.STOP


@dataclass(frozen=True)
class ResetInstr(Instr):
    """Re-arm sync counter ``counter`` to ``count`` (loop threads)."""

    counter: str
    count: int

    @property
    def kind(self) -> Kind:
        return Kind.RESET


@dataclass(frozen=True)
class FallocInstr(Instr):
    """Allocate an activation of ``codeblock`` on the next node.

    The frame reference arrives (as a message) at inlet ``reply_inlet``.
    Costed as one request Send plus one reply Send.
    """

    codeblock: str
    reply_inlet: int

    @property
    def kind(self) -> Kind:
        return Kind.FALLOC


@dataclass(frozen=True)
class SendInstr(Instr):
    """Send up to two frame-slot values to ``inlet`` of the frame in ``frame_slot``."""

    frame_slot: int
    inlet: int
    values: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.values) > 2:
            raise ValueError("a Send message carries at most two data words")

    @property
    def kind(self) -> Kind:
        return Kind.SEND


@dataclass(frozen=True)
class IallocInstr(Instr):
    """Allocate an I-structure of ``slots[length]`` elements; descriptor to ``reply_inlet``."""

    length: Operand
    reply_inlet: int

    @property
    def kind(self) -> Kind:
        return Kind.IALLOC


@dataclass(frozen=True)
class IfetchInstr(Instr):
    """PRead element ``slots[index]`` of the I-structure in ``desc_slot``.

    The reply (a one-word Send) lands at ``reply_inlet`` of this frame.
    """

    desc_slot: int
    index: Operand
    reply_inlet: int

    @property
    def kind(self) -> Kind:
        return Kind.IFETCH


@dataclass(frozen=True)
class IstoreInstr(Instr):
    """PWrite ``slots[value]`` into element ``slots[index]`` of ``desc_slot``."""

    desc_slot: int
    index: Operand
    value: int

    @property
    def kind(self) -> Kind:
        return Kind.ISTORE


@dataclass(frozen=True)
class ReadInstr(Instr):
    """Plain remote read of word ``slots[address]`` on ``slots[node]``."""

    node_slot: int
    address: Operand
    reply_inlet: int

    @property
    def kind(self) -> Kind:
        return Kind.READ


@dataclass(frozen=True)
class WriteInstr(Instr):
    """Plain remote write of ``slots[value]`` to ``slots[node]``'s memory."""

    node_slot: int
    address: Operand
    value: int

    @property
    def kind(self) -> Kind:
        return Kind.WRITE
