"""The Threaded Abstract Machine substrate (Figure 12's execution model)."""

from repro.tam.codeblock import Codeblock, CounterSpec, InletSpec
from repro.tam.costmap import (
    INSTRUCTION_CYCLES,
    CycleBreakdown,
    MessageCostTable,
    breakdown,
    breakdown_all_models,
    cost_table,
)
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    Kind,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.runtime import IStructRef, TamMachine
from repro.tam.stats import MessageMix, TamStats

__all__ = [
    "Codeblock",
    "ConInstr",
    "CounterSpec",
    "CycleBreakdown",
    "FallocInstr",
    "ForkInstr",
    "Frame",
    "FrameRef",
    "IStructRef",
    "IallocInstr",
    "IfetchInstr",
    "Imm",
    "InletSpec",
    "INSTRUCTION_CYCLES",
    "IstoreInstr",
    "Kind",
    "MessageCostTable",
    "MessageMix",
    "MovInstr",
    "Op",
    "OpInstr",
    "ReadInstr",
    "ResetInstr",
    "SendInstr",
    "StopInstr",
    "SwitchInstr",
    "TamMachine",
    "TamStats",
    "WriteInstr",
    "breakdown",
    "breakdown_all_models",
    "cost_table",
]
