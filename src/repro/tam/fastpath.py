"""Compile-at-load dispatch for the TAM interpreter.

The reference interpreter in :mod:`repro.tam.runtime` decides what every
instruction is — an ``isinstance`` chain, operand classification, a
frame-slot bounds check, an enum-keyed stats update — every time it
executes it.  Like the paper's hardware-assisted dispatch (``MsgIp`` is
precomputed *before* the handler jumps), all of those decisions are
static properties of the codeblock, so this module makes them once at
``load()`` time:

* every thread becomes a tuple of bound handler closures (one per
  instruction, specialised for operand shape and with slot indices
  bounds-checked at compile time);
* every thread's static instruction mix is precomputed, so the stats
  update is one bulk add per thread run instead of one dict update per
  instruction;
* every inlet becomes a delivery closure with its destination slots and
  synchronisation counter pre-resolved.

Compilation is per *machine*, not just per codeblock: the closures
capture the machine's ``_post`` / round-robin / stats objects directly,
so executing an instruction is one call with no attribute traversal —
``op(state, frame)`` where ``state`` is the executing node's
``_NodeState`` and ``frame`` the current activation.

The closures run against the same :class:`~repro.tam.frame.Frame`,
node-state, and stats objects as the reference path, so a fast run is
bit-for-bit identical to a reference run (the golden equivalence test
asserts this field by field).

Observability: every message-producing closure posts through the
``machine._post`` it captured at compile time.  When the machine was
constructed with a tracer (:mod:`repro.obs.tracer`) or a lineage
tracker (:mod:`repro.obs.lineage`), that attribute is already the
observing wrapper — installed in ``TamMachine.__init__``, before any
``load()`` — so compiled code emits ``tam_post`` events / lineage
records with no changes here and, crucially, a machine *without*
observers captures the original method and pays nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TamError
from repro.tam.codeblock import Codeblock, InletSpec
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    Instr,
    IstoreInstr,
    Kind,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.messages import IStructRef, MsgKind, TamMessage

# Hot closures construct TamMessages positionally; keep these in sync with
# the field order (kind, node, inlet, frame_id, values, codeblock,
# reply_to, descriptor, index, address).
_SEND = MsgKind.SEND
_FALLOC = MsgKind.FALLOC
_IALLOC = MsgKind.IALLOC
_PREAD = MsgKind.PREAD
_PWRITE = MsgKind.PWRITE
_READ = MsgKind.READ
_WRITE = MsgKind.WRITE

# ---------------------------------------------------------------------------
# ALU semantics, shared with the reference interpreter so both paths
# produce bit-identical values.
# ---------------------------------------------------------------------------

OP_FUNCS: Dict[Op, Callable] = {
    Op.IADD: lambda a, b: int(a) + int(b),
    Op.ISUB: lambda a, b: int(a) - int(b),
    Op.IMUL: lambda a, b: int(a) * int(b),
    Op.IDIV: lambda a, b: int(a) // int(b),
    Op.FADD: lambda a, b: float(a) + float(b),
    Op.FSUB: lambda a, b: float(a) - float(b),
    Op.FMUL: lambda a, b: float(a) * float(b),
    Op.FDIV: lambda a, b: float(a) / float(b),
    Op.LT: lambda a, b: 1 if a < b else 0,
    Op.LE: lambda a, b: 1 if a <= b else 0,
    Op.EQ: lambda a, b: 1 if a == b else 0,
    Op.AND: lambda a, b: 1 if (a and b) else 0,
    Op.OR: lambda a, b: 1 if (a or b) else 0,
    Op.MIN: lambda a, b: a if a < b else b,
    Op.MAX: lambda a, b: a if a > b else b,
}


def feed_profiler(machine, profiler) -> None:
    """Fold the fast path's batched run statistics into a profiler.

    The compiled path never updates stats per instruction — each thread
    charges its precomputed static mix in one bulk add — so the numbers
    here are already whole-run aggregates; they are published into the
    :class:`~repro.obs.profiler.SimProfiler` registry as *absolute*
    counter stores, which keeps repeated ``run()`` calls idempotent over
    the machine's cumulative :class:`~repro.tam.stats.TamStats`.
    """
    stats = machine.stats
    set_counter = profiler.set_counter
    set_counter("tam.turns", machine.turns_executed)
    set_counter("tam.threads_run", stats.threads_run)
    set_counter("tam.instructions", stats.total_instructions)
    set_counter("tam.messages", stats.messages.total_messages)
    set_counter("tam.frames_allocated", stats.frames_allocated)
    for name, count in stats.messages.as_dict().items():
        set_counter(f"tam.msg.{name}", count)
    for kind, count in stats.instructions.items():
        set_counter(f"tam.instr.{kind.name.lower()}", count)


class CompiledThread:
    """One thread, ready to run: handler closures plus its static mix."""

    __slots__ = ("ops", "mix", "complete")

    def __init__(
        self,
        ops: Tuple[Callable, ...],
        mix: Tuple[Tuple[Kind, int], ...],
        complete: bool,
    ) -> None:
        self.ops = ops
        self.mix = mix
        self.complete = complete


class CompiledCodeblock:
    """A codeblock with every dispatch decision made ahead of time."""

    __slots__ = ("name", "threads", "inlets", "entry")

    def __init__(self, name: str, entry: Optional[str]) -> None:
        self.name = name
        self.entry = entry
        self.threads: Dict[str, CompiledThread] = {}
        self.inlets: Dict[int, Callable] = {}


def compile_codeblock(codeblock: Codeblock, machine) -> CompiledCodeblock:
    """Compile a validated codeblock for execution on ``machine``."""
    compiled = CompiledCodeblock(codeblock.name, codeblock.entry)
    for label in codeblock.threads:
        prefix, complete = codeblock.executable_prefix(label)
        mix: Dict[Kind, int] = {}
        for instr in prefix:
            kind = instr.kind
            mix[kind] = mix.get(kind, 0) + 1
        body = prefix[:-1] if complete else prefix
        ops = tuple(_compile_instr(codeblock, instr, machine) for instr in body)
        compiled.threads[label] = CompiledThread(ops, tuple(mix.items()), complete)
    for number, spec in codeblock.inlets.items():
        compiled.inlets[number] = _compile_inlet(codeblock, spec)
    return compiled


# ---------------------------------------------------------------------------
# Operand access, bounds-checked at compile time.
# ---------------------------------------------------------------------------


def _slot_loader(codeblock: Codeblock, slot: int) -> Callable[[Frame], object]:
    if 0 <= slot < codeblock.frame_size:
        return lambda frame: frame.slots[slot]
    # Out-of-range: defer to the checked accessor so the run raises the
    # same FrameError at the same execution point as the reference path.
    return lambda frame: frame.read(slot)


def _slot_writer(codeblock: Codeblock, slot: int):
    if 0 <= slot < codeblock.frame_size:
        def write(frame: Frame, value) -> None:
            frame.slots[slot] = value
    else:
        def write(frame: Frame, value) -> None:
            frame.write(slot, value)
    return write


def _operand_loader(codeblock: Codeblock, operand) -> Callable[[Frame], object]:
    if isinstance(operand, Imm):
        value = operand.value
        return lambda frame: value
    return _slot_loader(codeblock, operand)


def _in_range(codeblock: Codeblock, slot) -> bool:
    return (
        not isinstance(slot, Imm)
        and 0 <= slot < codeblock.frame_size
    )


# ---------------------------------------------------------------------------
# Per-instruction compilers.  Each receives the machine so the returned
# closure can capture exactly the machine attributes it needs.
# ---------------------------------------------------------------------------


def _c_con(cb: Codeblock, instr: ConInstr, machine):
    dest, value = instr.dest, instr.value
    if 0 <= dest < cb.frame_size:
        def run(state, frame):
            frame.slots[dest] = value
        return run
    write = _slot_writer(cb, dest)
    return lambda state, frame: write(frame, value)


def _c_mov(cb: Codeblock, instr: MovInstr, machine):
    dest, src = instr.dest, instr.src
    if 0 <= dest < cb.frame_size and 0 <= src < cb.frame_size:
        def run(state, frame):
            slots = frame.slots
            slots[dest] = slots[src]
        return run
    read = _slot_loader(cb, src)
    write = _slot_writer(cb, dest)
    return lambda state, frame: write(frame, read(frame))


def _c_self(cb: Codeblock, instr: SelfInstr, machine):
    dest = instr.dest
    if 0 <= dest < cb.frame_size:
        def run(state, frame):
            frame.slots[dest] = frame.ref
        return run
    write = _slot_writer(cb, dest)
    return lambda state, frame: write(frame, frame.ref)


# ALU expression templates mirroring OP_FUNCS exactly; {a}/{b} are
# side-effect-free operand expressions, so evaluating one twice (MIN/MAX)
# is safe.
_OP_TEMPLATES = {
    Op.IADD: "int({a}) + int({b})",
    Op.ISUB: "int({a}) - int({b})",
    Op.IMUL: "int({a}) * int({b})",
    Op.IDIV: "int({a}) // int({b})",
    Op.FADD: "float({a}) + float({b})",
    Op.FSUB: "float({a}) - float({b})",
    Op.FMUL: "float({a}) * float({b})",
    Op.FDIV: "float({a}) / float({b})",
    Op.LT: "1 if {a} < {b} else 0",
    Op.LE: "1 if {a} <= {b} else 0",
    Op.EQ: "1 if {a} == {b} else 0",
    Op.AND: "1 if ({a} and {b}) else 0",
    Op.OR: "1 if ({a} or {b}) else 0",
    Op.MIN: "{a} if {a} < {b} else {b}",
    Op.MAX: "{a} if {a} > {b} else {b}",
}

_EXEC_GLOBALS = {"__builtins__": {}, "int": int, "float": float}


def _operand_expr(cb: Codeblock, operand):
    """A source expression for an operand, or None if it needs a loader."""
    if isinstance(operand, Imm):
        value = operand.value
        if type(value) in (int, float, bool):
            return repr(value)  # literals round-trip exactly
        return None
    if 0 <= operand < cb.frame_size:
        return f"slots[{operand}]"
    return None


def _c_op(cb: Codeblock, instr: OpInstr, machine):
    fn = OP_FUNCS.get(instr.op)
    if fn is None:  # pragma: no cover - parity with the reference path
        op = instr.op

        def run(state, frame):
            raise TamError(f"unimplemented op {op}")

        return run
    dest, a, b = instr.dest, instr.a, instr.b
    if 0 <= dest < cb.frame_size:
        # Template-compile the whole instruction: operand reads, the ALU
        # expression, and the destination store become one code object
        # with no function-call indirection.
        template = _OP_TEMPLATES.get(instr.op)
        a_expr = _operand_expr(cb, a)
        b_expr = _operand_expr(cb, b)
        if template and a_expr and b_expr:
            source = (
                "def run(state, frame):\n"
                "    slots = frame.slots\n"
                f"    slots[{dest}] = {template.format(a=a_expr, b=b_expr)}\n"
            )
            namespace = {}
            exec(source, _EXEC_GLOBALS, namespace)
            return namespace["run"]
        if _in_range(cb, a) and _in_range(cb, b):
            def run(state, frame):
                slots = frame.slots
                slots[dest] = fn(slots[a], slots[b])
            return run
    read_a = _operand_loader(cb, a)
    read_b = _operand_loader(cb, b)
    write = _slot_writer(cb, dest)
    return lambda state, frame: write(frame, fn(read_a(frame), read_b(frame)))


def _c_fork(cb: Codeblock, instr: ForkInstr, machine):
    label = instr.label

    def run(state, frame):
        state.stack.append((frame, label))

    return run


def _c_switch(cb: Codeblock, instr: SwitchInstr, machine):
    read_cond = _slot_loader(cb, instr.cond)
    then_label, else_label = instr.then_label, instr.else_label
    if else_label is None:
        def run(state, frame):
            if read_cond(frame):
                state.stack.append((frame, then_label))
        return run

    def run(state, frame):
        if read_cond(frame):
            state.stack.append((frame, then_label))
        else:
            state.stack.append((frame, else_label))

    return run


def _c_reset(cb: Codeblock, instr: ResetInstr, machine):
    counter, count = instr.counter, instr.count
    if counter in cb.counters and count >= 0:
        def run(state, frame):
            frame._counters[counter] = count
        return run
    # Unknown counter / negative count: the checked accessor raises the
    # reference FrameError at execution time.
    return lambda state, frame: frame.reset(counter, count)


def _c_falloc(cb: Codeblock, instr: FallocInstr, machine):
    codeblock_name, reply_inlet = instr.codeblock, instr.reply_inlet
    post = machine._post
    round_robin = machine._round_robin
    sends = machine._sends_by_words

    def run(state, frame):
        sends[1] += 1
        post(
            TamMessage(
                _FALLOC, round_robin(), 0, 0, (), codeblock_name,
                (frame.ref, reply_inlet),
            )
        )

    return run


def _c_send(cb: Codeblock, instr: SendInstr, machine):
    frame_slot, inlet = instr.frame_slot, instr.inlet
    post = machine._post
    sends = machine._sends_by_words

    def check_ref(ref):
        if not isinstance(ref, FrameRef):
            raise TamError(
                f"SEND through slot {frame_slot} which holds "
                f"{ref!r}, not a frame reference"
            )

    value_slots = instr.values
    n_values = len(value_slots)
    all_in_range = _in_range(cb, frame_slot) and all(
        _in_range(cb, slot) for slot in value_slots
    )
    # The common shapes — every slot statically in range, 0/1/2 payload
    # words — read frame.slots directly; everything else goes through
    # checked loaders.
    if all_in_range and n_values == 1:
        s0 = value_slots[0]

        def run(state, frame):
            slots = frame.slots
            ref = slots[frame_slot]
            if type(ref) is not FrameRef:
                check_ref(ref)
            sends[1] += 1
            post(TamMessage(_SEND, ref.node, inlet, ref.frame_id, (slots[s0],)))

        return run
    if all_in_range and n_values == 2:
        s0, s1 = value_slots

        def run(state, frame):
            slots = frame.slots
            ref = slots[frame_slot]
            if type(ref) is not FrameRef:
                check_ref(ref)
            sends[2] += 1
            post(
                TamMessage(
                    _SEND, ref.node, inlet, ref.frame_id,
                    (slots[s0], slots[s1]),
                )
            )

        return run
    read_ref = _slot_loader(cb, frame_slot)
    loaders = tuple(_slot_loader(cb, slot) for slot in value_slots)

    def run(state, frame):
        ref = read_ref(frame)
        if type(ref) is not FrameRef:
            check_ref(ref)
        sends[n_values] += 1
        post(
            TamMessage(
                _SEND, ref.node, inlet, ref.frame_id,
                tuple(load(frame) for load in loaders),
            )
        )

    return run


def _c_ialloc(cb: Codeblock, instr: IallocInstr, machine):
    read_length = _operand_loader(cb, instr.length)
    reply_inlet = instr.reply_inlet
    post = machine._post
    round_robin = machine._round_robin
    sends = machine._sends_by_words

    def run(state, frame):
        sends[1] += 1
        post(
            TamMessage(
                _IALLOC, round_robin(), 0, 0, (), "",
                (frame.ref, reply_inlet), 0, int(read_length(frame)),
            )
        )

    return run


def _c_ifetch(cb: Codeblock, instr: IfetchInstr, machine):
    desc_slot = instr.desc_slot
    reply_inlet = instr.reply_inlet
    post = machine._post
    index = instr.index
    # Dominant shape: descriptor and index both statically in-range slots.
    if _in_range(cb, desc_slot) and _in_range(cb, index):
        def run(state, frame):
            slots = frame.slots
            ref = slots[desc_slot]
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"IFETCH through slot {desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            post(
                TamMessage(
                    _PREAD, ref.node, 0, 0, (), "",
                    (frame.ref, reply_inlet), ref.descriptor,
                    int(slots[index]),
                )
            )

        return run
    read_desc = _slot_loader(cb, desc_slot)
    read_index = _operand_loader(cb, index)

    def run(state, frame):
        ref = read_desc(frame)
        if not isinstance(ref, IStructRef):
            raise TamError(
                f"IFETCH through slot {desc_slot} which holds "
                f"{ref!r}, not an I-structure reference"
            )
        post(
            TamMessage(
                _PREAD, ref.node, 0, 0, (), "",
                (frame.ref, reply_inlet), ref.descriptor,
                int(read_index(frame)),
            )
        )

    return run


def _c_istore(cb: Codeblock, instr: IstoreInstr, machine):
    desc_slot = instr.desc_slot
    post = machine._post
    index, value_slot = instr.index, instr.value
    if (
        _in_range(cb, desc_slot)
        and _in_range(cb, index)
        and _in_range(cb, value_slot)
    ):
        def run(state, frame):
            slots = frame.slots
            ref = slots[desc_slot]
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"ISTORE through slot {desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            post(
                TamMessage(
                    _PWRITE, ref.node, 0, 0, (slots[value_slot],), "",
                    None, ref.descriptor, int(slots[index]),
                )
            )

        return run
    read_desc = _slot_loader(cb, desc_slot)
    read_index = _operand_loader(cb, index)
    read_value = _slot_loader(cb, value_slot)

    def run(state, frame):
        ref = read_desc(frame)
        if not isinstance(ref, IStructRef):
            raise TamError(
                f"ISTORE through slot {desc_slot} which holds "
                f"{ref!r}, not an I-structure reference"
            )
        post(
            TamMessage(
                _PWRITE, ref.node, 0, 0, (read_value(frame),), "",
                None, ref.descriptor, int(read_index(frame)),
            )
        )

    return run


def _c_read(cb: Codeblock, instr: ReadInstr, machine):
    read_node = _slot_loader(cb, instr.node_slot)
    read_address = _operand_loader(cb, instr.address)
    reply_inlet = instr.reply_inlet
    post = machine._post

    def run(state, frame):
        post(
            TamMessage(
                _READ, int(read_node(frame)), 0, 0, (), "",
                (frame.ref, reply_inlet), 0, 0, int(read_address(frame)),
            )
        )

    return run


def _c_write(cb: Codeblock, instr: WriteInstr, machine):
    read_node = _slot_loader(cb, instr.node_slot)
    read_address = _operand_loader(cb, instr.address)
    read_value = _slot_loader(cb, instr.value)
    post = machine._post

    def run(state, frame):
        post(
            TamMessage(
                _WRITE, int(read_node(frame)), 0, 0,
                (read_value(frame),), "", None, 0, 0,
                int(read_address(frame)),
            )
        )

    return run


_COMPILERS = {
    ConInstr: _c_con,
    MovInstr: _c_mov,
    SelfInstr: _c_self,
    OpInstr: _c_op,
    ForkInstr: _c_fork,
    SwitchInstr: _c_switch,
    ResetInstr: _c_reset,
    FallocInstr: _c_falloc,
    SendInstr: _c_send,
    IallocInstr: _c_ialloc,
    IfetchInstr: _c_ifetch,
    IstoreInstr: _c_istore,
    ReadInstr: _c_read,
    WriteInstr: _c_write,
}


def _compile_instr(codeblock: Codeblock, instr: Instr, machine):
    compiler = _COMPILERS.get(type(instr))
    if compiler is not None:
        return compiler(codeblock, instr, machine)
    # Unknown instruction subclass: defer to the reference interpreter at
    # execution time so both paths raise the identical error.
    execute = machine._execute
    return lambda state, frame: execute(state, frame, instr)


# ---------------------------------------------------------------------------
# Inlet delivery.
# ---------------------------------------------------------------------------


def _compile_inlet(codeblock: Codeblock, spec: InletSpec):
    """Compile one inlet into ``deliver(state, frame, values)``.

    ``validate()`` has already checked that the destination slots are in
    range and the counter (if any) exists, so delivery can write slots and
    decrement the counter directly; the thread a counter posts at zero is
    resolved at compile time.
    """
    dest_slots = spec.dest_slots
    counter = spec.counter
    thread = (
        codeblock.counters[counter].thread if counter is not None else None
    )
    if len(dest_slots) == 1 and counter is not None:
        slot = dest_slots[0]

        def deliver(state, frame, values):
            if values:
                frame.slots[slot] = values[0]
            counters = frame._counters
            remaining = counters[counter]
            if remaining <= 0:
                frame.decrement(counter)  # raises the reference FrameError
            remaining -= 1
            counters[counter] = remaining
            if remaining == 0:
                state.stack.append((frame, thread))

        return deliver

    def deliver(state, frame, values):
        slots = frame.slots
        for slot, value in zip(dest_slots, values):
            slots[slot] = value
        if counter is not None:
            counters = frame._counters
            remaining = counters[counter]
            if remaining <= 0:
                frame.decrement(counter)
            remaining -= 1
            counters[counter] = remaining
            if remaining == 0:
                state.stack.append((frame, thread))

    return deliver
