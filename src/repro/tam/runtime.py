"""The TAM runtime: multi-node execution with full message accounting.

This is the reproduction's equivalent of the Berkeley TAM simulator the
paper used (Section 4.2.1): it executes codeblocks over a set of nodes,
counts every TAM instruction by class, and counts every inter-frame
message by type and outcome.  Like the paper's simulator it "does not
model any number of processors or any network latency" for *timing* —
messages are delivered reliably and scheduling is deterministic — but the
*placement* is real: frames and I-structures are distributed round-robin
and every cross-frame interaction is a message, exactly as the programs
were compiled for the paper.

Scheduling is LIFO per node (the paper determined its presence-bit
outcome ratios under "LIFO scheduling of dataflow tokens"); nodes are
serviced round-robin, one message or one thread per turn, so runs are
reproducible bit for bit.

Three execution backends implement those semantics:

* the **fastpath** backend (default): threads and inlets are compiled to
  bound handler closures at ``load()`` time (:mod:`repro.tam.fastpath`)
  and nodes are driven by :class:`repro.sim.sweep.ActiveSweep` — the
  flag-array scheduler that skips idle nodes for free;
* the **codegen** backend (``TamMachine(n, backend="codegen")``): each
  whole thread is compiled to one generated Python function over
  flat-list frames (:mod:`repro.tam.codegen`) and nodes are driven by
  :class:`repro.sim.sweep.EventSweep`, the heap scheduler;
* the **reference** backend (``TamMachine(n, fast=False)``): the
  original per-instruction ``isinstance`` interpreter driven by
  :class:`repro.sim.sweep.ReferenceSweep` (scan every node each sweep),
  kept as the executable specification.

The sweep policies are contract-equivalent (same service order, same
exact ``max_turns`` bound — ``tests/sim/test_sweep.py``) and all
backends produce field-for-field identical
:class:`~repro.tam.stats.TamStats` and turn-for-turn identical trace
streams (``tests/tam/test_golden_equivalence.py``,
``tests/tam/test_backend_matrix.py``, ``tests/sim/test_determinism.py``).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, IStructureError, TamError
from repro.node.istructure import DeferredReader, IStructureMemory
from repro.node.memory import Memory
from repro.tam.codeblock import Codeblock
from repro.tam.codegen import (
    FlatFrameView,
    compile_codegen,
    flat_read,
    flat_write,
)
from repro.tam.fastpath import OP_FUNCS, compile_codeblock
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    Instr,
    IstoreInstr,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.messages import (
    FRAME_ID_BITS as _FRAME_ID_BITS,
    IStructRef,
    MsgKind,
    TamMessage,
)
from repro.obs.tracer import TAM_HANDLE, TAM_POST, Tracer
from repro.sim.sweep import ActiveSweep, EventSweep, ReferenceSweep
from repro.tam.stats import TamStats
from repro.utils.profiling import PROFILER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiler import SimProfiler

__all__ = ["IStructRef", "MsgKind", "TamMessage", "TamMachine"]

# Message-kind sentinel for machine-built replies on the fused codegen
# path: the tuple carries the bound inlet function and the flat frame
# itself ([2] and [3]), so delivery is one call with no frame or inlet
# lookup.  Only _run_codegen_fused creates and consumes these.
_FAST_REPLY = object()


class _NodeState:
    """Per-node runtime state."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.inbox: Deque[TamMessage] = deque()
        # Continuation stack.  Reference/fastpath push (frame, label)
        # tuples; the codegen backend pushes two bare elements — frame,
        # then thread function — so popping a continuation allocates
        # nothing.
        self.stack: List = []
        self.frames: Dict[int, Frame] = {}
        self.istructures = IStructureMemory()
        self.memory = Memory()
        self.next_frame_id = 1


class TamMachine:
    """A whole TAM machine.

    ``backend`` selects the execution backend by name — ``"reference"``,
    ``"fastpath"``, or ``"codegen"`` (:mod:`repro.tam.codegen`, the
    whole-thread generated-code path).  When ``backend`` is ``None`` the
    legacy ``fast`` flag decides: ``fast=True`` (the default) is the
    fastpath, ``fast=False`` the reference interpreter.  All backends
    produce identical statistics and results.

    ``tracer`` opts the machine into message-path event tracing
    (:mod:`repro.obs.tracer`): every posted inter-frame message emits a
    ``tam_post`` event and every processed one a ``tam_handle`` event,
    stamped with a monotonic turn sequence.  Tracing is installed by
    swapping the posting/handling entry points for traced wrappers at
    construction time — before any ``load()`` compiles closures over
    them — so a machine built without a tracer executes byte-identical
    code on the hot path (zero overhead when off).

    ``profiler`` opts the machine into per-node turn attribution
    (:mod:`repro.obs.profiler`): every productive turn is timed and
    charged to a ``tam.node<N>`` row, and the run's batched statistics
    are folded into the profiler's counter registry
    (:func:`repro.tam.fastpath.feed_profiler`).  With ``None`` the run
    loops bind the original service callbacks, so an unprofiled run pays
    nothing.
    """

    BACKENDS = ("reference", "fastpath", "codegen")

    def __init__(
        self,
        n_nodes: int = 1,
        fast: bool = True,
        tracer: Optional[Tracer] = None,
        profiler: Optional["SimProfiler"] = None,
        backend: Optional[str] = None,
        lineage=None,
    ) -> None:
        if n_nodes < 1:
            raise TamError("a TAM machine needs at least one node")
        if backend is None:
            backend = "fastpath" if fast else "reference"
        if backend not in self.BACKENDS:
            raise TamError(
                f"unknown TAM backend {backend!r} "
                f"(choose from {', '.join(self.BACKENDS)})"
            )
        self.n_nodes = n_nodes
        self.backend = backend
        self.fast = backend != "reference"
        self._is_codegen = backend == "codegen"
        self.nodes = [_NodeState(n) for n in range(n_nodes)]
        self.codeblocks: Dict[str, Codeblock] = {}
        self.stats = TamStats()
        self.turns_executed = 0
        self._rr_next = 0
        self._compiled: Dict[str, object] = {}
        # The kernel's service policies (repro.sim.sweep): the fastpath's
        # active-flag scheduler and the codegen backend's event heap are
        # per-machine state because _post pokes them directly; each is
        # `.active` only while its run is in progress.
        self._sched = ActiveSweep(n_nodes)
        self._esched = EventSweep(n_nodes)
        self._reference_sched = ReferenceSweep()
        if self._is_codegen:
            self._deliver = self._deliver_message_codegen
            if tracer is not None or profiler is not None or lineage is not None:
                # Observed codegen runs are driven by EventSweep
                # (_run_codegen_generic), so posts must feed its heap.
                # Instance-attribute override, installed before any
                # tracer wrapper or load()-time capture sees _post.
                # Unobserved machines keep the standard _post: the
                # fused loop drives the ActiveSweep flag arrays, which
                # _post already maintains.
                self._post = self._make_event_post()
        elif self.fast:
            self._deliver = self._deliver_message_fast
        else:
            self._deliver = self._deliver_message
        # Shortcut for the fast path's send accounting (the stats object
        # is created once here and never replaced).
        self._sends_by_words = self.stats.messages.sends_by_words
        # Codegen run accounting: one run counter per generated thread
        # (bumped by the generated code), one (instruction mix, send-word
        # mix) record per thread, folded into stats after each run.
        self._cg_runs: List[int] = []
        self._cg_meta: List[Tuple[Tuple, Tuple]] = []
        self.tracer = tracer
        self._trace_seq = 0
        if tracer is not None:
            self._install_tracing()
        # Lineage (repro.obs.lineage) uses the same construction-time
        # wrapper swap as the tracer: posts create causal records, the
        # seven leaf handlers bracket handler spans, and a post issued
        # while a wrapped handler runs links request to response.
        self.lineage = lineage
        if lineage is not None:
            self._install_lineage()
        # Like the tracer, the profiler is identity-guarded: with None
        # the run loops use the original service callbacks unchanged.
        self.profiler = profiler

    def _install_tracing(self) -> None:
        """Swap the message entry points for traced wrappers.

        Installed as *instance* attributes, which is what makes tracing
        free when absent: the fast path's compiled closures capture
        ``machine._post`` at ``load()`` time and the run loops bind
        ``self._deliver`` / ``self._on_pread`` at entry, so with no
        tracer they resolve to the original methods and no extra branch
        ever executes.  Only the seven leaf handlers are wrapped (not
        ``_process_message``, which merely dispatches to them), so each
        processed message emits exactly one ``tam_handle`` event on both
        execution paths.
        """
        tracer = self.tracer
        plain_post = self._post

        def traced_post(message: TamMessage) -> None:
            self._trace_seq += 1
            tracer.emit(
                self._trace_seq, TAM_POST, message.node, mkind=message.kind.name
            )
            plain_post(message)

        self._post = traced_post

        def wrap_handler(handler):
            def traced(state: _NodeState, message: TamMessage) -> None:
                self._trace_seq += 1
                tracer.emit(
                    self._trace_seq,
                    TAM_HANDLE,
                    state.node_id,
                    mkind=message.kind.name,
                )
                handler(state, message)

            return traced

        for name in (
            "_deliver",
            "_on_pread",
            "_on_pwrite",
            "_on_falloc",
            "_on_ialloc",
            "_on_read",
            "_on_write",
        ):
            setattr(self, name, wrap_handler(getattr(self, name)))

    def _install_lineage(self) -> None:
        """Swap the message entry points for lineage-recording wrappers.

        Same instance-attribute mechanism (and the same seven leaf
        handlers) as :meth:`_install_tracing`, so a machine built
        without lineage executes byte-identical hot-path code.  The
        tracker runs on its own monotonic turn sequence; a ``_post``
        issued while a wrapped handler is running (e.g. ``_reply``)
        records the handled message as the new message's causal parent,
        which is what links a request to its response in the DAG.
        """
        lineage = self.lineage
        plain_post = self._post

        def lineage_post(message: TamMessage) -> None:
            lineage.tam_post(message)
            plain_post(message)

        self._post = lineage_post

        def wrap_handler(handler):
            def observed(state: _NodeState, message: TamMessage) -> None:
                record = lineage.tam_begin_handle(message)
                try:
                    handler(state, message)
                finally:
                    lineage.tam_end_handle(record)

            return observed

        for name in (
            "_deliver",
            "_on_pread",
            "_on_pwrite",
            "_on_falloc",
            "_on_ialloc",
            "_on_read",
            "_on_write",
        ):
            setattr(self, name, wrap_handler(getattr(self, name)))

    # ------------------------------------------------------------------
    # Program loading and boot.
    # ------------------------------------------------------------------

    def load(self, codeblock: Codeblock) -> None:
        codeblock.validate()
        if codeblock.name in self.codeblocks:
            raise TamError(f"codeblock {codeblock.name!r} already loaded")
        self.codeblocks[codeblock.name] = codeblock
        if self._is_codegen:
            self._compiled[codeblock.name] = compile_codegen(codeblock, self)
        elif self.fast:
            self._compiled[codeblock.name] = compile_codeblock(codeblock, self)

    def boot(
        self, codeblock_name: str, slots: Optional[Dict[int, object]] = None
    ) -> FrameRef:
        """Create the root activation on node 0 and post its entry thread.

        Boot is runtime setup, not program communication: it sends no
        messages and counts nothing.
        """
        frame = self._allocate_frame(0, codeblock_name)
        if self._is_codegen:
            for slot, value in (slots or {}).items():
                flat_write(frame, slot, value)
            block = frame[2]
            if block.entry_fn is None:
                raise TamError(
                    f"codeblock {codeblock_name!r} has no entry thread"
                )
            stack = self.nodes[0].stack
            stack.append(frame)
            stack.append(block.entry_fn)
            return frame[1]
        for slot, value in (slots or {}).items():
            frame.write(slot, value)
        codeblock = frame.codeblock
        if codeblock.entry is None:
            raise TamError(f"codeblock {codeblock_name!r} has no entry thread")
        self.nodes[0].stack.append((frame, codeblock.entry))
        return frame.ref

    def _allocate_frame(self, node_id: int, codeblock_name: str):
        try:
            codeblock = self.codeblocks[codeblock_name]
        except KeyError:
            raise TamError(f"unknown codeblock {codeblock_name!r}") from None
        state = self.nodes[node_id]
        ref = FrameRef(node_id, state.next_frame_id)
        state.next_frame_id += 1
        if self._is_codegen:
            frame = self._compiled[codeblock_name].make_frame(ref)
        else:
            frame = Frame(codeblock, ref)
            if self.fast:
                compiled = self._compiled[codeblock_name]
                frame.compiled = compiled
                frame.inlets = compiled.inlets
        state.frames[ref.frame_id] = frame
        self.stats.frames_allocated += 1
        return frame

    def read_slot(self, ref: FrameRef, slot: int):
        """Host-level frame inspection (results, not program semantics)."""
        frame = self._frame(self.nodes[ref.node], ref.frame_id)
        if self._is_codegen:
            return flat_read(frame, slot)
        return frame.read(slot)

    def write_slot(self, ref: FrameRef, slot: int, value) -> None:
        """Host-level frame setup (e.g. banking the root's own reference)."""
        frame = self._frame(self.nodes[ref.node], ref.frame_id)
        if self._is_codegen:
            flat_write(frame, slot, value)
        else:
            frame.write(slot, value)

    def frame_view(self, ref: FrameRef):
        """A ``Frame``-shaped view of an activation on any backend.

        Reference/fastpath return the live :class:`Frame`; the codegen
        backend wraps its flat list in a
        :class:`~repro.tam.codegen.FlatFrameView` with the same
        ``slots`` / ``read`` / ``counter_value`` surface, so hosts and
        equivalence tests compare activations field by field without
        knowing the backend.
        """
        frame = self._frame(self.nodes[ref.node], ref.frame_id)
        if self._is_codegen:
            return FlatFrameView(frame)
        return frame

    def istructure_peek(self, ref: "IStructRef", index: int):
        """Host-level I-structure inspection."""
        return self.nodes[ref.node].istructures.peek(ref.descriptor, index)

    def _round_robin(self) -> int:
        node = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_nodes
        return node

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self, max_turns: int = 100_000_000) -> TamStats:
        """Execute to quiescence; returns the accumulated statistics.

        ``max_turns`` bounds *productive* turns (threads run plus messages
        processed) exactly: a run needing exactly ``max_turns`` turns
        succeeds, one needing more raises before executing the excess
        turn.  Sweeps over idle nodes are not charged against it.
        """
        with PROFILER.span("tam.run"):
            if self._is_codegen:
                turns = self._run_codegen(max_turns)
            elif self.fast:
                turns = self._run_fast(max_turns)
            else:
                turns = self._run_reference(max_turns)
        self.turns_executed += turns
        PROFILER.add("tam.turns", turns)
        PROFILER.add("tam.runs", 1)
        if self.profiler is not None:
            from repro.tam.fastpath import feed_profiler

            feed_profiler(self, self.profiler)
        self._check_quiescence()
        return self.stats

    def _turn_stall(self, max_turns: int) -> Callable[[], TamError]:
        return lambda: TamError(f"TAM run exceeded {max_turns} turns")

    def _run_reference(self, max_turns: int) -> int:
        """The scan-all-nodes policy (executable spec).

        Enabled threads drain before new messages are accepted (TAM's
        continuation vector has priority over inlets); this also
        guarantees a counter re-armed by its own thread is reset before
        the next message decrements it — the priority lives in
        ``_do_one_unit``, which both policies' callbacks share.
        """
        do_one = self._do_one_unit
        if self.profiler is not None:
            do_one = self._profiled_unit(do_one)
        return self._reference_sched.run(
            self.nodes,
            has_work=lambda state: state.stack or state.inbox,
            do_one=do_one,
            max_turns=max_turns,
            stall=self._turn_stall(max_turns),
        )

    def _node_profiles(self) -> List:
        """One profiler attribution row per node (``tam.node<N>``)."""
        track = self.profiler.track
        return [track(f"tam.node{n}") for n in range(self.n_nodes)]

    def _profiled_unit(self, do_one: Callable) -> Callable:
        """Wrap the reference path's unit callback with turn attribution.

        Every ``do_one`` call is exactly one productive turn, so the
        wrapper charges unconditionally.
        """
        profiles = self._node_profiles()

        def profiled(state: _NodeState) -> None:
            start = perf_counter()
            do_one(state)
            elapsed = perf_counter() - start
            profile = profiles[state.node_id]
            profile.ticks += 1
            profile.seconds += elapsed

        return profiled

    def _profiled_service(self, service: Callable) -> Callable:
        """Wrap the fast path's service callback with turn attribution.

        ``service`` returns ``None`` for a no-work scan (not a turn —
        nothing is charged) and True/False after a productive turn.
        """
        profiles = self._node_profiles()

        def profiled(state: _NodeState):
            start = perf_counter()
            more = service(state)
            elapsed = perf_counter() - start
            if more is not None:
                profile = profiles[state.node_id]
                profile.ticks += 1
                profile.seconds += elapsed
            return more

        return profiled

    def _do_one_unit(self, state: _NodeState) -> None:
        """One productive turn on ``state`` via the reference dispatch."""
        if state.stack:
            frame, label = state.stack.pop()
            self._run_thread(state, frame, label)
        else:
            self._process_message(state, state.inbox.popleft())

    def _run_fast(self, max_turns: int) -> int:
        """The active-node policy: identical service order, no idle scans.

        The scheduling itself lives in
        :class:`repro.sim.sweep.ActiveSweep`; this method supplies the
        service callback with every hot attribute pre-bound, so a turn
        costs one call into the closure and no attribute traversal.
        New work on *other* nodes is reported by :meth:`_post` poking
        the policy's flag arrays directly (flag stores are idempotent,
        so no duplicate-enqueue guards are needed).
        """
        nodes = self.nodes
        run_thread = self._run_thread_fast
        process = self._process_message
        deliver = self._deliver
        on_pread = self._on_pread
        kind_send = MsgKind.SEND
        kind_reply = MsgKind.REPLY
        kind_pread = MsgKind.PREAD

        def service(state: _NodeState):
            stack = state.stack
            if stack:
                frame, label = stack.pop()
                run_thread(state, frame, label)
            elif state.inbox:
                message = state.inbox.popleft()
                # Dispatch the dominant kinds inline; the rest go
                # through the full _process_message chain.
                kind = message.kind
                if kind is kind_send or kind is kind_reply:
                    deliver(state, message)
                elif kind is kind_pread:
                    on_pread(state, message)
                else:
                    process(state, message)
            else:  # pragma: no cover - flagged nodes always have work
                return None
            return True if (state.stack or state.inbox) else False

        if self.profiler is not None:
            service = self._profiled_service(service)
        return self._sched.run(
            nodes,
            service,
            initially_active=[
                state.node_id for state in nodes if state.stack or state.inbox
            ],
            max_turns=max_turns,
            stall=self._turn_stall(max_turns),
        )

    def _run_codegen(self, max_turns: int) -> int:
        """The generated-code policy: one call per thread, flat frames.

        Threads were compiled to single functions at ``load()`` time
        (:mod:`repro.tam.codegen`); a continuation is two stack elements
        (frame list, thread function), so a thread turn is two pops and
        one call.  Unobserved runs take :meth:`_run_codegen_fused` — the
        scheduling, delivery, and presence-bit logic fused into one
        loop; runs with a tracer or profiler keep the callback shape
        (:meth:`_run_codegen_generic`) so the observed event stream and
        attribution are identical to the other backends'.
        """
        try:
            if self.tracer is None and self.profiler is None and self.lineage is None:
                return self._run_codegen_fused(max_turns)
            return self._run_codegen_generic(max_turns)
        finally:
            # Fold even when the run raised mid-way: the generated code
            # has already bumped its run counters, and stats accumulate
            # across run() calls.
            self._fold_codegen_stats()

    def _run_codegen_fused(self, max_turns: int) -> int:
        """One loop for scheduling, delivery, and presence bits.

        This inlines, in one frame: :meth:`ActiveSweep.run
        <repro.sim.sweep.ActiveSweep.run>` — the flag-array realization
        of the service order all sweep policies share (observed runs
        take :class:`~repro.sim.sweep.EventSweep`'s heap; at paper
        scale, 16 nodes nearly all busy every sweep, the C-speed flag
        scan is measurably cheaper than two Python-side heap operations
        per turn, and the policies are pinned order-identical) — inlet
        delivery through the flat frame's dispatch dict (``frame[0]``),
        and the PRead/PWrite protocols over the I-structure internals
        (:class:`~repro.node.istructure.IStructureMemory`, with the
        :class:`~repro.node.istructure.DeferredReader` built only when
        the read actually defers).  Per-turn cost is what makes or
        breaks the codegen backend; every layer boundary that remains
        here shows up directly in the benchmarks.
        """
        nodes = self.nodes
        sched = self._sched
        n = self.n_nodes
        in_current = sched.in_current
        in_next = sched.in_next
        # stack/inbox are bound once in NodeState.__init__ and never
        # reassigned, so indexing parallel lists replaces an attribute
        # load on every turn.
        stacks = [s.stack for s in nodes]
        inboxes = [s.inbox for s in nodes]
        framemaps = [s.frames for s in nodes]
        # I-structure internals, pre-resolved per node: the descriptor
        # map and the stats block are both stable attributes, and the
        # PREAD/PWRITE branches touch them on every presence-bit turn.
        arraymaps = [s.istructures._arrays for s in nodes]
        istats = [s.istructures.stats for s in nodes]
        process = self._process_message
        mix = self.stats.messages
        fast_reply = _FAST_REPLY
        kind_send = MsgKind.SEND
        kind_reply = MsgKind.REPLY
        kind_pread = MsgKind.PREAD
        kind_pwrite = MsgKind.PWRITE

        for state in nodes:
            if state.stack or state.inbox:
                in_current[state.node_id] = True
        sched.sweep_pos = -1
        sched.active = True
        turns = 0
        # Hot message-mix tallies kept in locals and folded in the
        # finally block: an integer increment beats an attribute
        # read-modify-write at tens of thousands per run.
        n_preads_full = 0
        # Per-node reads_full tallies, likewise folded at the end: a
        # list-slot increment beats a stats-object attribute RMW on the
        # single hottest presence-bit counter.
        reads_full_local = [0] * n
        try:
            while True:
                i = in_current.index(True)
                while i != n:
                    in_current[i] = False
                    stack = stacks[i]
                    inbox = inboxes[i]
                    if stack:
                        # Only generated code consults sweep_pos (for
                        # the wake rule when it posts), and only thread
                        # bodies post — message branches below wake
                        # with the loop's own `i`.
                        sched.sweep_pos = i
                        stack.pop()(stack, stack.pop())
                    else:
                        # Flagged nodes always have work, so the inbox
                        # is non-empty here.  TamMessage is a
                        # NamedTuple; positional access skips the
                        # attribute descriptors.
                        message = inbox.popleft()
                        kind = message[0]
                        if kind is fast_reply:
                            # Machine-built reply carrying the bound
                            # single-value inlet, the frame list, and
                            # the bare value: delivery is one call, no
                            # frame/inlet lookup, no values tuple.
                            message[2](stack, message[3], message[4])
                        elif kind is kind_pread:
                            # Compact inline PREAD: [2] reply-inlet fn,
                            # [3] frame, [4] owner node, [5] descriptor,
                            # [6] index.
                            descriptor = message[5]
                            try:
                                array = arraymaps[i][descriptor]
                            except KeyError:
                                raise IStructureError(
                                    f"unknown I-structure descriptor "
                                    f"{descriptor:#x}"
                                ) from None
                            element_index = message[6]
                            # Direct index with a negative guard: one
                            # comparison on the hot path instead of a
                            # range test plus a len() call.
                            try:
                                if element_index < 0:
                                    raise IndexError
                                element = array[element_index]
                            except IndexError:
                                raise IStructureError(
                                    f"index {element_index} outside "
                                    f"I-structure of {len(array)} elements"
                                ) from None
                            if element.full:
                                reads_full_local[i] += 1
                                n_preads_full += 1
                                # Flag stores are idempotent, no dedup.
                                rnode = message[4]
                                inboxes[rnode].append((
                                    fast_reply,
                                    rnode,
                                    message[2],
                                    message[3],
                                    element.value,
                                ))
                                if rnode > i:
                                    in_current[rnode] = True
                                else:
                                    in_next[rnode] = True
                            else:
                                waiters = element.waiters
                                if waiters:
                                    istats[i].reads_deferred += 1
                                    mix.preads_deferred += 1
                                else:
                                    istats[i].reads_empty += 1
                                    mix.preads_empty += 1
                                # Deferred readers keep the same
                                # (fn, frame, node) shape the reply
                                # needs — no DeferredReader packing.
                                waiters.append(
                                    (message[2], message[3], message[4])
                                )
                        elif kind is kind_send or kind is kind_reply:
                            frame = framemaps[i].get(message[3])
                            if frame is None:
                                raise TamError(
                                    f"node {i}: no frame {message[3]}"
                                )
                            deliver = frame[0].get(message[2])
                            if deliver is None:
                                raise TamError(
                                    f"codeblock {frame[2].name!r} has no "
                                    f"inlet {message[2]}"
                                )
                            deliver(stack, frame, message[4])
                        elif kind is kind_pwrite:
                            # _on_pwrite with IStructureMemory.write
                            # inlined, satisfied readers replied to in
                            # queue order.
                            descriptor = message[7]
                            try:
                                array = arraymaps[i][descriptor]
                            except KeyError:
                                raise IStructureError(
                                    f"unknown I-structure descriptor "
                                    f"{descriptor:#x}"
                                ) from None
                            element_index = message[8]
                            try:
                                if element_index < 0:
                                    raise IndexError
                                element = array[element_index]
                            except IndexError:
                                raise IStructureError(
                                    f"index {element_index} outside "
                                    f"I-structure of {len(array)} elements"
                                ) from None
                            if element.full:
                                raise IStructureError(
                                    f"double write to I-structure "
                                    f"{descriptor:#x}[{element_index}]"
                                )
                            element.full = True
                            value = message[4][0]
                            element.value = value
                            satisfied = element.waiters
                            if satisfied:
                                element.waiters = []
                                n_satisfied = len(satisfied)
                                istats[i].writes_deferred += 1
                                istats[i].deferred_readers_satisfied += (
                                    n_satisfied
                                )
                                mix.pwrites_deferred += 1
                                mix.deferred_readers_satisfied += n_satisfied
                                for reader in satisfied:
                                    rnode = reader[2]
                                    inboxes[rnode].append((
                                        fast_reply,
                                        rnode,
                                        reader[0],
                                        reader[1],
                                        value,
                                    ))
                                    if rnode > i:
                                        in_current[rnode] = True
                                    else:
                                        in_next[rnode] = True
                            else:
                                istats[i].writes_empty += 1
                                mix.pwrites_empty += 1
                        else:
                            # Cold kinds (FALLOC/IALLOC/READ/WRITE)
                            # post replies through _post, which reads
                            # sweep_pos for its wake rule.
                            sched.sweep_pos = i
                            process(nodes[i], message)
                    turns += 1
                    if stack or inbox:
                        if turns >= max_turns:
                            raise TamError(
                                f"TAM run exceeded {max_turns} turns"
                            )
                        in_next[i] = True
                    elif turns >= max_turns and (
                        in_current.index(True, i + 1) != n
                        or in_next.index(True) != n
                    ):
                        raise TamError(
                            f"TAM run exceeded {max_turns} turns"
                        )
                    i = in_current.index(True, i + 1)
                sched.sweep_pos = -1
                if in_next.index(True) == n:
                    return turns
                # Promote: the next sweep's flags become the current
                # sweep's; reassign the sched attributes so wake sites
                # in generated code see the swap.
                in_current, in_next = in_next, in_current
                sched.in_current = in_current
                sched.in_next = in_next
        finally:
            mix.preads_full += n_preads_full
            for j in range(n):
                if reads_full_local[j]:
                    istats[j].reads_full += reads_full_local[j]
            sched.active = False
            sched.sweep_pos = -1
            for i in range(n):
                in_current[i] = False
                in_next[i] = False

    def _run_codegen_generic(self, max_turns: int) -> int:
        """The codegen backend under observation: EventSweep + callbacks.

        Message delivery for the dominant kinds indexes the flat frame
        directly — ``frame[0]`` is the inlet dispatch dict — unless a
        tracer or lineage tracker is installed, in which case the
        wrapped handlers run so every handled message emits its
        ``tam_handle`` event / handler span; a profiler wraps the
        service callback for per-node turn attribution.
        """
        nodes = self.nodes
        process = self._process_message
        on_pread = self._on_pread
        kind_send = MsgKind.SEND
        kind_reply = MsgKind.REPLY
        kind_pread = MsgKind.PREAD

        if self.tracer is None and self.lineage is None:
            def service(state: _NodeState):
                stack = state.stack
                if stack:
                    fn = stack.pop()
                    fn(stack, stack.pop())
                elif state.inbox:
                    message = state.inbox.popleft()
                    kind = message[0]
                    if kind is kind_send or kind is kind_reply:
                        frame = state.frames.get(message[3])
                        if frame is None:
                            raise TamError(
                                f"node {state.node_id}: no frame {message[3]}"
                            )
                        deliver = frame[0].get(message[2])
                        if deliver is None:
                            raise TamError(
                                f"codeblock {frame[2].name!r} has no inlet "
                                f"{message[2]}"
                            )
                        deliver(stack, frame, message[4])
                    elif kind is kind_pread:
                        on_pread(state, message)
                    else:
                        process(state, message)
                else:  # pragma: no cover - queued nodes always have work
                    return None
                return True if (stack or state.inbox) else False
        else:
            deliver_traced = self._deliver

            def service(state: _NodeState):
                stack = state.stack
                if stack:
                    fn = stack.pop()
                    fn(stack, stack.pop())
                elif state.inbox:
                    message = state.inbox.popleft()
                    kind = message[0]
                    if kind is kind_send or kind is kind_reply:
                        deliver_traced(state, message)
                    elif kind is kind_pread:
                        on_pread(state, message)
                    else:
                        process(state, message)
                else:  # pragma: no cover - queued nodes always have work
                    return None
                return True if (stack or state.inbox) else False

        if self.profiler is not None:
            service = self._profiled_service(service)
        return self._esched.run(
            nodes,
            service,
            initially_active=[
                state.node_id
                for state in nodes
                if state.stack or state.inbox
            ],
            max_turns=max_turns,
            stall=self._turn_stall(max_turns),
        )

    def _fold_codegen_stats(self) -> None:
        """Fold per-thread run counts into the cumulative statistics.

        Generated threads only bump one integer per run; the instruction
        mix and send-word counts are static per thread, so the whole
        run's accounting is ``runs x mix`` here.  Counters are zeroed as
        they are folded, keeping repeated ``run()`` calls additive.
        """
        runs = self._cg_runs
        meta = self._cg_meta
        stats = self.stats
        instructions = stats.instructions
        sends = self._sends_by_words
        threads_run = 0
        for index, count in enumerate(runs):
            if not count:
                continue
            runs[index] = 0
            threads_run += count
            mix, send_words = meta[index]
            for kind, per_run in mix:
                instructions[kind] += per_run * count
            for words, per_run in send_words:
                sends[words] += per_run * count
        stats.threads_run += threads_run

    def _check_quiescence(self) -> None:
        """Detect computations that stopped with unsatisfied waiters.

        General deadlock detection (a sync counter nothing will ever
        decrement) is undecidable without program knowledge; what *is*
        always wrong at quiescence is an I-structure reader still
        deferred — no work remains that could ever write the element.
        """
        waiters = sum(
            state.istructures.stats.reads_empty
            + state.istructures.stats.reads_deferred
            - state.istructures.stats.deferred_readers_satisfied
            for state in self.nodes
        )
        if waiters > 0:
            raise DeadlockError(
                f"computation quiesced with {waiters} deferred I-structure "
                "reader(s) never satisfied"
            )

    # ------------------------------------------------------------------
    # Thread execution.
    # ------------------------------------------------------------------

    def _run_thread_fast(self, state: _NodeState, frame: Frame, label: str) -> None:
        thread = frame.compiled.threads.get(label)
        if thread is None:
            raise TamError(
                f"codeblock {frame.codeblock.name!r} has no thread {label!r}"
            )
        stats = self.stats
        stats.threads_run += 1
        stats.count_instructions(thread.mix)
        for op in thread.ops:
            op(state, frame)
        if not thread.complete:
            raise TamError(
                f"thread {label!r} of {frame.codeblock.name!r} fell off its "
                "end without STOP"
            )

    def _run_thread(self, state: _NodeState, frame: Frame, label: str) -> None:
        self.stats.threads_run += 1
        for instr in frame.codeblock.thread(label):
            self.stats.count_instruction(instr.kind)
            if self._execute(state, frame, instr):
                return
        raise TamError(
            f"thread {label!r} of {frame.codeblock.name!r} fell off its end "
            "without STOP"
        )

    def _operand(self, frame: Frame, operand) -> object:
        if isinstance(operand, Imm):
            return operand.value
        return frame.read(operand)

    def _execute(self, state: _NodeState, frame: Frame, instr: Instr) -> bool:
        """Run one instruction; True ends the thread."""
        if isinstance(instr, ConInstr):
            frame.write(instr.dest, instr.value)
        elif isinstance(instr, MovInstr):
            frame.write(instr.dest, frame.read(instr.src))
        elif isinstance(instr, SelfInstr):
            frame.write(instr.dest, frame.ref)
        elif isinstance(instr, OpInstr):
            a = self._operand(frame, instr.a)
            b = self._operand(frame, instr.b)
            frame.write(instr.dest, _apply(instr.op, a, b))
        elif isinstance(instr, ForkInstr):
            state.stack.append((frame, instr.label))
        elif isinstance(instr, SwitchInstr):
            if frame.read(instr.cond):
                state.stack.append((frame, instr.then_label))
            elif instr.else_label is not None:
                state.stack.append((frame, instr.else_label))
        elif isinstance(instr, StopInstr):
            return True
        elif isinstance(instr, ResetInstr):
            frame.reset(instr.counter, instr.count)
        elif isinstance(instr, FallocInstr):
            target = self._round_robin()
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.FALLOC,
                    node=target,
                    codeblock=instr.codeblock,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, SendInstr):
            ref = frame.read(instr.frame_slot)
            if not isinstance(ref, FrameRef):
                raise TamError(
                    f"SEND through slot {instr.frame_slot} which holds "
                    f"{ref!r}, not a frame reference"
                )
            values = tuple(frame.read(slot) for slot in instr.values)
            self.stats.messages.count_send(len(values))
            self._post(
                TamMessage(
                    MsgKind.SEND,
                    node=ref.node,
                    frame_id=ref.frame_id,
                    inlet=instr.inlet,
                    values=values,
                )
            )
        elif isinstance(instr, IallocInstr):
            target = self._round_robin()
            length = int(self._operand(frame, instr.length))
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.IALLOC,
                    node=target,
                    index=length,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IfetchInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"IFETCH through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PREAD,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IstoreInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"ISTORE through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PWRITE,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    values=(frame.read(instr.value),),
                )
            )
        elif isinstance(instr, ReadInstr):
            self._post(
                TamMessage(
                    MsgKind.READ,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, WriteInstr):
            self._post(
                TamMessage(
                    MsgKind.WRITE,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    values=(frame.read(instr.value),),
                )
            )
        else:  # pragma: no cover - exhaustive over instruction types
            raise TamError(f"unimplemented instruction {instr!r}")
        return False

    # ------------------------------------------------------------------
    # Message processing.
    # ------------------------------------------------------------------

    def _post(self, message: TamMessage) -> None:
        node = message.node
        if node < 0 or node >= self.n_nodes:
            raise TamError(f"message addressed to unknown node {node}")
        self.nodes[node].inbox.append(message)
        sched = self._sched
        if sched.active:
            # Keep the activity flags in sync: a node the sweep has not
            # reached yet joins the current sweep, otherwise the next one
            # (inlined ActiveSweep.wake — this is the hottest path in a
            # TAM run).
            if node > sched.sweep_pos:
                sched.in_current[node] = True
            else:
                sched.in_next[node] = True

    def _make_event_post(self) -> Callable[[TamMessage], None]:
        """Build the codegen backend's post closure: feeds the event heap.

        Installed as the machine's ``_post`` instance attribute in
        ``__init__`` (before tracing wraps it and before ``load()``-time
        compilation captures it).  Same semantics as :meth:`_post` with
        :meth:`repro.sim.sweep.EventSweep.wake` inlined; a closure over
        the machine internals rather than a method, because every
        generated message instruction calls it.
        """
        nodes = self.nodes
        n_nodes = self.n_nodes
        sched = self._esched
        queued = sched.queued
        heap = sched.heap

        def post_event(message: TamMessage) -> None:
            node = message[1]
            if node < 0 or node >= n_nodes:
                raise TamError(f"message addressed to unknown node {node}")
            nodes[node].inbox.append(message)
            if sched.active and queued[node] == -1:
                key = (
                    sched.sweep if node > sched.sweep_pos else sched.sweep + 1
                ) * n_nodes + node
                queued[node] = key
                heappush(heap, key)

        return post_event

    def _frame(self, state: _NodeState, frame_id: int) -> Frame:
        try:
            return state.frames[frame_id]
        except KeyError:
            raise TamError(
                f"node {state.node_id}: no frame {frame_id}"
            ) from None

    def _deliver_to_inlet(
        self, state: _NodeState, frame_id: int, inlet: int, values: Tuple
    ) -> None:
        frame = self._frame(state, frame_id)
        spec = frame.codeblock.inlet(inlet)
        for slot, value in zip(spec.dest_slots, values):
            frame.write(slot, value)
        if spec.counter is not None:
            posted = frame.decrement(spec.counter)
            if posted is not None:
                state.stack.append((frame, posted))

    def _reply(self, reply_to: Tuple[FrameRef, int], values: Tuple) -> None:
        ref, inlet = reply_to
        # Positional TamMessage: (kind, node, inlet, frame_id, values).
        self._post(TamMessage(MsgKind.REPLY, ref.node, inlet, ref.frame_id, values))

    def _process_message(self, state: _NodeState, message: TamMessage) -> None:
        # Identity if-chain ordered by dynamic frequency: enum identity
        # checks avoid the per-message hash a dict dispatch would pay.
        kind = message.kind
        if kind is MsgKind.SEND or kind is MsgKind.REPLY:
            self._deliver(state, message)
        elif kind is MsgKind.PREAD:
            self._on_pread(state, message)
        elif kind is MsgKind.PWRITE:
            self._on_pwrite(state, message)
        elif kind is MsgKind.FALLOC:
            self._on_falloc(state, message)
        elif kind is MsgKind.IALLOC:
            self._on_ialloc(state, message)
        elif kind is MsgKind.READ:
            self._on_read(state, message)
        elif kind is MsgKind.WRITE:
            self._on_write(state, message)
        else:  # pragma: no cover - exhaustive over MsgKind
            raise TamError(f"unimplemented message kind {kind}")

    def _deliver_message(self, state: _NodeState, message: TamMessage) -> None:
        self._deliver_to_inlet(
            state, message.frame_id, message.inlet, message.values
        )

    def _deliver_message_fast(
        self, state: _NodeState, message: TamMessage
    ) -> None:
        frame = state.frames.get(message.frame_id)
        if frame is None:
            raise TamError(f"node {state.node_id}: no frame {message.frame_id}")
        deliver = frame.inlets.get(message.inlet)
        if deliver is None:
            raise TamError(
                f"codeblock {frame.codeblock.name!r} has no inlet "
                f"{message.inlet}"
            )
        deliver(state, frame, message.values)

    def _deliver_message_codegen(
        self, state: _NodeState, message: TamMessage
    ) -> None:
        frame = state.frames.get(message.frame_id)
        if frame is None:
            raise TamError(f"node {state.node_id}: no frame {message.frame_id}")
        deliver = frame[0].get(message.inlet)
        if deliver is None:
            raise TamError(
                f"codeblock {frame[2].name!r} has no inlet "
                f"{message.inlet}"
            )
        deliver(state.stack, frame, message.values)

    def _on_falloc(self, state: _NodeState, message: TamMessage) -> None:
        frame = self._allocate_frame(state.node_id, message.codeblock)
        if self._is_codegen:
            entry_fn = frame[2].entry_fn
            if entry_fn is not None:
                stack = state.stack
                stack.append(frame)
                stack.append(entry_fn)
            ref = frame[1]
        else:
            if frame.codeblock.entry is not None:
                state.stack.append((frame, frame.codeblock.entry))
            ref = frame.ref
        assert message.reply_to is not None
        self.stats.messages.count_send(1)  # the frame-ref reply is a Send
        self._post(
            TamMessage(
                MsgKind.SEND,
                node=message.reply_to[0].node,
                frame_id=message.reply_to[0].frame_id,
                inlet=message.reply_to[1],
                values=(ref,),
            )
        )

    def _on_ialloc(self, state: _NodeState, message: TamMessage) -> None:
        descriptor = state.istructures.allocate(message.index)
        self.stats.istructures_allocated += 1
        assert message.reply_to is not None
        self.stats.messages.count_send(1)
        self._post(
            TamMessage(
                MsgKind.SEND,
                node=message.reply_to[0].node,
                frame_id=message.reply_to[0].frame_id,
                inlet=message.reply_to[1],
                values=(IStructRef(state.node_id, descriptor),),
            )
        )

    def _on_pread(self, state: _NodeState, message: TamMessage) -> None:
        mix = self.stats.messages
        # _encode_reader / _reply inlined: this handler runs once per
        # IFETCH and the call overhead is measurable.
        ref, inlet = message.reply_to
        reader = DeferredReader(
            (ref.node << _FRAME_ID_BITS) | ref.frame_id, inlet
        )
        outcome, value = state.istructures.read(
            message.descriptor, message.index, reader
        )
        if outcome == "full":
            mix.preads_full += 1
            self._post(
                TamMessage(MsgKind.REPLY, ref.node, inlet, ref.frame_id, (value,))
            )
        elif outcome == "empty":
            mix.preads_empty += 1
        else:
            mix.preads_deferred += 1

    def _on_pwrite(self, state: _NodeState, message: TamMessage) -> None:
        mix = self.stats.messages
        outcome, satisfied = state.istructures.write(
            message.descriptor, message.index, message.values[0]
        )
        if outcome == "empty":
            mix.pwrites_empty += 1
        else:
            mix.pwrites_deferred += 1
            mix.deferred_readers_satisfied += len(satisfied)
        for reader in satisfied:
            self._reply(_decode_reader(reader), (message.values[0],))

    def _on_read(self, state: _NodeState, message: TamMessage) -> None:
        self.stats.messages.reads += 1
        assert message.reply_to is not None
        self._reply(message.reply_to, (state.memory.load(message.address),))

    def _on_write(self, state: _NodeState, message: TamMessage) -> None:
        self.stats.messages.writes += 1
        state.memory.store(message.address, int(message.values[0]))


def _encode_reader(reply_to: Tuple[FrameRef, int]) -> DeferredReader:
    ref, inlet = reply_to
    return DeferredReader((ref.node << _FRAME_ID_BITS) | ref.frame_id, inlet)


def _decode_reader(reader: DeferredReader) -> Tuple[FrameRef, int]:
    node = reader.frame_pointer >> _FRAME_ID_BITS
    frame_id = reader.frame_pointer & ((1 << _FRAME_ID_BITS) - 1)
    return FrameRef(node, frame_id), reader.instruction_pointer


def _apply(op: Op, a, b):
    fn = OP_FUNCS.get(op)
    if fn is None:
        raise TamError(f"unimplemented op {op}")
    return fn(a, b)
