"""The TAM runtime: multi-node execution with full message accounting.

This is the reproduction's equivalent of the Berkeley TAM simulator the
paper used (Section 4.2.1): it executes codeblocks over a set of nodes,
counts every TAM instruction by class, and counts every inter-frame
message by type and outcome.  Like the paper's simulator it "does not
model any number of processors or any network latency" for *timing* —
messages are delivered reliably and scheduling is deterministic — but the
*placement* is real: frames and I-structures are distributed round-robin
and every cross-frame interaction is a message, exactly as the programs
were compiled for the paper.

Scheduling is LIFO per node (the paper determined its presence-bit
outcome ratios under "LIFO scheduling of dataflow tokens"); nodes are
serviced round-robin, one message or one thread per turn, so runs are
reproducible bit for bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlockError, TamError
from repro.node.istructure import DeferredReader, IStructureMemory
from repro.node.memory import Memory
from repro.tam.codeblock import Codeblock
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    Instr,
    IstoreInstr,
    Kind,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.stats import TamStats

_FRAME_ID_BITS = 22


@dataclass(frozen=True)
class IStructRef:
    """A global I-structure name: (node, local descriptor)."""

    node: int
    descriptor: int


class MsgKind(enum.Enum):
    SEND = "send"
    FALLOC = "falloc"
    IALLOC = "ialloc"
    PREAD = "pread"
    PWRITE = "pwrite"
    READ = "read"
    WRITE = "write"
    REPLY = "reply"  # a read / pread-full / forwarded value (costed as
    # part of the requesting operation, received as a Send)


@dataclass(frozen=True)
class TamMessage:
    kind: MsgKind
    node: int
    inlet: int = 0
    frame_id: int = 0
    values: Tuple = ()
    codeblock: str = ""
    reply_to: Optional[Tuple[FrameRef, int]] = None
    descriptor: int = 0
    index: int = 0
    address: int = 0


class _NodeState:
    """Per-node runtime state."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.inbox: List[TamMessage] = []
        self.stack: List[Tuple[Frame, str]] = []
        self.frames: Dict[int, Frame] = {}
        self.istructures = IStructureMemory()
        self.memory = Memory()
        self.next_frame_id = 1


class TamMachine:
    """A whole TAM machine."""

    def __init__(self, n_nodes: int = 1) -> None:
        if n_nodes < 1:
            raise TamError("a TAM machine needs at least one node")
        self.n_nodes = n_nodes
        self.nodes = [_NodeState(n) for n in range(n_nodes)]
        self.codeblocks: Dict[str, Codeblock] = {}
        self.stats = TamStats()
        self._rr_next = 0

    # ------------------------------------------------------------------
    # Program loading and boot.
    # ------------------------------------------------------------------

    def load(self, codeblock: Codeblock) -> None:
        codeblock.validate()
        if codeblock.name in self.codeblocks:
            raise TamError(f"codeblock {codeblock.name!r} already loaded")
        self.codeblocks[codeblock.name] = codeblock

    def boot(
        self, codeblock_name: str, slots: Optional[Dict[int, object]] = None
    ) -> FrameRef:
        """Create the root activation on node 0 and post its entry thread.

        Boot is runtime setup, not program communication: it sends no
        messages and counts nothing.
        """
        frame = self._allocate_frame(0, codeblock_name)
        for slot, value in (slots or {}).items():
            frame.write(slot, value)
        codeblock = frame.codeblock
        if codeblock.entry is None:
            raise TamError(f"codeblock {codeblock_name!r} has no entry thread")
        self.nodes[0].stack.append((frame, codeblock.entry))
        return frame.ref

    def _allocate_frame(self, node_id: int, codeblock_name: str) -> Frame:
        try:
            codeblock = self.codeblocks[codeblock_name]
        except KeyError:
            raise TamError(f"unknown codeblock {codeblock_name!r}") from None
        state = self.nodes[node_id]
        ref = FrameRef(node_id, state.next_frame_id)
        state.next_frame_id += 1
        frame = Frame(codeblock, ref)
        state.frames[ref.frame_id] = frame
        self.stats.frames_allocated += 1
        return frame

    def read_slot(self, ref: FrameRef, slot: int):
        """Host-level frame inspection (results, not program semantics)."""
        return self._frame(self.nodes[ref.node], ref.frame_id).read(slot)

    def write_slot(self, ref: FrameRef, slot: int, value) -> None:
        """Host-level frame setup (e.g. banking the root's own reference)."""
        self._frame(self.nodes[ref.node], ref.frame_id).write(slot, value)

    def istructure_peek(self, ref: "IStructRef", index: int):
        """Host-level I-structure inspection."""
        return self.nodes[ref.node].istructures.peek(ref.descriptor, index)

    def _round_robin(self) -> int:
        node = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_nodes
        return node

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self, max_turns: int = 100_000_000) -> TamStats:
        """Execute to quiescence; returns the accumulated statistics."""
        turns = 0
        while True:
            progressed = False
            for state in self.nodes:
                # Enabled threads drain before new messages are accepted
                # (TAM's continuation vector has priority over inlets);
                # this also guarantees a counter re-armed by its own
                # thread is reset before the next message decrements it.
                if state.stack:
                    frame, label = state.stack.pop()
                    self._run_thread(state, frame, label)
                    progressed = True
                elif state.inbox:
                    self._process_message(state, state.inbox.pop(0))
                    progressed = True
                turns += 1
                if turns > max_turns:
                    raise TamError(f"TAM run exceeded {max_turns} turns")
            if not progressed:
                break
        self._check_quiescence()
        return self.stats

    def _check_quiescence(self) -> None:
        """Detect computations that stopped with unsatisfied waiters.

        General deadlock detection (a sync counter nothing will ever
        decrement) is undecidable without program knowledge; what *is*
        always wrong at quiescence is an I-structure reader still
        deferred — no work remains that could ever write the element.
        """
        waiters = sum(
            state.istructures.stats.reads_empty
            + state.istructures.stats.reads_deferred
            - state.istructures.stats.deferred_readers_satisfied
            for state in self.nodes
        )
        if waiters > 0:
            raise DeadlockError(
                f"computation quiesced with {waiters} deferred I-structure "
                "reader(s) never satisfied"
            )

    # ------------------------------------------------------------------
    # Thread execution.
    # ------------------------------------------------------------------

    def _run_thread(self, state: _NodeState, frame: Frame, label: str) -> None:
        self.stats.threads_run += 1
        for instr in frame.codeblock.thread(label):
            self.stats.count_instruction(instr.kind)
            if self._execute(state, frame, instr):
                return
        raise TamError(
            f"thread {label!r} of {frame.codeblock.name!r} fell off its end "
            "without STOP"
        )

    def _operand(self, frame: Frame, operand) -> object:
        if isinstance(operand, Imm):
            return operand.value
        return frame.read(operand)

    def _execute(self, state: _NodeState, frame: Frame, instr: Instr) -> bool:
        """Run one instruction; True ends the thread."""
        if isinstance(instr, ConInstr):
            frame.write(instr.dest, instr.value)
        elif isinstance(instr, MovInstr):
            frame.write(instr.dest, frame.read(instr.src))
        elif isinstance(instr, SelfInstr):
            frame.write(instr.dest, frame.ref)
        elif isinstance(instr, OpInstr):
            a = self._operand(frame, instr.a)
            b = self._operand(frame, instr.b)
            frame.write(instr.dest, _apply(instr.op, a, b))
        elif isinstance(instr, ForkInstr):
            state.stack.append((frame, instr.label))
        elif isinstance(instr, SwitchInstr):
            if frame.read(instr.cond):
                state.stack.append((frame, instr.then_label))
            elif instr.else_label is not None:
                state.stack.append((frame, instr.else_label))
        elif isinstance(instr, StopInstr):
            return True
        elif isinstance(instr, ResetInstr):
            frame.reset(instr.counter, instr.count)
        elif isinstance(instr, FallocInstr):
            target = self._round_robin()
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.FALLOC,
                    node=target,
                    codeblock=instr.codeblock,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, SendInstr):
            ref = frame.read(instr.frame_slot)
            if not isinstance(ref, FrameRef):
                raise TamError(
                    f"SEND through slot {instr.frame_slot} which holds "
                    f"{ref!r}, not a frame reference"
                )
            values = tuple(frame.read(slot) for slot in instr.values)
            self.stats.messages.count_send(len(values))
            self._post(
                TamMessage(
                    MsgKind.SEND,
                    node=ref.node,
                    frame_id=ref.frame_id,
                    inlet=instr.inlet,
                    values=values,
                )
            )
        elif isinstance(instr, IallocInstr):
            target = self._round_robin()
            length = int(self._operand(frame, instr.length))
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.IALLOC,
                    node=target,
                    index=length,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IfetchInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"IFETCH through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PREAD,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IstoreInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"ISTORE through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PWRITE,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    values=(frame.read(instr.value),),
                )
            )
        elif isinstance(instr, ReadInstr):
            self._post(
                TamMessage(
                    MsgKind.READ,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, WriteInstr):
            self._post(
                TamMessage(
                    MsgKind.WRITE,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    values=(frame.read(instr.value),),
                )
            )
        else:  # pragma: no cover - exhaustive over instruction types
            raise TamError(f"unimplemented instruction {instr!r}")
        return False

    # ------------------------------------------------------------------
    # Message processing.
    # ------------------------------------------------------------------

    def _post(self, message: TamMessage) -> None:
        if message.node < 0 or message.node >= self.n_nodes:
            raise TamError(f"message addressed to unknown node {message.node}")
        self.nodes[message.node].inbox.append(message)

    def _frame(self, state: _NodeState, frame_id: int) -> Frame:
        try:
            return state.frames[frame_id]
        except KeyError:
            raise TamError(
                f"node {state.node_id}: no frame {frame_id}"
            ) from None

    def _deliver_to_inlet(
        self, state: _NodeState, frame_id: int, inlet: int, values: Tuple
    ) -> None:
        frame = self._frame(state, frame_id)
        spec = frame.codeblock.inlet(inlet)
        for slot, value in zip(spec.dest_slots, values):
            frame.write(slot, value)
        if spec.counter is not None:
            posted = frame.decrement(spec.counter)
            if posted is not None:
                state.stack.append((frame, posted))

    def _reply(self, reply_to: Tuple[FrameRef, int], values: Tuple) -> None:
        ref, inlet = reply_to
        self._post(
            TamMessage(
                MsgKind.REPLY,
                node=ref.node,
                frame_id=ref.frame_id,
                inlet=inlet,
                values=values,
            )
        )

    def _process_message(self, state: _NodeState, message: TamMessage) -> None:
        mix = self.stats.messages
        if message.kind in (MsgKind.SEND, MsgKind.REPLY):
            self._deliver_to_inlet(
                state, message.frame_id, message.inlet, message.values
            )
        elif message.kind is MsgKind.FALLOC:
            frame = self._allocate_frame(state.node_id, message.codeblock)
            if frame.codeblock.entry is not None:
                state.stack.append((frame, frame.codeblock.entry))
            assert message.reply_to is not None
            mix.count_send(1)  # the frame-reference reply is a Send
            self._post(
                TamMessage(
                    MsgKind.SEND,
                    node=message.reply_to[0].node,
                    frame_id=message.reply_to[0].frame_id,
                    inlet=message.reply_to[1],
                    values=(frame.ref,),
                )
            )
        elif message.kind is MsgKind.IALLOC:
            descriptor = state.istructures.allocate(message.index)
            self.stats.istructures_allocated += 1
            assert message.reply_to is not None
            mix.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.SEND,
                    node=message.reply_to[0].node,
                    frame_id=message.reply_to[0].frame_id,
                    inlet=message.reply_to[1],
                    values=(IStructRef(state.node_id, descriptor),),
                )
            )
        elif message.kind is MsgKind.PREAD:
            assert message.reply_to is not None
            reader = _encode_reader(message.reply_to)
            outcome, value = state.istructures.read(
                message.descriptor, message.index, reader
            )
            if outcome == "full":
                mix.preads_full += 1
                self._reply(message.reply_to, (value,))
            elif outcome == "empty":
                mix.preads_empty += 1
            else:
                mix.preads_deferred += 1
        elif message.kind is MsgKind.PWRITE:
            outcome, satisfied = state.istructures.write(
                message.descriptor, message.index, message.values[0]
            )
            if outcome == "empty":
                mix.pwrites_empty += 1
            else:
                mix.pwrites_deferred += 1
                mix.deferred_readers_satisfied += len(satisfied)
            for reader in satisfied:
                self._reply(_decode_reader(reader), (message.values[0],))
        elif message.kind is MsgKind.READ:
            mix.reads += 1
            assert message.reply_to is not None
            self._reply(
                message.reply_to, (state.memory.load(message.address),)
            )
        elif message.kind is MsgKind.WRITE:
            mix.writes += 1
            state.memory.store(message.address, int(message.values[0]))
        else:  # pragma: no cover - exhaustive over MsgKind
            raise TamError(f"unimplemented message kind {message.kind}")


def _encode_reader(reply_to: Tuple[FrameRef, int]) -> DeferredReader:
    ref, inlet = reply_to
    return DeferredReader(
        frame_pointer=(ref.node << _FRAME_ID_BITS) | ref.frame_id,
        instruction_pointer=inlet,
    )


def _decode_reader(reader: DeferredReader) -> Tuple[FrameRef, int]:
    node = reader.frame_pointer >> _FRAME_ID_BITS
    frame_id = reader.frame_pointer & ((1 << _FRAME_ID_BITS) - 1)
    return FrameRef(node, frame_id), reader.instruction_pointer


def _apply(op: Op, a, b):
    if op is Op.IADD:
        return int(a) + int(b)
    if op is Op.ISUB:
        return int(a) - int(b)
    if op is Op.IMUL:
        return int(a) * int(b)
    if op is Op.IDIV:
        return int(a) // int(b)
    if op is Op.FADD:
        return float(a) + float(b)
    if op is Op.FSUB:
        return float(a) - float(b)
    if op is Op.FMUL:
        return float(a) * float(b)
    if op is Op.FDIV:
        return float(a) / float(b)
    if op is Op.LT:
        return 1 if a < b else 0
    if op is Op.LE:
        return 1 if a <= b else 0
    if op is Op.EQ:
        return 1 if a == b else 0
    if op is Op.AND:
        return 1 if (a and b) else 0
    if op is Op.OR:
        return 1 if (a or b) else 0
    if op is Op.MIN:
        return a if a < b else b
    if op is Op.MAX:
        return a if a > b else b
    raise TamError(f"unimplemented op {op}")
