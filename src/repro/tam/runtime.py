"""The TAM runtime: multi-node execution with full message accounting.

This is the reproduction's equivalent of the Berkeley TAM simulator the
paper used (Section 4.2.1): it executes codeblocks over a set of nodes,
counts every TAM instruction by class, and counts every inter-frame
message by type and outcome.  Like the paper's simulator it "does not
model any number of processors or any network latency" for *timing* —
messages are delivered reliably and scheduling is deterministic — but the
*placement* is real: frames and I-structures are distributed round-robin
and every cross-frame interaction is a message, exactly as the programs
were compiled for the paper.

Scheduling is LIFO per node (the paper determined its presence-bit
outcome ratios under "LIFO scheduling of dataflow tokens"); nodes are
serviced round-robin, one message or one thread per turn, so runs are
reproducible bit for bit.

Two execution paths implement those semantics:

* the **fast path** (default): threads and inlets are compiled to bound
  handler closures at ``load()`` time (:mod:`repro.tam.fastpath`) and
  nodes are driven by :class:`repro.sim.sweep.ActiveSweep` — the
  flag-array scheduler that skips idle nodes for free;
* the **reference path** (``TamMachine(n, fast=False)``): the original
  per-instruction ``isinstance`` interpreter driven by
  :class:`repro.sim.sweep.ReferenceSweep` (scan every node each sweep),
  kept as the executable specification.

The two sweep policies are contract-equivalent (same service order,
same exact ``max_turns`` bound — ``tests/sim/test_sweep.py``) and both
paths produce field-for-field identical
:class:`~repro.tam.stats.TamStats` and turn-for-turn identical trace
streams (``tests/tam/test_golden_equivalence.py``,
``tests/sim/test_determinism.py``).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, TamError
from repro.node.istructure import DeferredReader, IStructureMemory
from repro.node.memory import Memory
from repro.tam.codeblock import Codeblock
from repro.tam.fastpath import OP_FUNCS, compile_codeblock
from repro.tam.frame import Frame, FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    Instr,
    IstoreInstr,
    MovInstr,
    Op,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.messages import (
    FRAME_ID_BITS as _FRAME_ID_BITS,
    IStructRef,
    MsgKind,
    TamMessage,
)
from repro.obs.tracer import TAM_HANDLE, TAM_POST, Tracer
from repro.sim.sweep import ActiveSweep, ReferenceSweep
from repro.tam.stats import TamStats
from repro.utils.profiling import PROFILER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiler import SimProfiler

__all__ = ["IStructRef", "MsgKind", "TamMessage", "TamMachine"]


class _NodeState:
    """Per-node runtime state."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.inbox: Deque[TamMessage] = deque()
        self.stack: List[Tuple[Frame, str]] = []
        self.frames: Dict[int, Frame] = {}
        self.istructures = IStructureMemory()
        self.memory = Memory()
        self.next_frame_id = 1


class TamMachine:
    """A whole TAM machine.

    ``fast=True`` (the default) selects the compiled execution path;
    ``fast=False`` selects the reference interpreter.  Both produce
    identical statistics and results.

    ``tracer`` opts the machine into message-path event tracing
    (:mod:`repro.obs.tracer`): every posted inter-frame message emits a
    ``tam_post`` event and every processed one a ``tam_handle`` event,
    stamped with a monotonic turn sequence.  Tracing is installed by
    swapping the posting/handling entry points for traced wrappers at
    construction time — before any ``load()`` compiles closures over
    them — so a machine built without a tracer executes byte-identical
    code on the hot path (zero overhead when off).

    ``profiler`` opts the machine into per-node turn attribution
    (:mod:`repro.obs.profiler`): every productive turn is timed and
    charged to a ``tam.node<N>`` row, and the run's batched statistics
    are folded into the profiler's counter registry
    (:func:`repro.tam.fastpath.feed_profiler`).  With ``None`` the run
    loops bind the original service callbacks, so an unprofiled run pays
    nothing.
    """

    def __init__(
        self,
        n_nodes: int = 1,
        fast: bool = True,
        tracer: Optional[Tracer] = None,
        profiler: Optional["SimProfiler"] = None,
    ) -> None:
        if n_nodes < 1:
            raise TamError("a TAM machine needs at least one node")
        self.n_nodes = n_nodes
        self.fast = fast
        self.nodes = [_NodeState(n) for n in range(n_nodes)]
        self.codeblocks: Dict[str, Codeblock] = {}
        self.stats = TamStats()
        self.turns_executed = 0
        self._rr_next = 0
        self._compiled: Dict[str, object] = {}
        # The kernel's two service policies (repro.sim.sweep): the
        # active-flag scheduler used by the fast path is per-machine
        # state because _post pokes its flag arrays directly; it is
        # `.active` only while a fast run is in progress.
        self._sched = ActiveSweep(n_nodes)
        self._reference_sched = ReferenceSweep()
        self._deliver = (
            self._deliver_message_fast if fast else self._deliver_message
        )
        # Shortcut for the fast path's send accounting (the stats object
        # is created once here and never replaced).
        self._sends_by_words = self.stats.messages.sends_by_words
        self.tracer = tracer
        self._trace_seq = 0
        if tracer is not None:
            self._install_tracing()
        # Like the tracer, the profiler is identity-guarded: with None
        # the run loops use the original service callbacks unchanged.
        self.profiler = profiler

    def _install_tracing(self) -> None:
        """Swap the message entry points for traced wrappers.

        Installed as *instance* attributes, which is what makes tracing
        free when absent: the fast path's compiled closures capture
        ``machine._post`` at ``load()`` time and the run loops bind
        ``self._deliver`` / ``self._on_pread`` at entry, so with no
        tracer they resolve to the original methods and no extra branch
        ever executes.  Only the seven leaf handlers are wrapped (not
        ``_process_message``, which merely dispatches to them), so each
        processed message emits exactly one ``tam_handle`` event on both
        execution paths.
        """
        tracer = self.tracer
        plain_post = self._post

        def traced_post(message: TamMessage) -> None:
            self._trace_seq += 1
            tracer.emit(
                self._trace_seq, TAM_POST, message.node, mkind=message.kind.name
            )
            plain_post(message)

        self._post = traced_post

        def wrap_handler(handler):
            def traced(state: _NodeState, message: TamMessage) -> None:
                self._trace_seq += 1
                tracer.emit(
                    self._trace_seq,
                    TAM_HANDLE,
                    state.node_id,
                    mkind=message.kind.name,
                )
                handler(state, message)

            return traced

        for name in (
            "_deliver",
            "_on_pread",
            "_on_pwrite",
            "_on_falloc",
            "_on_ialloc",
            "_on_read",
            "_on_write",
        ):
            setattr(self, name, wrap_handler(getattr(self, name)))

    # ------------------------------------------------------------------
    # Program loading and boot.
    # ------------------------------------------------------------------

    def load(self, codeblock: Codeblock) -> None:
        codeblock.validate()
        if codeblock.name in self.codeblocks:
            raise TamError(f"codeblock {codeblock.name!r} already loaded")
        self.codeblocks[codeblock.name] = codeblock
        if self.fast:
            self._compiled[codeblock.name] = compile_codeblock(codeblock, self)

    def boot(
        self, codeblock_name: str, slots: Optional[Dict[int, object]] = None
    ) -> FrameRef:
        """Create the root activation on node 0 and post its entry thread.

        Boot is runtime setup, not program communication: it sends no
        messages and counts nothing.
        """
        frame = self._allocate_frame(0, codeblock_name)
        for slot, value in (slots or {}).items():
            frame.write(slot, value)
        codeblock = frame.codeblock
        if codeblock.entry is None:
            raise TamError(f"codeblock {codeblock_name!r} has no entry thread")
        self.nodes[0].stack.append((frame, codeblock.entry))
        return frame.ref

    def _allocate_frame(self, node_id: int, codeblock_name: str) -> Frame:
        try:
            codeblock = self.codeblocks[codeblock_name]
        except KeyError:
            raise TamError(f"unknown codeblock {codeblock_name!r}") from None
        state = self.nodes[node_id]
        ref = FrameRef(node_id, state.next_frame_id)
        state.next_frame_id += 1
        frame = Frame(codeblock, ref)
        if self.fast:
            compiled = self._compiled[codeblock_name]
            frame.compiled = compiled
            frame.inlets = compiled.inlets
        state.frames[ref.frame_id] = frame
        self.stats.frames_allocated += 1
        return frame

    def read_slot(self, ref: FrameRef, slot: int):
        """Host-level frame inspection (results, not program semantics)."""
        return self._frame(self.nodes[ref.node], ref.frame_id).read(slot)

    def write_slot(self, ref: FrameRef, slot: int, value) -> None:
        """Host-level frame setup (e.g. banking the root's own reference)."""
        self._frame(self.nodes[ref.node], ref.frame_id).write(slot, value)

    def istructure_peek(self, ref: "IStructRef", index: int):
        """Host-level I-structure inspection."""
        return self.nodes[ref.node].istructures.peek(ref.descriptor, index)

    def _round_robin(self) -> int:
        node = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_nodes
        return node

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self, max_turns: int = 100_000_000) -> TamStats:
        """Execute to quiescence; returns the accumulated statistics.

        ``max_turns`` bounds *productive* turns (threads run plus messages
        processed) exactly: a run needing exactly ``max_turns`` turns
        succeeds, one needing more raises before executing the excess
        turn.  Sweeps over idle nodes are not charged against it.
        """
        with PROFILER.span("tam.run"):
            if self.fast:
                turns = self._run_fast(max_turns)
            else:
                turns = self._run_reference(max_turns)
        self.turns_executed += turns
        PROFILER.add("tam.turns", turns)
        PROFILER.add("tam.runs", 1)
        if self.profiler is not None:
            from repro.tam.fastpath import feed_profiler

            feed_profiler(self, self.profiler)
        self._check_quiescence()
        return self.stats

    def _turn_stall(self, max_turns: int) -> Callable[[], TamError]:
        return lambda: TamError(f"TAM run exceeded {max_turns} turns")

    def _run_reference(self, max_turns: int) -> int:
        """The scan-all-nodes policy (executable spec).

        Enabled threads drain before new messages are accepted (TAM's
        continuation vector has priority over inlets); this also
        guarantees a counter re-armed by its own thread is reset before
        the next message decrements it — the priority lives in
        ``_do_one_unit``, which both policies' callbacks share.
        """
        do_one = self._do_one_unit
        if self.profiler is not None:
            do_one = self._profiled_unit(do_one)
        return self._reference_sched.run(
            self.nodes,
            has_work=lambda state: state.stack or state.inbox,
            do_one=do_one,
            max_turns=max_turns,
            stall=self._turn_stall(max_turns),
        )

    def _node_profiles(self) -> List:
        """One profiler attribution row per node (``tam.node<N>``)."""
        track = self.profiler.track
        return [track(f"tam.node{n}") for n in range(self.n_nodes)]

    def _profiled_unit(self, do_one: Callable) -> Callable:
        """Wrap the reference path's unit callback with turn attribution.

        Every ``do_one`` call is exactly one productive turn, so the
        wrapper charges unconditionally.
        """
        profiles = self._node_profiles()

        def profiled(state: _NodeState) -> None:
            start = perf_counter()
            do_one(state)
            elapsed = perf_counter() - start
            profile = profiles[state.node_id]
            profile.ticks += 1
            profile.seconds += elapsed

        return profiled

    def _profiled_service(self, service: Callable) -> Callable:
        """Wrap the fast path's service callback with turn attribution.

        ``service`` returns ``None`` for a no-work scan (not a turn —
        nothing is charged) and True/False after a productive turn.
        """
        profiles = self._node_profiles()

        def profiled(state: _NodeState):
            start = perf_counter()
            more = service(state)
            elapsed = perf_counter() - start
            if more is not None:
                profile = profiles[state.node_id]
                profile.ticks += 1
                profile.seconds += elapsed
            return more

        return profiled

    def _do_one_unit(self, state: _NodeState) -> None:
        """One productive turn on ``state`` via the reference dispatch."""
        if state.stack:
            frame, label = state.stack.pop()
            self._run_thread(state, frame, label)
        else:
            self._process_message(state, state.inbox.popleft())

    def _run_fast(self, max_turns: int) -> int:
        """The active-node policy: identical service order, no idle scans.

        The scheduling itself lives in
        :class:`repro.sim.sweep.ActiveSweep`; this method supplies the
        service callback with every hot attribute pre-bound, so a turn
        costs one call into the closure and no attribute traversal.
        New work on *other* nodes is reported by :meth:`_post` poking
        the policy's flag arrays directly (flag stores are idempotent,
        so no duplicate-enqueue guards are needed).
        """
        nodes = self.nodes
        run_thread = self._run_thread_fast
        process = self._process_message
        deliver = self._deliver
        on_pread = self._on_pread
        kind_send = MsgKind.SEND
        kind_reply = MsgKind.REPLY
        kind_pread = MsgKind.PREAD

        def service(state: _NodeState):
            stack = state.stack
            if stack:
                frame, label = stack.pop()
                run_thread(state, frame, label)
            elif state.inbox:
                message = state.inbox.popleft()
                # Dispatch the dominant kinds inline; the rest go
                # through the full _process_message chain.
                kind = message.kind
                if kind is kind_send or kind is kind_reply:
                    deliver(state, message)
                elif kind is kind_pread:
                    on_pread(state, message)
                else:
                    process(state, message)
            else:  # pragma: no cover - flagged nodes always have work
                return None
            return True if (state.stack or state.inbox) else False

        if self.profiler is not None:
            service = self._profiled_service(service)
        return self._sched.run(
            nodes,
            service,
            initially_active=[
                state.node_id for state in nodes if state.stack or state.inbox
            ],
            max_turns=max_turns,
            stall=self._turn_stall(max_turns),
        )

    def _check_quiescence(self) -> None:
        """Detect computations that stopped with unsatisfied waiters.

        General deadlock detection (a sync counter nothing will ever
        decrement) is undecidable without program knowledge; what *is*
        always wrong at quiescence is an I-structure reader still
        deferred — no work remains that could ever write the element.
        """
        waiters = sum(
            state.istructures.stats.reads_empty
            + state.istructures.stats.reads_deferred
            - state.istructures.stats.deferred_readers_satisfied
            for state in self.nodes
        )
        if waiters > 0:
            raise DeadlockError(
                f"computation quiesced with {waiters} deferred I-structure "
                "reader(s) never satisfied"
            )

    # ------------------------------------------------------------------
    # Thread execution.
    # ------------------------------------------------------------------

    def _run_thread_fast(self, state: _NodeState, frame: Frame, label: str) -> None:
        thread = frame.compiled.threads.get(label)
        if thread is None:
            raise TamError(
                f"codeblock {frame.codeblock.name!r} has no thread {label!r}"
            )
        stats = self.stats
        stats.threads_run += 1
        stats.count_instructions(thread.mix)
        for op in thread.ops:
            op(state, frame)
        if not thread.complete:
            raise TamError(
                f"thread {label!r} of {frame.codeblock.name!r} fell off its "
                "end without STOP"
            )

    def _run_thread(self, state: _NodeState, frame: Frame, label: str) -> None:
        self.stats.threads_run += 1
        for instr in frame.codeblock.thread(label):
            self.stats.count_instruction(instr.kind)
            if self._execute(state, frame, instr):
                return
        raise TamError(
            f"thread {label!r} of {frame.codeblock.name!r} fell off its end "
            "without STOP"
        )

    def _operand(self, frame: Frame, operand) -> object:
        if isinstance(operand, Imm):
            return operand.value
        return frame.read(operand)

    def _execute(self, state: _NodeState, frame: Frame, instr: Instr) -> bool:
        """Run one instruction; True ends the thread."""
        if isinstance(instr, ConInstr):
            frame.write(instr.dest, instr.value)
        elif isinstance(instr, MovInstr):
            frame.write(instr.dest, frame.read(instr.src))
        elif isinstance(instr, SelfInstr):
            frame.write(instr.dest, frame.ref)
        elif isinstance(instr, OpInstr):
            a = self._operand(frame, instr.a)
            b = self._operand(frame, instr.b)
            frame.write(instr.dest, _apply(instr.op, a, b))
        elif isinstance(instr, ForkInstr):
            state.stack.append((frame, instr.label))
        elif isinstance(instr, SwitchInstr):
            if frame.read(instr.cond):
                state.stack.append((frame, instr.then_label))
            elif instr.else_label is not None:
                state.stack.append((frame, instr.else_label))
        elif isinstance(instr, StopInstr):
            return True
        elif isinstance(instr, ResetInstr):
            frame.reset(instr.counter, instr.count)
        elif isinstance(instr, FallocInstr):
            target = self._round_robin()
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.FALLOC,
                    node=target,
                    codeblock=instr.codeblock,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, SendInstr):
            ref = frame.read(instr.frame_slot)
            if not isinstance(ref, FrameRef):
                raise TamError(
                    f"SEND through slot {instr.frame_slot} which holds "
                    f"{ref!r}, not a frame reference"
                )
            values = tuple(frame.read(slot) for slot in instr.values)
            self.stats.messages.count_send(len(values))
            self._post(
                TamMessage(
                    MsgKind.SEND,
                    node=ref.node,
                    frame_id=ref.frame_id,
                    inlet=instr.inlet,
                    values=values,
                )
            )
        elif isinstance(instr, IallocInstr):
            target = self._round_robin()
            length = int(self._operand(frame, instr.length))
            self.stats.messages.count_send(1)
            self._post(
                TamMessage(
                    MsgKind.IALLOC,
                    node=target,
                    index=length,
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IfetchInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"IFETCH through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PREAD,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, IstoreInstr):
            ref = frame.read(instr.desc_slot)
            if not isinstance(ref, IStructRef):
                raise TamError(
                    f"ISTORE through slot {instr.desc_slot} which holds "
                    f"{ref!r}, not an I-structure reference"
                )
            self._post(
                TamMessage(
                    MsgKind.PWRITE,
                    node=ref.node,
                    descriptor=ref.descriptor,
                    index=int(self._operand(frame, instr.index)),
                    values=(frame.read(instr.value),),
                )
            )
        elif isinstance(instr, ReadInstr):
            self._post(
                TamMessage(
                    MsgKind.READ,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    reply_to=(frame.ref, instr.reply_inlet),
                )
            )
        elif isinstance(instr, WriteInstr):
            self._post(
                TamMessage(
                    MsgKind.WRITE,
                    node=int(frame.read(instr.node_slot)),
                    address=int(self._operand(frame, instr.address)),
                    values=(frame.read(instr.value),),
                )
            )
        else:  # pragma: no cover - exhaustive over instruction types
            raise TamError(f"unimplemented instruction {instr!r}")
        return False

    # ------------------------------------------------------------------
    # Message processing.
    # ------------------------------------------------------------------

    def _post(self, message: TamMessage) -> None:
        node = message.node
        if node < 0 or node >= self.n_nodes:
            raise TamError(f"message addressed to unknown node {node}")
        self.nodes[node].inbox.append(message)
        sched = self._sched
        if sched.active:
            # Keep the activity flags in sync: a node the sweep has not
            # reached yet joins the current sweep, otherwise the next one
            # (inlined ActiveSweep.wake — this is the hottest path in a
            # TAM run).
            if node > sched.sweep_pos:
                sched.in_current[node] = True
            else:
                sched.in_next[node] = True

    def _frame(self, state: _NodeState, frame_id: int) -> Frame:
        try:
            return state.frames[frame_id]
        except KeyError:
            raise TamError(
                f"node {state.node_id}: no frame {frame_id}"
            ) from None

    def _deliver_to_inlet(
        self, state: _NodeState, frame_id: int, inlet: int, values: Tuple
    ) -> None:
        frame = self._frame(state, frame_id)
        spec = frame.codeblock.inlet(inlet)
        for slot, value in zip(spec.dest_slots, values):
            frame.write(slot, value)
        if spec.counter is not None:
            posted = frame.decrement(spec.counter)
            if posted is not None:
                state.stack.append((frame, posted))

    def _reply(self, reply_to: Tuple[FrameRef, int], values: Tuple) -> None:
        ref, inlet = reply_to
        # Positional TamMessage: (kind, node, inlet, frame_id, values).
        self._post(TamMessage(MsgKind.REPLY, ref.node, inlet, ref.frame_id, values))

    def _process_message(self, state: _NodeState, message: TamMessage) -> None:
        # Identity if-chain ordered by dynamic frequency: enum identity
        # checks avoid the per-message hash a dict dispatch would pay.
        kind = message.kind
        if kind is MsgKind.SEND or kind is MsgKind.REPLY:
            self._deliver(state, message)
        elif kind is MsgKind.PREAD:
            self._on_pread(state, message)
        elif kind is MsgKind.PWRITE:
            self._on_pwrite(state, message)
        elif kind is MsgKind.FALLOC:
            self._on_falloc(state, message)
        elif kind is MsgKind.IALLOC:
            self._on_ialloc(state, message)
        elif kind is MsgKind.READ:
            self._on_read(state, message)
        elif kind is MsgKind.WRITE:
            self._on_write(state, message)
        else:  # pragma: no cover - exhaustive over MsgKind
            raise TamError(f"unimplemented message kind {kind}")

    def _deliver_message(self, state: _NodeState, message: TamMessage) -> None:
        self._deliver_to_inlet(
            state, message.frame_id, message.inlet, message.values
        )

    def _deliver_message_fast(
        self, state: _NodeState, message: TamMessage
    ) -> None:
        frame = state.frames.get(message.frame_id)
        if frame is None:
            raise TamError(f"node {state.node_id}: no frame {message.frame_id}")
        deliver = frame.inlets.get(message.inlet)
        if deliver is None:
            raise TamError(
                f"codeblock {frame.codeblock.name!r} has no inlet "
                f"{message.inlet}"
            )
        deliver(state, frame, message.values)

    def _on_falloc(self, state: _NodeState, message: TamMessage) -> None:
        frame = self._allocate_frame(state.node_id, message.codeblock)
        if frame.codeblock.entry is not None:
            state.stack.append((frame, frame.codeblock.entry))
        assert message.reply_to is not None
        self.stats.messages.count_send(1)  # the frame-ref reply is a Send
        self._post(
            TamMessage(
                MsgKind.SEND,
                node=message.reply_to[0].node,
                frame_id=message.reply_to[0].frame_id,
                inlet=message.reply_to[1],
                values=(frame.ref,),
            )
        )

    def _on_ialloc(self, state: _NodeState, message: TamMessage) -> None:
        descriptor = state.istructures.allocate(message.index)
        self.stats.istructures_allocated += 1
        assert message.reply_to is not None
        self.stats.messages.count_send(1)
        self._post(
            TamMessage(
                MsgKind.SEND,
                node=message.reply_to[0].node,
                frame_id=message.reply_to[0].frame_id,
                inlet=message.reply_to[1],
                values=(IStructRef(state.node_id, descriptor),),
            )
        )

    def _on_pread(self, state: _NodeState, message: TamMessage) -> None:
        mix = self.stats.messages
        # _encode_reader / _reply inlined: this handler runs once per
        # IFETCH and the call overhead is measurable.
        ref, inlet = message.reply_to
        reader = DeferredReader(
            (ref.node << _FRAME_ID_BITS) | ref.frame_id, inlet
        )
        outcome, value = state.istructures.read(
            message.descriptor, message.index, reader
        )
        if outcome == "full":
            mix.preads_full += 1
            self._post(
                TamMessage(MsgKind.REPLY, ref.node, inlet, ref.frame_id, (value,))
            )
        elif outcome == "empty":
            mix.preads_empty += 1
        else:
            mix.preads_deferred += 1

    def _on_pwrite(self, state: _NodeState, message: TamMessage) -> None:
        mix = self.stats.messages
        outcome, satisfied = state.istructures.write(
            message.descriptor, message.index, message.values[0]
        )
        if outcome == "empty":
            mix.pwrites_empty += 1
        else:
            mix.pwrites_deferred += 1
            mix.deferred_readers_satisfied += len(satisfied)
        for reader in satisfied:
            self._reply(_decode_reader(reader), (message.values[0],))

    def _on_read(self, state: _NodeState, message: TamMessage) -> None:
        self.stats.messages.reads += 1
        assert message.reply_to is not None
        self._reply(message.reply_to, (state.memory.load(message.address),))

    def _on_write(self, state: _NodeState, message: TamMessage) -> None:
        self.stats.messages.writes += 1
        state.memory.store(message.address, int(message.values[0]))


def _encode_reader(reply_to: Tuple[FrameRef, int]) -> DeferredReader:
    ref, inlet = reply_to
    return DeferredReader((ref.node << _FRAME_ID_BITS) | ref.frame_id, inlet)


def _decode_reader(reader: DeferredReader) -> Tuple[FrameRef, int]:
    node = reader.frame_pointer >> _FRAME_ID_BITS
    frame_id = reader.frame_pointer & ((1 << _FRAME_ID_BITS) - 1)
    return FrameRef(node, frame_id), reader.instruction_pointer


def _apply(op: Op, a, b):
    fn = OP_FUNCS.get(op)
    if fn is None:
        raise TamError(f"unimplemented op {op}")
    return fn(a, b)
