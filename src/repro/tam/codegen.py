"""Whole-thread code generation: the TAM's third execution backend.

The fast path (:mod:`repro.tam.fastpath`) made every *dispatch* decision
at ``load()`` time but still pays one Python call per instruction — a
thread is a tuple of bound closures walked by a loop.  This module goes
the rest of the way, the software analogue of the paper's observation
that a handler whose ``MsgIp`` is precomputed can run as one straight
jump: each whole thread becomes a *single generated Python function*.
At ``load()`` time the instruction sequence is emitted as source text
with operand shapes, slot indices, and synchronisation counters resolved
to constants, ``exec``'d once per codeblock, and dispatched as one call
per thread run.

Three structural choices make the generated code fast:

* **Flat frames** — an activation is a plain list, not a
  :class:`~repro.tam.frame.Frame`: ``f[0]`` is the codeblock's inlet
  dispatch dict (message delivery is two list indexes and a dict get),
  ``f[1]`` the :class:`~repro.tam.frame.FrameRef`, ``f[2]`` the
  :class:`CodegenBlock` descriptor, ``f[3]`` the owner node id (so
  inlined message code never touches the FrameRef descriptors on the
  hot path), slots live at ``f[SLOT_BASE + s]`` and counters after the
  slots — every offset a compile-time constant in the generated source.
  ``Frame`` remains the reference path's view; :class:`FlatFrameView`
  re-presents a flat frame in that shape for hosts and tests.
* **Two-element stack pushes** — a continuation is pushed as two bare
  appends (frame, then thread function) instead of an allocated tuple;
  the service loop pops the function and calls it with the frame.
* **Batched statistics** — the first line of every generated thread
  bumps one integer in a machine-wide run-count list; instruction mixes
  and send-word counts are static per thread, so the machine folds
  ``runs x static mix`` into :class:`~repro.tam.stats.TamStats` once per
  run instead of once per thread.  (On *error* paths this charges the
  full thread where the reference path charges the executed prefix; the
  error itself is identical, and no equivalence contract covers stats
  after a raise.)

Equivalence: generated code raises the reference path's exact errors at
the same execution points (out-of-range slots, bad SEND/IFETCH/ISTORE
references, counter underflow, missing threads, threads without STOP)
and reproduces the reference service order exactly.  Unobserved
machines run the fused loop in :meth:`TamMachine._run_codegen_fused`
(the :class:`repro.sim.sweep.ActiveSweep` flag-array order, inlined);
machines under a tracer or profiler post through ``machine._post``
captured at compile time and are driven generically on
:class:`repro.sim.sweep.EventSweep` — the heap scheduler pinned
turn-for-turn to the same order — so a codegen run is bit-identical to
a reference run either way (``tests/tam/test_backend_matrix``).
"""

from __future__ import annotations

from math import isfinite
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FrameError, TamError
from repro.tam.codeblock import Codeblock, InletSpec
from repro.tam.frame import FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    Kind,
    MovInstr,
    OpInstr,
    ReadInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    SwitchInstr,
    WriteInstr,
)
from repro.tam.messages import IStructRef, MsgKind, TamMessage

# Flat-frame layout: [inlets, ref, block, node_id,
# slot 0..frame_size-1, counter 0..n_counters-1].
SLOT_BASE = 4

# ALU source templates, shared shape with fastpath._OP_TEMPLATES /
# OP_FUNCS so all three backends compute bit-identical values.  {a}/{b}
# are side-effect-free expressions, safe to evaluate twice (MIN/MAX).
# The second element names the coercion each operand gets; immediates
# are coerced at emission time instead (``int(16)`` folds to ``16``),
# which removes one call per immediate operand from the hot thread
# bodies.
_OP_TEMPLATES = {
    "IADD": ("{a} + {b}", "int"),
    "ISUB": ("{a} - {b}", "int"),
    "IMUL": ("{a} * {b}", "int"),
    "IDIV": ("{a} // {b}", "int"),
    "FADD": ("{a} + {b}", "float"),
    "FSUB": ("{a} - {b}", "float"),
    "FMUL": ("{a} * {b}", "float"),
    "FDIV": ("{a} / {b}", "float"),
    "LT": ("1 if {a} < {b} else 0", None),
    "LE": ("1 if {a} <= {b} else 0", None),
    "EQ": ("1 if {a} == {b} else 0", None),
    "AND": ("1 if ({a} and {b}) else 0", None),
    "OR": ("1 if ({a} or {b}) else 0", None),
    "MIN": ("{a} if {a} < {b} else {b}", None),
    "MAX": ("{a} if {a} > {b} else {b}", None),
}

# Ops whose emitted expression is a literal ``1``/``0``, giving the
# destination slot a provably-int value for slot_types tracking.
_INT_RESULT_OPS = frozenset({"LT", "LE", "EQ", "AND", "OR"})


# ---------------------------------------------------------------------------
# Runtime helpers the generated code calls on cold paths.  Each raises
# the reference interpreter's exact error.
# ---------------------------------------------------------------------------


def _oob(frame: list, slot: int) -> None:
    """Out-of-range slot access: the reference FrameError."""
    block = frame[2]
    raise FrameError(
        f"{block.name}{frame[1]}: slot {slot} outside frame "
        f"of {block.frame_size}"
    )


def _underflow(frame: list, counter: str) -> None:
    block = frame[2]
    raise FrameError(
        f"{block.name}{frame[1]}: counter {counter!r} "
        "decremented below zero"
    )


def _check_send_ref(ref, slot: int) -> None:
    """Slow-path SEND target check (identity test failed in-line)."""
    if not isinstance(ref, FrameRef):
        raise TamError(
            f"SEND through slot {slot} which holds "
            f"{ref!r}, not a frame reference"
        )


def _check_ifetch_ref(ref, slot: int) -> None:
    if not isinstance(ref, IStructRef):
        raise TamError(
            f"IFETCH through slot {slot} which holds "
            f"{ref!r}, not an I-structure reference"
        )


def _check_istore_ref(ref, slot: int) -> None:
    if not isinstance(ref, IStructRef):
        raise TamError(
            f"ISTORE through slot {slot} which holds "
            f"{ref!r}, not an I-structure reference"
        )


def _bad_node(node: int) -> None:
    """Slow-path target check for inlined posts: the _post error."""
    raise TamError(f"message addressed to unknown node {node}")


def _missing_inlet(codeblock_name: str, inlet: int) -> Callable:
    """A reply target for an IFETCH whose reply inlet does not exist.

    The reference path raises when the reply is *delivered*, so the
    stub must surface the error at that turn, not when the read posts.
    """
    message = f"codeblock {codeblock_name!r} has no inlet {inlet}"

    def missing(stack, frame, value):
        raise TamError(message)

    return missing


def _missing_thread(codeblock_name: str, label: str) -> Callable:
    """A continuation for a FORK/SWITCH target that does not exist.

    The reference path resolves labels when the continuation is popped,
    so the error must surface at service time, not at load time.
    """
    message = f"codeblock {codeblock_name!r} has no thread {label!r}"

    def missing(stack, frame):
        raise TamError(message)

    return missing


# ---------------------------------------------------------------------------
# Host-facing descriptors.
# ---------------------------------------------------------------------------


class CodegenBlock:
    """One codeblock compiled to generated thread/inlet functions."""

    __slots__ = (
        "name",
        "codeblock",
        "frame_size",
        "threads",
        "inlets",
        "entry_fn",
        "counter_order",
        "counter_init",
        "source",
    )

    def __init__(self, codeblock: Codeblock) -> None:
        self.name = codeblock.name
        self.codeblock = codeblock
        self.frame_size = codeblock.frame_size
        self.threads: Dict[str, Callable] = {}
        self.inlets: Dict[int, Callable] = {}
        self.entry_fn: Optional[Callable] = None
        # Counters live after the slots, in codeblock insertion order.
        self.counter_order: Tuple[str, ...] = tuple(codeblock.counters)
        self.counter_init: List[int] = [
            spec.count for spec in codeblock.counters.values()
        ]
        self.source = ""

    def counter_index(self, counter: str) -> int:
        """Flat-frame index of ``counter`` (raises ValueError if unknown)."""
        return SLOT_BASE + self.frame_size + self.counter_order.index(counter)

    def make_frame(self, ref: FrameRef) -> list:
        return [self.inlets, ref, self, ref.node] + [0] * self.frame_size + (
            list(self.counter_init)
        )


def flat_read(frame: list, slot: int):
    """Checked host-level slot read on a flat frame."""
    block = frame[2]
    if slot < 0 or slot >= block.frame_size:
        _oob(frame, slot)
    return frame[SLOT_BASE + slot]


def flat_write(frame: list, slot: int, value) -> None:
    """Checked host-level slot write on a flat frame."""
    block = frame[2]
    if slot < 0 or slot >= block.frame_size:
        _oob(frame, slot)
    frame[SLOT_BASE + slot] = value


class FlatFrameView:
    """A :class:`~repro.tam.frame.Frame`-shaped view of a flat frame.

    Slots and counters read through to the live flat frame, so the view
    compares field for field against a reference-path ``Frame`` — the
    backend-matrix tests use exactly that.
    """

    __slots__ = ("_frame",)

    def __init__(self, frame: list) -> None:
        self._frame = frame

    @property
    def codeblock(self) -> Codeblock:
        return self._frame[2].codeblock

    @property
    def ref(self) -> FrameRef:
        return self._frame[1]

    @property
    def slots(self) -> list:
        block = self._frame[2]
        return self._frame[SLOT_BASE:SLOT_BASE + block.frame_size]

    def read(self, slot: int):
        return flat_read(self._frame, slot)

    def counter_value(self, counter: str) -> int:
        return self._frame[self._frame[2].counter_index(counter)]


# ---------------------------------------------------------------------------
# Source emission.
# ---------------------------------------------------------------------------


class _Emitter:
    """Per-codeblock emission state: namespace, constant pool, names."""

    def __init__(self, codeblock: Codeblock, machine) -> None:
        self.codeblock = codeblock
        self.machine = machine
        # The exec namespace: restricted builtins plus the machine hooks
        # every message instruction needs.  ``post`` is whatever
        # machine._post resolves to *now* — the traced wrapper when a
        # tracer was installed at construction.
        self.namespace = {
            "__builtins__": {},
            "int": int,
            "float": float,
            "zip": zip,
            "TamError": TamError,
            "FrameError": FrameError,
            "FrameRef": FrameRef,
            "IStructRef": IStructRef,
            "TamMessage": TamMessage,
            "SEND": MsgKind.SEND,
            "FALLOC": MsgKind.FALLOC,
            "IALLOC": MsgKind.IALLOC,
            "PREAD": MsgKind.PREAD,
            "PWRITE": MsgKind.PWRITE,
            "READ": MsgKind.READ,
            "WRITE": MsgKind.WRITE,
            "post": machine._post,
            "rr": machine._round_robin,
            "tr": machine._cg_runs,
            "_oob": _oob,
            "_undf": _underflow,
            "_ck_send": _check_send_ref,
            "_ck_ifetch": _check_ifetch_ref,
            "_ck_istore": _check_istore_ref,
        }
        # Unobserved machines (no tracer, no profiler, no lineage — the
        # ones _run_codegen_fused drives) get the post transport
        # inlined: generated message instructions append to the target
        # inbox and set the sweep flag directly, skipping the closure
        # call, and build plain tuples instead of TamMessages for the
        # kinds the fused loop consumes positionally (SEND, PREAD).
        # Observed machines keep the ``post`` call so traced/lineage
        # wrappers see every message and _on_pread's attribute access
        # keeps working.
        self.inline_post = (
            machine.tracer is None
            and machine.profiler is None
            and machine.lineage is None
        )
        if self.inline_post:
            self.namespace.update({
                "nodes": machine.nodes,
                "sched": machine._sched,
                "NN": machine.n_nodes,
                "_badnode": _bad_node,
            })
        self.frame_size = codeblock.frame_size
        self.counter_order = tuple(codeblock.counters)
        # Per-thread slot typing: slot -> "int" | "float" | None, valid
        # for the thread body currently being emitted.  Within a thread
        # all slot writes are straight-line (Switch branches only push
        # continuations), so forward tracking is sound; it lets
        # coerced_operand drop ``int(...)``/``float(...)`` around slots
        # whose current value provably has the target type.
        self.slot_types: Dict[int, Optional[str]] = {}
        # Per-thread descriptor cache (inline mode): desc slot ->
        # (ref local, node local) already emitted for this thread body.
        # Straight-line threads fetch from the same I-structure slot
        # many times (matmul's dot-product threads issue dozens of
        # IFETCHes against two arrays); once the first access verified
        # the slot holds an IStructRef on a valid node, repeats reuse
        # the locals — the slot is unchanged, so the skipped checks
        # would pass (or fail) identically.  Invalidated on slot write.
        self.desc_cache: Dict[int, Tuple[str, str]] = {}
        # Set by post_lines when the current thread body emitted its
        # scheduler-local preamble (see post_lines); reset per thread.
        self.uses_sched_locals = False
        # Thread labels -> generated function names, assigned up front so
        # forward FORK references resolve (name lookup happens at call
        # time against the shared namespace).
        self.thread_names = {
            label: f"t{i}" for i, label in enumerate(codeblock.threads)
        }
        self._n_constants = 0
        self._n_missing = 0

    # -- expression helpers -------------------------------------------------

    def constant(self, value) -> str:
        """A source expression reproducing ``value`` exactly."""
        kind = type(value)
        if kind is int or kind is bool:
            return repr(value)
        if kind is float and isfinite(value):
            return repr(value)  # float repr round-trips exactly
        name = f"K{self._n_constants}"
        self._n_constants += 1
        self.namespace[name] = value
        return name

    def in_range(self, slot) -> bool:
        return not isinstance(slot, Imm) and 0 <= slot < self.frame_size

    def slot_expr(self, slot: int) -> str:
        return f"f[{SLOT_BASE + slot}]"

    def operand(self, operand) -> str:
        if isinstance(operand, Imm):
            return self.constant(operand.value)
        return self.slot_expr(operand)

    def coerced_operand(self, operand, coerce: Optional[str]) -> str:
        """``operand`` with the op's type coercion applied.

        Immediates are compile-time constants, so their coercion folds
        into the emitted literal; slots keep the runtime call because
        frame contents are only known when the thread runs.
        """
        if isinstance(operand, Imm):
            value = operand.value
            if coerce == "int":
                value = int(value)
            elif coerce == "float":
                value = float(value)
            return self.constant(value)
        expr = self.slot_expr(operand)
        if coerce is not None and self.slot_types.get(operand) != coerce:
            expr = f"{coerce}({expr})"
        return expr

    def counter_index(self, counter: str) -> int:
        return SLOT_BASE + self.frame_size + self.counter_order.index(counter)

    def thread_fn(self, label: str) -> str:
        """The generated name for ``label``, or a missing-thread stub."""
        name = self.thread_names.get(label)
        if name is None:
            name = f"tmiss{self._n_missing}"
            self._n_missing += 1
            self.namespace[name] = _missing_thread(self.codeblock.name, label)
        return name

    def inlet_fn(self, number: int) -> str:
        """The single-value delivery variant for inlet ``number``.

        Returns the ``i<number>s`` name (see
        :func:`_with_single_value_variant`), or a raising stub when the
        inlet does not exist so the reference error surfaces at
        delivery time.
        """
        if number in self.codeblock.inlets:
            return f"i{number}s"
        name = f"imiss{self._n_missing}"
        self._n_missing += 1
        self.namespace[name] = _missing_inlet(self.codeblock.name, number)
        return name

    def first_oob(self, accesses) -> Optional[int]:
        """The first out-of-range slot in reference access order, if any.

        ``accesses`` lists operands/slots in the order the reference
        interpreter touches them; the whole instruction compiles to one
        ``_oob`` raise when any is out of range (later reads never run).
        """
        for access in accesses:
            if isinstance(access, Imm):
                continue
            if not 0 <= access < self.frame_size:
                return access
        return None

    def post_lines(
        self,
        node_expr: str,
        message: str,
        checked: bool = True,
        node_var: Optional[str] = None,
    ) -> List[str]:
        """Statements that post ``message`` to node ``node_expr``.

        ``message`` is a source template with ``{n}`` standing for the
        target-node expression; ``node_expr`` is evaluated exactly once
        in both modes.  Observed machines emit one ``post(...)`` call;
        unobserved ones inline the transport — inbox append plus the
        sweep wake rule over the flag arrays.  ``checked=False`` skips
        the bounds test for targets the round-robin allocator produced;
        ``node_var`` names a local already holding a bounds-checked
        node id (the descriptor cache), skipping both the assignment
        and the test.

        The first inlined post of a thread body hoists
        ``sched.sweep_pos``/``in_current``/``in_next`` into locals for
        the rest of the body: a generated thread runs entirely within
        one turn, and the fused loop only advances ``sweep_pos`` and
        swaps the flag arrays between turns, so the hoisted values
        stay live for every post the thread makes.
        """
        if not self.inline_post:
            return [f"post({message.format(n=node_expr)})"]
        lines = []
        if not self.uses_sched_locals:
            self.uses_sched_locals = True
            lines += [
                "_sp = sched.sweep_pos",
                "_ic = sched.in_current",
                "_in = sched.in_next",
            ]
        if node_var is not None:
            n = node_var
        else:
            n = "_n"
            lines.append(f"_n = {node_expr}")
            if checked:
                lines += ["if _n < 0 or _n >= NN:", "    _badnode(_n)"]
        lines += [
            f"nodes[{n}].inbox.append({message.format(n=n)})",
            f"if {n} > _sp:",
            f"    _ic[{n}] = True",
            "else:",
            f"    _in[{n}] = True",
        ]
        return lines

    def desc_lines(self, slot: int, check_fn: str) -> Tuple[str, str, List[str]]:
        """A checked descriptor/node local pair for ``slot`` (inline mode).

        Returns ``(ref_var, node_var, lines)``; ``lines`` is empty when
        an earlier IFETCH/ISTORE in this thread body already verified
        the same slot.  ``check_fn`` is the raising type check for the
        instruction that emits first (later accesses can only succeed
        or fail the same way, so which check guards the slot does not
        change behaviour).
        """
        cached = self.desc_cache.get(slot)
        if cached is not None:
            return cached[0], cached[1], []
        dvar, nvar = f"_d{slot}", f"_n{slot}"
        lines = [
            f"{dvar} = {self.slot_expr(slot)}",
            f"if {dvar}.__class__ is not IStructRef:",
            f"    {check_fn}({dvar}, {slot})",
        ]
        return dvar, nvar, lines

    def desc_node_lines(self, slot: int, dvar: str, nvar: str) -> List[str]:
        """Bounds-checked node extraction, second half of the cache fill.

        Split from :meth:`desc_lines` so a compile-time out-of-range
        index raise can sit between the type check and the node check,
        matching the reference interpreter's access order.  Only this
        half publishes the cache entry: an instruction that bailed on
        an out-of-range index never reaches the node check, so later
        accesses to the same slot must re-emit it.
        """
        self.desc_cache[slot] = (dvar, nvar)
        return [
            f"{nvar} = {dvar}.node",
            f"if {nvar} < 0 or {nvar} >= NN:",
            f"    _badnode({nvar})",
        ]


def _push_lines(emitter: _Emitter, label: str) -> List[str]:
    fn = emitter.thread_fn(label)
    return ["stack.append(f)", f"stack.append({fn})"]


def _emit_instr(e: _Emitter, instr) -> List[str]:
    """Source statements for one instruction (unindented)."""
    kind = type(instr)
    if kind is ConInstr:
        bad = e.first_oob([instr.dest])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        vt = type(instr.value)
        e.slot_types[instr.dest] = (
            "int" if vt is int else "float" if vt is float else None
        )
        e.desc_cache.pop(instr.dest, None)
        return [f"{e.slot_expr(instr.dest)} = {e.constant(instr.value)}"]
    if kind is MovInstr:
        bad = e.first_oob([instr.src, instr.dest])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        e.slot_types[instr.dest] = e.slot_types.get(instr.src)
        e.desc_cache.pop(instr.dest, None)
        return [f"{e.slot_expr(instr.dest)} = {e.slot_expr(instr.src)}"]
    if kind is SelfInstr:
        bad = e.first_oob([instr.dest])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        e.slot_types[instr.dest] = None
        e.desc_cache.pop(instr.dest, None)
        return [f"{e.slot_expr(instr.dest)} = f[1]"]
    if kind is OpInstr:
        bad = e.first_oob([instr.a, instr.b])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        entry = _OP_TEMPLATES.get(instr.op.name)
        if entry is None:  # pragma: no cover - parity with reference
            return [f"raise TamError({f'unimplemented op {instr.op}'!r})"]
        template, coerce = entry
        bad = e.first_oob([instr.dest])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        name = instr.op.name
        # Operand expressions read the pre-instruction typing state;
        # only then does dest pick up this op's result type (coercing
        # ops produce their coercion type, comparisons and AND/OR emit
        # literal 1/0, MIN/MAX pass operands through untyped).
        a = e.coerced_operand(instr.a, coerce)
        b = e.coerced_operand(instr.b, coerce)
        e.slot_types[instr.dest] = (
            coerce
            if coerce is not None
            else "int" if name in _INT_RESULT_OPS else None
        )
        e.desc_cache.pop(instr.dest, None)
        # Integer identity folds: ``x + 0`` / ``x * 1`` style moves are
        # a common TAM idiom (there is no register copy instruction);
        # ``a`` is already coerced, so dropping the no-op keeps the
        # value bit-identical.  Floats are left alone (``-0.0 + 0.0``
        # would change sign).
        if coerce == "int" and isinstance(instr.b, Imm):
            bv = int(instr.b.value)
            if (name in ("IADD", "ISUB") and bv == 0) or (
                name in ("IMUL", "IDIV") and bv == 1
            ):
                return [f"{e.slot_expr(instr.dest)} = {a}"]
        expr = template.format(a=a, b=b)
        return [f"{e.slot_expr(instr.dest)} = {expr}"]
    if kind is ForkInstr:
        return _push_lines(e, instr.label)
    if kind is SwitchInstr:
        bad = e.first_oob([instr.cond])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        lines = [f"if {e.slot_expr(instr.cond)}:"]
        lines += ["    " + line for line in _push_lines(e, instr.then_label)]
        if instr.else_label is not None:
            lines.append("else:")
            lines += [
                "    " + line for line in _push_lines(e, instr.else_label)
            ]
        return lines
    if kind is ResetInstr:
        counter, count = instr.counter, instr.count
        if counter not in e.codeblock.counters:
            message = (
                f"{{0}}{{1}}: no counter {counter!r}"
            )
            return [
                f"raise FrameError({message!r}.format(f[2].name, f[1]))"
            ]
        if count < 0:
            return [
                "raise FrameError("
                f"{f'cannot reset counter {counter!r} to {count}'!r})"
            ]
        return [f"f[{e.counter_index(counter)}] = {count}"]
    if kind is FallocInstr:
        return e.post_lines(
            "rr()",
            "TamMessage(FALLOC, {n}, 0, 0, (), "
            f"{instr.codeblock!r}, (f[1], {instr.reply_inlet}))",
            checked=False,
        )
    if kind is SendInstr:
        bad = e.first_oob([instr.frame_slot])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        lines = [
            f"_r = {e.slot_expr(instr.frame_slot)}",
            "if _r.__class__ is not FrameRef:",
            f"    _ck_send(_r, {instr.frame_slot})",
        ]
        bad = e.first_oob(list(instr.values))
        if bad is not None:
            return lines + [f"_oob(f, {bad})"]
        values = "".join(f"{e.slot_expr(s)}, " for s in instr.values)
        # Inlined posts build a plain tuple: the fused loop consumes
        # SEND/REPLY positionally, and skipping the NamedTuple
        # constructor is measurable at this call frequency.
        ctor = "(" if e.inline_post else "TamMessage(SEND, "
        head = "SEND, " if e.inline_post else ""
        return lines + e.post_lines(
            "_r.node",
            f"{ctor}{head}{{n}}, {instr.inlet}, _r.frame_id, ({values}))",
        )
    if kind is IallocInstr:
        bad = e.first_oob([instr.length])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        return e.post_lines(
            "rr()",
            "TamMessage(IALLOC, {n}, 0, 0, (), '', "
            f"(f[1], {instr.reply_inlet}), 0, int({e.operand(instr.length)}))",
            checked=False,
        )
    if kind is IfetchInstr:
        bad = e.first_oob([instr.desc_slot])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        if e.inline_post:
            dvar, nvar, lines = e.desc_lines(instr.desc_slot, "_ck_ifetch")
            bad = e.first_oob([instr.index])
            if bad is not None:
                return lines + [f"_oob(f, {bad})"]
            if lines:
                lines += e.desc_node_lines(instr.desc_slot, dvar, nvar)
            # The inline PREAD carries the bound single-value reply
            # inlet, the frame list itself, and the owner node id
            # (``f[3]``): the fused loop replies without any frame or
            # inlet lookup and defers readers without packing a
            # DeferredReader.  Compact layout: [2] inlet fn, [3] frame,
            # [4] owner node, [5] descriptor, [6] index.
            # coerced_operand folds the index coercion away for
            # immediates and provably-int slots (loop counters), the
            # two common cases.
            return lines + e.post_lines(
                nvar,
                f"(PREAD, {{n}}, {e.inlet_fn(instr.reply_inlet)}, f, "
                f"f[3], {dvar}.descriptor, "
                f"{e.coerced_operand(instr.index, 'int')})",
                node_var=nvar,
            )
        lines = [
            f"_d = {e.slot_expr(instr.desc_slot)}",
            "if _d.__class__ is not IStructRef:",
            f"    _ck_ifetch(_d, {instr.desc_slot})",
        ]
        bad = e.first_oob([instr.index])
        if bad is not None:
            return lines + [f"_oob(f, {bad})"]
        return lines + e.post_lines(
            "_d.node",
            "TamMessage(PREAD, {n}, 0, 0, (), '', "
            f"(f[1], {instr.reply_inlet}), _d.descriptor, "
            f"int({e.operand(instr.index)}))",
        )
    if kind is IstoreInstr:
        bad = e.first_oob([instr.desc_slot])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        if e.inline_post:
            dvar, nvar, lines = e.desc_lines(instr.desc_slot, "_ck_istore")
            bad = e.first_oob([instr.index, instr.value])
            if bad is not None:
                return lines + [f"_oob(f, {bad})"]
            if lines:
                lines += e.desc_node_lines(instr.desc_slot, dvar, nvar)
            return lines + e.post_lines(
                nvar,
                "TamMessage(PWRITE, {n}, 0, 0, "
                f"({e.slot_expr(instr.value)},), '', None, {dvar}.descriptor, "
                f"{e.coerced_operand(instr.index, 'int')})",
                node_var=nvar,
            )
        lines = [
            f"_d = {e.slot_expr(instr.desc_slot)}",
            "if _d.__class__ is not IStructRef:",
            f"    _ck_istore(_d, {instr.desc_slot})",
        ]
        bad = e.first_oob([instr.index, instr.value])
        if bad is not None:
            return lines + [f"_oob(f, {bad})"]
        return lines + e.post_lines(
            "_d.node",
            "TamMessage(PWRITE, {n}, 0, 0, "
            f"({e.slot_expr(instr.value)},), '', None, _d.descriptor, "
            f"int({e.operand(instr.index)}))",
        )
    if kind is ReadInstr:
        bad = e.first_oob([instr.node_slot, instr.address])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        return e.post_lines(
            f"int({e.slot_expr(instr.node_slot)})",
            "TamMessage(READ, {n}, "
            f"0, 0, (), '', (f[1], {instr.reply_inlet}), 0, 0, "
            f"int({e.operand(instr.address)}))",
        )
    if kind is WriteInstr:
        bad = e.first_oob([instr.node_slot, instr.address, instr.value])
        if bad is not None:
            return [f"_oob(f, {bad})"]
        return e.post_lines(
            f"int({e.slot_expr(instr.node_slot)})",
            "TamMessage(WRITE, {n}, "
            f"0, 0, ({e.slot_expr(instr.value)},), '', None, 0, 0, "
            f"int({e.operand(instr.address)}))",
        )
    # Unknown instruction subclass: raise the reference error when (and
    # only when) the thread actually runs.
    return [f"raise TamError({f'unimplemented instruction {instr!r}'!r})"]


def _emit_thread(
    e: _Emitter, label: str, run_index: int
) -> Tuple[List[str], Tuple, Tuple]:
    """Generate one thread function; returns (lines, mix, send mix)."""
    codeblock = e.codeblock
    prefix, complete = codeblock.executable_prefix(label)
    e.slot_types.clear()
    e.desc_cache.clear()
    e.uses_sched_locals = False
    mix: Dict[Kind, int] = {}
    send_words: Dict[int, int] = {}
    for instr in prefix:
        mix[instr.kind] = mix.get(instr.kind, 0) + 1
        if isinstance(instr, SendInstr):
            words = len(instr.values)
            send_words[words] = send_words.get(words, 0) + 1
        elif isinstance(instr, (FallocInstr, IallocInstr)):
            send_words[1] = send_words.get(1, 0) + 1
    body = prefix[:-1] if complete else prefix
    lines = [
        f"def {e.thread_names[label]}(stack, f):",
        f"    tr[{run_index}] += 1",
    ]
    for instr in body:
        lines += ["    " + line for line in _emit_instr(e, instr)]
    if not complete:
        message = (
            f"thread {label!r} of {codeblock.name!r} fell off its end "
            "without STOP"
        )
        lines.append(f"    raise TamError({message!r})")
    return lines, tuple(mix.items()), tuple(send_words.items())


def _emit_inlet(e: _Emitter, number: int, spec: InletSpec) -> List[str]:
    """Generate one inlet delivery function ``i<number>(stack, f, values)``.

    ``validate()`` guarantees destination slots are in range and the
    counter (with its zero-thread) exists, so delivery is unconditional
    stores plus a constant-index counter decrement.
    """
    lines = [f"def i{number}(stack, f, values):"]
    dest = spec.dest_slots
    if len(dest) == 1:
        lines += [
            "    if values:",
            f"        f[{SLOT_BASE + dest[0]}] = values[0]",
        ]
    elif dest:
        name = f"D{number}"
        e.namespace[name] = tuple(SLOT_BASE + slot for slot in dest)
        lines += [
            f"    for _s, _v in zip({name}, values):",
            "        f[_s] = _v",
        ]
    counter = spec.counter
    if counter is None:
        if not dest:
            lines.append("    pass")
        return _with_single_value_variant(e, number, spec, lines)
    index = e.counter_index(counter)
    thread_fn = e.thread_fn(e.codeblock.counters[counter].thread)
    lines += [
        f"    _c = f[{index}]",
        "    if _c <= 0:",
        f"        _undf(f, {counter!r})",
        "    _c -= 1",
        f"    f[{index}] = _c",
        "    if _c == 0:",
        "        stack.append(f)",
        f"        stack.append({thread_fn})",
    ]
    return _with_single_value_variant(e, number, spec, lines)


def _with_single_value_variant(
    e: _Emitter, number: int, spec: InletSpec, lines: List[str]
) -> List[str]:
    """Append the one-value delivery variant ``i<number>s(stack, f, v)``.

    Machine-built replies (PREAD/IFETCH responses on the fused path)
    always carry exactly one value; a variant that takes it bare skips
    the tuple packing on the sending side and the unpack here.  The
    body mirrors the general inlet with ``values`` replaced by one
    unconditional store (reference semantics bank ``zip(dest_slots,
    values)``, so one value lands in the first destination slot).
    """
    if not e.inline_post:
        return lines
    variant = [f"def i{number}s(stack, f, v):"]
    body_start = len(variant)
    dest = spec.dest_slots
    if dest:
        variant.append(f"    f[{SLOT_BASE + dest[0]}] = v")
    counter = spec.counter
    if counter is not None:
        index = e.counter_index(counter)
        thread_fn = e.thread_fn(e.codeblock.counters[counter].thread)
        variant += [
            f"    _c = f[{index}]",
            "    if _c <= 0:",
            f"        _undf(f, {counter!r})",
            "    _c -= 1",
            f"    f[{index}] = _c",
            "    if _c == 0:",
            "        stack.append(f)",
            f"        stack.append({thread_fn})",
        ]
    if len(variant) == body_start:
        variant.append("    pass")
    return lines + [""] + variant


# Source-text -> code-object cache.  The emitted source is a pure
# function of the codeblock and the emission mode (machine identity only
# enters through namespace *bindings*), so re-loading the same program
# on a fresh machine — every benchmark repeat, every experiment run —
# skips CPython's parser, which costs more than executing the compiled
# module.  Bounded so pathological workloads cannot grow it forever.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}
_CODE_CACHE_MAX = 256


def _compiled_code(source: str, filename: str):
    key = (filename, source)
    code = _CODE_CACHE.get(key)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        code = compile(source, filename, "exec")
        _CODE_CACHE[key] = code
    return code


def compile_codegen(codeblock: Codeblock, machine) -> CodegenBlock:
    """Compile a validated codeblock into generated functions.

    Compilation is per *machine* (like the fast path): the generated
    source closes over the machine's post/round-robin hooks and its
    thread-run-count list, and registers each thread's static instruction
    and send-word mixes with the machine for end-of-run stats folding.
    """
    emitter = _Emitter(codeblock, machine)
    block = CodegenBlock(codeblock)
    chunks: List[str] = []
    for label in codeblock.threads:
        run_index = len(machine._cg_runs)
        machine._cg_runs.append(0)
        lines, mix, send_words = _emit_thread(emitter, label, run_index)
        machine._cg_meta.append((mix, send_words))
        chunks.append("\n".join(lines))
    for number, spec in codeblock.inlets.items():
        chunks.append("\n".join(_emit_inlet(emitter, number, spec)))
    block.source = "\n\n".join(chunks) + "\n"
    namespace = emitter.namespace
    exec(
        _compiled_code(block.source, f"<tam codegen {codeblock.name}>"),
        namespace,
    )
    block.threads = {
        label: namespace[name] for label, name in emitter.thread_names.items()
    }
    block.inlets = {
        number: namespace[f"i{number}"] for number in codeblock.inlets
    }
    if codeblock.entry is not None:
        block.entry_fn = block.threads[codeblock.entry]
    return block
