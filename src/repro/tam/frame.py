"""Activation frames and frame references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FrameError
from repro.tam.codeblock import Codeblock


@dataclass(frozen=True)
class FrameRef:
    """A global activation name: (node, local frame id).

    This is the value the architecture would carry in a message's FP word;
    the TAM runtime keeps it symbolic.
    """

    node: int
    frame_id: int


class Frame:
    """One activation: slots plus live synchronisation counters."""

    # Frames are allocated once per activation and machines allocate many
    # thousands of them; __slots__ keeps them compact and makes attribute
    # access in the interpreter hot loop cheaper.
    __slots__ = (
        "codeblock", "ref", "slots", "_counters", "finished", "compiled",
        "inlets",
    )

    def __init__(self, codeblock: Codeblock, ref: FrameRef) -> None:
        self.codeblock = codeblock
        self.ref = ref
        self.slots: List[float] = [0] * codeblock.frame_size
        self._counters: Dict[str, int] = {
            label: spec.count for label, spec in codeblock.counters.items()
        }
        self.finished = False
        # Set by the machine when the codeblock has been compiled for the
        # fast path (repro.tam.fastpath); None on the reference path.
        # ``inlets`` mirrors ``compiled.inlets`` so message delivery skips
        # an attribute hop per message.
        self.compiled = None
        self.inlets = None

    def read(self, slot: int) -> float:
        self._check(slot)
        return self.slots[slot]

    def write(self, slot: int, value: float) -> None:
        self._check(slot)
        self.slots[slot] = value

    def _check(self, slot: int) -> None:
        if slot < 0 or slot >= len(self.slots):
            raise FrameError(
                f"{self.codeblock.name}{self.ref}: slot {slot} outside frame "
                f"of {len(self.slots)}"
            )

    # ------------------------------------------------------------------
    # Synchronisation counters.
    # ------------------------------------------------------------------

    def decrement(self, counter: str) -> Optional[str]:
        """Decrement ``counter``; returns the thread to post on zero."""
        try:
            remaining = self._counters[counter]
        except KeyError:
            raise FrameError(
                f"{self.codeblock.name}{self.ref}: no counter {counter!r}"
            ) from None
        if remaining <= 0:
            raise FrameError(
                f"{self.codeblock.name}{self.ref}: counter {counter!r} "
                "decremented below zero"
            )
        remaining -= 1
        self._counters[counter] = remaining
        if remaining == 0:
            return self.codeblock.counters[counter].thread
        return None

    def reset(self, counter: str, count: int) -> None:
        """Re-arm a counter (loop threads use this between iterations)."""
        if counter not in self._counters:
            raise FrameError(
                f"{self.codeblock.name}{self.ref}: no counter {counter!r}"
            )
        if count < 0:
            raise FrameError(f"cannot reset counter {counter!r} to {count}")
        self._counters[counter] = count

    def counter_value(self, counter: str) -> int:
        return self._counters[counter]
