"""Dynamic execution statistics: instruction mix and message mix.

These are the quantities the paper measured with the Berkeley TAM
simulator and the Mint Monsoon simulator (Section 4.2.1): how many TAM
instructions of each class executed, how many messages of each type were
sent, and the full / empty / deferred outcome of every presence-bit
operation.  :mod:`repro.tam.costmap` turns one of these objects into the
Figure 12 cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.tam.instructions import Kind


@dataclass
class MessageMix:
    """Counts of every message the run put on the (virtual) network."""

    sends_by_words: Dict[int, int] = field(
        default_factory=lambda: {0: 0, 1: 0, 2: 0}
    )
    reads: int = 0
    writes: int = 0
    preads_full: int = 0
    preads_empty: int = 0
    preads_deferred: int = 0
    pwrites_empty: int = 0
    pwrites_deferred: int = 0
    deferred_readers_satisfied: int = 0

    def count_send(self, data_words: int) -> None:
        if data_words not in self.sends_by_words:
            raise ValueError(f"a Send carries 0-2 words, not {data_words}")
        self.sends_by_words[data_words] += 1

    @property
    def sends(self) -> int:
        return sum(self.sends_by_words.values())

    @property
    def preads(self) -> int:
        return self.preads_full + self.preads_empty + self.preads_deferred

    @property
    def pwrites(self) -> int:
        return self.pwrites_empty + self.pwrites_deferred

    @property
    def total_messages(self) -> int:
        """Every message a node's interface received (dispatches)."""
        return self.sends + self.reads + self.writes + self.preads + self.pwrites

    def as_dict(self) -> Dict[str, int]:
        return {
            "send0": self.sends_by_words[0],
            "send1": self.sends_by_words[1],
            "send2": self.sends_by_words[2],
            "read": self.reads,
            "write": self.writes,
            "pread_full": self.preads_full,
            "pread_empty": self.preads_empty,
            "pread_deferred": self.preads_deferred,
            "pwrite_empty": self.pwrites_empty,
            "pwrite_deferred": self.pwrites_deferred,
            "deferred_readers": self.deferred_readers_satisfied,
        }


@dataclass
class TamStats:
    """Whole-run statistics."""

    instructions: Dict[Kind, int] = field(
        default_factory=lambda: {kind: 0 for kind in Kind}
    )
    messages: MessageMix = field(default_factory=MessageMix)
    threads_run: int = 0
    frames_allocated: int = 0
    istructures_allocated: int = 0

    def count_instruction(self, kind: Kind) -> None:
        self.instructions[kind] += 1

    def count_instructions(self, mix) -> None:
        """Bulk-add a precomputed static mix: iterable of (kind, count).

        The fast path compiles each thread's instruction mix once at load
        time and charges it with one call per thread run instead of one
        dict update per instruction; the resulting counts are identical
        because a TAM thread is straight-line code that always executes
        its whole prefix up to STOP.
        """
        instructions = self.instructions
        for kind, count in mix:
            instructions[kind] += count

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions.values())

    @property
    def message_instruction_fraction(self) -> float:
        """Dynamic frequency of message-issuing instructions.

        The paper observes this is "under 10%" for its programs while
        communication still dominates the cycle count.
        """
        issuing = (
            self.instructions[Kind.SEND]
            + self.instructions[Kind.IFETCH]
            + self.instructions[Kind.ISTORE]
            + self.instructions[Kind.READ]
            + self.instructions[Kind.WRITE]
            + self.instructions[Kind.FALLOC]
            + self.instructions[Kind.IALLOC]
        )
        total = self.total_instructions
        return issuing / total if total else 0.0

    def flops(self) -> int:
        """Floating-point operations executed (for grain-size reporting)."""
        return self.instructions[Kind.FOP]

    def flops_per_message(self) -> float:
        """The paper quotes ~3 for its matrix multiply."""
        messages = self.messages.total_messages
        return self.flops() / messages if messages else float("inf")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (instruction mix, message mix, derived).

        ``TamStats`` objects also cross process boundaries whole (the
        experiment runner pickles them through its on-disk run cache);
        this is the flattened form the JSON artifacts embed.
        """
        messages = self.messages.total_messages
        return {
            "instructions": {
                kind.name.lower(): count
                for kind, count in self.instructions.items()
            },
            "total_instructions": self.total_instructions,
            "messages": self.messages.as_dict(),
            "total_messages": messages,
            "threads_run": self.threads_run,
            "frames_allocated": self.frames_allocated,
            "istructures_allocated": self.istructures_allocated,
            "flops": self.flops(),
            "flops_per_message": self.flops_per_message() if messages else None,
            "message_instruction_fraction": self.message_instruction_fraction,
        }
