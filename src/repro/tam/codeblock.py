"""Codeblocks: threads, inlets, and synchronisation counters.

A TAM codeblock is the compilation unit: a set of named *threads* (straight
-line instruction runs), a set of numbered *inlets* (message receivers that
bank values into frame slots and decrement a counter), and the initial
values of the activation's synchronisation *counters* (each of which posts
a thread when it reaches zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import TamError
from repro.tam.instructions import Instr


@dataclass(frozen=True)
class InletSpec:
    """One inlet: where its message's values land and what it enables.

    ``dest_slots`` receives the message's data words in order (an inlet may
    take fewer words than sent; extras are dropped, as TAM inlets do).
    ``counter`` names the sync counter to decrement, if any.
    """

    dest_slots: Tuple[int, ...] = ()
    counter: Optional[str] = None


@dataclass(frozen=True)
class CounterSpec:
    """A sync counter: initial count and the thread posted at zero."""

    count: int
    thread: str

    def __post_init__(self) -> None:
        if self.count < 0:
            raise TamError(f"negative sync count {self.count}")


@dataclass
class Codeblock:
    """A named codeblock."""

    name: str
    frame_size: int
    threads: Dict[str, Tuple[Instr, ...]] = field(default_factory=dict)
    inlets: Dict[int, InletSpec] = field(default_factory=dict)
    counters: Dict[str, CounterSpec] = field(default_factory=dict)
    entry: Optional[str] = None

    def add_thread(self, label: str, instructions) -> "Codeblock":
        if label in self.threads:
            raise TamError(f"codeblock {self.name!r}: duplicate thread {label!r}")
        self.threads[label] = tuple(instructions)
        return self

    def add_inlet(
        self,
        number: int,
        dest_slots: Tuple[int, ...] = (),
        counter: Optional[str] = None,
    ) -> "Codeblock":
        if number in self.inlets:
            raise TamError(f"codeblock {self.name!r}: duplicate inlet {number}")
        self.inlets[number] = InletSpec(dest_slots, counter)
        return self

    def add_counter(self, label: str, count: int, thread: str) -> "Codeblock":
        if label in self.counters:
            raise TamError(f"codeblock {self.name!r}: duplicate counter {label!r}")
        self.counters[label] = CounterSpec(count, thread)
        return self

    def set_entry(self, label: str) -> "Codeblock":
        self.entry = label
        return self

    def thread(self, label: str) -> Tuple[Instr, ...]:
        try:
            return self.threads[label]
        except KeyError:
            raise TamError(
                f"codeblock {self.name!r} has no thread {label!r}"
            ) from None

    def executable_prefix(self, label: str):
        """The instructions of ``label`` that can actually execute.

        A TAM thread is straight-line code: control only ever leaves it at
        the first STOP, so anything after that STOP is dead.  Returns
        ``(instructions, complete)`` where ``complete`` is False for a
        malformed thread that falls off its end without stopping (the
        interpreter reports that as an error *after* executing the run).
        The compiled fast path uses this to precompute a thread's static
        instruction mix.
        """
        from repro.tam.instructions import StopInstr

        instructions = self.thread(label)
        prefix = []
        for instr in instructions:
            prefix.append(instr)
            if isinstance(instr, StopInstr):
                return tuple(prefix), True
        return tuple(prefix), False

    def inlet(self, number: int) -> InletSpec:
        try:
            return self.inlets[number]
        except KeyError:
            raise TamError(
                f"codeblock {self.name!r} has no inlet {number}"
            ) from None

    def validate(self) -> None:
        """Check internal references before any frame is created."""
        for label, spec in self.counters.items():
            if spec.thread not in self.threads:
                raise TamError(
                    f"codeblock {self.name!r}: counter {label!r} posts "
                    f"unknown thread {spec.thread!r}"
                )
        for number, spec in self.inlets.items():
            if spec.counter is not None and spec.counter not in self.counters:
                raise TamError(
                    f"codeblock {self.name!r}: inlet {number} decrements "
                    f"unknown counter {spec.counter!r}"
                )
            for slot in spec.dest_slots:
                self._check_slot(slot, f"inlet {number}")
        if self.entry is not None and self.entry not in self.threads:
            raise TamError(
                f"codeblock {self.name!r}: entry thread {self.entry!r} missing"
            )

    def _check_slot(self, slot: int, where: str) -> None:
        if slot < 0 or slot >= self.frame_size:
            raise TamError(
                f"codeblock {self.name!r}: {where} uses slot {slot} outside "
                f"frame of {self.frame_size}"
            )
