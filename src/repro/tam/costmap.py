"""From TAM execution statistics to 88100 cycle counts (Figure 12).

The paper computed Figure 12 "by simulating each program and replacing the
dynamic instruction count of each TAM intermediate instruction by the
appropriate number of RISC instructions".  This module does the same:

* non-message TAM instructions carry fixed per-class cycle costs
  (identical across interface models — they form the *compute* bar);
* every message is priced from Table 1: SENDING at the sender,
  DISPATCHING plus PROCESSING at the receiver, and for operations that
  return a value, the reply's own dispatch and Send-processing at the
  requester.

By default the Table 1 prices are the *measured* ones (from running the
kernels in :mod:`repro.kernels.harness`), keeping the whole pipeline
self-consistent; the paper's published prices can be substituted to see
how the authors' more expensive presence-bit runtime shifts the bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.impls.base import ALL_MODELS, InterfaceModel, model_by_key
from repro.isa.machine import Placement
from repro.tam.instructions import Kind
from repro.tam.stats import TamStats

# Cycle cost of each non-message TAM instruction class on the 88100.
# Message-issuing classes cost nothing here: their cycles are the Table 1
# SENDING entries, charged per message below.
INSTRUCTION_CYCLES: Dict[Kind, int] = {
    Kind.CON: 1,
    Kind.MOV: 1,
    Kind.IOP: 1,
    Kind.FOP: 2,  # the 88100's FP pipeline; matches the paper's RISC flavour
    # TAM control: continuation-vector pushes/pops touch frame memory; the
    # TAM papers report a few cycles each on commodity RISC processors.
    Kind.FORK: 3,
    Kind.SWITCH: 3,
    Kind.STOP: 3,
    Kind.RESET: 1,
    # Runtime work beyond the messages themselves (allocator bookkeeping).
    Kind.FALLOC: 8,
    Kind.IALLOC: 8,
    # Message-issuing instructions are priced by Table 1's SENDING rows.
    Kind.SEND: 0,
    Kind.IFETCH: 0,
    Kind.ISTORE: 0,
    Kind.READ: 0,
    Kind.WRITE: 0,
}


@dataclass(frozen=True)
class MessageCostTable:
    """Per-message-type cycle prices for one interface model."""

    model_key: str
    sending: Dict[str, int]
    dispatch: int
    processing: Dict[str, int]
    pwrite_deferred_base: int
    pwrite_deferred_slope: int
    source: str  # "measured" or "paper"


def _range_cost(cell) -> int:
    """Collapse a register-placement range to one price.

    The paper: "We expect that the cost will typically be in the low to
    middle part of this range" — we take the midpoint rounded down.
    """
    if isinstance(cell, tuple):
        return (cell[0] + cell[1]) // 2
    return cell


@lru_cache(maxsize=None)
def measured_cost_table(model_key: str) -> MessageCostTable:
    """Price table from actually running the Table 1 kernels."""
    from repro.kernels.harness import (
        measure_dispatch,
        measure_processing,
        measure_pwrite_deferred_line,
        measure_sending,
    )
    from repro.kernels.sequences import PROCESSING_CASES, SENDING_MESSAGES

    model = model_by_key(model_key)
    sending: Dict[str, int] = {}
    for message in SENDING_MESSAGES:
        if model.placement is Placement.REGISTER:
            lo = measure_sending(message, model, "best").cycles
            hi = measure_sending(message, model, "worst").cycles
            sending[message] = _range_cost((lo, hi))
        else:
            sending[message] = measure_sending(message, model).cycles
    processing = {
        case: measure_processing(case, model).cycles
        for case in PROCESSING_CASES
        if case != "pwrite_deferred"
    }
    base, slope = measure_pwrite_deferred_line(model)
    return MessageCostTable(
        model_key=model_key,
        sending=sending,
        dispatch=measure_dispatch(model).cycles,
        processing=processing,
        pwrite_deferred_base=base,
        pwrite_deferred_slope=slope,
        source="measured",
    )


@lru_cache(maxsize=None)
def paper_cost_table(model_key: str) -> MessageCostTable:
    """Price table from the paper's published Table 1."""
    from repro.kernels import expected as X

    model_by_key(model_key)  # validate
    sending = {
        message: _range_cost(row[model_key])
        for message, row in X.SENDING_PAPER.items()
    }
    processing = {
        case: row[model_key] for case, row in X.PROCESSING_PAPER.items()
    }
    base, slope = X.PWRITE_DEFERRED_PAPER[model_key]
    return MessageCostTable(
        model_key=model_key,
        sending=sending,
        dispatch=X.DISPATCH_PAPER[model_key],
        processing=processing,
        pwrite_deferred_base=base,
        pwrite_deferred_slope=slope,
        source="paper",
    )


def cost_table(model: InterfaceModel, source: str = "measured") -> MessageCostTable:
    if source == "measured":
        return measured_cost_table(model.key)
    if source == "paper":
        return paper_cost_table(model.key)
    raise ValueError(f"unknown cost source {source!r}")


@dataclass(frozen=True)
class CycleBreakdown:
    """One Figure 12 bar: compute / dispatch / other communication."""

    model_key: str
    compute: int
    dispatch: int
    communication: int
    source: str

    @property
    def total(self) -> int:
        return self.compute + self.dispatch + self.communication

    @property
    def overhead(self) -> int:
        """All communication-related cycles (dispatch included)."""
        return self.dispatch + self.communication

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.total if self.total else 0.0


def breakdown(
    stats: TamStats,
    model: InterfaceModel,
    table: Optional[MessageCostTable] = None,
    source: str = "measured",
) -> CycleBreakdown:
    """Price one program run under one interface model."""
    table = table or cost_table(model, source)
    mix = stats.messages
    compute = sum(
        INSTRUCTION_CYCLES[kind] * count
        for kind, count in stats.instructions.items()
    )
    # Every received message is dispatched once; value-returning
    # operations additionally dispatch their reply at the requester.
    replies = mix.reads + mix.preads_full + mix.deferred_readers_satisfied
    dispatches = mix.total_messages + replies
    dispatch_cycles = dispatches * table.dispatch

    send = table.sending
    proc = table.processing
    communication = 0
    for words, count in mix.sends_by_words.items():
        communication += count * (send[f"send{words}"] + proc[f"send{words}"])
    communication += mix.reads * (
        send["read"] + proc["read"] + proc["send1"]  # reply banked at requester
    )
    communication += mix.writes * (send["write"] + proc["write"])
    communication += mix.preads_full * (
        send["pread"] + proc["pread_full"] + proc["send1"]
    )
    communication += mix.preads_empty * (send["pread"] + proc["pread_empty"])
    communication += mix.preads_deferred * (send["pread"] + proc["pread_deferred"])
    communication += mix.pwrites_empty * (send["pwrite"] + proc["pwrite_empty"])
    communication += mix.pwrites_deferred * (
        send["pwrite"] + table.pwrite_deferred_base
    )
    communication += mix.deferred_readers_satisfied * (
        table.pwrite_deferred_slope + proc["send1"]
    )
    return CycleBreakdown(
        model_key=model.key,
        compute=compute,
        dispatch=dispatch_cycles,
        communication=communication,
        source=table.source,
    )


def breakdown_all_models(stats: TamStats, source: str = "measured"):
    """Figure 12 bars for all six models, in Table 1 column order."""
    return [breakdown(stats, model, source=source) for model in ALL_MODELS]
