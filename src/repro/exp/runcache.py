"""Content-addressed caching of TAM program executions.

Every evaluation study prices the same handful of program runs — the
Figure 12 bars, the latency sweep, and the ablation all start from one
``matmul`` execution.  The cache keys each run on
``(program, size, nodes)`` plus a digest of the interpreter and program
sources, so:

* within one ``python -m repro`` invocation each parameter set executes
  at most once (the in-process layer);
* worker processes of a ``--jobs N`` fan-out share executions through
  the on-disk layer (pickled :class:`~repro.tam.stats.TamStats`);
* a stale cache can never survive a code change — the ``code_digest``
  component of the key rolls over with the sources.

The disk layer is off unless a directory is configured (CLI
``--cache-dir``, the ``REPRO_RUNCACHE_DIR`` environment variable, or
:func:`set_cache`); the in-process layer is always on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import EvaluationError
from repro.tam.stats import TamStats
from repro.utils.profiling import PROFILER

DEFAULT_SIZES = {"matmul": 40, "gamteb": 64, "queens": 6}
PAPER_SIZES = {"matmul": 100, "gamteb": 16, "queens": 6}

#: Packages whose sources determine what a program execution produces.
_DIGEST_PACKAGES = ("tam", "programs", "node")


@dataclass(frozen=True)
class ProgramKey:
    """One cacheable TAM execution: which program, at what scale."""

    program: str
    size: int
    nodes: int


def resolve_key(program: str, size: Optional[int] = None, nodes: int = 16) -> ProgramKey:
    """Normalise a run request: ``size=None`` means the default scale."""
    if program not in DEFAULT_SIZES:
        raise EvaluationError(
            f"unknown program {program!r}; use 'matmul', 'gamteb', or 'queens'"
        )
    return ProgramKey(program, size if size is not None else DEFAULT_SIZES[program], nodes)


_CODE_DIGEST: Optional[str] = None


def code_digest() -> str:
    """SHA-256 over the interpreter and program sources, memoised.

    Cached stats are only as trustworthy as the code that produced them;
    folding this digest into every disk-cache filename makes any edit to
    the TAM runtime, the node model, or a program an automatic cache
    invalidation.
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        root = Path(__file__).resolve().parent.parent
        hasher = hashlib.sha256()
        for package in _DIGEST_PACKAGES:
            for path in sorted((root / package).glob("*.py")):
                hasher.update(path.name.encode())
                hasher.update(path.read_bytes())
        _CODE_DIGEST = hasher.hexdigest()
    return _CODE_DIGEST


def _execute(key: ProgramKey) -> TamStats:
    """Actually run one program; the only place evaluation executes TAM."""
    with PROFILER.span(f"program.{key.program}"):
        if key.program == "matmul":
            from repro.programs.matmul import run_matmul

            return run_matmul(n=key.size, nodes=key.nodes).stats
        if key.program == "gamteb":
            from repro.programs.gamteb import run_gamteb

            return run_gamteb(n_photons=key.size, nodes=key.nodes).stats
        if key.program == "queens":
            from repro.programs.queens import run_queens

            return run_queens(n=key.size, nodes=key.nodes).stats
    raise EvaluationError(f"unknown program {key.program!r}")


class RunCache:
    """In-process dict over an optional on-disk pickle store."""

    def __init__(self, disk_dir: Optional[os.PathLike] = None) -> None:
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._memory: Dict[ProgramKey, TamStats] = {}
        #: Every key this cache actually executed (not served from a
        #: layer) — what the at-most-once tests assert on.
        self.execution_log: List[ProgramKey] = []

    def _disk_path(self, key: ProgramKey) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        name = (
            f"{key.program}-n{key.size}-p{key.nodes}-{code_digest()[:16]}.pkl"
        )
        return self.disk_dir / name

    def get(self, key: ProgramKey) -> Optional[TamStats]:
        """The cached stats for ``key``, or ``None`` on a full miss."""
        stats = self._memory.get(key)
        if stats is not None:
            return stats
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                stats = pickle.loads(path.read_bytes())
            except Exception:  # corrupt entry: treat as a miss
                return None
            self._memory[key] = stats
            return stats
        return None

    def put(self, key: ProgramKey, stats: TamStats) -> None:
        """Seed both layers (used by the parallel runner's fan-in)."""
        self._memory[key] = stats
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(pickle.dumps(stats))
            os.replace(tmp, path)

    def ensure(self, key: ProgramKey) -> TamStats:
        """The stats for ``key``, executing the program on a miss."""
        stats = self.get(key)
        if stats is None:
            stats = _execute(key)
            self.execution_log.append(key)
            self.put(key, stats)
        return stats


#: The process-wide cache every harness reads through.
_CACHE = RunCache(disk_dir=os.environ.get("REPRO_RUNCACHE_DIR") or None)


def get_cache() -> RunCache:
    return _CACHE


def set_cache(cache: RunCache) -> RunCache:
    """Swap the process-wide cache (tests, worker processes); returns it."""
    global _CACHE
    _CACHE = cache
    return cache


def run_program(name: str, size: Optional[int] = None, nodes: int = 16) -> TamStats:
    """Execute one evaluation program (cached) and return its statistics.

    The canonical entry point behind ``repro.eval.run_program``: every
    caller asking for the same ``(program, size, nodes)`` shares one
    execution per process (and per disk cache, when configured).
    """
    return _CACHE.ensure(resolve_key(name, size, nodes))
