"""The experiment registry: evaluation studies as data, not scripts.

Each ``repro.eval`` module registers its :class:`ExperimentSpec` at
import time; :func:`load_all` imports the canonical module list so the
registry is populated in the paper's section order.  ``python -m repro``
then becomes a thin driver: select names, hand the specs to the runner.
Adding a new study to the evaluation grid is one module with one
``register()`` call — no new script, no new CLI.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Dict, List

from repro.errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exp.spec import ExperimentSpec

#: Evaluation modules in report order; imports populate the registry.
EVAL_MODULES = (
    "table1",
    "roundtrip",
    "throughput",
    "figure12",
    "latency",
    "ablation",
    "grain",
    "survey",
    "flowcontrol",
    "netsweep",
    "collectives",
    "multitenant",
)

_REGISTRY: Dict[str, "ExperimentSpec"] = {}


def register(spec: "ExperimentSpec") -> "ExperimentSpec":
    """Add ``spec`` to the registry; usable as a plain call or decorator.

    Re-registering the same name is allowed (module reloads) and simply
    replaces the entry; registration order is preserved for the first
    occurrence so driver output stays deterministic.
    """
    _REGISTRY[spec.name] = spec
    return spec


def load_all() -> None:
    """Import every evaluation module, populating the registry."""
    for module in EVAL_MODULES:
        importlib.import_module(f"repro.eval.{module}")


def _canonical_order(name: str) -> tuple:
    """Report order: the paper's section sequence, then registration order."""
    try:
        return (0, EVAL_MODULES.index(name))
    except ValueError:
        return (1, list(_REGISTRY).index(name))


def names() -> List[str]:
    """Registered experiment names, in report order."""
    return sorted(_REGISTRY, key=_canonical_order)


def get(name: str) -> "ExperimentSpec":
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EvaluationError(
            f"unknown experiment {name!r}; registered: {', '.join(_REGISTRY) or 'none'}"
        ) from None


def all_specs() -> List["ExperimentSpec"]:
    """Every registered spec, in report order."""
    return [_REGISTRY[name] for name in names()]
