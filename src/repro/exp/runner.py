"""Run selected experiments serially or fanned out across processes.

TAM programs are pure-Python and CPU-bound, so ``--jobs N`` uses a
``ProcessPoolExecutor`` for real wall-clock parallelism.  The fan-out is
dependency-aware, not phased:

* The deduplicated union of every selected experiment's required
  :class:`ProgramKey` runs is submitted first, each worker writing its
  pickled stats into the shared on-disk run cache.  Submitting programs
  exactly once from the parent is what guarantees at-most-one execution
  per parameter set even across process boundaries.
* Each experiment is submitted the moment its required program runs
  have completed (immediately, for experiments that need none), so
  cheap kernel-measurement sections overlap the long program
  executions instead of waiting behind a global barrier.
* Results are yielded in registry order regardless of completion order,
  so output stays deterministic and byte-comparable to a serial run.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.exp import registry
from repro.exp.artifacts import build_artifact, to_jsonable
from repro.exp.runcache import ProgramKey, RunCache, get_cache, set_cache
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.utils.profiling import PROFILER


@dataclass
class ExperimentOutcome:
    """Everything the driver needs from one finished experiment."""

    name: str
    title: str
    text: str
    artifact: Dict[str, Any]
    wall_clock_seconds: float


def run_one(spec: ExperimentSpec, params: Dict[str, Any]) -> ExperimentOutcome:
    """Execute one experiment in the current process."""
    start = time.perf_counter()
    with PROFILER.span(f"section.{spec.name}"):
        cache = get_cache()
        for key in spec.required_programs(params):
            cache.ensure(key)
        payload = spec.compute(params)
        text = spec.render(params, payload)
        data = (
            spec.artifact(params, payload) if spec.artifact else to_jsonable(payload)
        )
    wall_clock = time.perf_counter() - start
    artifact = build_artifact(spec.name, params, spec.produces, data, wall_clock)
    return ExperimentOutcome(spec.name, spec.title, text, artifact, wall_clock)


def _ordered_program_keys(
    specs: Sequence[ExperimentSpec], params_by_name: Dict[str, Dict[str, Any]]
) -> List[ProgramKey]:
    """The deduplicated union of required runs, in first-use order."""
    keys: List[ProgramKey] = []
    seen = set()
    for spec in specs:
        for key in spec.required_programs(params_by_name[spec.name]):
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


# ---------------------------------------------------------------------------
# Worker-process entry points (must be module-level for pickling).
# ---------------------------------------------------------------------------


def _worker_init(cache_dir: Optional[str]) -> None:
    set_cache(RunCache(disk_dir=cache_dir))
    registry.load_all()


def _worker_program(key: ProgramKey) -> ProgramKey:
    get_cache().ensure(key)
    return key


def _worker_experiment(name: str, params: Dict[str, Any]) -> ExperimentOutcome:
    return run_one(registry.get(name), params)


# ---------------------------------------------------------------------------
# Driver API.
# ---------------------------------------------------------------------------


def effective_jobs(jobs: int) -> int:
    """The worker count actually used for a ``--jobs`` request."""
    return max(1, min(jobs, os.cpu_count() or 1))


def iter_experiments(
    specs: Sequence[ExperimentSpec],
    options: EvalOptions,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
) -> Iterator[ExperimentOutcome]:
    """Yield outcomes for ``specs`` in order; parallel when ``jobs > 1``.

    ``jobs`` is capped at ``os.cpu_count()``: the sections are CPU-bound,
    so workers beyond the core count only add process-pool overhead (a
    4-worker fan-out on a 1-CPU host measured *slower* than serial).
    Callers can read the cap applied via :func:`effective_jobs`.
    """
    jobs = effective_jobs(jobs)
    params_by_name = {spec.name: spec.params(options) for spec in specs}
    if jobs <= 1:
        cache = get_cache()
        if cache_dir is not None and cache.disk_dir is None:
            cache.disk_dir = Path(cache_dir)
        for spec in specs:
            yield run_one(spec, params_by_name[spec.name])
        return

    # Parallel: the workers communicate through a shared disk cache.
    scratch: Optional[str] = None
    if cache_dir is None:
        cache_dir = get_cache().disk_dir
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-runcache-")
        cache_dir = Path(scratch)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(str(cache_dir),),
        ) as pool:
            keys = _ordered_program_keys(specs, params_by_name)
            # Every required program run, submitted exactly once.
            program_futures: Dict[ProgramKey, Future] = {
                key: pool.submit(_worker_program, key) for key in keys
            }
            # Experiments launch as soon as their program runs land in
            # the shared cache; ones with no requirements launch now.
            exp_futures: Dict[str, Future] = {}
            pending = list(specs)

            def submit_ready() -> None:
                for spec in pending[:]:
                    deps = [
                        program_futures[key]
                        for key in spec.required_programs(params_by_name[spec.name])
                    ]
                    if all(future.done() for future in deps):
                        exp_futures[spec.name] = pool.submit(
                            _worker_experiment, spec.name, params_by_name[spec.name]
                        )
                        pending.remove(spec)

            submit_ready()
            unfinished = set(program_futures.values())
            while pending:
                done, unfinished = wait(unfinished, return_when=FIRST_COMPLETED)
                for future in done:
                    future.result()  # propagate program failures eagerly
                submit_ready()
            for spec in specs:
                yield exp_futures[spec.name].result()
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def run_experiments(
    specs: Sequence[ExperimentSpec],
    options: EvalOptions,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
) -> List[ExperimentOutcome]:
    """:func:`iter_experiments`, fully materialised."""
    return list(iter_experiments(specs, options, jobs=jobs, cache_dir=cache_dir))


def record_outcomes(
    db_dir: Path, outcomes: Sequence[ExperimentOutcome]
) -> List[Path]:
    """Append one perfdb record per finished section (``--perfdb``).

    Each section's wall clock lands in the cross-run database under
    ``section.<name>`` so ``python -m repro.obs.report`` trends the
    evaluation grid itself, not just the dedicated benchmarks.  A
    section payload that carries a ``profile`` block (``--profile-sim``)
    rides along as meta, giving the report its per-component cycle
    attribution.
    """
    from repro.obs import perfdb

    paths = []
    for outcome in outcomes:
        meta = {"title": outcome.title}
        profile = outcome.artifact.get("data", {}).get("profile")
        if isinstance(profile, dict):
            meta["profile"] = profile
        record = perfdb.make_record(
            bench=f"section.{outcome.name}",
            metrics={"wall_clock_seconds": outcome.wall_clock_seconds},
            meta=meta,
        )
        paths.append(perfdb.append_record(db_dir, record))
    return paths
