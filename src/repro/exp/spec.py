"""Typed experiment descriptions.

An :class:`ExperimentSpec` is the contract between one evaluation study
and the driver: how to derive its parameters from the CLI options, which
TAM program runs it needs (so the run cache can execute each exactly
once), how to compute its results (pure, picklable — safe to ship to a
worker process), how to render them as the paper-faithful text report,
and what its JSON artifact contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exp.runcache import ProgramKey

Params = Dict[str, Any]
Payload = Dict[str, Any]


@dataclass(frozen=True)
class EvalOptions:
    """The CLI knobs every experiment derives its parameters from.

    ``trace`` opts sections that support it into message-path tracing
    (:mod:`repro.obs`); ``trace_dir`` is where they write the Chrome
    ``trace_event`` JSON and metrics time-series.  Both stay plain data
    (a string path, not a Path object with host semantics baked in) so
    options pickle cleanly into ``--jobs`` worker processes.

    ``profile_sim`` opts sections that support it into simulation-level
    profiling (:mod:`repro.obs.profiler`): per-component cycle/time
    attribution inside the run, reported next to the section text.  This
    is distinct from the driver's ``--profile`` host-level span timing.

    ``lineage`` opts sections that support it into span-based causal
    lineage tracing (:mod:`repro.obs.lineage`): per-message phase spans,
    the exact-reconciliation latency breakdown, and the causal critical
    path, written as a versioned ``lineage.json`` under ``trace_dir``.
    """

    paper_scale: bool = False
    trace: bool = False
    trace_dir: Optional[str] = None
    profile_sim: bool = False
    lineage: bool = False


@dataclass(frozen=True)
class ExperimentSpec:
    """One entry of the evaluation grid.

    The four callables split one study into its phases:

    * ``params(options)`` — resolve the concrete parameter set.
    * ``programs(params)`` — the :class:`ProgramKey` runs the compute
      phase will read from the run cache.  The runner pre-executes the
      deduplicated union of these across all selected experiments.
    * ``compute(params)`` — the pure computation; returns a picklable
      payload and must not print.
    * ``render(params, payload)`` — the text report, byte-compatible
      with the pre-framework harness output.
    * ``artifact(params, payload)`` — the JSON-serialisable result body;
      defaults to ``to_jsonable(payload)`` when omitted.
    """

    name: str
    title: str
    produces: Tuple[str, ...]
    params: Callable[[EvalOptions], Params]
    compute: Callable[[Params], Payload]
    render: Callable[[Params, Payload], str]
    programs: Optional[Callable[[Params], Tuple[ProgramKey, ...]]] = None
    artifact: Optional[Callable[[Params, Payload], Dict[str, Any]]] = None

    def required_programs(self, params: Params) -> Tuple[ProgramKey, ...]:
        """The program runs this experiment reads from the cache."""
        if self.programs is None:
            return ()
        return tuple(self.programs(params))
