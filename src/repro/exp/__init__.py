"""The experiment framework: typed specs, run caching, fan-out, artifacts.

The paper's evaluation is a fixed grid — {Table 1, Figure 12, latency
sweep, ablation, grain, survey} x 6 interface models x 3 workloads.  This
package turns that grid into data:

* :mod:`repro.exp.spec` — :class:`ExperimentSpec`, the typed description
  of one experiment (name, params, required program runs, pure compute,
  text rendering, JSON artifact).
* :mod:`repro.exp.registry` — the decorator registry every
  ``repro.eval`` module registers its spec into; ``python -m repro`` is a
  thin driver over it.
* :mod:`repro.exp.runcache` — a content-addressed in-process + on-disk
  cache keyed on ``(program, size, nodes, code_digest)`` so one TAM
  execution feeds every experiment that prices it.
* :mod:`repro.exp.runner` — serial or ``ProcessPoolExecutor`` fan-out
  with deterministic, registry-ordered output.
* :mod:`repro.exp.artifacts` — versioned JSON results under
  ``results/``, alongside the existing text rendering.
"""

from repro.exp.artifacts import (
    SCHEMA_TAG,
    build_artifact,
    to_jsonable,
    validate_artifact,
    write_artifact,
)
from repro.exp.registry import all_specs, get, load_all, names, register
from repro.exp.runcache import (
    DEFAULT_SIZES,
    PAPER_SIZES,
    ProgramKey,
    RunCache,
    code_digest,
    get_cache,
    resolve_key,
    run_program,
    set_cache,
)
from repro.exp.runner import ExperimentOutcome, iter_experiments, run_experiments
from repro.exp.spec import EvalOptions, ExperimentSpec

__all__ = [
    "SCHEMA_TAG",
    "build_artifact",
    "to_jsonable",
    "validate_artifact",
    "write_artifact",
    "all_specs",
    "get",
    "load_all",
    "names",
    "register",
    "DEFAULT_SIZES",
    "PAPER_SIZES",
    "ProgramKey",
    "RunCache",
    "code_digest",
    "get_cache",
    "resolve_key",
    "run_program",
    "set_cache",
    "ExperimentOutcome",
    "iter_experiments",
    "run_experiments",
    "EvalOptions",
    "ExperimentSpec",
]
