"""Versioned JSON artifacts: one machine-readable result per experiment.

The text reports reproduce the paper's tables byte for byte; the
artifacts make the same numbers diffable and scriptable.  Every artifact
carries a schema tag so downstream consumers can detect layout changes,
the resolved parameter set so runs are comparable, and the experiment's
data payload converted to plain JSON types.

``wall_clock_seconds`` is the one volatile field — two runs of the same
grid produce artifacts identical everywhere else, which is what the
serial-versus-parallel equivalence checks compare.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict

from repro.errors import EvaluationError

#: Bump when the artifact layout changes shape.
SCHEMA_TAG = "repro-experiment/v1"

#: Fields excluded when comparing artifacts across runs.
VOLATILE_KEYS = ("wall_clock_seconds",)

_REQUIRED = {
    "schema": str,
    "experiment": str,
    "params": dict,
    "produces": list,
    "data": dict,
    "wall_clock_seconds": float,
}


class ArtifactError(EvaluationError):
    """An artifact failed schema validation."""


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` to plain JSON types.

    Handles dataclasses, enums, mappings with non-string keys, tuples,
    sets, and numpy scalars; everything else must already be a JSON
    primitive.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.name.lower()
    if isinstance(obj, dict):
        return {str(to_jsonable(key)): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, (str, bool, int, float)) or obj is None:
        return obj
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    raise ArtifactError(f"cannot serialise {type(obj).__name__} into an artifact")


def build_artifact(
    name: str,
    params: Dict[str, Any],
    produces: tuple,
    data: Dict[str, Any],
    wall_clock_seconds: float,
) -> Dict[str, Any]:
    """Assemble one schema-tagged artifact dict (already validated)."""
    artifact = {
        "schema": SCHEMA_TAG,
        "experiment": name,
        "params": to_jsonable(params),
        "produces": list(produces),
        "data": to_jsonable(data),
        "wall_clock_seconds": round(float(wall_clock_seconds), 4),
    }
    validate_artifact(artifact)
    return artifact


def validate_artifact(artifact: Dict[str, Any]) -> None:
    """Raise :class:`ArtifactError` unless ``artifact`` matches the schema."""
    if not isinstance(artifact, dict):
        raise ArtifactError(f"artifact must be a dict, got {type(artifact).__name__}")
    for key, expected in _REQUIRED.items():
        if key not in artifact:
            raise ArtifactError(f"artifact missing required key {key!r}")
        value = artifact[key]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ArtifactError(f"artifact[{key!r}] must be a number")
        elif not isinstance(value, expected):
            raise ArtifactError(
                f"artifact[{key!r}] must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if artifact["schema"] != SCHEMA_TAG:
        raise ArtifactError(
            f"unknown artifact schema {artifact['schema']!r}; "
            f"this reader understands {SCHEMA_TAG!r}"
        )
    for key in artifact["produces"]:
        if key not in artifact["data"]:
            raise ArtifactError(f"artifact promises {key!r} but data lacks it")
    # The whole point is machine-readability: it must round-trip as JSON.
    try:
        json.dumps(artifact)
    except (TypeError, ValueError) as exc:
        raise ArtifactError(f"artifact is not JSON-serialisable: {exc}") from exc


def write_artifact(directory: Path, artifact: Dict[str, Any]) -> Path:
    """Validate and write one artifact as ``<experiment>.json``."""
    validate_artifact(artifact)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{artifact['experiment']}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path
