"""Receive-side tenant scheduling policies (Section 2.1.3 at scale).

The paper sketches two multi-user strategies — gang scheduling with the
network drained between slices (the CM-5's) and independent switching
with PIN-checked diversion — and exercises them with two processes.
This module turns both into pluggable receive-side schedulers able to
multiplex *thousands* of protection domains over the shared input
queues, plus a third, quantum-based preemptive policy, so the
evaluation can compare their QoS under heavy-tailed load.

Every policy:

* implements the :class:`~repro.nic.interface.TenantSchedulerLike`
  protocol, so each interface hands it every diverted delivery
  (privileged, PIN-mismatch, or per-tenant occupancy-cap overflow) with
  the divert reason;
* runs as a :class:`~repro.sim.component.SimComponent` on the shared
  :class:`~repro.sim.kernel.SimKernel`, making its scheduling decisions
  in simulated time;
* charges a modelled context-switch cost in cycles
  (:class:`SwitchCosts`): a node whose resident tenant just changed
  dispatches nothing until the switch window closes;
* owns redelivery: stored messages re-enter the input queue through the
  ordinary :meth:`~repro.nic.interface.NetworkInterface.deliver`, in
  arrival order, spilling back to the store when the queue (or the
  tenant's occupancy cap) blocks.

The three policies:

* :class:`GangTenantScheduler` — synchronous slices over all nodes with
  the network drained between slices, refactored around the
  :class:`~repro.nic.protection.GangScheduler` drain/restore engine;
* :class:`RoundRobinScheduler` — independent per-node switching on
  fixed quantum boundaries, rotating among tenants with stored work;
* :class:`QuantumScheduler` — quantum-based and preemptive: a node
  abandons an idle tenant early and always picks the waiting tenant
  with the deepest backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ProtectionError
from repro.nic.interface import DIVERT_CAP, NetworkInterface
from repro.nic.messages import Message
from repro.nic.protection import GangScheduler, PrivilegedStore, check_pin
from repro.sim import SimComponent

SCHEDULER_NAMES = ("gang", "round-robin", "quantum")
"""The policy names :func:`make_scheduler` (and the eval grid) accept."""


@dataclass(frozen=True)
class SwitchCosts:
    """Modelled context-switch and divert-handling pricing, in cycles.

    ``switch_cycles`` is charged every time a node's resident tenant
    changes: the node dispatches nothing while the window is open,
    modelling register/TLB state save-restore plus the CONTROL-register
    rewrite.  Gang scheduling charges it globally per slice boundary;
    the independent policies charge it per node per switch.

    ``divert_cycles`` is charged per privileged or PIN-mismatch divert:
    Section 2.1.3 treats a mismatched-PIN message as privileged, so the
    OS takes an interrupt and files it — processor time stolen from the
    node's dispatch loop.  This is the cost gang scheduling exists to
    avoid (with the network drained between slices, inactive-process
    messages never arrive), and under independent switching it is what
    lets one flooding tenant steal a hot node's cycles from the resident
    victim.  Occupancy-cap diverts are *not* charged: the cap is the
    NIC-layer accounting mechanism, and its refile is handled by the
    interface hardware without interrupting the processor.
    """

    switch_cycles: int = 8
    divert_cycles: int = 4


class _NodeState:
    """One node's tenancy state under an independent policy."""

    __slots__ = (
        "index",
        "interface",
        "store",
        "active_pin",
        "busy_until",
        "slice_start",
        "rotation",
        "switches",
        "redelivered",
    )

    def __init__(self, index: int, interface: NetworkInterface) -> None:
        self.index = index
        self.interface = interface
        self.store = PrivilegedStore()
        self.active_pin = 0  # RESERVED_PIN: no tenant resident yet
        self.busy_until = 0
        self.slice_start = 0
        self.rotation = 0
        self.switches = 0
        self.redelivered = 0


class TenantPolicy(SimComponent):
    """Shared machinery: stores, switch accounting, ordered redelivery.

    Subclasses implement :meth:`tick` (the scheduling decision) and may
    override :meth:`may_inject` (gang gates injection; the independent
    policies accept traffic for any tenant at any time).
    """

    name = "tenancy"

    def __init__(
        self,
        interfaces: Sequence[NetworkInterface],
        tenants: Sequence[int],
        costs: Optional[SwitchCosts] = None,
        tenant_cap: Optional[int] = None,
    ) -> None:
        if not interfaces:
            raise ProtectionError("tenant policy needs at least one interface")
        if not tenants:
            raise ProtectionError("tenant policy needs at least one tenant")
        self.tenants: List[int] = [check_pin(pin) for pin in tenants]
        if len(set(self.tenants)) != len(self.tenants):
            raise ProtectionError("tenant PINs must be unique")
        self.costs = costs or SwitchCosts()
        self.states: List[_NodeState] = [
            _NodeState(index, interface)
            for index, interface in enumerate(interfaces)
        ]
        self._by_node: Dict[int, _NodeState] = {
            state.interface.node: state for state in self.states
        }
        self.diverted_by_reason: Dict[str, int] = {}
        self.switches = 0
        self.redelivered = 0
        self.handle = None
        self.kernel = None  # set by bind(); divert charges need the clock
        for state in self.states:
            state.interface.attach_tenant_scheduler(self)
            state.interface.input_queue.attach_tenant_stats()
            if tenant_cap is not None:
                state.interface.set_tenant_cap(tenant_cap)

    # ------------------------------------------------------------------
    # TenantSchedulerLike protocol.
    # ------------------------------------------------------------------

    def on_divert(
        self, interface: NetworkInterface, message: Message, reason: str
    ) -> None:
        """File one diverted delivery, charging the OS handling cost.

        Section 2.1.3: a privileged or PIN-mismatched message interrupts
        the processor, which files it into privileged state —
        ``divert_cycles`` of the node's time stolen from its dispatch
        loop.  The charge accumulates (each divert extends the busy
        window), so a flood of inactive-tenant messages can saturate a
        node's processor: the receive-livelock the gang policy's drained
        network avoids.  Cap diverts are filed by the NIC-layer
        accounting and charge nothing.
        """
        self.diverted_by_reason[reason] = (
            self.diverted_by_reason.get(reason, 0) + 1
        )
        state = self._by_node[interface.node]
        state.store.file(message)
        if (
            reason != DIVERT_CAP
            and self.kernel is not None
            and self.costs.divert_cycles
        ):
            state.busy_until = (
                max(state.busy_until, self.kernel.cycle)
                + self.costs.divert_cycles
            )

    # ------------------------------------------------------------------
    # The contract the workload layer consumes.
    # ------------------------------------------------------------------

    def bind(self, kernel) -> object:
        """Register on ``kernel``; returns (and keeps) the SimHandle."""
        self.kernel = kernel
        self.handle = kernel.register(self)
        return self.handle

    def stalled(self, node: int, cycle: int) -> bool:
        """Whether ``node`` is inside a context-switch window."""
        return cycle < self._by_node[node].busy_until

    def may_inject(self, pin: int) -> bool:
        """Whether the workload may inject tenant ``pin``'s traffic now."""
        return True

    def injectable(self, pins):
        """The subset of ``pins`` allowed to inject right now.

        The workload pump calls this with its set of backlogged tenants;
        independent policies admit everyone (send-side scheduling is out
        of scope), gang admits only the slice owner — returning the
        subset directly keeps the pump from scanning thousands of gated
        tenants every retry tick.
        """
        return pins

    def stored_messages(self) -> int:
        """User messages parked across every node's store."""
        return sum(state.store.total_pending() for state in self.states)

    def quiescent(self) -> bool:
        return self.stored_messages() == 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "stored": self.stored_messages(),
            "switches": self.switches,
            "redelivered": self.redelivered,
        }

    # ------------------------------------------------------------------
    # Internals shared by the concrete policies.
    # ------------------------------------------------------------------

    def _redeliver(self, state: _NodeState, pin: int) -> int:
        """Move stored messages for ``pin`` back into the input queue.

        Delivery stops at the first refusal (full queue) or when the
        tenant reaches its occupancy cap; the untouched tail is refiled
        in order, so redelivery is always FIFO per tenant.
        """
        if not state.store.pending_count(pin):
            return 0
        ni = state.interface
        cap = ni.tenant_cap
        stored = state.store.take_for(pin)
        delivered = 0
        for index, message in enumerate(stored):
            if cap is not None and ni.input_queue.tenant_occupancy(pin) >= cap:
                blocked = True
            else:
                blocked = not ni.deliver(message)
            if blocked:
                state.store.file_front(pin, stored[index:])
                break
            delivered += 1
        state.redelivered += delivered
        self.redelivered += delivered
        return delivered

    def _park_resident(self, state: _NodeState) -> None:
        """Drain the outgoing tenant's unserviced input back to the store.

        The input registers and queue only ever hold the resident
        tenant's messages, so a switch must park them — ahead of any
        cap-diverted messages already stored, preserving arrival order.
        """
        ni = state.interface
        drained: List[Message] = []
        if ni.current_message is not None:
            drained.append(ni.current_message)
            if ni.lineage is not None:
                # Parking bypasses NEXT, so the in-registers message must
                # report its handler-abort to the tracker here; queued
                # messages are reported by the queue's own drain().
                ni.lineage.on_drain(ni.current_message, ni._clock())
            ni._current = None
        drained.extend(ni.input_queue.drain())
        if drained:
            # One switch parks one tenant's state: every drained message
            # carries the resident PIN.
            state.store.file_front(drained[0].pin, drained)
        ni._refresh_status()

    def _switch_to(self, state: _NodeState, pin: int, cycle: int) -> None:
        """Make ``pin`` resident on ``state``'s node, charging the cost."""
        if pin == state.active_pin:
            return
        self._park_resident(state)
        state.active_pin = pin
        state.slice_start = cycle
        ni = state.interface
        ni.control["active_pin"] = pin
        ni.control["pin_check"] = 1
        state.busy_until = max(state.busy_until, cycle) + self.costs.switch_cycles
        state.switches += 1
        self.switches += 1
        self._redeliver(state, pin)

    def _divert_all(self) -> None:
        """Initial state for independent policies: no tenant resident,
        PIN checking on, so every arrival diverts to the store."""
        for state in self.states:
            state.interface.control["active_pin"] = 0
            state.interface.control["pin_check"] = 1


class RoundRobinScheduler(TenantPolicy):
    """Independent per-node round-robin on fixed quantum boundaries.

    Every ``quantum`` cycles each node advances — independently — to the
    next tenant (in PIN-list order, cyclically from its rotation
    pointer) that has stored messages at that node.  The rotation is
    work-conserving: with no stored work anywhere the node keeps its
    resident tenant and pays no switch cost.
    """

    name = "round-robin"

    def __init__(
        self,
        interfaces: Sequence[NetworkInterface],
        tenants: Sequence[int],
        quantum: int = 50,
        costs: Optional[SwitchCosts] = None,
        tenant_cap: Optional[int] = None,
    ) -> None:
        super().__init__(interfaces, tenants, costs, tenant_cap)
        if quantum <= 0:
            raise ProtectionError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._divert_all()

    def bind(self, kernel) -> object:
        handle = super().bind(kernel)
        # First rotation right away, then on quantum boundaries.
        handle.wake_at(1)
        return handle

    def tick(self, cycle: int) -> None:
        for state in self.states:
            self._rotate(state, cycle)
        self.handle.wake_at(cycle + self.quantum)

    def _rotate(self, state: _NodeState, cycle: int) -> None:
        tenants = self.tenants
        count = len(tenants)
        for offset in range(count):
            index = (state.rotation + offset) % count
            pin = tenants[index]
            if pin == state.active_pin:
                continue
            if state.store.pending_count(pin):
                state.rotation = (index + 1) % count
                self._switch_to(state, pin, cycle)
                return
        # Nobody else is waiting: keep the resident tenant and let any
        # of its cap-diverted overflow back into the freed queue slots.
        if state.active_pin:
            self._redeliver(state, state.active_pin)


class QuantumScheduler(TenantPolicy):
    """Quantum-based preemptive switching, deepest-backlog first.

    Like :class:`RoundRobinScheduler` each node switches independently
    and a resident tenant is never kept past ``quantum`` cycles while
    others wait — but the policy also *preempts* a tenant that has gone
    idle (nothing resident in the input registers or queue, nothing
    stored) as soon as another tenant has stored work, and it always
    picks the waiting tenant with the deepest backlog at that node
    (ties break toward the lowest PIN, keeping runs deterministic).
    """

    name = "quantum"

    def __init__(
        self,
        interfaces: Sequence[NetworkInterface],
        tenants: Sequence[int],
        quantum: int = 50,
        check_interval: int = 4,
        costs: Optional[SwitchCosts] = None,
        tenant_cap: Optional[int] = None,
    ) -> None:
        super().__init__(interfaces, tenants, costs, tenant_cap)
        if quantum <= 0:
            raise ProtectionError(f"quantum must be positive, got {quantum}")
        if check_interval <= 0:
            raise ProtectionError(
                f"check interval must be positive, got {check_interval}"
            )
        self.quantum = quantum
        self.check_interval = check_interval
        self._divert_all()

    def bind(self, kernel) -> object:
        handle = super().bind(kernel)
        handle.wake_at(1)
        return handle

    def tick(self, cycle: int) -> None:
        for state in self.states:
            self._consider(state, cycle)
        self.handle.wake_at(cycle + self.check_interval)

    def _resident_busy(self, state: _NodeState) -> bool:
        """Whether the resident tenant still has work at this node."""
        pin = state.active_pin
        if not pin:
            return False
        ni = state.interface
        current = ni.current_message
        if current is not None and current.pin == pin:
            return True
        if ni.input_queue.tenant_occupancy(pin):
            return True
        return state.store.pending_count(pin) > 0

    def _consider(self, state: _NodeState, cycle: int) -> None:
        waiting = [
            pin
            for pin in self.tenants
            if pin != state.active_pin and state.store.pending_count(pin)
        ]
        if not waiting:
            if state.active_pin:
                self._redeliver(state, state.active_pin)
            return
        expired = cycle - state.slice_start >= self.quantum
        if expired or not self._resident_busy(state):
            deepest = max(
                waiting, key=lambda pin: (state.store.pending_count(pin), -pin)
            )
            self._switch_to(state, deepest, cycle)


class GangTenantScheduler(TenantPolicy):
    """Synchronous gang slices with the network drained between them.

    One tenant at a time owns *every* node (the CM-5 strategy the paper
    cites): its backlog injects, its messages are dispatched, and at the
    slice boundary injection stops, the fabric drains, and all
    remaining interface state is saved via the
    :class:`~repro.nic.protection.GangScheduler` engine before the next
    tenant's saved state is restored.  PIN checking stays off — drained
    networks cannot deliver a stale tenant's message.

    The slice rotation is work-conserving: only tenants with pending
    work (workload backlog via :meth:`set_backlog_fn`, saved network
    state, or cap-diverted store entries) receive slices, and a slice
    ends early once its tenant goes quiet for ``min_slice`` cycles'
    worth of inspection.  The context-switch cost is charged globally:
    no node dispatches during the switch window.
    """

    name = "gang"

    #: Phases of the slice state machine.
    IDLE = "idle"
    ACTIVE = "active"
    DRAINING = "draining"
    SWITCHING = "switching"

    def __init__(
        self,
        interfaces: Sequence[NetworkInterface],
        tenants: Sequence[int],
        slice_cycles: int = 80,
        min_slice: Optional[int] = None,
        costs: Optional[SwitchCosts] = None,
        tenant_cap: Optional[int] = None,
        fabric=None,
    ) -> None:
        super().__init__(interfaces, tenants, costs, tenant_cap)
        if slice_cycles <= 0:
            raise ProtectionError(
                f"slice length must be positive, got {slice_cycles}"
            )
        self.gang = GangScheduler([state.interface for state in self.states])
        self.fabric = fabric
        self.slice_cycles = slice_cycles
        self.min_slice = (
            min_slice
            if min_slice is not None
            else self.costs.switch_cycles + 4
        )
        self.backlog_fn: Callable[[int], int] = lambda pin: 0
        self.phase = self.IDLE
        self.active_pin: Optional[int] = None
        self._pending_pin: Optional[int] = None
        self.rotation = 0
        self.slice_start = 0
        self.switch_done = 0
        self.slices = 0
        for state in self.states:
            state.interface.control["pin_check"] = 0

    def set_backlog_fn(self, fn: Callable[[int], int]) -> None:
        """Install the workload's not-yet-injected-arrivals counter."""
        self.backlog_fn = fn

    # ------------------------------------------------------------------
    # Workload contract overrides: gang decisions are global.
    # ------------------------------------------------------------------

    def may_inject(self, pin: int) -> bool:
        return self.phase == self.ACTIVE and pin == self.active_pin

    def injectable(self, pins):
        if self.phase == self.ACTIVE and self.active_pin in pins:
            return (self.active_pin,)
        return ()

    def stalled(self, node: int, cycle: int) -> bool:
        # The slice switch stalls every node; cap-divert handling during
        # a tenant's own slice additionally stalls that node.
        return cycle < self.switch_done or cycle < self._by_node[node].busy_until

    def quiescent(self) -> bool:
        return (
            self.phase == self.IDLE
            and self.stored_messages() == 0
            and all(
                self.gang.saved_message_count(pin) == 0 for pin in self.tenants
            )
        )

    def snapshot(self) -> Dict[str, object]:
        saved = sum(self.gang.saved_message_count(pin) for pin in self.tenants)
        return {
            "phase": self.phase,
            "active_pin": self.active_pin,
            "stored": self.stored_messages(),
            "saved": saved,
            "slices": self.slices,
        }

    # ------------------------------------------------------------------
    # The slice state machine.
    # ------------------------------------------------------------------

    def _has_work(self, pin: int) -> bool:
        if self.backlog_fn(pin) or self.gang.saved_message_count(pin):
            return True
        return any(state.store.pending_count(pin) for state in self.states)

    def _interfaces_quiet(self) -> bool:
        return all(
            state.interface.current_message is None
            and state.interface.input_queue.is_empty
            for state in self.states
        )

    def _network_quiet(self) -> bool:
        return self.fabric is None or self.fabric.pending() == 0

    def tick(self, cycle: int) -> None:
        if self.phase == self.SWITCHING:
            if cycle >= self.switch_done:
                self._begin_slice(cycle)
            return
        if self.phase == self.ACTIVE:
            pin = self.active_pin
            # Mid-slice refills: saved-state overflow refiled by
            # start_slice, and cap-diverted store entries.
            if self.gang.saved_message_count(pin):
                self.redelivered += self.gang.refill()
            for state in self.states:
                self._redeliver(state, pin)
            elapsed = cycle - self.slice_start
            quiet = (
                not self.backlog_fn(pin)
                and not self.gang.saved_message_count(pin)
                and not any(
                    state.store.pending_count(pin) for state in self.states
                )
                and self._interfaces_quiet()
                and self._network_quiet()
            )
            if elapsed >= self.slice_cycles or (
                elapsed >= self.min_slice and quiet
            ):
                self.phase = self.DRAINING
            return
        if self.phase == self.DRAINING:
            # Injection is gated off; wait for the fabric to empty, then
            # save the tenant's remaining interface state.
            if self._network_quiet():
                self.gang.end_slice()
                self.active_pin = None
                self.phase = self.IDLE
            else:
                return
        if self.phase == self.IDLE:
            self._choose_next(cycle)

    def _choose_next(self, cycle: int) -> None:
        tenants = self.tenants
        count = len(tenants)
        for offset in range(count):
            index = (self.rotation + offset) % count
            pin = tenants[index]
            if self._has_work(pin):
                self.rotation = (index + 1) % count
                self._pending_pin = pin
                self.phase = self.SWITCHING
                self.switch_done = cycle + self.costs.switch_cycles
                self.switches += 1
                return

    def _begin_slice(self, cycle: int) -> None:
        pin = self._pending_pin
        self._pending_pin = None
        self.gang.start_slice(pin)
        self.active_pin = pin
        self.slice_start = cycle
        self.slices += 1
        for state in self.states:
            state.interface.control["active_pin"] = pin
            state.active_pin = pin
            # Cap-diverted overflow from the tenant's previous slices.
            self._redeliver(state, pin)
        self.phase = self.ACTIVE


def make_scheduler(
    name: str,
    interfaces: Sequence[NetworkInterface],
    tenants: Sequence[int],
    quantum: int = 50,
    slice_cycles: int = 80,
    costs: Optional[SwitchCosts] = None,
    tenant_cap: Optional[int] = None,
    fabric=None,
) -> TenantPolicy:
    """Build one of the three policies by name (:data:`SCHEDULER_NAMES`)."""
    if name == "gang":
        return GangTenantScheduler(
            interfaces,
            tenants,
            slice_cycles=slice_cycles,
            costs=costs,
            tenant_cap=tenant_cap,
            fabric=fabric,
        )
    if name == "round-robin":
        return RoundRobinScheduler(
            interfaces, tenants, quantum=quantum, costs=costs, tenant_cap=tenant_cap
        )
    if name == "quantum":
        return QuantumScheduler(
            interfaces, tenants, quantum=quantum, costs=costs, tenant_cap=tenant_cap
        )
    raise ProtectionError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
    )
