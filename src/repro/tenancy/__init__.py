"""Receive-side tenancy: scheduling thousands of protection domains.

The paper's Section 2.1.3 sketches multi-user protection for two
processes; this package scales the receive/dispatch path to thousands of
tenants.  :mod:`repro.tenancy.scheduler` provides the pluggable policies
(gang with drain-between-slices, independent round-robin, quantum-based
preemptive), :mod:`repro.tenancy.workload` the heavy-tailed open-loop
tenant traffic and the :class:`~repro.tenancy.workload.MultiTenantRun`
harness the ``multitenant`` eval section drives.
"""

from repro.tenancy.scheduler import (
    SCHEDULER_NAMES,
    GangTenantScheduler,
    QuantumScheduler,
    RoundRobinScheduler,
    SwitchCosts,
    TenantPolicy,
    make_scheduler,
)
from repro.tenancy.workload import (
    Arrival,
    MultiTenantRun,
    TenantSpec,
    build_schedule,
    make_tenants,
)

__all__ = [
    "SCHEDULER_NAMES",
    "GangTenantScheduler",
    "QuantumScheduler",
    "RoundRobinScheduler",
    "SwitchCosts",
    "TenantPolicy",
    "make_scheduler",
    "Arrival",
    "MultiTenantRun",
    "TenantSpec",
    "build_schedule",
    "make_tenants",
]
