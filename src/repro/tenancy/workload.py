"""Open-loop multi-tenant traffic and the machine that serves it.

The workload layer multiplexes hundreds-to-thousands of protection
domains over one mesh.  Each tenant is an open-loop arrival process —
heavy-tailed inter-burst gaps (Pareto or lognormal) with Pareto burst
sizes, all drawn from per-tenant :func:`~repro.utils.rng.stream_for`
streams so the schedule is a pure function of the seed — plus a
per-tenant destination mix.  Three roles reproduce the Section 2.1.1
hot-spot story at tenant granularity:

* ``flooder`` — one tenant sprays a fixed-rate flood at the hot node
  from several source nodes, exceeding the hot node's ejection and
  service bandwidth;
* ``victim`` — tenants whose destination mix concentrates on the hot
  node, so their messages share the flooded ejection channel and the
  hot node's receive scheduler;
* ``normal`` — background tenants with uniform destination mixes.

:class:`MultiTenantRun` assembles the full machine — interfaces with
per-tenant occupancy caps, cycle-stepped fabric, one of the
:mod:`repro.tenancy.scheduler` policies, an arrival pump, and per-node
servers — on one :class:`~repro.sim.kernel.SimKernel`, runs it for a
fixed horizon, and reports per-tenant QoS (reservoir-sampled dispatch
latency percentiles, throughput share, completion) plus the per-role
victim analysis the eval section renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

from collections import deque

from repro.errors import NetworkError, ProtectionError
from repro.network.fabric import Fabric
from repro.network.topology import Mesh2D
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import pack_destination
from repro.nic.protection import check_pin
from repro.obs.metrics import Histogram
from repro.sim import SimComponent, SimKernel
from repro.tenancy.scheduler import SwitchCosts, TenantPolicy, make_scheduler
from repro.utils.rng import SplitMix64, stream_for

#: Message type carried by all tenant traffic (type 1 is reserved).
TENANT_MTYPE = 2

#: Tenant roles.
ROLE_NORMAL = "normal"
ROLE_VICTIM = "victim"
ROLE_FLOODER = "flooder"

#: Reservoir size for per-tenant latency series (bounded memory across
#: thousands of tenants; exact until a tenant exceeds this many samples).
LATENCY_RESERVOIR = 128

#: Burst sizes are Pareto but clamped so no single draw floods the run.
MAX_BURST = 32


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and traffic model.

    ``sources`` are the nodes it injects from (round-robin per message);
    ``dest_weights`` is its destination mix over all nodes.  Inter-burst
    gaps follow ``distribution`` (``"pareto"``, ``"lognormal"``, or
    ``"fixed"``) with mean ``gap_mean``; each burst holds a Pareto
    number of messages spaced ``burst_spacing`` cycles apart, all to one
    drawn destination.
    """

    pin: int
    role: str
    sources: Tuple[int, ...]
    dest_weights: Tuple[float, ...]
    distribution: str = "pareto"
    gap_mean: float = 8000.0
    burst_mean: float = 4.0
    burst_spacing: int = 2
    alpha: float = 1.5
    sigma: float = 1.0


class Arrival(NamedTuple):
    """One generated message: when, whose, from where, to where."""

    cycle: int
    pin: int
    source: int
    dest: int


def _draw_gap(spec: TenantSpec, rng: SplitMix64) -> int:
    """One inter-burst gap in cycles (>= 1)."""
    if spec.distribution == "fixed":
        gap = spec.gap_mean
    elif spec.distribution == "pareto":
        # X = xm * U^(-1/alpha); E[X] = alpha*xm/(alpha-1) = gap_mean.
        xm = spec.gap_mean * (spec.alpha - 1.0) / spec.alpha
        u = 1.0 - rng.next_float()  # (0, 1]
        gap = xm * u ** (-1.0 / spec.alpha)
    elif spec.distribution == "lognormal":
        # E[X] = exp(mu + sigma^2/2) = gap_mean.
        mu = math.log(spec.gap_mean) - spec.sigma * spec.sigma / 2.0
        u1 = 1.0 - rng.next_float()
        u2 = rng.next_float()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        gap = math.exp(mu + spec.sigma * z)
    else:
        raise ProtectionError(
            f"unknown arrival distribution {spec.distribution!r}"
        )
    return max(1, int(round(gap)))


def _draw_burst(spec: TenantSpec, rng: SplitMix64) -> int:
    """One burst size (>= 1, Pareto-tailed, clamped to MAX_BURST)."""
    if spec.burst_mean <= 1.0:
        return 1
    alpha = 1.3
    xm = spec.burst_mean * (alpha - 1.0) / alpha
    u = 1.0 - rng.next_float()
    size = int(xm * u ** (-1.0 / alpha))
    return max(1, min(size, MAX_BURST))


def make_tenants(
    n_tenants: int,
    n_nodes: int,
    seed: int,
    hot_node: int = 0,
    victim_count: Optional[int] = None,
    flooder: bool = True,
    flood_interval: int = 3,
    flood_sources: int = 4,
    gap_mean: float = 16000.0,
    distribution: str = "pareto",
    victim_hot_weight: float = 0.8,
) -> List[TenantSpec]:
    """Build the tenant population for one run.

    PIN 1 is the flooder (when enabled), the next ``victim_count``
    (default ``n_tenants // 8``) PINs are victims, the rest normal.
    Source nodes and destination mixes are drawn from a stream derived
    only from ``seed``, so the population is reproducible independent of
    the schedule draws.
    """
    if n_tenants < 1:
        raise ProtectionError("need at least one tenant")
    if n_nodes < 2:
        raise ProtectionError("need at least two nodes")
    rng = stream_for(seed, 0xBEEF)
    if victim_count is None:
        victim_count = max(1, n_tenants // 8)
    others = [node for node in range(n_nodes) if node != hot_node]
    specs: List[TenantSpec] = []
    for pin in range(1, n_tenants + 1):
        check_pin(pin)
        if flooder and pin == 1:
            sources = tuple(
                others[rng.next_below(len(others))]
                for _ in range(max(1, flood_sources))
            )
            weights = tuple(
                1.0 if node == hot_node else 0.0 for node in range(n_nodes)
            )
            specs.append(
                TenantSpec(
                    pin=pin,
                    role=ROLE_FLOODER,
                    sources=sources,
                    dest_weights=weights,
                    distribution="fixed",
                    gap_mean=float(flood_interval),
                    burst_mean=1.0,
                )
            )
            continue
        source = others[rng.next_below(len(others))]
        is_victim = pin <= victim_count + (1 if flooder else 0)
        if is_victim:
            spread = (1.0 - victim_hot_weight) / max(1, n_nodes - 2)
            weights = tuple(
                victim_hot_weight
                if node == hot_node
                else (0.0 if node == source else spread)
                for node in range(n_nodes)
            )
            role = ROLE_VICTIM
        else:
            weights = tuple(
                0.0 if node == source else 1.0 for node in range(n_nodes)
            )
            role = ROLE_NORMAL
        specs.append(
            TenantSpec(
                pin=pin,
                role=role,
                sources=(source,),
                dest_weights=weights,
                distribution=distribution,
                gap_mean=gap_mean,
            )
        )
    return specs


def build_schedule(
    tenants: Sequence[TenantSpec], gen_window: int, seed: int
) -> List[Arrival]:
    """The merged open-loop arrival schedule over ``[1, gen_window]``.

    Each tenant's draws come from ``stream_for(seed, pin)``, so the
    schedule is independent of tenant iteration order; the merge sorts
    by (cycle, pin, sequence) for a deterministic pump order.
    """
    arrivals: List[Arrival] = []
    for spec in tenants:
        rng = stream_for(seed, spec.pin)
        # Stagger the first burst uniformly inside one mean gap.
        t = 1 + rng.next_below(max(1, int(spec.gap_mean)))
        sent = 0
        while t <= gen_window:
            burst = _draw_burst(spec, rng)
            dest = rng.choice_index(list(spec.dest_weights))
            for index in range(burst):
                cycle = t + index * spec.burst_spacing
                if cycle > gen_window:
                    break
                source = spec.sources[sent % len(spec.sources)]
                arrivals.append(Arrival(cycle, spec.pin, source, dest))
                sent += 1
            t += _draw_gap(spec, rng)
    arrivals.sort(key=lambda a: (a.cycle, a.pin))
    return arrivals


class _ArrivalPump(SimComponent):
    """Injects the schedule, honouring the policy's injection gate.

    Due arrivals enter per-tenant backlogs; each tick the pump asks the
    scheduler which backlogged tenants may inject (gang admits only the
    slice owner) and drains those backlogs through the source nodes'
    output registers until a SEND stalls.  The backlog depth doubles as
    the gang policy's workload-side work signal.
    """

    name = "pump"

    def __init__(
        self,
        interfaces: Sequence[NetworkInterface],
        scheduler: TenantPolicy,
        schedule: Sequence[Arrival],
        retry_interval: int = 2,
    ) -> None:
        self.interfaces = interfaces
        self.scheduler = scheduler
        self.schedule = list(schedule)
        self.retry_interval = retry_interval
        self.index = 0
        self.blocked: Dict[int, Deque[Arrival]] = {}
        self.injected = 0
        self.injected_by_pin: Dict[int, int] = {}
        self.handle = None

    def backlog(self, pin: int) -> int:
        """Generated-but-not-yet-injected messages for ``pin``."""
        queue = self.blocked.get(pin)
        return len(queue) if queue is not None else 0

    def first_cycle(self) -> int:
        return self.schedule[0].cycle if self.schedule else 1

    def tick(self, cycle: int) -> None:
        schedule = self.schedule
        while self.index < len(schedule) and schedule[self.index].cycle <= cycle:
            arrival = schedule[self.index]
            self.index += 1
            queue = self.blocked.get(arrival.pin)
            if queue is None:
                queue = self.blocked[arrival.pin] = deque()
            queue.append(arrival)
        for pin in list(self.scheduler.injectable(self.blocked)):
            queue = self.blocked.get(pin)
            if queue is None:
                continue
            while queue and self._inject(queue[0], pin):
                queue.popleft()
            if not queue:
                del self.blocked[pin]
        if self.blocked:
            self.handle.wake_at(cycle + self.retry_interval)
        elif self.index < len(schedule):
            self.handle.wake_at(max(cycle + 1, schedule[self.index].cycle))
        else:
            self.handle.sleep()

    def _inject(self, arrival: Arrival, pin: int) -> bool:
        if not self.scheduler.may_inject(pin):
            return False
        ni = self.interfaces[arrival.source]
        if ni.output_queue.is_full:
            return False
        # Compose under the tenant's PIN; the source's resident receive
        # PIN is unrelated, so save and restore it around the SEND.
        resident = ni.control["active_pin"]
        ni.control["active_pin"] = pin
        ni.write_output(0, pack_destination(arrival.dest))
        ni.write_output(1, arrival.cycle)  # generation stamp -> latency
        ni.write_output(2, 0)
        result = ni.send(TENANT_MTYPE)
        ni.control["active_pin"] = resident
        if result is not SendResult.SENT:
            return False
        self.injected += 1
        self.injected_by_pin[pin] = self.injected_by_pin.get(pin, 0) + 1
        return True

    def quiescent(self) -> bool:
        return self.index >= len(self.schedule) and not self.blocked

    def snapshot(self):
        return {
            "scheduled": len(self.schedule),
            "injected": self.injected,
            "backlogged": sum(len(q) for q in self.blocked.values()),
        }


class _NodeServer(SimComponent):
    """One node's processor: dispatches one message per service slot,
    unless the receive scheduler holds it inside a switch window."""

    def __init__(self, run: "MultiTenantRun", node: int, interval: int) -> None:
        self.name = f"server{node}"
        self.run = run
        self.node = node
        self.interface = run.interfaces[node]
        self.interval = interval
        self.serviced = 0
        self.handle = None

    def tick(self, cycle: int) -> None:
        ni = self.interface
        if ni.msg_valid and not self.run.scheduler.stalled(self.node, cycle):
            message = ni.current_message
            self.run.record_dispatch(
                self.node, message.pin, cycle - message.word(1)
            )
            ni.next()
            self.serviced += 1
        self.handle.wake_at(cycle + self.interval)

    def quiescent(self) -> bool:
        return not self.interface.msg_valid and self.interface.input_queue.is_empty

    def snapshot(self):
        return {
            "serviced": self.serviced,
            "input_queue": self.interface.input_queue.depth,
        }


class _FabricClock(SimComponent):
    """The fabric under the tenancy kernel: steps every cycle."""

    name = "fabric"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.peak_in_flight = 0

    def tick(self, cycle: int) -> None:
        self.fabric.step()
        in_flight = self.fabric.in_flight()
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight

    def quiescent(self) -> bool:
        return self.fabric.pending() == 0

    def snapshot(self):
        return self.fabric.snapshot()


class MultiTenantRun:
    """One policy serving one tenant population for a fixed horizon."""

    def __init__(
        self,
        scheduler_name: str,
        tenants: Sequence[TenantSpec],
        seed: int,
        width: int = 4,
        height: int = 4,
        gen_window: int = 12000,
        horizon: int = 16000,
        service_interval: int = 4,
        quantum: int = 50,
        slice_cycles: int = 80,
        switch_cycles: int = 4,
        tenant_cap: Optional[int] = 8,
        input_capacity: int = 16,
        output_capacity: int = 16,
        link_buffer_depth: int = 2,
        serialization_cycles: int = 4,
    ) -> None:
        if horizon < gen_window:
            raise ProtectionError("horizon must cover the generation window")
        self.scheduler_name = scheduler_name
        self.tenants = list(tenants)
        self.spec_by_pin = {spec.pin: spec for spec in self.tenants}
        self.horizon = horizon
        topology = Mesh2D(width, height)
        self.interfaces = [
            NetworkInterface(
                node=node,
                input_capacity=input_capacity,
                output_capacity=output_capacity,
            )
            for node in range(topology.n_nodes)
        ]
        self.fabric = Fabric(
            topology,
            self.interfaces,
            link_buffer_depth=link_buffer_depth,
            serialization_cycles=serialization_cycles,
        )
        pins = [spec.pin for spec in self.tenants]
        self.scheduler = make_scheduler(
            scheduler_name,
            self.interfaces,
            pins,
            quantum=quantum,
            slice_cycles=slice_cycles,
            costs=SwitchCosts(switch_cycles=switch_cycles),
            tenant_cap=tenant_cap,
            fabric=self.fabric,
        )
        self.schedule = build_schedule(self.tenants, gen_window, seed)
        self.kernel = SimKernel()
        # Service order: the pump injects, the scheduler decides, the
        # servers dispatch, the fabric moves — registration order is the
        # kernel's intra-cycle order.
        self.pump = _ArrivalPump(self.interfaces, self.scheduler, self.schedule)
        self.pump.handle = self.kernel.register(self.pump)
        self.pump.handle.wake_at(self.pump.first_cycle())
        self.scheduler.bind(self.kernel)
        if hasattr(self.scheduler, "set_backlog_fn"):
            self.scheduler.set_backlog_fn(self.pump.backlog)
        self.servers = [
            _NodeServer(self, node, service_interval)
            for node in range(topology.n_nodes)
        ]
        for server in self.servers:
            server.handle = self.kernel.register(server)
            server.handle.wake_at(1 + (server.node % service_interval))
        self.clock = _FabricClock(self.fabric)
        self.kernel.register(self.clock)
        # Per-tenant bounded-memory latency series plus exact per-role
        # aggregates (three roles, so exact is cheap).
        self.latency: Dict[int, Histogram] = {
            pin: Histogram(reservoir=LATENCY_RESERVOIR, seed=pin)
            for pin in pins
        }
        self.role_latency: Dict[str, Histogram] = {
            ROLE_NORMAL: Histogram(),
            ROLE_VICTIM: Histogram(),
            ROLE_FLOODER: Histogram(),
        }
        self.dispatched_by_pin: Dict[int, int] = {}
        self.dispatched = 0
        self.censored_by_pin: Dict[int, int] = {}
        self._finalized = False

    def record_dispatch(self, node: int, pin: int, latency: int) -> None:
        histogram = self.latency.get(pin)
        if histogram is None:  # pragma: no cover - unknown PIN guard
            return
        histogram.add(latency)
        self.role_latency[self.spec_by_pin[pin].role].add(latency)
        self.dispatched_by_pin[pin] = self.dispatched_by_pin.get(pin, 0) + 1
        self.dispatched += 1

    def run(self) -> int:
        """Advance the machine to the horizon; returns cycles executed."""
        kernel = self.kernel
        stop_at = kernel.cycle + self.horizon
        result = kernel.run(
            max_cycles=self.horizon + 1,
            until=lambda: kernel.cycle >= stop_at,
            stall_error=NetworkError,
            label=f"multitenant[{self.scheduler_name}]",
        )
        self._finalize()
        return result.cycles

    def _finalize(self) -> None:
        """Fold right-censored arrivals into the latency series.

        A starved tenant's messages never dispatch inside the horizon;
        dropping them would make a starving scheduler look *fast* (only
        its easy dispatches would be measured).  Each undispatched
        arrival instead contributes its age at the horizon — a lower
        bound on its true latency — so the percentiles reflect
        starvation.  Per tenant the undispatched arrivals are the last
        ones generated (dispatch is FIFO per tenant), so the ages are
        exact per-arrival, in schedule order for determinism.
        """
        if self._finalized:
            return
        self._finalized = True
        generated_cycles: Dict[int, List[int]] = {}
        for arrival in self.schedule:
            generated_cycles.setdefault(arrival.pin, []).append(arrival.cycle)
        for spec in self.tenants:
            cycles = generated_cycles.get(spec.pin, [])
            censored = len(cycles) - self.dispatched_by_pin.get(spec.pin, 0)
            if censored <= 0:
                continue
            self.censored_by_pin[spec.pin] = censored
            histogram = self.latency[spec.pin]
            role_histogram = self.role_latency[spec.role]
            for cycle in cycles[-censored:]:
                age = self.horizon - cycle
                histogram.add(age)
                role_histogram.add(age)

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    def tenant_table(self) -> List[Dict[str, object]]:
        """Per-tenant QoS rows, ascending PIN (the byte-identical table)."""
        generated: Dict[int, int] = {}
        for arrival in self.schedule:
            generated[arrival.pin] = generated.get(arrival.pin, 0) + 1
        total = self.dispatched or 1
        rows: List[Dict[str, object]] = []
        for spec in self.tenants:
            summary = self.latency[spec.pin].summary()
            dispatched = self.dispatched_by_pin.get(spec.pin, 0)
            rows.append(
                {
                    "pin": spec.pin,
                    "role": spec.role,
                    "generated": generated.get(spec.pin, 0),
                    "injected": self.pump.injected_by_pin.get(spec.pin, 0),
                    "dispatched": dispatched,
                    "censored": self.censored_by_pin.get(spec.pin, 0),
                    "share": round(dispatched / total, 6),
                    "p50": summary["p50"],
                    "p99": summary["p99"],
                    "mean": summary["mean"],
                }
            )
        return rows

    def role_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate latency per role (the victim-analysis numbers)."""
        return {
            role: histogram.summary()
            for role, histogram in self.role_latency.items()
        }

    def payload(self) -> Dict[str, object]:
        """The whole run as plain JSON types."""
        scheduled = len(self.schedule)
        return {
            "scheduler": self.scheduler_name,
            "tenants": len(self.tenants),
            "nodes": len(self.interfaces),
            "scheduled": scheduled,
            "injected": self.pump.injected,
            "dispatched": self.dispatched,
            "completion": round(self.dispatched / (scheduled or 1), 4),
            "switches": self.scheduler.switches,
            "redelivered": self.scheduler.redelivered,
            "diverted": dict(self.scheduler.diverted_by_reason),
            "peak_in_flight": self.clock.peak_in_flight,
            "roles": self.role_summary(),
            "tenant_table": self.tenant_table(),
        }
