"""The paper's contribution: the tightly-coupled network interface.

Public surface of the subpackage:

* :class:`~repro.nic.interface.NetworkInterface` — the architectural model
  (Figure 1): registers, queues, SEND / NEXT, REPLY / FORWARD modes.
* :class:`~repro.nic.messages.Message` — the five-word message (Figure 2).
* :mod:`~repro.nic.dispatch` — MsgIp / NextMsgIp hardware dispatch (Figure 7).
* :mod:`~repro.nic.mmio` — the Figure 9 memory-mapped command encoding.
* :mod:`~repro.nic.scroll` — SCROLL-IN / SCROLL-OUT variable-length messages.
* :mod:`~repro.nic.protection` — PINs, privileged messages, gang scheduling.
* :class:`~repro.nic.rtl.ClockedNIC` — the cycle-stepped RTL-style chip model.
"""

from repro.nic.control import ControlRegister, SendFullPolicy, StatusRegister
from repro.nic.dispatch import DispatchConditions, DispatchUnit, handler_table_address
from repro.nic.interface import NetworkInterface, SendMode, SendResult
from repro.nic.messages import (
    Message,
    MessageTypeRegistry,
    default_registry,
    pack_destination,
    unpack_destination,
)
from repro.nic.mmio import MemoryMappedInterface, decode_address, encode_address
from repro.nic.queues import MessageQueue
from repro.nic.rtl import ClockedNIC, Flit, FlitKind

__all__ = [
    "ClockedNIC",
    "ControlRegister",
    "DispatchConditions",
    "DispatchUnit",
    "Flit",
    "FlitKind",
    "MemoryMappedInterface",
    "Message",
    "MessageQueue",
    "MessageTypeRegistry",
    "NetworkInterface",
    "SendFullPolicy",
    "SendMode",
    "SendResult",
    "StatusRegister",
    "decode_address",
    "default_registry",
    "encode_address",
    "handler_table_address",
    "pack_destination",
    "unpack_destination",
]
