"""Variable-length messages via SCROLL-IN / SCROLL-OUT (Section 2.1.2).

The base architecture moves exactly five words per message.  For longer
messages the paper extends the input and output registers into *scrolling
windows*: ``SCROLL-OUT`` transmits the five output-register words and keeps
composing the same (still-open) message, and ``SCROLL-IN`` advances the
input window by five words within one incoming message.

This module implements that extension on top of the architectural
interface.  A long message travels as a train of ordinary five-word
segments sharing a type; every segment except the last is marked as having
a continuation.  The continuation mark rides in the fabric envelope
(:class:`Segment`), the same place the PIN tag lives, mirroring a wider
flit format in real hardware.

The module also provides :class:`StreamSender` / :class:`StreamReceiver`,
a minimal systolic-style stream built from scrolling windows, exercising the
"infinite length systolic streams" case the paper mentions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Sequence

from repro.errors import MessageFormatError, QueueUnderflowError
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import MESSAGE_WORDS, Message, pack_destination


@dataclass(frozen=True)
class Segment:
    """One five-word segment of a (possibly longer) message.

    ``continued`` marks that at least one more segment of the same logical
    message follows.  A plain architectural message is a single segment with
    ``continued=False``.
    """

    message: Message
    continued: bool = False


class ScrollingSender:
    """SCROLL-OUT support: compose a message longer than five words.

    Usage mirrors the hardware model: software fills ``o0..o4`` through the
    underlying interface and calls :meth:`scroll_out` for every full window,
    then :meth:`send` for the final (possibly partial) window.
    """

    def __init__(self, interface: NetworkInterface) -> None:
        self.interface = interface
        self._open_segments: List[Message] = []

    @property
    def message_open(self) -> bool:
        """Whether a multi-segment message is being composed."""
        return bool(self._open_segments)

    def scroll_out(self, mtype: int) -> SendResult:
        """Transmit the current window and keep the message open."""
        message = self.interface.compose(mtype)
        if self.interface.output_queue.is_full:
            return SendResult.STALLED
        self._open_segments.append(message)
        return SendResult.SENT

    def send(self, mtype: int) -> SendResult:
        """Transmit the final window, closing the message."""
        result = self.interface.send(mtype)
        if result is SendResult.SENT:
            self._open_segments.clear()
        return result

    def take_open_segments(self) -> List[Segment]:
        """Segments emitted by scroll-outs since the last close.

        The fabric collects these (each marked continued) ahead of the
        closing segment that :meth:`send` pushed onto the output queue.
        """
        segments = [Segment(m, continued=True) for m in self._open_segments]
        self._open_segments.clear()
        return segments


class ScrollingReceiver:
    """SCROLL-IN support: walk a long message window by window."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._position = 0

    def accept(self, segment: Segment) -> None:
        """Buffer one arrived segment of the current long message."""
        self._segments.append(segment)

    @property
    def window(self) -> Optional[Message]:
        """The five words currently visible in the input registers."""
        if self._position < len(self._segments):
            return self._segments[self._position].message
        return None

    @property
    def more_to_scroll(self) -> bool:
        """Whether SCROLL-IN would expose another window."""
        if self._position >= len(self._segments):
            return False
        return self._segments[self._position].continued

    def scroll_in(self) -> Message:
        """Advance the window by five words within the same message."""
        if not self.more_to_scroll:
            raise QueueUnderflowError("SCROLL-IN past the end of the message")
        self._position += 1
        window = self.window
        if window is None:
            raise QueueUnderflowError("SCROLL-IN found no buffered segment")
        return window

    def finish(self) -> List[Message]:
        """Close out the message, returning all its segments in order."""
        messages = [s.message for s in self._segments]
        self._segments.clear()
        self._position = 0
        return messages


def segment_words(
    mtype: int,
    destination: int,
    words: Sequence[int],
) -> List[Segment]:
    """Split an arbitrary word sequence into a train of segments.

    The first segment's ``m0`` carries the destination (as every message's
    must); subsequent segments repeat the destination so each five-word
    unit routes independently, exactly as a scrolled hardware message would.
    Word counts that are not a multiple of four (first segment) / five are
    zero-padded in the final segment.
    """
    if not words:
        raise MessageFormatError("a long message needs at least one word")
    segments: List[Segment] = []
    remaining = list(words)
    first = True
    while remaining:
        if first:
            payload, remaining = remaining[:4], remaining[4:]
            message = Message.build(mtype, destination, payload)
            first = False
        else:
            chunk, remaining = remaining[:4], remaining[4:]
            message = Message.build(mtype, destination, chunk)
        segments.append(Segment(message, continued=bool(remaining)))
    return segments


def reassemble(segments: Iterable[Segment]) -> List[int]:
    """Recover the word sequence from a train of segments (inverse helper)."""
    words: List[int] = []
    for segment in segments:
        words.extend(segment.message.words[1:])
    return words


@dataclass
class StreamSender:
    """A one-way systolic-style stream to a fixed destination.

    Any :meth:`put` implicitly transmits, like the iWARP gate register the
    paper surveys — but built from the message-passing interface's
    scrolling windows rather than a dedicated connection.
    """

    interface: NetworkInterface
    destination: int
    mtype: int
    _pending: List[int] = field(default_factory=list)

    def put(self, value: int) -> None:
        """Write one word into the stream."""
        self._pending.append(value)
        if len(self._pending) == MESSAGE_WORDS - 1:
            self.flush()

    def flush(self) -> None:
        """Transmit any buffered words as one segment."""
        if not self._pending:
            return
        for index, value in enumerate(self._pending, start=1):
            self.interface.write_output(index, value)
        for index in range(len(self._pending) + 1, MESSAGE_WORDS):
            self.interface.write_output(index, 0)
        self.interface.write_output(
            0, pack_destination(self.destination, len(self._pending))
        )
        self.interface.send(self.mtype)
        self._pending.clear()


@dataclass
class StreamReceiver:
    """The receiving end of a :class:`StreamSender` stream."""

    interface: NetworkInterface
    mtype: int
    # Stream words drain from the front; a deque keeps get() O(1).
    _buffer: Deque[int] = field(default_factory=deque)

    def poll(self) -> None:
        """Drain any arrived stream segments into the local buffer."""
        while self.interface.msg_valid:
            message = self.interface.current_message
            assert message is not None
            if message.mtype != self.mtype:
                break
            count = message.m0_low
            self._buffer.extend(message.words[1 : 1 + count])
            self.interface.next()

    def get(self) -> Optional[int]:
        """Read the next stream word, or None when the stream is dry."""
        if not self._buffer:
            self.poll()
        if self._buffer:
            return self._buffer.popleft()
        return None
