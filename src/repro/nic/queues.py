"""Bounded input and output message queues (paper Figure 1).

The input queue continuously receives messages from the network and buffers
them until the processor pops them with ``NEXT``; the output queue buffers
sent messages until the network accepts them.  Both are bounded; the
``CONTROL`` register sets a *threshold* on each which, when exceeded, raises
the ``iafull`` / ``oafull`` ("almost full") conditions folded into ``MsgIp``
(Section 2.2.4).

The queues also keep occupancy statistics so the evaluation harnesses can
report peak depths and threshold-crossing counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import QueueOverflowError, QueueUnderflowError
from repro.nic.messages import Message

DEFAULT_CAPACITY = 16
"""Default queue depth in messages.

Section 3.2 sizes the on-chip memory for 16-message queues (about 3/4 of a
kilobyte for both), so 16 is the architectural default here too.
"""

DEFAULT_THRESHOLD_HEADROOM = 4
"""Messages of slack the default almost-full threshold leaves below capacity."""


def default_threshold(capacity: int) -> int:
    """The default almost-full threshold for a queue of ``capacity``.

    Derived from the *actual* capacity (not :data:`DEFAULT_CAPACITY`) so
    small queues still assert ``almost_full`` strictly before ``is_full``:
    a ``capacity=4`` queue gets threshold 0, not a clamped-to-capacity 12.
    """
    return max(0, capacity - DEFAULT_THRESHOLD_HEADROOM)


@dataclass
class QueueStats:
    """Occupancy statistics accumulated by a :class:`MessageQueue`.

    Each counter means exactly one thing:

    * ``pushes`` — messages successfully enqueued.
    * ``pops`` — messages dequeued (``pop`` / ``try_pop`` / ``drain``).
    * ``rejected`` — enqueue *attempts* refused because the queue was
      full, whether the attempt raised (``push``) or returned False
      (``try_push``).  ``pushes + rejected`` is the total attempt count.
    * ``peak_depth`` — maximum occupancy ever observed.
    * ``threshold_crossings`` — rising edges of :attr:`MessageQueue.almost_full`
      (one per excursion above the threshold, not one per cycle spent there).
    """

    pushes: int = 0
    pops: int = 0
    rejected: int = 0
    peak_depth: int = 0
    threshold_crossings: int = 0

    def snapshot(self) -> dict:
        """The statistics as a plain dictionary (for reports)."""
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "rejected": self.rejected,
            "peak_depth": self.peak_depth,
            "threshold_crossings": self.threshold_crossings,
        }


class TenantOccupancy:
    """Per-tenant (PIN-keyed) occupancy accounting for one queue.

    The multi-tenant serving study (Section 2.1.3 at scale) needs to know
    *whose* messages fill a shared input queue, not just how deep it is:
    occupancy caps, fairness metrics, and victim analysis all key on the
    sending process's PIN.  An instance attaches to one
    :class:`MessageQueue` via :meth:`MessageQueue.attach_tenant_stats`;
    with none attached the queue's behaviour and cost are unchanged.

    * ``depth`` — current queued messages per PIN.
    * ``peak`` — maximum simultaneous occupancy ever observed per PIN.
    * ``pushes`` — messages enqueued per PIN.
    * ``cap_rejections`` — deliveries diverted because the PIN was at its
      occupancy cap (counted by the interface, which owns the cap check).
    """

    __slots__ = ("depth", "peak", "pushes", "cap_rejections")

    def __init__(self) -> None:
        self.depth: Dict[int, int] = {}
        self.peak: Dict[int, int] = {}
        self.pushes: Dict[int, int] = {}
        self.cap_rejections: Dict[int, int] = {}

    def occupancy(self, pin: int) -> int:
        """How many messages of process ``pin`` are queued right now."""
        return self.depth.get(pin, 0)

    def on_push(self, pin: int) -> None:
        depth = self.depth.get(pin, 0) + 1
        self.depth[pin] = depth
        self.pushes[pin] = self.pushes.get(pin, 0) + 1
        if depth > self.peak.get(pin, 0):
            self.peak[pin] = depth

    def on_pop(self, pin: int) -> None:
        depth = self.depth.get(pin, 0) - 1
        if depth > 0:
            self.depth[pin] = depth
        else:
            self.depth.pop(pin, None)

    def on_cap_rejection(self, pin: int) -> None:
        self.cap_rejections[pin] = self.cap_rejections.get(pin, 0) + 1

    def reset_depths(self) -> None:
        """Forget current occupancy (queue cleared); history is kept."""
        self.depth.clear()

    def snapshot(self) -> dict:
        """The accounting as plain dictionaries (for reports)."""
        return {
            "depth": dict(self.depth),
            "peak": dict(self.peak),
            "pushes": dict(self.pushes),
            "cap_rejections": dict(self.cap_rejections),
        }


@dataclass
class MessageQueue:
    """A bounded FIFO of :class:`Message` with an almost-full threshold.

    ``threshold`` is the depth above which :attr:`almost_full` asserts; it
    is software-settable through the ``CONTROL`` register.  ``capacity`` is
    the hardware depth.  When ``threshold`` is omitted it defaults to
    :func:`default_threshold` of the actual capacity, so ``almost_full``
    asserts before ``is_full`` at any capacity.
    """

    name: str
    capacity: int = DEFAULT_CAPACITY
    threshold: Optional[int] = None
    _items: Deque[Message] = field(default_factory=deque, repr=False)
    stats: QueueStats = field(default_factory=QueueStats, repr=False)
    tenant_stats: Optional[TenantOccupancy] = field(default=None, repr=False)
    lineage: object = field(default=None, repr=False)
    _lineage_clock: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"queue {self.name!r}: capacity must be positive")
        if self.threshold is None:
            self.threshold = default_threshold(self.capacity)
        self.set_threshold(self.threshold)

    def attach_tenant_stats(
        self, tenant_stats: Optional[TenantOccupancy] = None
    ) -> TenantOccupancy:
        """Opt in to per-PIN occupancy accounting; returns the accountant.

        Called once by workloads that multiplex tenants over this queue;
        queues with no accountant attached pay only an identity check.
        """
        if tenant_stats is None:
            tenant_stats = TenantOccupancy()
        self.tenant_stats = tenant_stats
        for message in self._items:
            tenant_stats.on_push(message.pin)
        return tenant_stats

    def attach_lineage(self, lineage, clock) -> None:
        """Opt in to lineage tracing of queue-level drains (parking).

        Only :meth:`drain` reports to the tracker — pushes and pops are
        already observed at the interface layer; the drain is the one
        transition (receive-side parking, Section 2.1.3 drains) that
        bypasses the interface entirely.
        """
        self.lineage = lineage
        self._lineage_clock = clock

    def tenant_occupancy(self, pin: int) -> int:
        """Queued messages of process ``pin`` (0 with no accounting attached)."""
        if self.tenant_stats is None:
            return 0
        return self.tenant_stats.occupancy(pin)

    def set_threshold(self, threshold: int) -> None:
        """Set the almost-full threshold (clamped to [0, capacity])."""
        self.threshold = max(0, min(threshold, self.capacity))

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._items)

    @property
    def depth(self) -> int:
        """Current number of queued messages."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def almost_full(self) -> bool:
        """True when occupancy exceeds the software-set threshold."""
        return len(self._items) > self.threshold

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._items)

    def push(self, message: Message) -> None:
        """Append ``message``; raises :class:`QueueOverflowError` when full.

        Callers that want stall semantics (the CONTROL register's other
        policy) must check :attr:`is_full` first; the queue itself always
        treats overflow as an error so that no message is ever dropped
        silently.
        """
        if self.is_full:
            self.stats.rejected += 1
            raise QueueOverflowError(
                f"queue {self.name!r} is full (capacity {self.capacity})"
            )
        was_almost_full = self.almost_full
        self._items.append(message)
        self.stats.pushes += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))
        if self.almost_full and not was_almost_full:
            self.stats.threshold_crossings += 1
        if self.tenant_stats is not None:
            self.tenant_stats.on_push(message.pin)

    def try_push(self, message: Message) -> bool:
        """Append ``message`` if space allows; return whether it was queued.

        A refused attempt counts in ``stats.rejected`` exactly as a
        refused :meth:`push` does — the two entry points differ only in
        how they report the refusal, never in what they count.
        """
        if self.is_full:
            self.stats.rejected += 1
            return False
        self.push(message)
        return True

    def peek(self) -> Optional[Message]:
        """The least recently queued message, without removing it."""
        return self._items[0] if self._items else None

    def peek_at(self, index: int) -> Optional[Message]:
        """The ``index``-th oldest queued message, or None."""
        if 0 <= index < len(self._items):
            return self._items[index]
        return None

    def pop(self) -> Message:
        """Remove and return the oldest message."""
        if not self._items:
            raise QueueUnderflowError(f"queue {self.name!r} is empty")
        self.stats.pops += 1
        message = self._items.popleft()
        if self.tenant_stats is not None:
            self.tenant_stats.on_pop(message.pin)
        return message

    def try_pop(self) -> Optional[Message]:
        """Remove and return the oldest message, or None when empty."""
        if not self._items:
            return None
        return self.pop()

    def drain(self) -> List[Message]:
        """Remove and return all queued messages, oldest first.

        Used by the protection machinery when the machine drains the network
        between time slices (Section 2.1.3).
        """
        drained = list(self._items)
        self.stats.pops += len(drained)
        self._items.clear()
        if self.tenant_stats is not None:
            self.tenant_stats.reset_depths()
        if self.lineage is not None and drained:
            now = self._lineage_clock()
            for message in drained:
                self.lineage.on_drain(message, now)
        return drained

    def clear(self) -> None:
        """Discard all queued messages without counting them as pops."""
        self._items.clear()
        if self.tenant_stats is not None:
            self.tenant_stats.reset_depths()
