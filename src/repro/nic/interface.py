"""The programmer-visible network interface (paper Section 2).

This is the architectural (untimed) model of the interface in Figure 1:
five output registers ``o0..o4``, five input registers ``i0..i4``, the
``STATUS`` and ``CONTROL`` registers, the dispatch registers ``IpBase`` /
``MsgIp`` / ``NextMsgIp``, and the bounded input and output message queues.

Two commands drive it:

* ``SEND`` composes a message from the output registers (optionally
  substituting input registers in REPLY / FORWARD mode, Section 2.2.2) and
  queues it for transmission;
* ``NEXT`` disposes of the message in the input registers and advances the
  head of the input queue into them.

One behaviour is made explicit here that the paper leaves implicit: the
hardware advances the head of the input queue into the input registers
whenever the input registers are empty, so the oldest arrived message is
always visible to polling software and to the ``MsgIp`` computation without
a priming ``NEXT``.

Timing is deliberately absent from this model — the per-placement cycle
costs live in :mod:`repro.impls` and the clocked model in
:mod:`repro.nic.rtl`.  This class defines *what* the interface does; those
define *how fast*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from repro.errors import MessageFormatError, QueueOverflowError, ReservedTypeError
from repro.nic.control import ControlRegister, SendFullPolicy, StatusRegister
from repro.nic.dispatch import DispatchConditions, DispatchUnit, describe_dispatch
from repro.nic.messages import (
    MESSAGE_WORDS,
    TYPE_EXCEPTION,
    Message,
    build_gather_messages,
)
from repro.nic.queues import DEFAULT_CAPACITY, MessageQueue
from repro.obs.tracer import (
    DELIVER,
    DISPATCH,
    DIVERT,
    NEXT,
    REFUSE,
    SEND,
    SEND_STALL,
    Tracer,
)
from repro.utils.bitfield import to_word


def _zero_clock() -> int:
    return 0


#: Divert reasons handed to an attached tenant scheduler.
DIVERT_PRIVILEGED = "privileged"
DIVERT_PIN = "pin"
DIVERT_CAP = "cap"


class TenantSchedulerLike(Protocol):
    """What the interface requires of a receive-side scheduler.

    The concrete policies live in :mod:`repro.tenancy`; this structural
    protocol keeps the NIC layer free of that dependency.  The interface
    calls :meth:`on_divert` for every delivery it diverts — privileged
    traffic, PIN mismatches, and per-tenant occupancy-cap overflows —
    and the scheduler owns redelivering stored messages later (through
    the ordinary :meth:`NetworkInterface.deliver`).
    """

    def on_divert(
        self, interface: "NetworkInterface", message: "Message", reason: str
    ) -> None:
        """Observe one diverted delivery (``reason`` is a DIVERT_* value)."""
        ...  # pragma: no cover - protocol stub


class SendMode(enum.Enum):
    """The three composition modes of the ``SEND`` command (Section 2.2.2)."""

    NORMAL = "normal"
    REPLY = "reply"
    FORWARD = "forward"


class SendResult(enum.Enum):
    """Outcome of a ``SEND`` under the STALL full-queue policy."""

    SENT = "sent"
    STALLED = "stalled"


# Which outgoing word positions are taken from which *input* registers in
# each substitution mode.  REPLY rebuilds the message head (the reply's
# destination/FP and IP come from words 1 and 2 of the request); FORWARD
# keeps a new head from the output registers and carries the incoming data
# words through unchanged.
REPLY_SUBSTITUTION = {0: 1, 1: 2}
FORWARD_SUBSTITUTION = {2: 2, 3: 3, 4: 4}


@dataclass
class InterfaceStats:
    """Counters kept by the interface for the evaluation reports."""

    sends: int = 0
    sends_by_mode: dict = field(
        default_factory=lambda: {mode: 0 for mode in SendMode}
    )
    send_stalls: int = 0
    nexts: int = 0
    delivered: int = 0
    refused: int = 0
    pin_diverted: int = 0
    privileged_diverted: int = 0
    cap_diverted: int = 0


class NetworkInterface:
    """Architectural model of the tightly-coupled network interface.

    Parameters
    ----------
    node:
        The logical address of the processor this interface serves; stamped
        nowhere on outgoing messages (the *destination* lives in ``m0``) but
        needed by handler conventions and reporting.
    input_capacity, output_capacity:
        Queue depths in messages (default 16, Section 3.2).
    accept_hook:
        Optional callback invoked with each privileged or PIN-mismatched
        message instead of queueing it (Section 2.1.3); when absent such
        messages go to :attr:`privileged_store`.
    """

    def __init__(
        self,
        node: int = 0,
        input_capacity: int = DEFAULT_CAPACITY,
        output_capacity: int = DEFAULT_CAPACITY,
        accept_hook: Optional[Callable[[Message], None]] = None,
    ) -> None:
        self.node = node
        self.status = StatusRegister()
        self.control = ControlRegister()
        self.dispatch = DispatchUnit()
        self.input_queue = MessageQueue(
            f"node{node}.iq",
            capacity=input_capacity,
            threshold=self.control["iq_threshold"],
        )
        self.output_queue = MessageQueue(
            f"node{node}.oq",
            capacity=output_capacity,
            threshold=self.control["oq_threshold"],
        )
        self.output_registers: List[int] = [0] * MESSAGE_WORDS
        self._current: Optional[Message] = None
        self.stats = InterfaceStats()
        self.privileged_store: List[Message] = []
        self._accept_hook = accept_hook
        # The pluggable receive-side scheduler (Section 2.1.3 generalised):
        # when attached it observes every diverted delivery with the
        # divert reason and owns redelivery; see repro.tenancy.
        self.tenant_scheduler: Optional["TenantSchedulerLike"] = None
        # Per-tenant occupancy cap on the shared input queue; None means
        # uncapped (the single-application architecture, byte-identical).
        self.tenant_cap: Optional[int] = None
        self.interrupt_hook: Optional[Callable[[], None]] = None
        self.interrupts_raised = 0
        self.tracer: Optional[Tracer] = None
        self.lineage = None
        self._clock: Callable[[], int] = _zero_clock
        self._refresh_status()

    def attach_tracer(
        self, tracer: Tracer, clock: Optional[Callable[[], int]] = None
    ) -> None:
        """Opt in to event tracing; ``clock`` supplies the current cycle.

        Standalone interfaces (no fabric) default to timestamp 0; the
        fabric attaches its own cycle counter so interface events line up
        with router events on the same time axis.
        """
        self.tracer = tracer
        if clock is not None:
            self._clock = clock

    def attach_lineage(
        self, lineage, clock: Optional[Callable[[], int]] = None
    ) -> None:
        """Opt in to span-based lineage tracing (:mod:`repro.obs.lineage`).

        Same contract as :meth:`attach_tracer`: off by default, one
        identity check per hook site when off.  The input queue shares
        the tracker so receive-side drains (tenancy parking) are seen.
        """
        self.lineage = lineage
        if clock is not None:
            self._clock = clock
        self.input_queue.attach_lineage(lineage, self._clock)

    def attach_tenant_scheduler(self, scheduler: "TenantSchedulerLike") -> None:
        """Install the receive-side scheduler (Section 2.1.3, pluggable).

        Every diverted delivery is handed to ``scheduler.on_divert`` with
        its reason instead of the legacy accept hook / privileged store.
        One scheduler per interface; attaching replaces any previous one.
        """
        self.tenant_scheduler = scheduler

    def detach_tenant_scheduler(self) -> None:
        self.tenant_scheduler = None

    def set_tenant_cap(self, cap: Optional[int]) -> None:
        """Cap any one tenant's occupancy of the shared input queue.

        A delivery whose PIN already holds ``cap`` input-queue slots is
        diverted to the scheduler (reason ``"cap"``) instead of consuming
        another shared slot — the receive-side isolation knob of the
        multi-tenant study.  Requires per-tenant accounting; attaching is
        implicit.  ``None`` removes the cap (accounting stays attached).
        """
        if cap is not None:
            if cap <= 0:
                raise MessageFormatError(
                    f"tenant cap must be positive, got {cap}"
                )
            if self.input_queue.tenant_stats is None:
                self.input_queue.attach_tenant_stats()
        self.tenant_cap = cap

    def enable_arrival_interrupts(self, hook: Callable[[], None]) -> None:
        """Switch from polled to interrupt-driven reception (Section 2.1).

        ``hook`` models the processor's interrupt entry: it fires once per
        delivered user-visible message, after the message is queued, so the
        handler it invokes can poll/dispatch normally.
        """
        self.interrupt_hook = hook
        self.control["arrival_interrupt"] = 1

    def disable_arrival_interrupts(self) -> None:
        self.control["arrival_interrupt"] = 0
        self.interrupt_hook = None

    # ------------------------------------------------------------------
    # Register access (the implementation-dependent mechanism of the paper
    # is provided by repro.impls; these are the architectural operations).
    # ------------------------------------------------------------------

    def read_input(self, index: int) -> int:
        """Read input register ``i<index>``.

        Reading with no valid message returns 0, matching hardware that
        does not trap on reads of invalid registers; correct software
        checks ``STATUS.msg_valid`` (or uses ``MsgIp``) first.
        """
        if index < 0 or index >= MESSAGE_WORDS:
            raise MessageFormatError(f"no input register i{index}")
        if self._current is None:
            return 0
        return self._current.word(index)

    def write_output(self, index: int, value: int) -> None:
        """Write output register ``o<index>``."""
        if index < 0 or index >= MESSAGE_WORDS:
            raise MessageFormatError(f"no output register o{index}")
        self.output_registers[index] = to_word(value)

    def read_output(self, index: int) -> int:
        """Read back output register ``o<index>``."""
        if index < 0 or index >= MESSAGE_WORDS:
            raise MessageFormatError(f"no output register o{index}")
        return self.output_registers[index]

    @property
    def current_message(self) -> Optional[Message]:
        """The message occupying the input registers, if any."""
        return self._current

    @property
    def msg_valid(self) -> bool:
        """Whether the input registers hold a message."""
        return self._current is not None

    # ------------------------------------------------------------------
    # Dispatch registers.
    # ------------------------------------------------------------------

    @property
    def ip_base(self) -> int:
        return self.dispatch.ip_base

    @ip_base.setter
    def ip_base(self, value: int) -> None:
        self.dispatch.ip_base = value

    def _conditions(self) -> DispatchConditions:
        return DispatchConditions(
            iafull=self.input_queue.almost_full,
            oafull=self.output_queue.almost_full,
            exception=self.status.has_exception,
        )

    @property
    def msg_ip(self) -> int:
        """The precomputed handler IP for the current message (Figure 7)."""
        return self.dispatch.msg_ip(self._current, self._conditions())

    @property
    def next_msg_ip(self) -> int:
        """The precomputed handler IP for the head-of-queue message."""
        return self.dispatch.next_msg_ip(self.input_queue.peek(), self._conditions())

    # ------------------------------------------------------------------
    # Commands.
    # ------------------------------------------------------------------

    def compose(self, mtype: int, mode: SendMode = SendMode.NORMAL) -> Message:
        """Build (but do not queue) the message SEND would emit.

        Exposed separately so the RTL model and the tests can check the
        substitution logic without touching queue state.
        """
        if mtype == TYPE_EXCEPTION:
            # §2.2.2: type 1 selects the receiver's exception dispatch slot
            # (handler_table_address happily computes an address for it), so
            # the send path is where the reservation must be enforced.
            raise ReservedTypeError(
                "message type 1 is reserved for exception dispatch (Section 2.2.4)"
            )
        substitution = {}
        if mode is SendMode.REPLY:
            substitution = REPLY_SUBSTITUTION
        elif mode is SendMode.FORWARD:
            substitution = FORWARD_SUBSTITUTION
        if substitution and self._current is None:
            raise MessageFormatError(
                f"SEND {mode.value} requires a message in the input registers"
            )
        words = []
        for position in range(MESSAGE_WORDS):
            if position in substitution:
                words.append(self._current.word(substitution[position]))
            else:
                words.append(self.output_registers[position])
        return Message(
            mtype,
            tuple(words),
            pin=self.control["active_pin"],
        )

    def send(self, mtype: int, mode: SendMode = SendMode.NORMAL) -> SendResult:
        """The ``SEND`` command.

        Composes a message and appends it to the output queue.  When the
        queue is full the CONTROL register's policy applies: under
        ``EXCEPTION`` the ``exc_output_overflow`` condition is raised and
        :class:`QueueOverflowError` propagates; under ``STALL`` the send is
        *not* performed and :data:`SendResult.STALLED` is returned so the
        caller (processor model or node run loop) can retry after the
        network drains — the architectural equivalent of a stalled pipeline.
        """
        message = self.compose(mtype, mode)
        if self.output_queue.is_full:
            if self.control.full_policy is SendFullPolicy.EXCEPTION:
                self.status.raise_exception("exc_output_overflow")
                self._refresh_status()
                raise QueueOverflowError(
                    f"node {self.node}: output queue full and policy is EXCEPTION"
                )
            self.stats.send_stalls += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self._clock(), SEND_STALL, self.node,
                    dest=message.destination,
                )
            return SendResult.STALLED
        self.output_queue.push(message)
        self.stats.sends += 1
        self.stats.sends_by_mode[mode] += 1
        if self.lineage is not None:
            self.lineage.on_send(message, self.node, self._clock())
        self._refresh_status()
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(), SEND, self.node,
                dest=message.destination, mtype=mtype, mode=mode.value,
            )
        return SendResult.SENT

    def send_gather(
        self,
        mtype: int,
        destination: int,
        elements,
        ip: Optional[int] = None,
        m0_low: int = 0,
    ) -> int:
        """SEND a scatter/gather transfer as framed fragments.

        ``elements`` are (offset, value) pairs, offsets need not be
        contiguous; framing is :func:`repro.nic.messages.build_gather_messages`.
        Each fragment goes through the ordinary output registers and the
        ``SEND`` command, so queue policies apply per fragment.  Returns
        the number of fragments queued; under the STALL policy a full
        output queue stops the transfer at a fragment boundary (the
        return value tells the caller where to resume), never mid-frame.
        """
        fragments = build_gather_messages(
            mtype, destination, elements, ip=ip, m0_low=m0_low
        )
        sent = 0
        for fragment in fragments:
            for index, word in enumerate(fragment.words):
                self.write_output(index, word)
            if self.send(mtype) is not SendResult.SENT:
                break
            sent += 1
        return sent

    def next(self) -> None:
        """The ``NEXT`` command: dispose of the current message and advance."""
        self.stats.nexts += 1
        retired = self._current
        self._current = None
        if self.tracer is not None:
            self.tracer.emit(self._clock(), NEXT, self.node)
        if self.lineage is not None and retired is not None:
            self.lineage.on_retire(retired, self._clock())
        self._advance()
        self._refresh_status()

    # ------------------------------------------------------------------
    # Network-side operations (called by the fabric / router).
    # ------------------------------------------------------------------

    def can_accept(self) -> bool:
        """Whether the network may deliver one more message (backpressure)."""
        return not self.input_queue.is_full

    def would_divert(self, message: Message) -> bool:
        """Whether ``message`` would bypass the input queue (Section 2.1.3).

        Pure check with no side effects; the fabric uses it to exempt
        privileged / PIN-mismatched / cap-overflow traffic from
        input-queue credit.
        """
        return (
            message.privileged
            or (
                self.control.pin_checking
                and message.pin != self.control["active_pin"]
            )
            or (
                self.tenant_cap is not None
                and self.input_queue.tenant_occupancy(message.pin)
                >= self.tenant_cap
            )
        )

    def refuse_delivery(self, message: Message) -> bool:
        """Record a delivery attempt refused before touching the queue.

        The fabric calls this when its cycle-start credit snapshot found
        the input queue full: the attempt counts exactly like a
        :meth:`deliver` refusal (statistics and trace event) but the
        queue is never consulted, so a slot freed later in the same
        cycle cannot be consumed out of turn.  Always returns False, the
        same contract as a refusing ``deliver``.
        """
        self.stats.refused += 1
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(), REFUSE, self.node, dest=message.destination
            )
        return False

    def deliver(self, message: Message) -> bool:
        """Deliver one message from the network into this interface.

        Returns False (and leaves the message with the caller) when the
        input queue is full — the fabric models this as backpressure into
        the network.  Privileged messages and PIN mismatches are diverted
        per Section 2.1.3 and never reach user-visible state.
        """
        if self._divert_if_protected(message):
            return True
        if self.input_queue.is_full:
            self.stats.refused += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self._clock(), REFUSE, self.node, dest=message.destination
                )
            return False
        self.input_queue.push(message)
        self.stats.delivered += 1
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(), DELIVER, self.node, mtype=message.mtype
            )
        if self.lineage is not None:
            self.lineage.on_deliver(message, self._clock())
        self._advance()
        self._refresh_status()
        if self.control["arrival_interrupt"] and self.interrupt_hook is not None:
            self.interrupts_raised += 1
            self.interrupt_hook()
        return True

    def transmit(self) -> Optional[Message]:
        """Remove and return the oldest outgoing message (network side)."""
        message = self.output_queue.try_pop()
        if message is not None:
            self._refresh_status()
        return message

    def peek_outgoing(self) -> Optional[Message]:
        """The oldest outgoing message without removing it."""
        return self.output_queue.peek()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _divert_if_protected(self, message: Message) -> bool:
        """Handle privileged / mismatched-PIN / over-cap messages; True
        when diverted."""
        reason = None
        if message.privileged:
            self.stats.privileged_diverted += 1
            reason = DIVERT_PRIVILEGED
        elif self.control.pin_checking and message.pin != self.control["active_pin"]:
            # A message for an inactive process is treated as privileged
            # (Section 2.1.3).
            self.stats.pin_diverted += 1
            self.status.raise_exception("exc_pin_mismatch")
            reason = DIVERT_PIN
        elif (
            self.tenant_cap is not None
            and self.input_queue.tenant_occupancy(message.pin) >= self.tenant_cap
        ):
            # The tenant already holds its share of the input queue; the
            # scheduler gets the message for deferred redelivery rather
            # than letting one flooder occupy the whole shared queue.
            self.stats.cap_diverted += 1
            if self.input_queue.tenant_stats is not None:
                self.input_queue.tenant_stats.on_cap_rejection(message.pin)
            reason = DIVERT_CAP
        if reason is not None:
            if self.lineage is not None:
                self.lineage.on_divert(message, self._clock(), reason)
            if self.tenant_scheduler is not None:
                self.tenant_scheduler.on_divert(self, message, reason)
            elif self._accept_hook is not None:
                self._accept_hook(message)
            else:
                self.privileged_store.append(message)
            self._refresh_status()
            if self.tracer is not None:
                self.tracer.emit(
                    self._clock(), DIVERT, self.node,
                    privileged=message.privileged, pin=message.pin,
                )
        return reason is not None

    def _advance(self) -> None:
        """Auto-load the input registers from the queue when they are empty."""
        if self._current is None:
            self._current = self.input_queue.try_pop()
            if self._current is not None and self.tracer is not None:
                self.tracer.emit(
                    self._clock(), DISPATCH, self.node,
                    mtype=self._current.mtype,
                )
            if self._current is not None and self.lineage is not None:
                self.lineage.on_dispatch(
                    self._current,
                    self._clock(),
                    describe_dispatch(self._current, self._conditions()),
                )

    def _refresh_status(self) -> None:
        """Recompute the hardware-maintained STATUS fields."""
        self.input_queue.set_threshold(self.control["iq_threshold"])
        self.output_queue.set_threshold(self.control["oq_threshold"])
        self.status["msg_valid"] = 1 if self._current is not None else 0
        self.status["msg_type"] = self._current.mtype if self._current else 0
        self.status["iq_len"] = min(
            self.input_queue.depth, (1 << 5) - 1
        )
        self.status["oq_len"] = min(
            self.output_queue.depth, (1 << 5) - 1
        )
        self.status["iafull"] = 1 if self.input_queue.almost_full else 0
        self.status["oafull"] = 1 if self.output_queue.almost_full else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkInterface node={self.node} "
            f"iq={self.input_queue.depth} oq={self.output_queue.depth} "
            f"msg_valid={self.msg_valid}>"
        )
