"""The architecture's message format (paper Figure 2).

A message is exactly five 32-bit words, ``m0`` through ``m4``, plus a 4-bit
type field that travels with the message but outside its data words.  The
logical address of the destination processor occupies the high bits of
``m0``; translation from logical address to a network route is the fabric's
concern (Section 2.1 of the paper leaves it implementation dependent).

Two type values are architecturally special (Section 2.2.3):

* type ``0`` — the handler's instruction pointer is carried in word 1 of the
  message itself (used by Send/reply messages);
* type ``1`` — reserved; never sent.  The dispatch hardware uses handler id
  ``0001`` to report exceptional conditions.

For multi-user protection (Section 2.1.3) each message may additionally be
tagged with the process identification number (PIN) of the sending process
and a privileged bit.  Those tags ride in the fabric envelope, not in the
five data words, mirroring how real hardware would widen the flit format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Sequence, Tuple

from repro.errors import MessageFormatError
from repro.utils.bitfield import WORD_MASK, to_word

MESSAGE_WORDS = 5
"""Number of 32-bit data words in every message (Figure 2)."""

TYPE_BITS = 4
"""Width of the message type field."""

TYPE_MASK = (1 << TYPE_BITS) - 1

DEST_BITS = 10
"""Width of the logical destination address in the high bits of ``m0``.

Ten bits supports machines of up to 1024 nodes, comfortably above every
configuration the evaluation uses.  The constant is architectural for this
reproduction: both the send path (which packs the destination) and the
fabric (which routes on it) import it from here.
"""

DEST_SHIFT = 32 - DEST_BITS
DEST_MASK = ((1 << DEST_BITS) - 1) << DEST_SHIFT

TYPE_MSG_IP = 0
"""Messages whose handler IP is carried in word 1 (Figure 7, case 2)."""

TYPE_EXCEPTION = 1
"""Reserved type: the dispatch hardware reports exceptions as handler 0001."""

FIRST_USER_TYPE = 2
"""Lowest type value available to user-defined handlers."""

LAST_USER_TYPE = TYPE_MASK
"""Highest type value available to user-defined handlers."""


def pack_destination(node: int, low_bits: int = 0) -> int:
    """Build an ``m0`` word addressed to logical ``node``.

    ``low_bits`` fills the non-address portion of the word (for example the
    low bits of a frame pointer or memory address local to the destination).
    """
    if node < 0 or node >= (1 << DEST_BITS):
        raise MessageFormatError(
            f"destination node {node} does not fit in {DEST_BITS} address bits"
        )
    if low_bits & DEST_MASK:
        raise MessageFormatError(
            f"low bits {low_bits:#x} collide with the destination field"
        )
    return (node << DEST_SHIFT) | to_word(low_bits)


def unpack_destination(m0: int) -> Tuple[int, int]:
    """Split an ``m0`` word into ``(logical node, low bits)``."""
    word = to_word(m0)
    return word >> DEST_SHIFT, word & ~DEST_MASK & WORD_MASK


@dataclass(frozen=True)
class Message:
    """An immutable five-word message plus its 4-bit type.

    Instances are frozen so a message captured in a queue or in-flight in
    the fabric can never be mutated behind the architecture's back; send
    paths build new instances instead.
    """

    mtype: int
    words: Tuple[int, int, int, int, int]
    pin: int = 0
    privileged: bool = False

    def __post_init__(self) -> None:
        if self.mtype < 0 or self.mtype > TYPE_MASK:
            raise MessageFormatError(
                f"message type {self.mtype} does not fit in {TYPE_BITS} bits"
            )
        if len(self.words) != MESSAGE_WORDS:
            raise MessageFormatError(
                f"message must have exactly {MESSAGE_WORDS} words, "
                f"got {len(self.words)}"
            )
        clean = tuple(to_word(w) for w in self.words)
        if clean != tuple(self.words):
            object.__setattr__(self, "words", clean)

    @classmethod
    def build(
        cls,
        mtype: int,
        destination: int,
        payload: Sequence[int] = (),
        m0_low: int = 0,
        pin: int = 0,
        privileged: bool = False,
    ) -> "Message":
        """Construct a message to ``destination`` with ``payload`` in m1..m4.

        ``payload`` may hold up to four words; missing words are zero.  The
        destination and ``m0_low`` are packed into ``m0``.
        """
        if len(payload) > MESSAGE_WORDS - 1:
            raise MessageFormatError(
                f"payload of {len(payload)} words does not fit in m1..m4"
            )
        words: List[int] = [pack_destination(destination, m0_low)]
        words.extend(to_word(w) for w in payload)
        words.extend([0] * (MESSAGE_WORDS - len(words)))
        return cls(mtype, tuple(words), pin=pin, privileged=privileged)

    @property
    def destination(self) -> int:
        """The logical destination node encoded in the high bits of m0."""
        return unpack_destination(self.words[0])[0]

    @property
    def m0_low(self) -> int:
        """The non-address low bits of m0."""
        return unpack_destination(self.words[0])[1]

    def word(self, index: int) -> int:
        """Return data word ``m<index>``."""
        if index < 0 or index >= MESSAGE_WORDS:
            raise MessageFormatError(f"message has no word m{index}")
        return self.words[index]

    def with_type(self, mtype: int) -> "Message":
        """A copy of this message with a different type field."""
        return replace(self, mtype=mtype)

    def with_pin(self, pin: int) -> "Message":
        """A copy of this message tagged with ``pin``."""
        return replace(self, pin=pin)

    def as_privileged(self) -> "Message":
        """A copy of this message marked privileged (OS-destined)."""
        return replace(self, privileged=True)

    def __str__(self) -> str:
        body = " ".join(f"{w:08x}" for w in self.words)
        return f"Message(type={self.mtype}, dest={self.destination}, [{body}])"


@dataclass
class MessageTypeRegistry:
    """Symbolic names for the 4-bit message types used by a protocol.

    The architecture only fixes types 0 and 1; everything else is a software
    convention.  The registry keeps the convention explicit, validates that
    no protocol tries to register the reserved exception type, and supports
    the "escape" pattern of Section 2.2.1 (one type value set aside for rare
    message kinds identified by a full 32-bit id in word 4).
    """

    names: dict = field(default_factory=dict)
    escape_type: int | None = None

    def register(self, name: str, mtype: int) -> int:
        """Bind ``name`` to type value ``mtype`` and return the value."""
        if mtype == TYPE_EXCEPTION:
            raise MessageFormatError(
                "type 1 is reserved for exception reporting and cannot be sent"
            )
        if mtype < 0 or mtype > TYPE_MASK:
            raise MessageFormatError(f"type {mtype} out of range")
        existing = self.names.get(name)
        if existing is not None and existing != mtype:
            raise MessageFormatError(
                f"type name {name!r} already bound to {existing}"
            )
        for other_name, other_type in self.names.items():
            if other_type == mtype and other_name != name:
                raise MessageFormatError(
                    f"type value {mtype} already bound to {other_name!r}"
                )
        self.names[name] = mtype
        return mtype

    def register_escape(self, name: str, mtype: int) -> int:
        """Register the escape type used for uncommon message kinds."""
        value = self.register(name, mtype)
        self.escape_type = value
        return value

    def lookup(self, name: str) -> int:
        """Return the type value bound to ``name``."""
        try:
            return self.names[name]
        except KeyError:
            raise MessageFormatError(f"unknown message type name {name!r}") from None

    def name_of(self, mtype: int) -> str:
        """Return the name bound to ``mtype`` (or a numeric placeholder)."""
        for name, value in self.names.items():
            if value == mtype:
                return name
        return f"type{mtype}"

    def registered(self) -> Iterable[Tuple[str, int]]:
        """All (name, value) bindings, in registration order."""
        return tuple(self.names.items())


# ----------------------------------------------------------------------
# Scatter/gather framing.
#
# The architecture's messages are five words, so bulk or non-contiguous
# data (a gather of strided elements, a scatter into a remote frame) must
# be *framed* across several messages.  One word of each fragment is a
# self-describing header -- where this fragment's run of elements lands,
# how many ride in this message, and how large the whole transfer is --
# so fragments may arrive in any order through an adaptive network and
# still reassemble deterministically.  The framing deliberately spends a
# data word on the header rather than widening the message: five words
# and a 4-bit type are the architecture (Figure 2).
# ----------------------------------------------------------------------

SG_OFFSET_BITS = 12
"""Element-offset field width: transfers address up to 4096 elements."""

SG_COUNT_BITS = 4
"""Per-fragment element count field (a fragment carries at most 3)."""

SG_TOTAL_BITS = 16
"""Whole-transfer element count, for completion detection at the receiver."""

_SG_OFFSET_SHIFT = SG_COUNT_BITS + SG_TOTAL_BITS
_SG_COUNT_SHIFT = SG_TOTAL_BITS


def pack_sg_header(offset: int, count: int, total: int) -> int:
    """Build a scatter/gather fragment header word.

    ``offset`` is the element index of this fragment's first value,
    ``count`` the number of values riding in this message, ``total`` the
    element count of the whole transfer.
    """
    if not 0 <= offset < (1 << SG_OFFSET_BITS):
        raise MessageFormatError(
            f"scatter/gather offset {offset} does not fit in {SG_OFFSET_BITS} bits"
        )
    if not 0 < count < (1 << SG_COUNT_BITS):
        raise MessageFormatError(
            f"scatter/gather fragment count {count} out of range"
        )
    if not 0 < total < (1 << SG_TOTAL_BITS):
        raise MessageFormatError(
            f"scatter/gather total {total} does not fit in {SG_TOTAL_BITS} bits"
        )
    return (offset << _SG_OFFSET_SHIFT) | (count << _SG_COUNT_SHIFT) | total


def unpack_sg_header(word: int) -> Tuple[int, int, int]:
    """Inverse of :func:`pack_sg_header`: ``(offset, count, total)``."""
    word = to_word(word)
    return (
        word >> _SG_OFFSET_SHIFT,
        (word >> _SG_COUNT_SHIFT) & ((1 << SG_COUNT_BITS) - 1),
        word & ((1 << SG_TOTAL_BITS) - 1),
    )


def sg_header_word(mtype: int) -> int:
    """Which word carries the fragment header for a given message type.

    Type-0 messages must keep the handler IP in word 1 (the MsgIp case-2
    contract), so their header moves to word 2 and they carry one fewer
    value per fragment.
    """
    return 2 if mtype == TYPE_MSG_IP else 1


def sg_capacity(mtype: int) -> int:
    """Values per fragment: 3 for typed messages, 2 for type-0."""
    return MESSAGE_WORDS - 1 - sg_header_word(mtype)


def build_gather_messages(
    mtype: int,
    destination: int,
    elements: Sequence[Tuple[int, int]],
    ip: int | None = None,
    m0_low: int = 0,
    pin: int = 0,
) -> List[Message]:
    """Frame ``elements`` — (offset, value) pairs, offsets need not be
    contiguous — into a list of fragment messages.

    Consecutive offsets coalesce into runs so a dense transfer uses the
    fragment capacity fully; a fully strided gather degenerates to one
    element per fragment, which is the honest cost of non-contiguity in
    a five-word-message architecture.  Type-0 fragments carry ``ip`` in
    word 1 (required); typed fragments must not pass one.
    """
    if mtype == TYPE_EXCEPTION:
        raise MessageFormatError(
            "type 1 is reserved for exception reporting and cannot be sent"
        )
    if (ip is None) == (mtype == TYPE_MSG_IP):
        raise MessageFormatError(
            "type-0 gather fragments require a handler ip; typed ones forbid it"
        )
    elements = list(elements)
    if not elements:
        raise MessageFormatError("a scatter/gather transfer needs elements")
    total = len(elements)
    capacity = sg_capacity(mtype)
    # Split into maximal runs of consecutive offsets, then chunk by capacity.
    runs: List[List[Tuple[int, int]]] = [[elements[0]]]
    for offset, value in elements[1:]:
        if offset == runs[-1][-1][0] + 1:
            runs[-1].append((offset, value))
        else:
            runs.append([(offset, value)])
    messages: List[Message] = []
    for run in runs:
        for start in range(0, len(run), capacity):
            chunk = run[start:start + capacity]
            header = pack_sg_header(chunk[0][0], len(chunk), total)
            payload: List[int] = [ip, header] if ip is not None else [header]
            payload.extend(value for _, value in chunk)
            messages.append(
                Message.build(
                    mtype, destination, payload, m0_low=m0_low, pin=pin
                )
            )
    return messages


class GatherAssembler:
    """Reassembles one scatter/gather transfer from its fragments.

    Fragments may arrive in any order and interleaved with other traffic
    (the caller routes the right messages here, e.g. by type or inlet).
    Completion is header-driven: every fragment carries the transfer's
    total element count, so the assembler knows it is done without a
    separate end-of-transfer message.
    """

    def __init__(self) -> None:
        self.values: dict = {}
        self.total: int | None = None
        self.fragments = 0
        self.duplicates = 0

    def accept(self, message: Message) -> bool:
        """Fold one fragment in; returns True when the transfer is complete."""
        header_word = sg_header_word(message.mtype)
        offset, count, total = unpack_sg_header(message.word(header_word))
        if count > MESSAGE_WORDS - 1 - header_word:
            raise MessageFormatError(
                f"fragment claims {count} values; message has no room for them"
            )
        if self.total is None:
            self.total = total
        elif self.total != total:
            raise MessageFormatError(
                f"fragment total {total} disagrees with transfer total {self.total}"
            )
        self.fragments += 1
        for position in range(count):
            index = offset + position
            value = message.word(header_word + 1 + position)
            if index in self.values:
                self.duplicates += 1
            self.values[index] = value
        return self.complete

    @property
    def complete(self) -> bool:
        return self.total is not None and len(self.values) == self.total

    def result(self) -> List[Tuple[int, int]]:
        """The assembled (offset, value) pairs, ordered by offset."""
        if not self.complete:
            raise MessageFormatError(
                f"gather incomplete: {len(self.values)} of {self.total} elements"
            )
        return sorted(self.values.items())


def default_registry() -> MessageTypeRegistry:
    """The message-type convention used throughout the evaluation.

    Mirrors the protocol of Section 2.1.4 and Section 4.1: the general Send
    (type 0, handler IP in the message), remote Read/Write, and the
    presence-bit PRead/PWrite pair, plus an escape type for rare kinds.
    """
    registry = MessageTypeRegistry()
    registry.register("send", TYPE_MSG_IP)
    registry.register("read", 2)
    registry.register("write", 3)
    registry.register("pread", 4)
    registry.register("pwrite", 5)
    registry.register("read_reply", 6)
    registry.register_escape("escape", LAST_USER_TYPE)
    return registry
