"""A clocked, RTL-style behavioural model of the NIC chip.

The paper's authors "designed, simulated, and thoroughly tested NIC at the
RTL level" (Section 3.1) — an off-chip, memory-mapped realization of the
architecture.  This module is the reproduction's equivalent: a two-phase,
cycle-stepped model with explicit port state machines, so the flow of a
message through the chip (word-serial network ports, queues, dispatch
recompute) is observable cycle by cycle.

The model is organised around wires sampled at :meth:`ClockedNIC.tick`:

* **Receive port** — accepts one flit per cycle from the network link when
  :attr:`rx_ready` is high (credit-based backpressure); a message is a HEAD
  flit followed by five DATA flits.
* **Transmit port** — serialises the head of the output queue at one flit
  per cycle, pausing whenever the link deasserts ``tx_credit``.
* **Dispatch logic** — recomputes ``MsgIp`` / ``NextMsgIp`` every cycle
  from the architectural state, exactly like the combinational network in
  Figure 7.
* **Processor port** — at most one register access plus command set per
  cycle, matching the single load/store the cache bus can carry.

The architectural state itself is the untimed
:class:`~repro.nic.interface.NetworkInterface`; the RTL model adds timing
and serialization around it rather than duplicating its semantics — the
same layering the paper uses between Sections 2 and 3.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import MessageFormatError
from repro.nic.interface import NetworkInterface, SendMode, SendResult
from repro.nic.messages import MESSAGE_WORDS, Message


class FlitKind(enum.Enum):
    """The two flit framings on a network link."""

    HEAD = "head"
    DATA = "data"


@dataclass(frozen=True)
class Flit:
    """One link transfer: a HEAD (type and tags) or a DATA word."""

    kind: FlitKind
    payload: int
    pin: int = 0
    privileged: bool = False

    @classmethod
    def head(cls, message: Message) -> "Flit":
        return cls(
            FlitKind.HEAD,
            message.mtype,
            pin=message.pin,
            privileged=message.privileged,
        )

    @classmethod
    def data(cls, word: int) -> "Flit":
        return cls(FlitKind.DATA, word)


FLITS_PER_MESSAGE = MESSAGE_WORDS + 1
"""One HEAD flit plus five DATA flits."""


def serialize(message: Message) -> List[Flit]:
    """Break a message into its link flits, HEAD first."""
    return [Flit.head(message)] + [Flit.data(w) for w in message.words]


class _RxState(enum.Enum):
    IDLE = "idle"
    BODY = "body"


class ReceivePort:
    """Word-serial receive state machine with credit backpressure.

    The port asserts :attr:`ready` only while the interface can accept a
    whole message; this is conservative (a real design would count queue
    slots in flits) but guarantees an accepted HEAD flit never has to be
    dropped mid-message.
    """

    def __init__(self, interface: NetworkInterface) -> None:
        self.interface = interface
        self._state = _RxState.IDLE
        self._head: Optional[Flit] = None
        self._words: List[int] = []
        self.messages_assembled = 0

    @property
    def ready(self) -> bool:
        if self._state is _RxState.BODY:
            return True
        return self.interface.can_accept()

    @property
    def busy(self) -> bool:
        return self._state is not _RxState.IDLE

    def offer(self, flit: Flit) -> bool:
        """Present one flit; returns False when backpressured this cycle."""
        if not self.ready:
            return False
        if self._state is _RxState.IDLE:
            if flit.kind is not FlitKind.HEAD:
                raise MessageFormatError("receive port expected a HEAD flit")
            self._head = flit
            self._words = []
            self._state = _RxState.BODY
            return True
        if flit.kind is not FlitKind.DATA:
            raise MessageFormatError("receive port expected a DATA flit")
        self._words.append(flit.payload)
        if len(self._words) == MESSAGE_WORDS:
            assert self._head is not None
            message = Message(
                self._head.payload,
                tuple(self._words),
                pin=self._head.pin,
                privileged=self._head.privileged,
            )
            accepted = self.interface.deliver(message)
            if not accepted:
                # ready() guaranteed space when the HEAD was accepted and
                # deliveries cannot race within one cycle, so this is a
                # modelling bug, not a recoverable condition.
                raise MessageFormatError(
                    "interface refused a message the port had credit for"
                )
            self.messages_assembled += 1
            self._state = _RxState.IDLE
            self._head = None
        return True


class TransmitPort:
    """Word-serial transmit state machine."""

    def __init__(self, interface: NetworkInterface) -> None:
        self.interface = interface
        # A deque: flits leave from the front one per cycle, and list
        # pop(0) is O(n) in the queue length.
        self._flits: Deque[Flit] = deque()
        self.messages_sent = 0

    @property
    def busy(self) -> bool:
        return bool(self._flits) or self.interface.peek_outgoing() is not None

    def step(self, tx_credit: bool) -> Optional[Flit]:
        """Advance one cycle; emit at most one flit when credit allows."""
        if not self._flits:
            message = self.interface.transmit()
            if message is None:
                return None
            self._flits = deque(serialize(message))
        if not tx_credit:
            return None
        flit = self._flits.popleft()
        if not self._flits:
            self.messages_sent += 1
        return flit


@dataclass(frozen=True)
class ProcessorAccess:
    """One processor-side bus transaction (register access plus commands)."""

    register: Optional[str] = None
    write_value: Optional[int] = None
    send_mode: Optional[SendMode] = None
    send_type: int = 0
    do_next: bool = False


@dataclass
class ProcessorReply:
    """The bus response to a :class:`ProcessorAccess`."""

    read_value: Optional[int] = None
    send_result: Optional[SendResult] = None


class ClockedNIC:
    """The whole chip: both ports plus the processor bus, cycle-stepped.

    Each :meth:`tick` takes the signals present on the chip's pins this
    cycle and returns the signals it drives: the transmitted flit (if any)
    and the processor bus reply (if an access was presented).
    """

    def __init__(self, interface: Optional[NetworkInterface] = None) -> None:
        self.interface = interface or NetworkInterface()
        self.rx = ReceivePort(self.interface)
        self.tx = TransmitPort(self.interface)
        self.cycle = 0
        # Registered (previous-cycle) dispatch outputs, like the real
        # pipeline register between the Figure 7 logic and the bus.
        self.msg_ip_wire = self.interface.msg_ip
        self.next_msg_ip_wire = self.interface.next_msg_ip

    @property
    def rx_ready(self) -> bool:
        """The credit signal the upstream router samples."""
        return self.rx.ready

    def tick(
        self,
        rx_flit: Optional[Flit] = None,
        tx_credit: bool = True,
        access: Optional[ProcessorAccess] = None,
    ) -> tuple[Optional[Flit], Optional[ProcessorReply]]:
        """Advance the chip by one clock."""
        self.cycle += 1
        if rx_flit is not None:
            accepted = self.rx.offer(rx_flit)
            if not accepted:
                raise MessageFormatError(
                    "a flit was driven while rx_ready was low; the router "
                    "must sample the credit signal"
                )
        reply = self._processor_cycle(access) if access is not None else None
        out_flit = self.tx.step(tx_credit)
        # Dispatch logic output registers update at end of cycle.
        self.msg_ip_wire = self.interface.msg_ip
        self.next_msg_ip_wire = self.interface.next_msg_ip
        return out_flit, reply

    def run_idle(self, cycles: int) -> List[Flit]:
        """Clock the chip with idle pins; returns any transmitted flits."""
        emitted: List[Flit] = []
        for _ in range(cycles):
            flit, _ = self.tick()
            if flit is not None:
                emitted.append(flit)
        return emitted

    # ------------------------------------------------------------------
    # Bus-level access: the chip as seen on the cache bus (Section 3.1).
    # ------------------------------------------------------------------

    def selects(self, address: int) -> bool:
        """Whether a bus address's upper bits select this chip."""
        from repro.nic.mmio import matches_base

        return matches_base(address)

    def bus_read(self, address: int) -> tuple[int, Optional[Flit]]:
        """One bus read cycle: Figure 9 decode, commands, and a clock tick.

        Returns the data-bus value and any flit transmitted this cycle —
        this is exactly the §3.1 example, where a single load returns a
        register, sends a reply, and advances the input registers.
        """
        from repro.nic.mmio import MemoryMappedInterface

        shim = MemoryMappedInterface(self.interface)
        value = shim.load(address)
        flit, _ = self.tick()
        return value, flit

    def bus_write(self, address: int, value: int) -> Optional[Flit]:
        """One bus write cycle: decode, register write, commands, tick."""
        from repro.nic.mmio import MemoryMappedInterface

        shim = MemoryMappedInterface(self.interface)
        shim.store(address, value)
        flit, _ = self.tick()
        return flit

    def _processor_cycle(self, access: ProcessorAccess) -> ProcessorReply:
        from repro.nic.mmio import MemoryMappedInterface  # local to avoid cycle

        reply = ProcessorReply()
        shim = MemoryMappedInterface(self.interface)
        if access.register is not None:
            if access.write_value is not None:
                shim._write_register(access.register, access.write_value)
            else:
                reply.read_value = shim._read_register(access.register)
        if access.send_mode is not None:
            reply.send_result = self.interface.send(
                access.send_type, access.send_mode
            )
        if access.do_next:
            self.interface.next()
        return reply
