"""Memory-mapped access to the network interface (paper Figure 9).

The two cache-based implementations (Sections 3.1 and 3.2) expose the
interface as a region of the address space.  A single load or store can, in
one instruction, access one interface register *and* issue a ``SEND``
(normal, reply, or forward) *and* issue a ``NEXT`` — the commands ride in
the low bits of the address:

===========  =====================================================
addr lines   information
===========  =====================================================
5:2          interface register number
9:6          type of message to be sent
11:10        01 SEND / 10 SEND-reply / 11 SEND-forward / 00 none
12           NEXT command
===========  =====================================================

The upper address bits must match a preset constant for the access to
select the interface instead of a data cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MessageFormatError
from repro.nic.interface import NetworkInterface, SendMode, SendResult
from repro.utils.bitfield import BitField, BitLayout, to_word

# The 15 interface registers of Figure 1, in their register-number order.
REGISTER_NAMES = (
    "o0",
    "o1",
    "o2",
    "o3",
    "o4",
    "i0",
    "i1",
    "i2",
    "i3",
    "i4",
    "STATUS",
    "CONTROL",
    "MsgIp",
    "NextMsgIp",
    "IpBase",
)

REGISTER_NUMBERS = {name: number for number, name in enumerate(REGISTER_NAMES)}

COMMAND_BITS = 13
"""Address bits 12:0 carry the command encoding (bits 1:0 unused: word align)."""

ADDRESS_LAYOUT = BitLayout(
    "ni-address",
    [
        BitField("register", 2, 4),
        BitField("send_type", 6, 4),
        BitField("send_mode", 10, 2),
        BitField("next", 12, 1),
    ],
)

_SEND_MODE_CODES = {
    None: 0b00,
    SendMode.NORMAL: 0b01,
    SendMode.REPLY: 0b10,
    SendMode.FORWARD: 0b11,
}
_SEND_MODE_FROM_CODE = {code: mode for mode, code in _SEND_MODE_CODES.items()}

DEFAULT_BASE_ADDRESS = 0xFFFF_E000
"""Default preset constant for the upper address bits.

Chosen so the command bits (12:0) are all zero in the base; any aligned
8 KiB region works.
"""


def encode_address(
    register: str | int | None = None,
    send_mode: Optional[SendMode] = None,
    send_type: int = 0,
    do_next: bool = False,
    base: int = DEFAULT_BASE_ADDRESS,
) -> int:
    """Build the memory address that performs the given command combination.

    ``register`` may be a name from :data:`REGISTER_NAMES`, a register
    number, or None (meaning "register 0 / don't care", used for pure
    command accesses such as a bare ``SEND``).
    """
    if base & ((1 << COMMAND_BITS) - 1):
        raise MessageFormatError(
            f"interface base address {base:#x} is not aligned to the command bits"
        )
    if isinstance(register, str):
        try:
            number = REGISTER_NUMBERS[register]
        except KeyError:
            raise MessageFormatError(f"unknown interface register {register!r}") from None
    elif register is None:
        number = 0
    else:
        number = register
    if number < 0 or number >= len(REGISTER_NAMES):
        raise MessageFormatError(f"interface register number {number} out of range")
    if send_mode is None and send_type:
        raise MessageFormatError("a send type was given without a SEND mode")
    return base | ADDRESS_LAYOUT.pack(
        register=number,
        send_type=send_type,
        send_mode=_SEND_MODE_CODES[send_mode],
        next=1 if do_next else 0,
    )


@dataclass(frozen=True)
class DecodedAccess:
    """The command content of one memory-mapped interface access."""

    register: str
    send_mode: Optional[SendMode]
    send_type: int
    do_next: bool

    @property
    def sends(self) -> bool:
        return self.send_mode is not None


def decode_address(address: int, base: int = DEFAULT_BASE_ADDRESS) -> DecodedAccess:
    """Decode the low bits of ``address`` into a :class:`DecodedAccess`."""
    if not matches_base(address, base):
        raise MessageFormatError(
            f"address {address:#x} does not select the interface at {base:#x}"
        )
    fields = ADDRESS_LAYOUT.unpack(address)
    number = fields["register"]
    if number >= len(REGISTER_NAMES):
        raise MessageFormatError(f"address selects nonexistent register {number}")
    return DecodedAccess(
        register=REGISTER_NAMES[number],
        send_mode=_SEND_MODE_FROM_CODE[fields["send_mode"]],
        send_type=fields["send_type"],
        do_next=bool(fields["next"]),
    )


def matches_base(address: int, base: int = DEFAULT_BASE_ADDRESS) -> bool:
    """Whether ``address``'s upper bits select the interface region."""
    mask = ~((1 << COMMAND_BITS) - 1) & 0xFFFF_FFFF
    return (to_word(address) & mask) == (to_word(base) & mask)


class MemoryMappedInterface:
    """A :class:`NetworkInterface` behind the Figure 9 address decoder.

    This is the component the off-chip NIC chip and the on-chip cache-bus
    module share; the two placements differ only in access latency, which is
    modelled by :mod:`repro.impls`, not here.

    The ordering within a single access follows the NIC design: the register
    read/write uses the *pre-command* state (so a load of ``i1`` combined
    with ``NEXT`` returns the current message's word before advancing), then
    ``SEND``, then ``NEXT``.
    """

    def __init__(
        self,
        interface: NetworkInterface,
        base: int = DEFAULT_BASE_ADDRESS,
    ) -> None:
        self.interface = interface
        self.base = base
        self.last_send_result: Optional[SendResult] = None

    def selects(self, address: int) -> bool:
        """Whether ``address`` targets this interface."""
        return matches_base(address, self.base)

    def load(self, address: int) -> int:
        """A processor load from the interface region."""
        access = decode_address(address, self.base)
        value = self._read_register(access.register)
        self._run_commands(access)
        return value

    def store(self, address: int, value: int) -> None:
        """A processor store to the interface region."""
        access = decode_address(address, self.base)
        self._write_register(access.register, value)
        self._run_commands(access)

    def _run_commands(self, access: DecodedAccess) -> None:
        if access.sends:
            self.last_send_result = self.interface.send(
                access.send_type, access.send_mode
            )
        if access.do_next:
            self.interface.next()

    def _read_register(self, name: str) -> int:
        ni = self.interface
        if name.startswith("o"):
            return ni.read_output(int(name[1]))
        if name.startswith("i"):
            return ni.read_input(int(name[1]))
        if name == "STATUS":
            return ni.status.word
        if name == "CONTROL":
            return ni.control.word
        if name == "MsgIp":
            return ni.msg_ip
        if name == "NextMsgIp":
            return ni.next_msg_ip
        if name == "IpBase":
            return ni.ip_base
        raise MessageFormatError(f"unreadable interface register {name!r}")

    def _write_register(self, name: str, value: int) -> None:
        ni = self.interface
        if name.startswith("o"):
            ni.write_output(int(name[1]), value)
        elif name == "CONTROL":
            ni.control.word = value
        elif name == "IpBase":
            ni.ip_base = value
        elif name == "STATUS":
            # Only the exception bits are software-writable (to clear them);
            # the rest of STATUS is hardware-maintained and a write is
            # ignored, as on the NIC chip.
            if value == 0:
                ni.status.clear_exceptions()
        elif name.startswith("i") or name in ("MsgIp", "NextMsgIp"):
            # Input and dispatch registers are read-only; hardware ignores
            # the write rather than trapping.
            pass
        else:
            raise MessageFormatError(f"unwritable interface register {name!r}")
