"""A full-duplex link between two clocked NIC chips.

Wires the transmit port of each :class:`~repro.nic.rtl.ClockedNIC` to the
receive port of the other, with one cycle of wire delay per flit and
honest credit sampling: a flit is launched only when the far receive port
asserted ready on the *previous* cycle, exactly as a registered
ready/valid interface behaves.  Used by the RTL tests and the walkthrough
example to build two-chip systems without hand-rolled wiring loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.nic.rtl import ClockedNIC, Flit
from repro.sim.kernel import SimKernel


@dataclass
class _Direction:
    """One direction of the link: a one-flit wire register."""

    wire: Optional[Flit] = None
    launched: int = 0
    stalled_cycles: int = 0


class Link:
    """Two chips, two wires, one clock."""

    def __init__(self, a: ClockedNIC, b: ClockedNIC) -> None:
        self.a = a
        self.b = b
        self._a_to_b = _Direction()
        self._b_to_a = _Direction()
        self.cycle = 0

    def step(self) -> None:
        """Advance both chips and both wires by one cycle.

        The wire register doubles as a skid buffer: a flit launched while
        the far end was mid-message may find the input queue full on
        arrival (the previous message's tail just landed), in which case
        it is held on the wire and the sender sees no credit until it
        drains — nothing is ever dropped.
        """
        self.cycle += 1
        # Decide, per direction, whether the wire's flit can land now.
        deliver_to_b = self._a_to_b.wire if self.b.rx_ready else None
        deliver_to_a = self._b_to_a.wire if self.a.rx_ready else None
        if deliver_to_b is not None:
            self._a_to_b.wire = None
        if deliver_to_a is not None:
            self._b_to_a.wire = None
        # A sender may launch only onto an empty wire.
        a_credit = self._a_to_b.wire is None
        b_credit = self._b_to_a.wire is None
        a_out, _ = self.a.tick(rx_flit=deliver_to_a, tx_credit=a_credit)
        b_out, _ = self.b.tick(rx_flit=deliver_to_b, tx_credit=b_credit)
        if a_out is not None:
            self._a_to_b.wire = a_out
            self._a_to_b.launched += 1
        if b_out is not None:
            self._b_to_a.wire = b_out
            self._b_to_a.launched += 1
        if self.a.tx.busy and not a_credit:
            self._a_to_b.stalled_cycles += 1
        if self.b.tx.busy and not b_credit:
            self._b_to_a.stalled_cycles += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # The link is itself a kernel component (repro.sim): one tick is one
    # clock edge for both chips and both wires.

    name = "link"

    def tick(self, cycle: int) -> None:
        self.step()

    def quiescent(self) -> bool:
        """Neither chip has traffic in flight and both wires are empty."""
        return not (
            self.a.tx.busy
            or self.b.tx.busy
            or self.a.rx.busy
            or self.b.rx.busy
            or self._a_to_b.wire is not None
            or self._b_to_a.wire is not None
        )

    def snapshot(self) -> dict:
        return {
            "a_tx_busy": self.a.tx.busy,
            "b_tx_busy": self.b.tx.busy,
            "a_rx_busy": self.a.rx.busy,
            "b_rx_busy": self.b.rx.busy,
            "wire_a_to_b": self._a_to_b.wire is not None,
            "wire_b_to_a": self._b_to_a.wire is not None,
        }

    def run_until_idle(self, max_cycles: int = 10_000) -> int:
        """Step until neither chip has traffic in flight."""
        kernel = SimKernel()
        kernel.register(self)
        return kernel.run(
            max_cycles=max_cycles, stall_error=TimeoutError, label="link"
        ).cycles

    @property
    def flits_a_to_b(self) -> int:
        return self._a_to_b.launched

    @property
    def flits_b_to_a(self) -> int:
        return self._b_to_a.launched
