"""Multi-user protection extensions (paper Section 2.1.3).

The basic architecture is single-application; the paper sketches the two
extensions a multi-user machine needs and argues they do not disturb the
proposed optimizations.  This module implements both:

* **Privileged messages** — messages destined for the operating system are
  stored in privileged state (or interrupt the processor) rather than ever
  appearing in the user-visible input registers.
* **Inactive-process messages** — under *independent* context switching
  every message carries the sending process's PIN; an arriving message
  whose PIN does not match the active process is treated as privileged.
  Under *gang* (synchronous) scheduling, the network is drained between
  time slices so such messages never exist; :class:`GangScheduler` models
  that strategy (the CM-5's, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProtectionError
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message

RESERVED_PIN = 0
"""PIN 0 is the "no process" sentinel and never names a real tenant.

:meth:`ProtectionDomain.deactivate` parks ``control["active_pin"]`` at 0,
so a tenant created with PIN 0 would alias the deactivated state and its
messages could leak past PIN checking.  Every tenant-creation path
(domain activation, gang slices, the :mod:`repro.tenancy` workload)
rejects it.
"""


def check_pin(pin: int) -> int:
    """Validate a tenant PIN; PIN 0 is reserved (see :data:`RESERVED_PIN`)."""
    if pin == RESERVED_PIN:
        raise ProtectionError(
            "PIN 0 is reserved as the no-process sentinel and cannot "
            "name a tenant"
        )
    if pin < 0:
        raise ProtectionError(f"PIN must be positive, got {pin}")
    return pin


@dataclass
class PrivilegedStore:
    """Kernel-side buffering for diverted messages.

    Messages are filed by PIN so the OS can requeue them when it activates
    the owning process; OS-destined (privileged-bit) messages are kept in
    their own list.
    """

    os_messages: List[Message] = field(default_factory=list)
    by_pin: Dict[int, List[Message]] = field(default_factory=dict)
    interrupts_raised: int = 0

    def file(self, message: Message) -> None:
        """Store one diverted message."""
        if message.privileged:
            self.os_messages.append(message)
        else:
            self.by_pin.setdefault(message.pin, []).append(message)

    def file_front(self, pin: int, messages: List[Message]) -> None:
        """Park ``messages`` *ahead* of anything already stored for ``pin``.

        Used when a context switch drains a tenant's still-queued input
        back into the store: those messages arrived before anything the
        store already holds, so they must redeliver first.
        """
        if not messages:
            return
        self.by_pin[pin] = list(messages) + self.by_pin.get(pin, [])

    def pending_count(self, pin: int) -> int:
        """How many messages wait for process ``pin`` (no copy)."""
        return len(self.by_pin.get(pin, ()))

    def total_pending(self) -> int:
        """All stored user messages (OS-destined ones not included)."""
        return sum(len(batch) for batch in self.by_pin.values())

    def pending_for(self, pin: int) -> List[Message]:
        """Messages waiting for process ``pin``."""
        return list(self.by_pin.get(pin, ()))

    def take_for(self, pin: int) -> List[Message]:
        """Remove and return the messages waiting for process ``pin``."""
        return self.by_pin.pop(pin, [])


class ProtectionDomain:
    """Ties a :class:`NetworkInterface` to OS-level protection state.

    The domain installs itself as the interface's tenant scheduler (the
    smallest policy the pluggable receive-side protocol admits), so every
    privileged or PIN-mismatched delivery lands in the
    :class:`PrivilegedStore` (optionally raising a modelled interrupt),
    and offers the OS-side operations: activating a process and requeueing
    its stored messages.  The richer policies in :mod:`repro.tenancy`
    implement the same :class:`~repro.nic.interface.TenantSchedulerLike`
    protocol.
    """

    def __init__(self, interface: NetworkInterface) -> None:
        self.interface = interface
        self.store = PrivilegedStore()
        interface.attach_tenant_scheduler(self)

    def on_divert(
        self, interface: NetworkInterface, message: Message, reason: str
    ) -> None:
        """The TenantSchedulerLike entry point: file and maybe interrupt."""
        self.store.file(message)
        if self.interface.control["privileged_interrupt"]:
            self.store.interrupts_raised += 1

    def activate(self, pin: int) -> int:
        """Context switch to process ``pin``.

        Enables PIN checking for the new process and redelivers any of its
        messages that arrived while it was switched out.  Returns the
        number of messages redelivered.  PIN 0 is reserved
        (:data:`RESERVED_PIN`) and rejected.
        """
        self.interface.control.enable_pin_checking(check_pin(pin))
        stored = self.store.take_for(pin)
        redelivered = 0
        leftover: List[Message] = []
        for message in stored:
            if self.interface.deliver(message):
                redelivered += 1
            else:
                leftover.append(message)
        for message in leftover:
            # Input queue filled up mid-redelivery; keep the rest stored.
            self.store.file(message)
        return redelivered

    def deactivate(self) -> None:
        """Leave no process active (all user messages divert).

        ``active_pin`` parks at :data:`RESERVED_PIN`; no real tenant may
        hold PIN 0, so the sentinel can never match arriving traffic.
        """
        self.interface.control.disable_pin_checking()
        self.interface.control["active_pin"] = RESERVED_PIN

    def os_take_all(self) -> List[Message]:
        """The OS consumes its privileged messages."""
        messages = self.store.os_messages
        self.store.os_messages = []
        return messages


class GangScheduler:
    """Synchronous time-slicing with network draining (Section 2.1.3).

    With gang scheduling, every node switches processes at the same time
    and the network is drained between slices, so no message for an
    inactive process is ever in flight.  The scheduler model drains each
    interface's queues into per-process saved state at the end of a slice
    and restores them when the process runs again.
    """

    def __init__(self, interfaces: List[NetworkInterface]) -> None:
        if not interfaces:
            raise ProtectionError("gang scheduler needs at least one interface")
        self.interfaces = interfaces
        self.active_pin: Optional[int] = None
        self._saved: Dict[int, List[List[Message]]] = {}

    def start_slice(self, pin: int) -> None:
        """Begin a time slice for process ``pin`` on every node.

        Restored messages that no longer fit the input queue (its
        threshold or capacity may have shrunk between slices) are refiled
        into the process's saved state in order, exactly as
        :meth:`ProtectionDomain.activate` keeps its remainder stored —
        no message is lost and none reordered.
        """
        if self.active_pin is not None:
            raise ProtectionError(
                f"slice for pin {self.active_pin} is still running"
            )
        check_pin(pin)
        self.active_pin = pin
        saved = self._saved.pop(pin, None)
        if saved is not None:
            leftover: List[List[Message]] = []
            for interface, messages in zip(self.interfaces, saved):
                kept: List[Message] = []
                for index, message in enumerate(messages):
                    if not interface.deliver(message):
                        # Keep the whole tail so arrival order survives
                        # behind the undelivered head.
                        kept = messages[index:]
                        break
                leftover.append(kept)
            if any(leftover):
                self._saved[pin] = leftover

    def end_slice(self) -> None:
        """End the running slice, draining all in-flight state."""
        if self.active_pin is None:
            raise ProtectionError("no slice is running")
        # Messages refiled at start_slice (queue overflow) are still
        # parked here; they requeue behind what the slice leaves, each
        # batch keeping its own arrival order.
        refiled = self._saved.pop(self.active_pin, None)
        saved: List[List[Message]] = []
        for index, interface in enumerate(self.interfaces):
            drained: List[Message] = []
            # The message occupying the input registers is part of the
            # process's network state too.
            if interface.current_message is not None:
                drained.append(interface.current_message)
                interface._current = None
            drained.extend(interface.input_queue.drain())
            if refiled is not None:
                drained.extend(refiled[index])
            interface._refresh_status()
            saved.append(drained)
        self._saved[self.active_pin] = saved
        self.active_pin = None

    def refill(self) -> int:
        """Retry delivering the running slice's refiled messages.

        :meth:`start_slice` refiles restored messages that overflow the
        input queue; once the slice's processors drain some of the
        backlog, a scheduler tick calls this to move the remainder into
        the freed slots.  Returns the number of messages delivered.
        """
        if self.active_pin is None:
            raise ProtectionError("no slice is running")
        saved = self._saved.pop(self.active_pin, None)
        if saved is None:
            return 0
        delivered = 0
        leftover: List[List[Message]] = []
        for interface, messages in zip(self.interfaces, saved):
            kept: List[Message] = []
            for index, message in enumerate(messages):
                if not interface.deliver(message):
                    kept = messages[index:]
                    break
                delivered += 1
            leftover.append(kept)
        if any(leftover):
            self._saved[self.active_pin] = leftover
        return delivered

    def saved_message_count(self, pin: int) -> int:
        """How many messages are parked for process ``pin``."""
        return sum(len(batch) for batch in self._saved.get(pin, ()))
