"""Hardware-assisted message dispatch: ``MsgIp`` / ``NextMsgIp`` (Figure 7).

The dispatch unit continuously precomputes the instruction pointer of the
handler for the message in the input registers.  Software dispatches a
message with a single register-indirect jump instead of the load / mask /
table-lookup / jump sequence of the basic architecture.

The computation follows Figure 7 of the paper:

* **Case 1 (typical)** — ``MsgIp`` is ``IpBase`` with a handler-id field
  replaced by the arrived message's type, plus the ``iafull`` / ``oafull``
  almost-full condition bits, selecting one of four versions of the
  handler (Section 2.2.4).
* **Case 2** — when there is no exceptional condition, neither queue is over
  threshold, and the message is of type 0, ``MsgIp`` is simply word 1 of the
  message (the handler IP travels in the message).

Two handler ids are architecturally reserved: ``0000`` dispatches to the
"no message" (idle) handler and ``0001`` to the exception handler, which is
why type 1 messages may never be sent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.nic.messages import TYPE_EXCEPTION, TYPE_MSG_IP, Message
from repro.utils.bitfield import to_word

HANDLER_ID_NO_MESSAGE = 0
"""Handler id dispatched to when the input registers hold no message."""

HANDLER_ID_EXCEPTION = TYPE_EXCEPTION
"""Handler id dispatched to when STATUS reports an exceptional condition."""

HANDLER_SLOT_BYTES = 16
"""Bytes per handler version slot: four 32-bit instructions.

Each slot is large enough for a short handler or an unconditional branch to
a longer one.  The paper leaves the slot size implementation dependent.
"""

VERSIONS_PER_HANDLER = 4
"""iafull x oafull combinations (Section 2.2.4)."""

HANDLER_REGION_BYTES = HANDLER_SLOT_BYTES * VERSIONS_PER_HANDLER
"""Bytes per message type in the dispatch table (4 versions)."""

TABLE_BYTES = HANDLER_REGION_BYTES * 16
"""Total dispatch table size covered by the replaced IpBase bits (1 KiB)."""

_IAFULL_SHIFT = 4
_OAFULL_SHIFT = 5
_HANDLER_SHIFT = 6
_TABLE_MASK = TABLE_BYTES - 1  # 0x3FF: the IpBase bits replaced by hardware


def handler_table_address(
    ip_base: int, handler_id: int, iafull: bool = False, oafull: bool = False
) -> int:
    """The dispatch-table entry address for a handler id and conditions.

    This is the "replace certain bits of the IpBase register" operation of
    Section 2.2.3, made concrete: the low 10 bits of ``IpBase`` are replaced
    by ``handler_id . oafull . iafull . 0000``.
    """
    if handler_id < 0 or handler_id > 0xF:
        raise ValueError(f"handler id {handler_id} does not fit in 4 bits")
    entry = (
        (handler_id << _HANDLER_SHIFT)
        | (int(bool(oafull)) << _OAFULL_SHIFT)
        | (int(bool(iafull)) << _IAFULL_SHIFT)
    )
    return (to_word(ip_base) & ~_TABLE_MASK) | entry


def decode_table_address(address: int) -> tuple[int, bool, bool]:
    """Inverse of :func:`handler_table_address` (handler id, iafull, oafull)."""
    entry = address & _TABLE_MASK
    handler_id = entry >> _HANDLER_SHIFT
    oafull = bool((entry >> _OAFULL_SHIFT) & 1)
    iafull = bool((entry >> _IAFULL_SHIFT) & 1)
    return handler_id, iafull, oafull


@dataclass(frozen=True)
class DispatchConditions:
    """The condition inputs to the MsgIp computation."""

    iafull: bool = False
    oafull: bool = False
    exception: bool = False

    @property
    def boundary(self) -> bool:
        """True when any condition forces case 1 even for type 0 messages."""
        return self.iafull or self.oafull or self.exception


def compute_msg_ip(
    ip_base: int,
    message: Optional[Message],
    conditions: DispatchConditions,
) -> int:
    """Compute ``MsgIp`` exactly as the Figure 7 hardware does.

    The priority order matters and is part of the architecture: exceptions
    win over everything, then the no-message case, then the type-0 fast
    path (only with no boundary condition), then the table lookup.
    """
    if conditions.exception:
        return handler_table_address(
            ip_base, HANDLER_ID_EXCEPTION, conditions.iafull, conditions.oafull
        )
    if message is None:
        return handler_table_address(
            ip_base, HANDLER_ID_NO_MESSAGE, conditions.iafull, conditions.oafull
        )
    if message.mtype == TYPE_MSG_IP and not conditions.boundary:
        # Case 2: the handler IP travels in word 1 of the message.
        return message.word(1)
    return handler_table_address(
        ip_base, message.mtype, conditions.iafull, conditions.oafull
    )


def describe_dispatch(
    message: Optional[Message], conditions: DispatchConditions
) -> dict:
    """Human-readable dispatch facts for a message entering the registers.

    Used by lineage tracing to label ``dispatch``/``handler`` spans with
    which Figure 7 case fired and under which boundary conditions —
    exactly the information ``MsgIp`` encodes in address bits.
    """
    if message is not None and message.mtype == TYPE_MSG_IP and not conditions.boundary:
        case = 2
        handler_id = None
    else:
        case = 1
        handler_id = message.mtype if message is not None else HANDLER_ID_NO_MESSAGE
    detail = {"case": case, "iafull": conditions.iafull, "oafull": conditions.oafull}
    if handler_id is not None:
        detail["handler_id"] = handler_id
    return detail


class DispatchUnit:
    """The MsgIp / NextMsgIp generator attached to a network interface.

    ``MsgIp`` reflects the message currently in the input registers;
    ``NextMsgIp`` reflects the message at the head of the input queue (the
    one ``NEXT`` will expose), letting software overlap the processing of
    one message with the dispatch of the next (Section 2.2.3).
    """

    def __init__(self, ip_base: int = 0) -> None:
        self._ip_base = to_word(ip_base)

    @property
    def ip_base(self) -> int:
        """The software-loaded base address of the dispatch table."""
        return self._ip_base

    @ip_base.setter
    def ip_base(self, value: int) -> None:
        self._ip_base = to_word(value)

    def msg_ip(
        self, current: Optional[Message], conditions: DispatchConditions
    ) -> int:
        """Handler IP for the message in the input registers."""
        return compute_msg_ip(self._ip_base, current, conditions)

    def next_msg_ip(
        self, queued: Optional[Message], conditions: DispatchConditions
    ) -> int:
        """Handler IP for the head-of-queue message (post-``NEXT`` view)."""
        return compute_msg_ip(self._ip_base, queued, conditions)

    def idle_ip(self, conditions: DispatchConditions | None = None) -> int:
        """The no-message handler address under the given conditions."""
        conditions = conditions or DispatchConditions()
        return handler_table_address(
            self._ip_base, HANDLER_ID_NO_MESSAGE, conditions.iafull, conditions.oafull
        )

    def exception_ip(self, conditions: DispatchConditions | None = None) -> int:
        """The exception handler address under the given conditions."""
        conditions = conditions or DispatchConditions()
        return handler_table_address(
            self._ip_base, HANDLER_ID_EXCEPTION, conditions.iafull, conditions.oafull
        )
